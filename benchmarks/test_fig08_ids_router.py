"""Figure 8: IDS+VLAN+router, frequency sweep.

Regenerates the table/figure rows and asserts the paper's claims.
"""

from repro.experiments import fig08


def test_fig08(benchmark, paper_scale):
    result = benchmark.pedantic(fig08.run, args=(paper_scale,), rounds=1, iterations=1)
    print()
    print(fig08.format_table(result))
    fig08.check(result)
