"""Table 1: LLC loads/misses, IPC, Mpps @3 GHz.

Regenerates the table/figure rows and asserts the paper's claims.
"""

from repro.experiments import table1


def test_table1(benchmark, paper_scale):
    result = benchmark.pedantic(table1.run, args=(paper_scale,), rounds=1, iterations=1)
    print()
    print(table1.format_table(result))
    table1.check(result)
