"""Figure 6: packet-size sweep, Vanilla vs PacketMill.

Regenerates the table/figure rows and asserts the paper's claims.
"""

from repro.experiments import fig06


def test_fig06(benchmark, paper_scale):
    result = benchmark.pedantic(fig06.run, args=(paper_scale,), rounds=1, iterations=1)
    print()
    print(fig06.format_table(result))
    fig06.check(result)
