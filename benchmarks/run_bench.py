"""Wall-clock benchmarks: sweep engine and execution tiers.

Default mode (``BENCH_PR4.json``): runs each experiment once with the
sweep engine forced serial and once forced parallel (ProcessPoolExecutor
fan-out), verifies the two produce byte-identical
``ExperimentResult.to_json()`` payloads, and writes the timings,
speedups, and execution-cache hit rates.

Tier mode (``--tiers``, ``BENCH_PR7.json``): runs fig01/fig06 once per
execution tier (interpreter / compiled / codegen via ``REPRO_TIER``),
verifies every tier produces byte-identical payloads, and adds a hot-path
microbenchmark timing the compiled op-tuple loop against the generated
kernels over fig01's element programs.

Shard mode (``--shards``, ``BENCH_PR9.json``): builds and measures the
NAT on the sharded runtime at 1/2/4 cores, verifies the 1-core sharded
point is bit-identical to the unsharded path, and records wall-clock,
throughput, and scaling efficiency per core count.  These are simulated
cores stepped in lockstep inside one process, so the numbers capture
model cost, not host parallelism -- ``cpus`` records the capture host.
The mode also drives the adaptive-steering comparison at zipf-1.6 on 4
cores (static RSS vs RETA-only rebalancing vs RETA+dispatch) and records
each variant's final arrival imbalance, hot-queue drops, migration
counts, and the fraction of the static-vs-uniform throughput gap it
recovered.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full QUICK suite
    PYTHONPATH=src python benchmarks/run_bench.py --smoke    # CI subset, tiny scale
    PYTHONPATH=src python benchmarks/run_bench.py --tiers    # per-tier timings
    PYTHONPATH=src python benchmarks/run_bench.py --shards   # sharded-runtime timings

Exits non-zero when any pair mismatches, so CI can gate on determinism.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.compiler import codegen
from repro.compiler.runtime import execute_bases
from repro.exec import cache as exec_cache
from repro.exec.sweep import default_jobs
from repro.experiments import (  # noqa: E402
    ablations,
    fig01,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    table1,
)
from repro.experiments.common import QUICK, Scale
from repro.net import checksum, trace

SMOKE_SCALE = Scale(
    name="smoke",
    warmup_batches=40,
    batches=80,
    frequencies=(1.2, 2.0, 3.0),
    packet_sizes=(64, 512, 1472),
    latency_packets=20_000,
    footprints_mb=(1.0, 8.0, 16.0),
    work_numbers=(0, 20),
)

FULL_EXPERIMENTS = (fig01, fig04, fig05, fig06, fig07, fig08, fig09, fig10,
                    fig11, table1)
SMOKE_EXPERIMENTS = (fig01, fig06, fig10)


def _reset_caches() -> None:
    """Drop every memoized artifact so each timed run starts cold."""
    exec_cache.reset_caches()
    trace.build_frame.cache_clear()
    checksum._cached_sum.cache_clear()


def _timed_run(mod, scale: Scale, mode: str):
    os.environ["REPRO_SWEEP"] = mode
    _reset_caches()
    start = time.perf_counter()
    payload = mod.run(scale).to_json()
    elapsed = time.perf_counter() - start
    stats = exec_cache.stats()
    return payload, elapsed, stats


def _hit_rate(stats, layer: str) -> float:
    hits = stats.get("%s_hits" % layer, 0)
    misses = stats.get("%s_misses" % layer, 0)
    return hits / (hits + misses) if hits + misses else 0.0


def _timed_tier_run(mod, scale: Scale, tier: str):
    os.environ["REPRO_TIER"] = tier
    _reset_caches()
    codegen.reset_stats()
    start = time.perf_counter()
    payload = mod.run(scale).to_json()
    elapsed = time.perf_counter() - start
    return payload, elapsed, codegen.stats()


def _hot_path_microbench(repeats: int):
    """Per-call cost of charging fig01's element programs one packet.

    Times ``execute_bases`` (the compiled op-tuple tier) against the
    generated scalar kernels over the same programs, bases, and shadow
    core -- the per-packet work the driver's hot loop repeats millions of
    times -- and returns the wall-clock ratio.
    """
    from repro.core.nfs import router
    from repro.core.options import BuildOptions
    from repro.core.packetmill import PacketMill
    from repro.hw.params import MachineParams

    _reset_caches()
    binary = PacketMill(
        router(), BuildOptions.packetmill(),
        params=MachineParams().at_frequency(2.3),
    ).build()
    programs = list(binary.exec_programs.values())
    kernels = [codegen.compile_program(p).scalar for p in programs]
    meta, mbuf, descriptor, data, state = codegen._SHADOW_BASES

    def time_loop(run_one):
        cpu = codegen._shadow_cpu()
        start = time.perf_counter()
        for _ in range(repeats):
            run_one(cpu)
        return time.perf_counter() - start, cpu

    def compiled_once(cpu):
        for program in programs:
            execute_bases(cpu, program, meta, mbuf, descriptor, data, state)

    def generated_once(cpu):
        for kernel in kernels:
            kernel(cpu, meta, mbuf, descriptor, data, state)

    # Warm both paths (op-tuple caches, code objects), then time.
    time_loop(compiled_once)
    time_loop(generated_once)
    compiled_s, compiled_cpu = time_loop(compiled_once)
    codegen_s, codegen_cpu = time_loop(generated_once)
    assert (codegen._shadow_state(compiled_cpu)
            == codegen._shadow_state(codegen_cpu)), "hot-path state diverged"
    return {
        "programs": len(programs),
        "repeats": repeats,
        "compiled_s": round(compiled_s, 4),
        "codegen_s": round(codegen_s, 4),
        "speedup": round(compiled_s / codegen_s, 3) if codegen_s else None,
    }


def run_tiers(args) -> int:
    scale = SMOKE_SCALE if args.smoke else QUICK
    experiments = (fig01, fig06)
    tiers = ("interpreter", "compiled", "codegen")
    jobs = default_jobs()
    report = {
        "suite": "tiers-smoke" if args.smoke else "tiers",
        "scale": scale.name,
        "cpus": os.cpu_count(),
        "jobs": jobs,
        "workers_used": jobs,
        "tiers": list(tiers),
        "experiments": {},
    }
    mismatches = []
    saved_tier = os.environ.get("REPRO_TIER")
    try:
        for mod in experiments:
            name = mod.__name__.rsplit(".", 1)[-1]
            payloads = {}
            entry = {}
            for tier in tiers:
                payload, elapsed, codegen_stats = _timed_tier_run(
                    mod, scale, tier)
                payloads[tier] = payload
                entry[tier] = {
                    "wall_s": round(elapsed, 3),
                    "codegen_compiles": codegen_stats["compiles"],
                    "codegen_fallbacks": codegen_stats["fallbacks"],
                }
            match = payloads["interpreter"] == payloads["compiled"] \
                == payloads["codegen"]
            if not match:
                mismatches.append(name)
            entry["match"] = match
            entry["codegen_vs_compiled"] = (
                round(entry["compiled"]["wall_s"]
                      / entry["codegen"]["wall_s"], 3)
                if entry["codegen"]["wall_s"] else None
            )
            report["experiments"][name] = entry
            print("%-8s " % name + "  ".join(
                "%s %6.1fs" % (tier, entry[tier]["wall_s"]) for tier in tiers
            ) + ("  ok" if match else "  MISMATCH"))
    finally:
        if saved_tier is None:
            os.environ.pop("REPRO_TIER", None)
        else:
            os.environ["REPRO_TIER"] = saved_tier

    micro = _hot_path_microbench(repeats=2_000 if args.smoke else 20_000)
    report["fig01_hot_path"] = micro
    print("hot path: compiled %.4fs, codegen %.4fs (%.2fx over %d programs)"
          % (micro["compiled_s"], micro["codegen_s"],
             micro["speedup"] or 0.0, micro["programs"]))

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print("-> %s" % args.output)
    if mismatches:
        print("TIER IDENTITY FAILURE: payloads differ for %s" % mismatches,
              file=sys.stderr)
        return 1
    if micro["speedup"] is not None and micro["speedup"] < 1.2:
        print("HOT PATH REGRESSION: codegen only %.2fx over compiled "
              "(need >= 1.2x)" % micro["speedup"], file=sys.stderr)
        return 1
    return 0


def run_shards(args) -> int:
    from repro.core.nfs import nat_router
    from repro.core.options import BuildOptions
    from repro.core.packetmill import PacketMill
    from repro.hw.params import MachineParams
    from repro.perf.runner import measure_sharded, measure_throughput

    scale = SMOKE_SCALE if args.smoke else QUICK
    batches, warmup = scale.batches, scale.warmup_batches
    params = MachineParams().at_frequency(2.3)

    def mill(n_cores):
        return PacketMill(nat_router(), BuildOptions.packetmill(),
                          params=params, n_cores=n_cores)

    # Identity gate: the 1-core sharded point must be bit-identical to
    # the unsharded path before any multi-core timing means anything.
    _reset_caches()
    flat = measure_throughput(mill(1).build(), batches=batches,
                              warmup_batches=warmup)
    _reset_caches()
    sharded_one = measure_sharded(mill(1).build_sharded(), batches=batches,
                                  warmup_batches=warmup)
    identical = flat == sharded_one

    report = {
        "suite": "shards-smoke" if args.smoke else "shards",
        "scale": scale.name,
        "cpus": os.cpu_count(),
        # Replicas are simulated cores interleaved in ONE process; these
        # timings measure model cost per core, never host fan-out.
        "workers_used": 1,
        "parallel_capture": False,
        "single_core_identity": identical,
        "cores": {},
    }
    base_wall = None
    for n_cores in (1, 2, 4):
        _reset_caches()
        start = time.perf_counter()
        point = measure_sharded(mill(n_cores).build_sharded(),
                                batches=batches, warmup_batches=warmup)
        wall = time.perf_counter() - start
        if base_wall is None:
            base_wall = wall
        report["cores"][str(n_cores)] = {
            "wall_s": round(wall, 3),
            "gbps": round(point.gbps, 3),
            "mpps": round(point.mpps, 3),
            "bound_by": point.bound_by,
            "wall_per_core_vs_1core": round(wall / (base_wall * n_cores), 3),
        }
        print("%d core(s): %6.2fs wall  %7.2f Gbps  bound by %s"
              % (n_cores, wall, point.gbps, point.bound_by))

    # Adaptive steering at heavy skew: static vs RETA-only vs dispatch,
    # same grid cell as the rss_imbalance experiment's headline claim.
    from repro.experiments import rss_imbalance as ri
    from repro.net.rss import RssConfig

    if args.smoke:
        n_packets, backlog_cap = ri.SMOKE_PACKETS, ri.SMOKE_BACKLOG_CAP
    else:
        n_packets = max(40_000, scale.trace_packets() * ri.N_CORES)
        backlog_cap = RssConfig().backlog_cap

    def steering_point(variant, skew):
        _reset_caches()
        start = time.perf_counter()
        point = ri._measure("stationary", variant, skew,
                            n_packets, backlog_cap, None)
        return point, time.perf_counter() - start

    uniform, _ = steering_point("static", None)
    steering = {"skew": ri.HEAVY_SKEW, "n_packets": n_packets,
                "uniform_gbps": round(uniform.gbps, 3), "variants": {}}
    static_gbps = None
    for variant in ri.VARIANTS:
        point, wall = steering_point(variant, ri.HEAVY_SKEW)
        if variant == "static":
            static_gbps = point.gbps
        gap = uniform.gbps - static_gbps
        steering["variants"][variant] = {
            "wall_s": round(wall, 3),
            "gbps": round(point.gbps, 3),
            "arrival_imbalance": round(point.imbalance, 4),
            "rss_dropped": point.rss_dropped,
            "reta_moves": point.reta_moves,
            "migration_drains": point.migration_drains,
            "dispatched": point.dispatched,
            "gap_recovered": (
                round((point.gbps - static_gbps) / gap, 3) if gap > 0
                else None),
        }
        print("steering %-8s %7.2f Gbps  imbalance %.2f  drops %6d  "
              "moves %3d  dispatched %6d"
              % (variant, point.gbps, point.imbalance, point.rss_dropped,
                 point.reta_moves, point.dispatched))
    report["steering"] = steering

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print("-> %s" % args.output)
    if not identical:
        print("SHARD IDENTITY FAILURE: 1-core sharded point != unsharded",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI subset (fig01/fig06/fig10) at a tiny scale")
    parser.add_argument("--tiers", action="store_true",
                        help="benchmark execution tiers (fig01/fig06 per "
                             "tier + hot-path microbench)")
    parser.add_argument("--shards", action="store_true",
                        help="benchmark the sharded runtime at 1/2/4 cores "
                             "(1-core identity gate + adaptive-steering "
                             "comparison at zipf-1.6)")
    parser.add_argument("--output", default=None,
                        help="where to write the report (default: "
                             "BENCH_PR4.json / BENCH_PR7.json / "
                             "BENCH_PR9.json)")
    args = parser.parse_args(argv)
    if args.output is None:
        args.output = ("BENCH_PR9.json" if args.shards
                       else "BENCH_PR7.json" if args.tiers
                       else "BENCH_PR4.json")
    if args.shards:
        return run_shards(args)
    if args.tiers:
        return run_tiers(args)

    scale = SMOKE_SCALE if args.smoke else QUICK
    experiments = SMOKE_EXPERIMENTS if args.smoke else FULL_EXPERIMENTS

    jobs = default_jobs()
    report = {
        "suite": "smoke" if args.smoke else "full",
        "scale": scale.name,
        "cpus": os.cpu_count(),
        "jobs": jobs,
        # Worker provenance: "parallel" timings from a single-worker box
        # (workers_used == 1) measure pool overhead, not fan-out -- mark
        # them so speedup numbers are never compared across capture kinds.
        "workers_used": jobs,
        "parallel_capture": jobs > 1,
        "experiments": {},
    }
    mismatches = []
    total_serial = total_parallel = 0.0

    for mod in experiments:
        name = mod.__name__.rsplit(".", 1)[-1]
        serial_payload, serial_s, serial_stats = _timed_run(mod, scale, "serial")
        parallel_payload, parallel_s, _ = _timed_run(mod, scale, "parallel")
        match = serial_payload == parallel_payload
        if not match:
            mismatches.append(name)
        total_serial += serial_s
        total_parallel += parallel_s
        report["experiments"][name] = {
            "serial_s": round(serial_s, 3),
            "parallel_s": round(parallel_s, 3),
            "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
            "match": match,
            "build_hit_rate": round(_hit_rate(serial_stats, "build"), 3),
            "trace_hit_rate": round(_hit_rate(serial_stats, "trace"), 3),
        }
        print("%-8s serial %6.1fs  parallel %6.1fs  speedup %5.2fx  %s"
              % (name, serial_s, parallel_s,
                 serial_s / parallel_s if parallel_s else 0.0,
                 "ok" if match else "MISMATCH"))

    if not args.smoke:
        os.environ["REPRO_SWEEP"] = "parallel"
        _reset_caches()
        start = time.perf_counter()
        for abl_name, (run_fn, check_fn) in ablations.ALL.items():
            check_fn(run_fn())
        report["ablations_s"] = round(time.perf_counter() - start, 3)

    report["total_serial_s"] = round(total_serial, 3)
    report["total_parallel_s"] = round(total_parallel, 3)
    report["total_speedup"] = (
        round(total_serial / total_parallel, 3) if total_parallel else None
    )
    report["mismatches"] = mismatches

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print("total: serial %.1fs, parallel %.1fs (%.2fx) -> %s"
          % (total_serial, total_parallel,
             total_serial / total_parallel if total_parallel else 0.0,
             args.output))
    if mismatches:
        print("DETERMINISM FAILURE: serial != parallel for %s" % mismatches,
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
