"""Wall-clock benchmark of the sweep engine: serial vs. parallel.

Runs each experiment once with the sweep engine forced serial and once
forced parallel (ProcessPoolExecutor fan-out), verifies the two produce
byte-identical ``ExperimentResult.to_json()`` payloads, and writes the
timings, speedups, and execution-cache hit rates to ``BENCH_PR4.json``.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full QUICK suite
    PYTHONPATH=src python benchmarks/run_bench.py --smoke    # CI subset, tiny scale

Exits non-zero when any serial/parallel pair mismatches, so CI can gate
on determinism.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.exec import cache as exec_cache
from repro.exec.sweep import default_jobs
from repro.experiments import (  # noqa: E402
    ablations,
    fig01,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    table1,
)
from repro.experiments.common import QUICK, Scale
from repro.net import checksum, trace

SMOKE_SCALE = Scale(
    name="smoke",
    warmup_batches=40,
    batches=80,
    frequencies=(1.2, 2.0, 3.0),
    packet_sizes=(64, 512, 1472),
    latency_packets=20_000,
    footprints_mb=(1.0, 8.0, 16.0),
    work_numbers=(0, 20),
)

FULL_EXPERIMENTS = (fig01, fig04, fig05, fig06, fig07, fig08, fig09, fig10,
                    fig11, table1)
SMOKE_EXPERIMENTS = (fig01, fig06, fig10)


def _reset_caches() -> None:
    """Drop every memoized artifact so each timed run starts cold."""
    exec_cache.reset_caches()
    trace.build_frame.cache_clear()
    checksum._cached_sum.cache_clear()


def _timed_run(mod, scale: Scale, mode: str):
    os.environ["REPRO_SWEEP"] = mode
    _reset_caches()
    start = time.perf_counter()
    payload = mod.run(scale).to_json()
    elapsed = time.perf_counter() - start
    stats = exec_cache.stats()
    return payload, elapsed, stats


def _hit_rate(stats, layer: str) -> float:
    hits = stats.get("%s_hits" % layer, 0)
    misses = stats.get("%s_misses" % layer, 0)
    return hits / (hits + misses) if hits + misses else 0.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI subset (fig01/fig06/fig10) at a tiny scale")
    parser.add_argument("--output", default="BENCH_PR4.json",
                        help="where to write the report (default: %(default)s)")
    args = parser.parse_args(argv)

    scale = SMOKE_SCALE if args.smoke else QUICK
    experiments = SMOKE_EXPERIMENTS if args.smoke else FULL_EXPERIMENTS

    jobs = default_jobs()
    report = {
        "suite": "smoke" if args.smoke else "full",
        "scale": scale.name,
        "cpus": os.cpu_count(),
        "jobs": jobs,
        # Worker provenance: "parallel" timings from a single-worker box
        # (workers_used == 1) measure pool overhead, not fan-out -- mark
        # them so speedup numbers are never compared across capture kinds.
        "workers_used": jobs,
        "parallel_capture": jobs > 1,
        "experiments": {},
    }
    mismatches = []
    total_serial = total_parallel = 0.0

    for mod in experiments:
        name = mod.__name__.rsplit(".", 1)[-1]
        serial_payload, serial_s, serial_stats = _timed_run(mod, scale, "serial")
        parallel_payload, parallel_s, _ = _timed_run(mod, scale, "parallel")
        match = serial_payload == parallel_payload
        if not match:
            mismatches.append(name)
        total_serial += serial_s
        total_parallel += parallel_s
        report["experiments"][name] = {
            "serial_s": round(serial_s, 3),
            "parallel_s": round(parallel_s, 3),
            "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
            "match": match,
            "build_hit_rate": round(_hit_rate(serial_stats, "build"), 3),
            "trace_hit_rate": round(_hit_rate(serial_stats, "trace"), 3),
        }
        print("%-8s serial %6.1fs  parallel %6.1fs  speedup %5.2fx  %s"
              % (name, serial_s, parallel_s,
                 serial_s / parallel_s if parallel_s else 0.0,
                 "ok" if match else "MISMATCH"))

    if not args.smoke:
        os.environ["REPRO_SWEEP"] = "parallel"
        _reset_caches()
        start = time.perf_counter()
        for abl_name, (run_fn, check_fn) in ablations.ALL.items():
            check_fn(run_fn())
        report["ablations_s"] = round(time.perf_counter() - start, 3)

    report["total_serial_s"] = round(total_serial, 3)
    report["total_parallel_s"] = round(total_parallel, 3)
    report["total_speedup"] = (
        round(total_serial / total_parallel, 3) if total_parallel else None
    )
    report["mismatches"] = mismatches

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print("total: serial %.1fs, parallel %.1fs (%.2fx) -> %s"
          % (total_serial, total_parallel,
             total_serial / total_parallel if total_parallel else 0.0,
             args.output))
    if mismatches:
        print("DETERMINISM FAILURE: serial != parallel for %s" % mismatches,
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
