"""Figure 5: Copying vs Overlaying vs X-Change, 1 and 2 NICs.

Regenerates the table/figure rows and asserts the paper's claims.
"""

from repro.experiments import fig05


def test_fig05(benchmark, paper_scale):
    result = benchmark.pedantic(fig05.run, args=(paper_scale,), rounds=1, iterations=1)
    print()
    print(fig05.format_table(result))
    fig05.check(result)
