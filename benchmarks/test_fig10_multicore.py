"""Figure 10: NAT multicore scaling.

Regenerates the table/figure rows and asserts the paper's claims.
"""

from repro.experiments import fig10


def test_fig10(benchmark, paper_scale):
    result = benchmark.pedantic(fig10.run, args=(paper_scale,), rounds=1, iterations=1)
    print()
    print(fig10.format_table(result))
    fig10.check(result)
