"""Figure 11: framework comparison @1.2 GHz.

Regenerates the table/figure rows and asserts the paper's claims.
"""

from repro.experiments import fig11


def test_fig11(benchmark, paper_scale):
    result = benchmark.pedantic(fig11.run, args=(paper_scale,), rounds=1, iterations=1)
    print()
    print(fig11.format_table(result))
    fig11.check(result)
