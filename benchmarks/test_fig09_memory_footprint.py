"""Figure 9: memory-footprint slice (N=1, W=4).

Regenerates the table/figure rows and asserts the paper's claims.
"""

from repro.experiments import fig09


def test_fig09(benchmark, paper_scale):
    result = benchmark.pedantic(fig09.run, args=(paper_scale,), rounds=1, iterations=1)
    print()
    print(fig09.format_table(result))
    fig09.check(result)
