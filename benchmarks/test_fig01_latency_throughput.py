"""Figure 1: p99 latency vs throughput knee (router @2.3 GHz).

Regenerates the table/figure rows and asserts the paper's claims.
"""

from repro.experiments import fig01


def test_fig01(benchmark, paper_scale):
    result = benchmark.pedantic(fig01.run, args=(paper_scale,), rounds=1, iterations=1)
    print()
    print(fig01.format_table(result))
    fig01.check(result)
