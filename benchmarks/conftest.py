"""Benchmark harness configuration.

Each ``test_figXX_*``/``test_tableX_*`` benchmark regenerates one of the
paper's tables or figures at the QUICK scale, prints the reproduced rows,
and asserts the paper's qualitative claims via the experiment's
``check()``.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


@pytest.fixture
def paper_scale():
    """The measurement scale benchmarks run at."""
    from repro.experiments.common import QUICK

    return QUICK
