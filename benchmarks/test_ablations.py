"""Ablations of DESIGN.md's called-out design choices.

Beyond the paper's figures: DDIO way quota, RX burst size, X-Change's
metadata-buffer count, driver models (TinyNF / X-Change / vectorized
classic), and PGO stacking.
"""

import pytest

from repro.experiments import ablations


@pytest.mark.parametrize("name", sorted(ablations.ALL))
def test_ablation(name, benchmark):
    run_fn, check_fn = ablations.ALL[name]
    result = benchmark.pedantic(run_fn, rounds=1, iterations=1)
    print()
    print(result.format_table())
    check_fn(result)
