"""Figure 4: per-technique code optimizations, frequency sweep.

Regenerates the table/figure rows and asserts the paper's claims.
"""

from repro.experiments import fig04


def test_fig04(benchmark, paper_scale):
    result = benchmark.pedantic(fig04.run, args=(paper_scale,), rounds=1, iterations=1)
    print()
    print(fig04.format_table(result))
    fig04.check(result)
