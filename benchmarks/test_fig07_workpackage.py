"""Figure 7: synthetic NF improvement surface.

Regenerates the table/figure rows and asserts the paper's claims.
"""

from repro.experiments import fig07


def test_fig07(benchmark, paper_scale):
    result = benchmark.pedantic(fig07.run, args=(paper_scale,), rounds=1, iterations=1)
    print()
    print(fig07.format_table(result))
    fig07.check(result)
