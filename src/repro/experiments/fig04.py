"""Figure 4: per-technique code optimizations, router, frequency sweep.

Throughput and median latency vs. core frequency for Vanilla,
Devirtualize, Constant Embedding, Static Graph, and All, with the linear
(throughput) and quadratic (latency) fits the figure annotates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.nfs import router
from repro.core.options import BuildOptions
from repro.exec.sweep import PointSpec, run_points
from repro.experiments.common import QUICK, Row, Scale, format_rows
from repro.experiments.result import ExperimentResult, series_points
from repro.perf.loadlatency import LoadLatencySimulator
from repro.perf.stats import linear_fit, quadratic_fit

VARIANTS = (
    ("Vanilla", BuildOptions.vanilla()),
    ("Devirtualize", BuildOptions.devirtualized()),
    ("Constant Embedding", BuildOptions.constant()),
    ("Static Graph", BuildOptions.static()),
    ("All", BuildOptions.all_code_opts()),
)


@dataclass
class Fig04Result(ExperimentResult):
    frequencies: List[float]
    throughput_gbps: Dict[str, List[float]]
    median_latency_us: Dict[str, List[float]]
    throughput_fits: Dict[str, Tuple[float, float, float]]
    latency_fits: Dict[str, Tuple[float, float, float, float]]

    name = "fig04"

    def _params(self):
        return {
            "frequencies": list(self.frequencies),
            "throughput_fits": {k: list(v) for k, v in self.throughput_fits.items()},
            "latency_fits": {k: list(v) for k, v in self.latency_fits.items()},
        }

    def _points(self):
        return series_points("freq_ghz", self.frequencies, {
            "gbps": self.throughput_gbps,
            "median_latency_us": self.median_latency_us,
        })


def run(scale: Scale = QUICK) -> Fig04Result:
    freqs = list(scale.frequencies)
    throughput: Dict[str, List[float]] = {}
    latency: Dict[str, List[float]] = {}
    config = router()
    specs = [
        PointSpec(config, options, freq, scale.batches, scale.warmup_batches)
        for _, options in VARIANTS
        for freq in freqs
    ]
    points = iter(run_points(specs))
    for name, options in VARIANTS:
        gbps_series = []
        lat_series = []
        for freq in freqs:
            point = next(points)
            gbps_series.append(point.gbps)
            # Median latency under the saturating replay the paper uses.
            sim = LoadLatencySimulator(1e9 / point.pps, ring_size=1024)
            res = sim.run(point.pps * 1.05, n_packets=scale.latency_packets // 2)
            lat_series.append(res.p50_us)
        throughput[name] = gbps_series
        latency[name] = lat_series
    throughput_fits = {
        name: linear_fit(freqs, series) for name, series in throughput.items()
    }
    latency_fits = {
        name: quadratic_fit(freqs, series) for name, series in latency.items()
    }
    return Fig04Result(freqs, throughput, latency, throughput_fits, latency_fits)


def check(result: Fig04Result) -> None:
    # Ordering at every frequency: All >= Static > Constant/Devirt > Vanilla.
    for i in range(len(result.frequencies)):
        vanilla = result.throughput_gbps["Vanilla"][i]
        devirt = result.throughput_gbps["Devirtualize"][i]
        constant = result.throughput_gbps["Constant Embedding"][i]
        static = result.throughput_gbps["Static Graph"][i]
        all_opts = result.throughput_gbps["All"][i]
        assert devirt > vanilla * 0.995
        assert constant > vanilla * 0.995
        assert static > max(devirt, constant)
        assert all_opts >= static * 0.98
        assert all_opts > vanilla * 1.1
    # Throughput is near-linear in frequency (the figure's fits).
    for name, (a, b, r2) in result.throughput_fits.items():
        assert b > 0, name
        assert r2 > 0.98, "%s: throughput not linear in f (R2=%.3f)" % (name, r2)
    # Median latency decreases with frequency for every variant.
    for name, series in result.median_latency_us.items():
        assert series[0] > series[-1], name
    # Optimized variants have lower latency than Vanilla at every frequency.
    for i in range(len(result.frequencies)):
        assert (
            result.median_latency_us["All"][i]
            < result.median_latency_us["Vanilla"][i]
        )


def format_table(result: Fig04Result) -> str:
    rows = []
    for name, _ in VARIANTS:
        for i, freq in enumerate(result.frequencies):
            rows.append(
                Row(
                    label=name,
                    values={
                        "freq_GHz": freq,
                        "gbps": result.throughput_gbps[name][i],
                        "p50_us": result.median_latency_us[name][i],
                    },
                )
            )
    table = format_rows(
        rows,
        ["freq_GHz", "gbps", "p50_us"],
        header="Figure 4: code optimizations, router, frequency sweep",
    )
    fit_lines = [
        "%s(f) = %.3f + %.2f f (R2=%.4f)" % (name, a, b, r2)
        for name, (a, b, r2) in result.throughput_fits.items()
    ]
    return table + "\n" + "\n".join(fit_lines)


if __name__ == "__main__":
    result = run()
    print(format_table(result))
    check(result)
