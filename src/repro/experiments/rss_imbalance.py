"""RSS imbalance: static sharding breaks under elephants; steering recovers.

RSS steers by flow hash, so per-core load is only balanced when the flow
population is.  The first half of this experiment quantifies the break:
the same 4-core sharded runtime driven by a million-flow trace at
several Zipf skews loses >10% of cluster throughput at zipf-1.6 because
the hottest queue saturates (its staging backlog overflows and sheds
frames) while its siblings starve.

The second half measures the fix -- the adaptive steering loop of
:mod:`repro.net.steering` -- in two configurations against the static
baseline:

``dynamic``
    RETA-only rebalancing (:class:`~repro.net.steering.SteeringPolicy`
    defaults): hot indirection-table buckets are migrated to underloaded
    queues when the cost model approves.
``dispatch``
    The same loop plus the RSS++-style software dispatch stage: a bucket
    whose window share exceeds ``dispatch_share`` is sprayed round-robin
    across every queue (trading that flow's ordering for balance).

Both are measured over two traffic *phases*: ``stationary`` (the
elephant set never changes) and ``shifting`` (the
:class:`~repro.net.trace.SkewedTraceGenerator` rotates its elephant set
halfway through the run, the case static RSS can never adapt to).

Every run starts from a fresh build and drains its finite trace with no
mid-run resets, so the full sharded conservation audit
(:func:`repro.faults.audit.sharded_audit`) -- including the per-bucket
book that crosses every RETA migration -- closes exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.nfs import nat_router
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.experiments.common import DUT_FREQ_GHZ, QUICK, Row, Scale, format_rows
from repro.experiments.result import ExperimentResult
from repro.faults.audit import assert_sharded_conserved
from repro.hw.params import MachineParams
from repro.net.rss import RssConfig
from repro.net.steering import SteeringPolicy
from repro.net.trace import FiniteTrace, SkewedTraceGenerator

N_CORES = 4
N_FLOWS = 1_000_000

#: The static-baseline skew axis: ``None`` is the uniform population;
#: the Zipf exponents bracket "mild" and "heavy" elephant-flow regimes.
SKEWS = (None, 1.1, 1.6)

#: The skew at which the steering variants are compared.
HEAVY_SKEW = 1.6

#: Steering variants measured against the ``static`` baseline.
VARIANTS = ("static", "dynamic", "dispatch")

#: Traffic phases: ``shifting`` rotates the elephant set mid-run.
PHASES = ("stationary", "shifting")

#: Smoke mode (the CI ``steering-smoke`` job): a shorter trace against a
#: tighter backlog cap -- same code paths, directional claims only.
SMOKE_PACKETS = 12_000
SMOKE_BACKLOG_CAP = 512


def _skew_label(skew: Optional[float]) -> str:
    return "uniform" if skew is None else "zipf-%.1f" % skew


def _policy(variant: str) -> Optional[SteeringPolicy]:
    if variant == "static":
        return None
    if variant == "dynamic":
        return SteeringPolicy()
    if variant == "dispatch":
        return SteeringPolicy(dispatch=True)
    raise ValueError("unknown steering variant %r" % variant)


@dataclass
class SteeringPoint:
    """One fresh sharded run of the grid, with its steering ledger."""

    phase: str
    variant: str
    skew: Optional[float]
    gbps: float
    per_queue_steered: List[int]
    per_queue_dropped: List[int]
    per_core_tx: List[int]
    rss_dropped: int
    offered: int
    reta_moves: int = 0
    migration_drains: int = 0
    dispatched: int = 0

    @property
    def arrivals(self) -> List[int]:
        """Hash-directed load per queue: steered + dropped-at-the-cap."""
        return [s + d for s, d in zip(self.per_queue_steered,
                                      self.per_queue_dropped)]

    @property
    def imbalance(self) -> float:
        """max/mean per-queue arrival ratio (1.0 = perfectly balanced)."""
        arrivals = self.arrivals
        mean = sum(arrivals) / len(arrivals)
        return max(arrivals) / mean if mean else float("inf")

    def record(self) -> Dict[str, object]:
        return {
            "phase": self.phase,
            "variant": self.variant,
            "skew": _skew_label(self.skew),
            "gbps": self.gbps,
            "imbalance": self.imbalance,
            "per_queue_steered": self.per_queue_steered,
            "per_queue_dropped": self.per_queue_dropped,
            "per_core_tx": self.per_core_tx,
            "rss_dropped": self.rss_dropped,
            "offered": self.offered,
            "reta_moves": self.reta_moves,
            "migration_drains": self.migration_drains,
            "dispatched": self.dispatched,
        }


@dataclass
class ImbalanceResult(ExperimentResult):
    points_list: List[SteeringPoint]
    smoke: bool = False
    n_packets: int = 0

    name = "rss_imbalance"

    def _params(self):
        return {"n_cores": N_CORES, "n_flows": N_FLOWS,
                "n_packets": self.n_packets, "smoke": self.smoke,
                "skews": [_skew_label(s) for s in SKEWS],
                "variants": list(VARIANTS), "phases": list(PHASES)}

    def _points(self):
        return [p.record() for p in self.points_list]

    def find(self, phase: str, variant: str,
             skew: Optional[float]) -> SteeringPoint:
        for point in self.points_list:
            if (point.phase == phase and point.variant == variant
                    and point.skew == skew):
                return point
        raise KeyError("no point (%s, %s, %s)" % (phase, variant, skew))

    def recovery(self, phase: str, variant: str) -> float:
        """Fraction of the static-vs-uniform throughput gap recovered.

        1.0 means the steering variant reached the uniform-load ceiling;
        0.0 means it did no better than static RSS under the same skew.
        """
        uniform = self.find("stationary", "static", None).gbps
        static = self.find(phase, "static", HEAVY_SKEW).gbps
        steered = self.find(phase, variant, HEAVY_SKEW).gbps
        gap = uniform - static
        return (steered - static) / gap if gap > 0 else float("inf")


def _run_one(config: Optional[str], skew: Optional[float], n_packets: int,
             rss: RssConfig, shift_at: Optional[int] = None):
    """One fresh sharded run, drained to EOF with no mid-run resets."""

    def trace_factory(port, core):
        return FiniteTrace(
            SkewedTraceGenerator(n_flows=N_FLOWS, zipf_s=skew,
                                 seed=101 + port, shift_at=shift_at),
            n_packets)

    mill = PacketMill(
        nat_router() if config is None else config,
        BuildOptions.packetmill(),
        params=MachineParams().at_frequency(DUT_FREQ_GHZ),
        trace=trace_factory,
        n_cores=N_CORES,
        rss=rss,
    )
    runtime = mill.build_sharded()
    runtime.run_until_eof()
    audit = assert_sharded_conserved(runtime)
    return runtime, audit


def _measure(phase: str, variant: str, skew: Optional[float],
             n_packets: int, backlog_cap: int,
             config: Optional[str]) -> SteeringPoint:
    rss = RssConfig(backlog_cap=backlog_cap, steering=_policy(variant))
    shift_at = n_packets // 2 if phase == "shifting" else None
    runtime, audit = _run_one(config, skew, n_packets, rss, shift_at)
    elapsed = runtime.elapsed_ns()
    tx_bytes = sum(b.driver.stats.tx_bytes for b in runtime.replicas)
    mq = runtime.ports[0]
    steering = runtime.steering is not None
    return SteeringPoint(
        phase=phase,
        variant=variant,
        skew=skew,
        gbps=tx_bytes * 8 / elapsed if elapsed else 0.0,
        per_queue_steered=[mq.steered(q) for q in range(N_CORES)],
        per_queue_dropped=[mq.dropped(q) for q in range(N_CORES)],
        per_core_tx=[b.driver.stats.tx_packets for b in runtime.replicas],
        rss_dropped=sum(p["rss_dropped"] for p in audit["ports"].values()),
        offered=audit["offered"],
        reta_moves=int(runtime.registry.get("steering.port0.moves"))
        if steering else 0,
        migration_drains=int(
            runtime.registry.get("steering.port0.migration_drains"))
        if steering else 0,
        dispatched=int(mq.registry.get("dispatched")) if steering else 0,
    )


def run(scale: Scale = QUICK, config: Optional[str] = None,
        smoke: bool = False) -> ImbalanceResult:
    if smoke:
        n_packets, backlog_cap = SMOKE_PACKETS, SMOKE_BACKLOG_CAP
    else:
        n_packets = max(40_000, scale.trace_packets() * N_CORES)
        backlog_cap = RssConfig().backlog_cap
    points: List[SteeringPoint] = []
    # The static skew sweep (the break).
    for skew in SKEWS:
        points.append(_measure("stationary", "static", skew,
                               n_packets, backlog_cap, config))
    # The steering variants at heavy skew (the fix), both phases.
    for phase in PHASES:
        for variant in VARIANTS:
            if phase == "stationary" and variant == "static":
                continue  # already measured in the skew sweep
            points.append(_measure(phase, variant, HEAVY_SKEW,
                                   n_packets, backlog_cap, config))
    return ImbalanceResult(points, smoke=smoke, n_packets=n_packets)


def check(result: ImbalanceResult) -> None:
    """Assert the experiment's claims.

    Directional claims (conservation, steering reduces imbalance and
    hot-queue drops, migrations actually happened) hold at every scale
    including smoke mode; the quantitative recovery floor (>=50% of the
    static-vs-uniform gap at zipf-1.6) is asserted only on full runs.
    """
    for point in result.points_list:
        # Books close from the recorded numbers alone: everything
        # steered was delivered and forwarded (NAT forwards all), plus
        # counted RSS drops.  (assert_sharded_conserved already audited
        # the live runtime, bucket book included, inside each run.)
        delivered = sum(point.per_queue_steered)
        assert delivered + point.rss_dropped == point.offered, point
        assert sum(point.per_core_tx) == delivered, point

    uniform = result.find("stationary", "static", None)
    static = result.find("stationary", "static", HEAVY_SKEW)
    # Uniform load spreads evenly: no queue more than 15% above fair share.
    assert uniform.imbalance < 1.15, \
        "uniform steering imbalance %.3f" % uniform.imbalance
    assert uniform.rss_dropped == 0
    # Heavy skew concentrates: the hot queue carries well above its
    # share, sheds frames at its backlog cap, and costs real throughput.
    assert static.imbalance > 1.5, \
        "zipf steering imbalance only %.3f" % static.imbalance
    assert static.rss_dropped > 0
    assert static.gbps < uniform.gbps * 0.90, \
        "expected >10%% throughput loss under heavy skew " \
        "(uniform %.2f Gbps, zipf %.2f Gbps)" % (uniform.gbps, static.gbps)

    for phase in PHASES:
        phase_static = result.find(phase, "static", HEAVY_SKEW)
        for variant in ("dynamic", "dispatch"):
            steered = result.find(phase, variant, HEAVY_SKEW)
            label = "%s/%s" % (phase, variant)
            # The control loop actually ran: RETA entries migrated (and
            # the dispatch variant sprayed its elephant).
            assert steered.reta_moves > 0, \
                "%s: no RETA migrations" % label
            if variant == "dispatch":
                assert steered.dispatched > 0, \
                    "%s: dispatch never engaged" % label
            # Steering rebalances arrivals and relieves the hot queue.
            # Smoke traces are short enough that the pre-convergence
            # prefix dominates whole-run arrival ratios, so the
            # imbalance claim gets a small tolerance there (the drop
            # reduction below stays strict).
            limit = phase_static.imbalance * (1.05 if result.smoke else 1.0)
            assert steered.imbalance < limit, \
                "%s: imbalance %.3f not below static %.3f" \
                % (label, steered.imbalance, phase_static.imbalance)
            assert steered.rss_dropped < phase_static.rss_dropped, \
                "%s: drops %d not below static %d" \
                % (label, steered.rss_dropped, phase_static.rss_dropped)
            if not result.smoke:
                # The headline: dynamic steering recovers >=50% of the
                # cluster-throughput gap static RSS loses to skew.
                recovered = result.recovery(phase, variant)
                assert recovered >= 0.5, \
                    "%s: recovered only %.0f%% of the static-vs-uniform " \
                    "gap" % (label, recovered * 100)


def format_table(result: ImbalanceResult) -> str:
    rows = []
    for point in result.points_list:
        label = "%s/%s/%s" % (point.phase, point.variant,
                              _skew_label(point.skew))
        rows.append(Row(
            label=label,
            values={
                "gbps": point.gbps,
                "imbalance": point.imbalance,
                "rss_drop": point.rss_dropped,
                "moves": point.reta_moves,
                "dispatched": point.dispatched,
            },
        ))
    return format_rows(
        rows,
        ["gbps", "imbalance", "rss_drop", "moves", "dispatched"],
        header="RSS imbalance + steering: NAT, %d cores @%.1f GHz, "
               "%d-flow trace" % (N_CORES, DUT_FREQ_GHZ, N_FLOWS),
    )


if __name__ == "__main__":
    import sys

    smoke = "--smoke" in sys.argv
    result = run(smoke=smoke)
    print(format_table(result))
    for phase in PHASES:
        for variant in ("dynamic", "dispatch"):
            print("recovery %s/%s: %.0f%%"
                  % (phase, variant, result.recovery(phase, variant) * 100))
    if "--check" in sys.argv:
        check(result)
        print("check: ok")
