"""RSS imbalance: where flow sharding breaks under elephant flows.

RSS steers by flow hash, so per-core load is only balanced when the flow
population is.  This experiment drives the same 4-core sharded runtime
with a million-flow trace at several Zipf skews: under the uniform
population every queue sees ~1/N of the traffic; under elephant-flow
skew the hottest queue saturates (its staging backlog overflows and
sheds frames) while its siblings starve, and the cluster's goodput drops
even though aggregate CPU capacity is unchanged.  The per-queue steering
ledger and the merged per-core counters make the skew directly visible
-- the same numbers the control plane exposes at ``/metrics``.

Every run starts from a fresh build and drains its finite trace with no
mid-run resets, so the full sharded conservation audit
(:func:`repro.faults.audit.sharded_audit`) closes exactly: offered ==
forwarded + dropped-with-a-counter + in-flight, per queue and globally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.nfs import nat_router
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.experiments.common import DUT_FREQ_GHZ, QUICK, Row, Scale, format_rows
from repro.experiments.result import ExperimentResult
from repro.faults.audit import assert_sharded_conserved
from repro.hw.params import MachineParams
from repro.net.rss import RssConfig
from repro.net.trace import FiniteTrace, SkewedTraceGenerator

N_CORES = 4
N_FLOWS = 1_000_000

#: The skew axis: ``None`` is the uniform population; the Zipf exponents
#: bracket "mild" and "heavy" elephant-flow regimes.
SKEWS = (None, 1.1, 1.6)


def _skew_label(skew: Optional[float]) -> str:
    return "uniform" if skew is None else "zipf-%.1f" % skew


@dataclass
class ImbalanceResult(ExperimentResult):
    skews: List[Optional[float]]
    gbps: List[float]
    per_queue_steered: List[List[int]]
    per_queue_dropped: List[List[int]]
    per_core_tx: List[List[int]]
    rss_dropped: List[int]
    offered: List[int]

    name = "rss_imbalance"

    def _params(self):
        return {"n_cores": N_CORES, "n_flows": N_FLOWS,
                "skews": [s if s is not None else "uniform"
                          for s in self.skews]}

    def _points(self):
        out = []
        for i, skew in enumerate(self.skews):
            out.append({
                "variant": _skew_label(skew),
                "gbps": self.gbps[i],
                "per_queue_steered": self.per_queue_steered[i],
                "per_queue_dropped": self.per_queue_dropped[i],
                "per_core_tx": self.per_core_tx[i],
                "rss_dropped": self.rss_dropped[i],
                "offered": self.offered[i],
            })
        return out

    def per_queue_arrivals(self, index: int) -> List[int]:
        """Hash-directed load per queue: steered + dropped-at-the-cap."""
        return [s + d for s, d in zip(self.per_queue_steered[index],
                                      self.per_queue_dropped[index])]

    def imbalance(self, index: int) -> float:
        """max/mean per-queue arrival ratio (1.0 = perfectly balanced)."""
        arrivals = self.per_queue_arrivals(index)
        mean = sum(arrivals) / len(arrivals)
        return max(arrivals) / mean if mean else float("inf")


def _run_one(config: str, skew: Optional[float], scale: Scale,
             rss: Optional[RssConfig] = None):
    """One fresh sharded run, drained to EOF with no mid-run resets."""
    n_packets = max(40_000, scale.trace_packets() * N_CORES)

    def trace_factory(port, core):
        return FiniteTrace(
            SkewedTraceGenerator(n_flows=N_FLOWS, zipf_s=skew,
                                 seed=101 + port),
            n_packets)

    mill = PacketMill(
        nat_router() if config is None else config,
        BuildOptions.packetmill(),
        params=MachineParams().at_frequency(DUT_FREQ_GHZ),
        trace=trace_factory,
        n_cores=N_CORES,
        rss=rss,
    )
    runtime = mill.build_sharded()
    runtime.run_until_eof()
    audit = assert_sharded_conserved(runtime)
    return runtime, audit


def run(scale: Scale = QUICK, config: Optional[str] = None) -> ImbalanceResult:
    gbps: List[float] = []
    steered: List[List[int]] = []
    q_dropped: List[List[int]] = []
    tx: List[List[int]] = []
    dropped: List[int] = []
    offered: List[int] = []
    for skew in SKEWS:
        runtime, audit = _run_one(config, skew, scale)
        elapsed = runtime.elapsed_ns()
        tx_bytes = sum(b.driver.stats.tx_bytes for b in runtime.replicas)
        gbps.append(tx_bytes * 8 / elapsed if elapsed else 0.0)
        mq = runtime.ports[0]
        steered.append([mq.steered(q) for q in range(N_CORES)])
        q_dropped.append([mq.dropped(q) for q in range(N_CORES)])
        tx.append([b.driver.stats.tx_packets for b in runtime.replicas])
        dropped.append(sum(p["rss_dropped"] for p in audit["ports"].values()))
        offered.append(audit["offered"])
    return ImbalanceResult(list(SKEWS), gbps, steered, q_dropped, tx,
                           dropped, offered)


def check(result: ImbalanceResult) -> None:
    uniform = result.gbps[0]
    heavy = result.gbps[-1]
    # Uniform load spreads evenly: no queue more than 15% above fair share.
    assert result.imbalance(0) < 1.15, \
        "uniform steering imbalance %.3f" % result.imbalance(0)
    # Heavy skew concentrates: the hot queue carries well above its share.
    assert result.imbalance(len(SKEWS) - 1) > 1.5, \
        "zipf steering imbalance only %.3f" % result.imbalance(-1)
    # The headline: elephant flows cost real throughput on the same build.
    assert heavy < uniform * 0.90, \
        "expected >10%% throughput loss under heavy skew " \
        "(uniform %.2f Gbps, zipf %.2f Gbps)" % (uniform, heavy)
    # The loss is visible in the books, not mysterious: the skewed run
    # sheds frames at the hot queue's backlog while uniform sheds none.
    assert result.rss_dropped[0] == 0
    assert result.rss_dropped[-1] > 0


def format_table(result: ImbalanceResult) -> str:
    rows = []
    for i, skew in enumerate(result.skews):
        rows.append(Row(
            label=_skew_label(skew),
            values={
                "gbps": result.gbps[i],
                "imbalance": result.imbalance(i),
                "rss_drop": result.rss_dropped[i],
                "hot_q": max(result.per_queue_arrivals(i)),
                "cold_q": min(result.per_queue_arrivals(i)),
            },
        ))
    return format_rows(
        rows,
        ["gbps", "imbalance", "rss_drop", "hot_q", "cold_q"],
        header="RSS imbalance: NAT, %d cores @%.1f GHz, %d-flow trace"
               % (N_CORES, DUT_FREQ_GHZ, N_FLOWS),
    )


if __name__ == "__main__":
    import sys

    result = run()
    print(format_table(result))
    if "--check" in sys.argv:
        check(result)
        print("check: ok")
