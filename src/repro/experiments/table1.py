"""Table 1: microarchitectural metrics per optimization, router @3 GHz.

LLC kilo-loads and kilo-load-misses per 100 ms, IPC, and Mpps for the
five code-optimization variants.  The headline claims: the static graph
collapses LLC loads/misses by orders of magnitude, IPC climbs from ~2.2
to ~2.6, and packet rate rises ~20%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.nfs import router
from repro.exec.sweep import PointSpec, run_points
from repro.experiments.common import (
    PERF_FREQ_GHZ,
    QUICK,
    Row,
    Scale,
    format_rows,
)
from repro.experiments.fig04 import VARIANTS
from repro.experiments.result import ExperimentResult


@dataclass
class Table1Result(ExperimentResult):
    metrics: Dict[str, Dict[str, float]]  # variant -> metric -> value

    name = "table1"

    def _points(self):
        return [
            dict({"variant": variant}, **values)
            for variant, values in self.metrics.items()
        ]


def run(scale: Scale = QUICK) -> Table1Result:
    metrics = {}
    config = router()
    specs = [
        PointSpec(config, options, PERF_FREQ_GHZ,
                  scale.batches, scale.warmup_batches)
        for _, options in VARIANTS
    ]
    for (name, _), point in zip(VARIANTS, run_points(specs)):
        metrics[name] = {
            "llc_kloads_100ms": point.counter_per_window("llc_loads") / 1e3,
            "llc_kmisses_100ms": point.counter_per_window("llc_misses") / 1e3,
            "ipc": point.run.ipc,
            "mpps": point.mpps,
        }
    return Table1Result(metrics)


def check(result: Table1Result) -> None:
    vanilla = result.metrics["Vanilla"]
    static = result.metrics["Static Graph"]
    all_opts = result.metrics["All"]
    # The static graph collapses LLC traffic (paper: loads ~45x, misses ~300x).
    assert static["llc_kloads_100ms"] < vanilla["llc_kloads_100ms"] / 3
    assert static["llc_kmisses_100ms"] < max(1.0, vanilla["llc_kmisses_100ms"] / 50)
    # IPC rises substantially (paper: 2.24 -> 2.58).
    assert static["ipc"] > vanilla["ipc"] + 0.2
    assert all_opts["ipc"] > vanilla["ipc"] + 0.2
    # Packet rate: All gains ~20% over Vanilla (paper: 8.66 -> 10.41 Mpps).
    gain = all_opts["mpps"] / vanilla["mpps"]
    assert 1.10 < gain < 1.45, "All/Vanilla Mpps ratio %.2f out of band" % gain
    # Absolute anchor: Vanilla within the calibration band of 8.66 Mpps.
    assert 7.5 < vanilla["mpps"] < 10.0


def format_table(result: Table1Result) -> str:
    rows = [
        Row(label=name, values=values) for name, values in result.metrics.items()
    ]
    return format_rows(
        rows,
        ["llc_kloads_100ms", "llc_kmisses_100ms", "ipc", "mpps"],
        header="Table 1: microarchitectural metrics, router @%.0f GHz" % PERF_FREQ_GHZ,
    )


if __name__ == "__main__":
    result = run()
    print(format_table(result))
    check(result)
