"""Shared experiment plumbing: scales, builders, and table formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.exec import cache as exec_cache
from repro.hw.params import MachineParams
from repro.perf.runner import ThroughputPoint, measure_throughput

#: The evaluation's DUT nominal frequency.
DUT_FREQ_GHZ = 2.3
#: The microarchitectural-metrics frequency (Table 1).
PERF_FREQ_GHZ = 3.0


@dataclass(frozen=True)
class Scale:
    """How big the measurement grid and each measurement run are."""

    name: str
    warmup_batches: int
    batches: int
    frequencies: Sequence[float]
    packet_sizes: Sequence[int]
    latency_packets: int
    footprints_mb: Sequence[float]
    work_numbers: Sequence[int]

    def trace_packets(self) -> int:
        return self.batches * 32


QUICK = Scale(
    name="quick",
    warmup_batches=80,
    batches=160,
    frequencies=(1.2, 1.6, 2.0, 2.4, 2.8, 3.0),
    packet_sizes=(64, 256, 512, 768, 1024, 1280, 1472),
    latency_packets=60_000,
    footprints_mb=(0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
    work_numbers=(0, 8, 20),
)

FULL = Scale(
    name="full",
    warmup_batches=150,
    batches=400,
    frequencies=(1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4, 2.6, 2.8, 3.0),
    packet_sizes=(64, 128, 192, 256, 384, 512, 640, 768, 896, 1024, 1152, 1280, 1408, 1472),
    latency_packets=200_000,
    footprints_mb=(0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0, 20.0),
    work_numbers=(0, 4, 8, 12, 16, 20),
)


def campus_trace_factory(seed: int = 101):
    return lambda port, core: exec_cache.trace_generator(
        "campus", None, seed + port + 7 * core
    )


def fixed_trace_factory(frame_len: int, seed: int = 101):
    return lambda port, core: exec_cache.trace_generator(
        "fixed", frame_len, seed + port + 7 * core
    )


def build_and_measure(
    config: str,
    options: BuildOptions,
    freq_ghz: float,
    scale: Scale,
    trace_factory: Optional[Callable] = None,
    params: Optional[MachineParams] = None,
    seed: int = 0,
) -> ThroughputPoint:
    """Build one binary and measure steady-state throughput."""
    machine = (params or MachineParams()).at_frequency(freq_ghz)
    mill = PacketMill(
        config,
        options,
        params=machine,
        trace=trace_factory or campus_trace_factory(),
        seed=seed,
    )
    binary = mill.build()
    return measure_throughput(
        binary, batches=scale.batches, warmup_batches=scale.warmup_batches
    )


@dataclass
class Row:
    """One generic result row: a label plus named measurements."""

    label: str
    values: dict = field(default_factory=dict)

    def __getitem__(self, key):
        return self.values[key]


def format_rows(rows: List[Row], columns: Sequence[str],
                header: Optional[str] = None, fmt: str = "%10.2f") -> str:
    """Fixed-width table rendering for experiment output."""
    label_width = max(12, max((len(r.label) for r in rows), default=12) + 2)
    lines = []
    if header:
        lines.append(header)
    lines.append("%-*s" % (label_width, "") + "".join("%12s" % c for c in columns))
    for row in rows:
        cells = []
        for column in columns:
            value = row.values.get(column)
            if value is None:
                cells.append("%12s" % "-")
            elif isinstance(value, str):
                cells.append("%12s" % value)
            else:
                cells.append("%12s" % (fmt % value).strip())
        lines.append("%-*s" % (label_width, row.label) + "".join(cells))
    return "\n".join(lines)


def improvement_pct(baseline: float, improved: float) -> float:
    """Relative improvement in percent."""
    if baseline == 0:
        return 0.0
    return (improved - baseline) / baseline * 100.0
