"""Figure 5: metadata-management models, forwarder, frequency sweep.

(a) one NIC / one core; (b) two NICs / one core.  All three models use
LTO; code optimizations are off so metadata management is isolated.
Claims: X-Change > Overlaying > Copying; X-Change (and eventually
Overlaying) plateau on the single-queue NIC ceiling; only X-Change pushes
one core past 100 Gbps with two NICs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.nfs import forwarder, forwarder_two_nics
from repro.core.options import BuildOptions, MetadataModel
from repro.exec.sweep import PointSpec, TraceKey, run_points
from repro.experiments.common import QUICK, Row, Scale, format_rows
from repro.experiments.result import ExperimentResult, series_points

MODELS = (MetadataModel.COPYING, MetadataModel.OVERLAYING, MetadataModel.XCHANGE)
FRAME_LEN = 1024


@dataclass
class Fig05Result(ExperimentResult):
    frequencies: List[float]
    one_nic_gbps: Dict[str, List[float]]
    two_nic_gbps: Dict[str, List[float]]
    one_nic_bound: Dict[str, List[str]]

    name = "fig05"

    def _params(self):
        return {"frequencies": list(self.frequencies)}

    def _points(self):
        return series_points("freq_ghz", self.frequencies, {
            "one_nic_gbps": self.one_nic_gbps,
            "two_nic_gbps": self.two_nic_gbps,
            "one_nic_bound": self.one_nic_bound,
        })


def run(scale: Scale = QUICK) -> Fig05Result:
    freqs = list(scale.frequencies)
    one_nic: Dict[str, List[float]] = {}
    two_nic: Dict[str, List[float]] = {}
    bounds: Dict[str, List[str]] = {}
    trace = TraceKey("fixed", FRAME_LEN)
    specs = []
    for model in MODELS:
        options = BuildOptions.metadata(model)
        for freq in freqs:
            specs.append(PointSpec(forwarder(), options, freq,
                                   scale.batches, scale.warmup_batches,
                                   trace=trace))
            specs.append(PointSpec(forwarder_two_nics(), options, freq,
                                   scale.batches, scale.warmup_batches,
                                   trace=trace))
    points = iter(run_points(specs))
    for model in MODELS:
        one_series, two_series, bound_series = [], [], []
        for freq in freqs:
            point = next(points)
            one_series.append(point.gbps)
            bound_series.append(point.bound_by)
            point2 = next(points)
            two_series.append(point2.gbps)
        one_nic[model.value] = one_series
        two_nic[model.value] = two_series
        bounds[model.value] = bound_series
    return Fig05Result(freqs, one_nic, two_nic, bounds)


def check(result: Fig05Result) -> None:
    for i, freq in enumerate(result.frequencies):
        copying = result.one_nic_gbps["copying"][i]
        overlaying = result.one_nic_gbps["overlaying"][i]
        xchange = result.one_nic_gbps["xchange"][i]
        assert xchange >= overlaying >= copying, "ordering broken at %.1f GHz" % freq
    # X-Change plateaus: its top-frequency point is bounded by the NIC
    # queue, not the CPU (the paper's ~2.2 GHz saturation).
    assert result.one_nic_bound["xchange"][-1] != "cpu"
    # Copying never saturates the NIC within the sweep.
    assert result.one_nic_bound["copying"][-1] == "cpu"
    # Two NICs: only X-Change exceeds 100 Gbps with one core.
    top = {name: series[-1] for name, series in result.two_nic_gbps.items()}
    assert top["xchange"] > 100.0, "X-Change 2-NIC top %.1f <= 100" % top["xchange"]
    assert top["copying"] < 100.0
    # An inefficient model costs >10 Gbps (the paper's closing claim).
    assert top["xchange"] - top["copying"] > 10.0


def format_table(result: Fig05Result) -> str:
    rows = []
    for name in result.one_nic_gbps:
        for i, freq in enumerate(result.frequencies):
            rows.append(
                Row(
                    label=name,
                    values={
                        "freq_GHz": freq,
                        "1nic_gbps": result.one_nic_gbps[name][i],
                        "2nic_gbps": result.two_nic_gbps[name][i],
                        "bound": result.one_nic_bound[name][i],
                    },
                )
            )
    return format_rows(
        rows,
        ["freq_GHz", "1nic_gbps", "2nic_gbps", "bound"],
        header="Figure 5: metadata models, forwarder, %d-B frames" % FRAME_LEN,
    )


if __name__ == "__main__":
    result = run()
    print(format_table(result))
    check(result)
