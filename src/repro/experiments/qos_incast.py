"""Degraded-capacity run: offered-load sweep x congestion, PFC on/off.

The congestion-robustness counterpart of the paper's throughput figures:
instead of asking how fast one core can go, this asks what happens when
offered load *exceeds* what the pipeline can serve.  Two scenarios over
the shipped :func:`repro.core.nfs.qos_forwarder` pipeline:

- **oversubscription** -- constant offered load swept from half to 4x
  the rated service capacity, split evenly across the lossless (prio 0)
  and lossy (prio 1) classes;
- **incast** -- synchronized many-to-one bursts at priority 0 over a
  background of priority-1 traffic, the transient PFC headroom exists
  to absorb.

Each cell runs twice: with the PFCPause element (PFC on) and without it
(the lossy baseline) -- the same buffer carving either way, so the only
difference is whether occupancy crossing XOFF pauses the source or the
excess is dropped at admission.  Reporting goes through
:func:`repro.perf.report.classify_qos` (healthy vs congested) and every
run ends with the full buffer-checker audit
(:func:`repro.faults.audit.qos_audit`); an audit violation fails the
experiment, not just the report.

The headline claim (``check``): under every congested cell, PFC keeps
priority-0 loss at zero while the PFC-off baseline drops, and the books
balance exactly in both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.nfs import qos_forwarder
from repro.core.packetmill import PacketMill
from repro.experiments.common import Row, format_rows
from repro.experiments.result import ExperimentResult
from repro.faults.audit import qos_audit
from repro.hw.params import MachineParams
from repro.net.trace import IncastBurstTrace, OversubscribedTrace, TraceSpec
from repro.perf.report import CONGESTED, classify_qos
from repro.qos import QosConfig, default_qos, tight_qos

#: Per-queue service rate (packets per iteration) of the rated queues.
SERVICE_RATE = 8
#: Total service capacity per iteration (two priority queues).
CAPACITY = 2 * SERVICE_RATE
#: Offered load as a multiple of CAPACITY.
OFFERED_RATIOS = (0.5, 1.0, 2.0, 4.0)
#: Packets per measured run.
RUN_PACKETS = 4000
#: Hard step cap: a run that cannot reach EOF within this is stuck.
MAX_STEPS = 20_000


@dataclass
class QosIncastResult(ExperimentResult):
    """Per-cell records of the oversubscription sweep and incast runs."""

    name: str = "qos_incast"
    records: List[Dict[str, object]] = field(default_factory=list)
    run_packets: int = RUN_PACKETS
    service_rate: int = SERVICE_RATE

    def _params(self) -> Dict[str, object]:
        return {
            "run_packets": self.run_packets,
            "service_rate": self.service_rate,
            "offered_ratios": list(OFFERED_RATIOS),
        }

    def _points(self) -> List[Dict[str, object]]:
        return self.records


def _run_cell(trace, pfc: bool, qos: Optional[QosConfig] = None
              ) -> Dict[str, object]:
    """Build, run to EOF, audit, and flatten one congestion cell."""
    mill = PacketMill(
        qos_forwarder(pfc=pfc, rate=SERVICE_RATE),
        params=MachineParams(),
        trace=trace,
        qos=qos or default_qos(),
    )
    binary = mill.build()
    driver = binary.driver
    steps = 0
    while not driver.at_eof() and steps < MAX_STEPS:
        driver.step()
        steps += 1
    audit = qos_audit(driver)
    errors = [e for b in audit.values() for e in b["errors"]]
    books = audit[0]["priorities"]
    prio0 = books[0]
    prio1 = books.get(1, {"offered": 0, "dropped": 0})
    snapshot = binary.qos_ports[0].snapshot()
    return {
        "variant": "pfc-on" if pfc else "pfc-off",
        "health": classify_qos(audit),
        "reached_eof": driver.at_eof(),
        "steps": steps,
        "tx": driver.stats.tx_packets,
        "prio0_offered": prio0["offered"],
        "prio0_dropped": prio0["dropped"],
        "prio1_offered": prio1["offered"],
        "prio1_dropped": prio1["dropped"],
        "pause_events": prio0["pause_events"],
        "pause_iterations": prio0["pause_iterations"],
        "headroom_hwm": snapshot["headroom.hwm"],
        "source_throttled": round(trace.source_throttled, 1),
        "audit_errors": errors,
    }


def _oversubscribed_trace(ratio: float) -> OversubscribedTrace:
    per_prio = ratio * CAPACITY / 2.0
    return OversubscribedTrace(
        rates={0: per_prio, 1: per_prio},
        limit=RUN_PACKETS,
        spec=TraceSpec(seed=23),
    )


def _incast_trace() -> IncastBurstTrace:
    return IncastBurstTrace(
        senders=8, burst_len=4, period=4, priority=0,
        background_rate=4.0, background_priority=1,
        limit=RUN_PACKETS, spec=TraceSpec(seed=23),
    )


def run(scale=None, qos: Optional[QosConfig] = None) -> QosIncastResult:
    """The full sweep: oversubscription grid plus the incast scenario.

    ``scale`` is accepted for the common experiment protocol but unused:
    congestion cells are sized by packet count and service rate, not by
    the throughput-measurement grid.
    """
    result = QosIncastResult()
    for ratio in OFFERED_RATIOS:
        for pfc in (False, True):
            record = _run_cell(_oversubscribed_trace(ratio), pfc, qos)
            record["scenario"] = "oversubscribed"
            record["offered_ratio"] = ratio
            result.records.append(record)
    for pfc in (False, True):
        # The tight carving: the incast transient must overrun the
        # reserved+shared quota so the shared headroom pool is what
        # saves (or, without PFC, fails to save) priority 0.
        record = _run_cell(_incast_trace(), pfc, qos or tight_qos())
        record["scenario"] = "incast"
        record["offered_ratio"] = None
        result.records.append(record)
    return result


def run_incast(qos: Optional[QosConfig] = None) -> QosIncastResult:
    """Just the incast pair -- the CI qos-smoke entry point."""
    result = QosIncastResult()
    for pfc in (False, True):
        record = _run_cell(_incast_trace(), pfc, qos or tight_qos())
        record["scenario"] = "incast"
        record["offered_ratio"] = None
        result.records.append(record)
    return result


def check(result: QosIncastResult) -> None:
    """The robustness claims, asserted.

    1. every run's buffer books balance (the audit found no violation)
       and every run reaches EOF (backpressure never deadlocks);
    2. in every congested cell, PFC-on loses no priority-0 frames;
    3. wherever the PFC-off baseline dropped priority-0 frames, PFC-on
       dropped strictly fewer (bounded loss vs the baseline);
    4. undersubscribed cells stay healthy -- QoS never manufactures
       congestion that is not there.
    """
    by_key: Dict[tuple, Dict[str, Dict[str, object]]] = {}
    for record in result.records:
        key = (record["scenario"], record["offered_ratio"])
        by_key.setdefault(key, {})[record["variant"]] = record
    for record in result.records:
        assert not record["audit_errors"], (
            "audit violation in %s: %s" % (record, record["audit_errors"]))
        assert record["reached_eof"], "run never reached EOF: %s" % record
    for key, pair in by_key.items():
        on, off = pair["pfc-on"], pair["pfc-off"]
        if on["health"] == CONGESTED or off["health"] == CONGESTED:
            assert on["prio0_dropped"] == 0, (
                "PFC-on lost %d priority-0 frames at %s"
                % (on["prio0_dropped"], key))
        if off["prio0_dropped"]:
            assert on["prio0_dropped"] < off["prio0_dropped"], (
                "PFC did not bound priority-0 loss at %s" % (key,))
    for record in result.records:
        if (record["scenario"] == "oversubscribed"
                and record["offered_ratio"] < 1.0):
            assert record["health"] == "healthy", (
                "undersubscribed run classified %s" % record["health"])


def format_table(result: QosIncastResult) -> str:
    rows = []
    for record in result.records:
        ratio = record["offered_ratio"]
        label = "%s %s %s" % (
            record["scenario"],
            "x%.1f" % ratio if ratio is not None else "",
            record["variant"],
        )
        rows.append(Row(label, {
            "health": record["health"],
            "tx": float(record["tx"]),
            "p0 drops": float(record["prio0_dropped"]),
            "p1 drops": float(record["prio1_dropped"]),
            "pauses": float(record["pause_events"]),
            "hr hwm": float(record["headroom_hwm"]),
        }))
    return format_rows(
        rows,
        ("health", "tx", "p0 drops", "p1 drops", "pauses", "hr hwm"),
        header="QoS congestion sweep (service=%d pkt/iter/queue, %d packets)"
               % (SERVICE_RATE, RUN_PACKETS),
        fmt="%10.0f",
    )


if __name__ == "__main__":
    import sys

    result = run_incast() if "--incast" in sys.argv[1:] else run()
    print(format_table(result))
    check(result)
    print("\nall robustness claims hold")
