"""The common shape of every experiment's result.

Each ``repro.experiments.figNN`` module returns its own dataclass from
``run(scale)``, with fields matching the paper figure it reproduces.
Historically every consumer (``experiments/report.py``, chart helpers,
notebooks) special-cased those shapes.  :class:`ExperimentResult` is the
protocol they all share instead:

``name``
    The experiment's identifier (``"fig06"``, ``"table1"``, ...).
``params``
    Scalar/config facts about the run (fitted coefficients, sweep axes,
    the mean frame length) -- everything that is *about* the experiment
    rather than a measured sample.
``points``
    A flat list of record dicts, one per measured sample, with
    homogeneous keys per experiment (``{"variant": ..., "freq_ghz": ...,
    "gbps": ...}``).  This is the long/tidy form charting and JSON
    consumers want.
``to_json()``
    The whole result as one JSON document.

The mixin carries no dataclass fields, so the existing result
dataclasses adopt it by inheritance without changing their constructors
or field order; each implements ``_params()``/``_points()`` to flatten
its own shape.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence


class ExperimentResult:
    """Mixin giving a result dataclass the common experiment protocol."""

    #: Experiment identifier; subclasses override (instance fields win,
    #: as for AblationResult's ``name`` field).
    name: str = "experiment"

    # -- subclass hooks ---------------------------------------------------------

    def _params(self) -> Dict[str, object]:
        """Experiment-level facts (axes, fits, constants).  Override."""
        return {}

    def _points(self) -> List[Dict[str, object]]:
        """Flat per-sample records.  Override."""
        return []

    # -- the protocol -----------------------------------------------------------

    @property
    def params(self) -> Dict[str, object]:
        return self._params()

    @property
    def points(self) -> List[Dict[str, object]]:
        return self._points()

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "params": self.params, "points": self.points}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def series(self, x: str, y: str, group: str = "variant"
               ) -> Dict[str, tuple]:
        """Points pivoted to ``{group_value: (xs, ys)}`` chart series.

        Records missing any of the three keys are skipped, so mixed-shape
        point lists (fig01's summary rows next to its curve rows) pivot
        cleanly.
        """
        out: Dict[str, tuple] = {}
        for record in self.points:
            if x not in record or y not in record or group not in record:
                continue
            xs, ys = out.setdefault(str(record[group]), ([], []))
            xs.append(record[x])
            ys.append(record[y])
        return out


def series_points(
    x_name: str,
    xs: Sequence,
    columns: Dict[str, Dict[str, Sequence]],
    group: str = "variant",
) -> List[Dict[str, object]]:
    """Flatten the dominant experiment shape into point records.

    Most figures measure several *variants* over one sweep axis and store
    each metric as ``{variant: [values aligned with xs]}``.  Given
    ``columns = {"gbps": {...}, "mpps": {...}}`` this produces one record
    per (variant, x): ``{"variant": v, x_name: x, "gbps": ..., ...}``.
    """
    if not columns:
        return []
    first = next(iter(columns.values()))
    points: List[Dict[str, object]] = []
    for variant in first:
        for index, x in enumerate(xs):
            record: Dict[str, object] = {group: variant, x_name: x}
            for column_name, per_variant in columns.items():
                values = per_variant.get(variant)
                if values is not None and index < len(values):
                    record[column_name] = values[index]
            points.append(record)
    return points
