"""Figure 10: multicore NFs -- NAT @2.3 GHz, 1-4 cores, RSS.

Claims: PacketMill's per-core gains carry over to multicore runs; both
systems scale with cores; PacketMill reaches the ~100-Gbps region with
fewer cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.nfs import nat_router
from repro.core.options import BuildOptions
from repro.exec.sweep import PointSpec, run_points
from repro.experiments.common import (
    DUT_FREQ_GHZ,
    QUICK,
    Row,
    Scale,
    format_rows,
)
from repro.experiments.result import ExperimentResult, series_points

VARIANTS = {
    "Vanilla": BuildOptions.vanilla(),
    "PacketMill": BuildOptions.packetmill(),
}

CORE_COUNTS = (1, 2, 3, 4)


@dataclass
class Fig10Result(ExperimentResult):
    core_counts: List[int]
    gbps: Dict[str, List[float]]
    bound_by: Dict[str, List[str]]

    name = "fig10"

    def _params(self):
        return {"core_counts": list(self.core_counts)}

    def _points(self):
        return series_points("cores", self.core_counts, {
            "gbps": self.gbps,
            "bound_by": self.bound_by,
        })


def run(scale: Scale = QUICK) -> Fig10Result:
    gbps: Dict[str, List[float]] = {n: [] for n in VARIANTS}
    bound: Dict[str, List[str]] = {n: [] for n in VARIANTS}
    config = nat_router()
    specs = [
        PointSpec(config, options, DUT_FREQ_GHZ,
                  max(60, scale.batches // 2), scale.warmup_batches // 2,
                  n_cores=cores)
        for options in VARIANTS.values()
        for cores in CORE_COUNTS
    ]
    points = iter(run_points(specs))
    for name in VARIANTS:
        for cores in CORE_COUNTS:
            point = next(points)
            gbps[name].append(point.gbps)
            bound[name].append(point.bound_by)
    return Fig10Result(list(CORE_COUNTS), gbps, bound)


def check(result: Fig10Result) -> None:
    for name in VARIANTS:
        series = result.gbps[name]
        # Throughput scales with cores (allowing ceiling flattening).
        for i in range(1, len(series)):
            assert series[i] >= series[i - 1] * 0.98
        # At least 2.5x from 1 to 4 cores unless a ceiling binds.
        if result.bound_by[name][-1] == "cpu":
            assert series[-1] > series[0] * 2.5
    for i, cores in enumerate(result.core_counts):
        vanilla = result.gbps["Vanilla"][i]
        packetmill = result.gbps["PacketMill"][i]
        if result.bound_by["PacketMill"][i] == "cpu":
            gain = (packetmill - vanilla) / vanilla
            assert gain > 0.10, "gain %.1f%% at %d cores" % (gain * 100, cores)
        else:
            assert packetmill >= vanilla * 0.999
    # PacketMill approaches the 100-Gbps region by 4 cores.
    assert result.gbps["PacketMill"][-1] > 85.0


def format_table(result: Fig10Result) -> str:
    rows = []
    for name in VARIANTS:
        for i, cores in enumerate(result.core_counts):
            rows.append(
                Row(
                    label=name,
                    values={
                        "cores": cores,
                        "gbps": result.gbps[name][i],
                        "bound": result.bound_by[name][i],
                    },
                )
            )
    return format_rows(
        rows,
        ["cores", "gbps", "bound"],
        header="Figure 10: NAT, multicore @%.1f GHz" % DUT_FREQ_GHZ,
    )


if __name__ == "__main__":
    result = run()
    print(format_table(result))
    check(result)
