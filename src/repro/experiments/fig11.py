"""Figure 11: framework comparison, forwarding @1.2 GHz, size sweep.

(a) DPDK applications: FastClick (Copying), l2fwd, PacketMill (X-Change),
l2fwd-xchg.  (b) Modular frameworks: VPP, FastClick, FastClick-Light
(Overlaying), BESS, PacketMill.  Claims: l2fwd-xchg beats l2fwd by up to
~59%; PacketMill outruns l2fwd despite being a full modular framework;
BESS ~ FastClick-Light > FastClick ~ VPP; PacketMill best overall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.exec.sweep import FrameworkPointSpec, run_points
from repro.experiments.common import QUICK, Row, Scale, format_rows
from repro.experiments.result import ExperimentResult, series_points

FREQ_GHZ = 1.2

FIG11A = ("FastClick (Copying)", "l2fwd", "PacketMill (X-Change)", "l2fwd-xchg")
FIG11B = (
    "VPP",
    "FastClick (Copying)",
    "FastClick-Light (Overlaying)",
    "BESS",
    "PacketMill (X-Change)",
)


@dataclass
class Fig11Result(ExperimentResult):
    sizes: List[int]
    gbps: Dict[str, List[float]]

    name = "fig11"

    def _params(self):
        return {"sizes": list(self.sizes)}

    def _points(self):
        return series_points("size", self.sizes, {"gbps": self.gbps})


def run(scale: Scale = QUICK) -> Fig11Result:
    sizes = list(scale.packet_sizes)
    names = sorted(set(FIG11A) | set(FIG11B))
    gbps: Dict[str, List[float]] = {n: [] for n in names}
    specs = [
        FrameworkPointSpec(name, size, FREQ_GHZ,
                           scale.batches, scale.warmup_batches, seed=3)
        for size in sizes
        for name in names
    ]
    points = iter(run_points(specs))
    for size in sizes:
        for name in names:
            gbps[name].append(next(points).gbps)
    return Fig11Result(sizes, gbps)


def check(result: Fig11Result) -> None:
    for i, size in enumerate(result.sizes):
        at = {name: series[i] for name, series in result.gbps.items()}
        capped = at["l2fwd-xchg"] > 95.0  # ceilings compress gaps at line rate
        if not capped:
            # (a) X-Change lifts both the framework and the sample app.
            assert at["PacketMill (X-Change)"] > at["FastClick (Copying)"]
            assert at["l2fwd-xchg"] > at["l2fwd"]
            # PacketMill keeps up with (or beats) the minimal l2fwd.
            assert at["PacketMill (X-Change)"] > at["l2fwd"] * 0.95
            # (b) overlaying frameworks beat copying frameworks.
            assert at["BESS"] > at["FastClick (Copying)"] * 0.99
            assert at["FastClick-Light (Overlaying)"] > at["FastClick (Copying)"] * 0.99
            # VPP performs like copying-based FastClick.
            ratio = at["VPP"] / at["FastClick (Copying)"]
            assert 0.7 < ratio < 1.3
            # PacketMill is the best modular framework.
            for other in FIG11B[:-1]:
                assert at["PacketMill (X-Change)"] >= at[other]
    # l2fwd-xchg's gain over l2fwd reaches tens of percent at small sizes.
    small_gain = result.gbps["l2fwd-xchg"][0] / result.gbps["l2fwd"][0]
    assert small_gain > 1.25, "l2fwd-xchg gain only %.2fx" % small_gain


def format_table(result: Fig11Result) -> str:
    rows = []
    for name, series in sorted(result.gbps.items()):
        for i, size in enumerate(result.sizes):
            rows.append(Row(label=name, values={"size_B": size, "gbps": series[i]}))
    return format_rows(
        rows,
        ["size_B", "gbps"],
        header="Figure 11: frameworks, forwarding @%.1f GHz" % FREQ_GHZ,
    )


if __name__ == "__main__":
    result = run()
    print(format_table(result))
    check(result)
