"""Experiment reproductions: one module per paper figure/table.

Every module exposes:

- ``run(scale)`` -> a result object (rows of measurements),
- ``check(result)`` -> asserts the paper's qualitative claims hold,
- ``format_table(result)`` -> the printable rows the paper reports.

``scale`` is a :class:`repro.experiments.common.Scale`: ``QUICK`` keeps
benchmark runtimes sane; ``FULL`` sweeps the paper's full grids.
"""

from repro.experiments.common import FULL, QUICK, Scale

__all__ = ["FULL", "QUICK", "Scale"]
