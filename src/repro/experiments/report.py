"""Regenerate a full paper-reproduction report from live measurements.

Runs every experiment module (``python -m repro.experiments.report``),
checks its claims, and writes a single markdown report with the measured
tables -- the data behind EXPERIMENTS.md, reproducible in one command.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Optional

from repro.experiments import (
    fig01, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11,
    qos_incast, rss_imbalance, table1,
)
from repro.experiments.common import QUICK, Scale

MODULES = [
    ("Table 1", table1),
    ("Figure 1", fig01),
    ("Figure 4", fig04),
    ("Figure 5", fig05),
    ("Figure 6", fig06),
    ("Figure 7", fig07),
    ("Figure 8", fig08),
    ("Figure 9", fig09),
    ("Figure 10", fig10),
    ("Figure 11", fig11),
    ("QoS congestion", qos_incast),
    ("RSS imbalance", rss_imbalance),
]


def generate(scale: Scale = QUICK, out_path: Optional[str] = None,
             only: Optional[str] = None, log=print,
             json_path: Optional[str] = None) -> str:
    """Run the experiments and return (and optionally write) the report.

    ``json_path`` additionally dumps every result through the common
    :class:`repro.experiments.result.ExperimentResult` protocol -- one
    JSON array of ``{name, params, points}`` documents -- so downstream
    plotting never needs the per-figure dataclass shapes.
    """
    sections = [
        "# PacketMill reproduction report",
        "",
        "Scale: %s.  Every section is one paper table/figure; claims are"
        " machine-checked by the module's `check()`." % scale.name,
    ]
    documents = []
    for label, module in MODULES:
        if only and only not in module.__name__:
            continue
        log("running %s (%s)..." % (label, module.__name__))
        started = time.time()
        result = module.run(scale)
        module.check(result)
        elapsed = time.time() - started
        documents.append(result.to_dict())
        sections.append("")
        sections.append("## %s  (checked OK, %.0f s)" % (label, elapsed))
        sections.append("")
        sections.append("```")
        sections.append(module.format_table(result))
        sections.append("```")
    report = "\n".join(sections)
    if out_path:
        with open(out_path, "w") as handle:
            handle.write(report + "\n")
        log("wrote %s" % out_path)
    if json_path:
        with open(json_path, "w") as handle:
            json.dump(documents, handle, indent=2, sort_keys=True)
            handle.write("\n")
        log("wrote %s" % json_path)
    return report


if __name__ == "__main__":
    only = sys.argv[1] if len(sys.argv) > 1 else None
    generate(out_path="reproduction_report.md", only=only)
