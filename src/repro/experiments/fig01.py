"""Figure 1: p99 latency vs. throughput, router @2.3 GHz, one core.

Vanilla FastClick vs. full PacketMill under an open-loop offered-load
sweep with the campus trace.  The paper's claims: PacketMill shifts the
knee right (up to ~70% more throughput) and cuts tail latency (up to
~28%) at loads both can sustain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.nfs import router
from repro.core.options import BuildOptions
from repro.exec.sweep import PointSpec, run_points
from repro.experiments.common import (
    DUT_FREQ_GHZ,
    QUICK,
    Row,
    Scale,
    format_rows,
)
from repro.experiments.result import ExperimentResult
from repro.perf.loadlatency import LatencyResult, LoadLatencySimulator

VARIANTS = {
    "Vanilla": BuildOptions.vanilla(),
    "PacketMill": BuildOptions.packetmill(),
}

#: Offered loads as fractions of the *fastest* variant's capacity.
LOAD_FRACTIONS = (0.2, 0.4, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0, 1.05)


@dataclass
class Fig01Result(ExperimentResult):
    service_ns: Dict[str, float]
    capacity_gbps: Dict[str, float]
    mean_frame: float
    curves: Dict[str, List[LatencyResult]]

    name = "fig01"

    def _params(self):
        return {
            "mean_frame": self.mean_frame,
            "service_ns": dict(self.service_ns),
            "capacity_gbps": dict(self.capacity_gbps),
        }

    def _points(self):
        points = []
        for variant, curve in self.curves.items():
            for sample in curve:
                points.append({
                    "variant": variant,
                    "offered_pps": sample.offered_pps,
                    "achieved_pps": sample.achieved_pps,
                    "drop_rate": sample.drop_rate,
                    "mean_us": sample.mean_us,
                    "p50_us": sample.p50_us,
                    "p99_us": sample.p99_us,
                })
        return points


def run(scale: Scale = QUICK) -> Fig01Result:
    service_ns = {}
    capacity_gbps = {}
    mean_frame = 981.0
    specs = [
        PointSpec(router(), options, DUT_FREQ_GHZ,
                  scale.batches, scale.warmup_batches)
        for options in VARIANTS.values()
    ]
    for name, point in zip(VARIANTS, run_points(specs)):
        service_ns[name] = 1e9 / point.pps
        capacity_gbps[name] = point.gbps
        mean_frame = point.mean_frame_len
    top_pps = max(1e9 / ns for ns in service_ns.values())
    curves = {}
    for name in VARIANTS:
        sim = LoadLatencySimulator(service_ns[name], ring_size=1024)
        loads = [top_pps * f for f in LOAD_FRACTIONS]
        curves[name] = sim.sweep(loads, n_packets=scale.latency_packets)
    return Fig01Result(service_ns, capacity_gbps, mean_frame, curves)


def check(result: Fig01Result) -> None:
    vanilla = result.capacity_gbps["Vanilla"]
    packetmill = result.capacity_gbps["PacketMill"]
    gain = (packetmill - vanilla) / vanilla
    assert gain > 0.15, "PacketMill throughput gain too small: %.1f%%" % (gain * 100)
    # At every load the vanilla system can sustain, PacketMill's p99 is
    # no worse; near vanilla's saturation it is strictly better.
    for v_res, p_res in zip(result.curves["Vanilla"], result.curves["PacketMill"]):
        if not v_res.saturated:
            assert p_res.p99_us <= v_res.p99_us * 1.05
    v_knee = [r for r in result.curves["Vanilla"] if r.saturated]
    p_knee = [r for r in result.curves["PacketMill"] if r.saturated]
    assert len(p_knee) <= len(v_knee), "PacketMill's knee did not shift right"


def format_table(result: Fig01Result) -> str:
    rows = []
    frame_bits = result.mean_frame * 8
    for name, curve in result.curves.items():
        for res in curve:
            rows.append(
                Row(
                    label=name,
                    values={
                        "offered_gbps": res.offered_pps * frame_bits / 1e9,
                        "achieved_gbps": res.achieved_pps * frame_bits / 1e9,
                        "p99_us": res.p99_us,
                        "drop_%": res.drop_rate * 100,
                    },
                )
            )
    return format_rows(
        rows,
        ["offered_gbps", "achieved_gbps", "p99_us", "drop_%"],
        header="Figure 1: 99th-percentile latency vs throughput (router @%.1f GHz)"
        % DUT_FREQ_GHZ,
    )


if __name__ == "__main__":
    result = run()
    print(format_table(result))
    check(result)
