"""Figure 8: a more compute-intensive NF -- IDS + VLAN + router.

Throughput and median latency vs. frequency, Vanilla vs. PacketMill.
Claims: gains persist for CPU-heavier NFs (~20% throughput, ~17%
latency at the nominal frequency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.nfs import ids_router
from repro.core.options import BuildOptions
from repro.exec.sweep import PointSpec, run_points
from repro.experiments.common import QUICK, Row, Scale, format_rows
from repro.experiments.result import ExperimentResult, series_points
from repro.perf.loadlatency import LoadLatencySimulator

VARIANTS = {
    "Vanilla": BuildOptions.vanilla(),
    "PacketMill": BuildOptions.packetmill(),
}


@dataclass
class Fig08Result(ExperimentResult):
    frequencies: List[float]
    gbps: Dict[str, List[float]]
    median_latency_us: Dict[str, List[float]]

    name = "fig08"

    def _params(self):
        return {"frequencies": list(self.frequencies)}

    def _points(self):
        return series_points("freq_ghz", self.frequencies, {
            "gbps": self.gbps,
            "median_latency_us": self.median_latency_us,
        })


def run(scale: Scale = QUICK) -> Fig08Result:
    freqs = list(scale.frequencies)
    gbps: Dict[str, List[float]] = {}
    latency: Dict[str, List[float]] = {}
    config = ids_router()
    specs = [
        PointSpec(config, options, freq, scale.batches, scale.warmup_batches)
        for options in VARIANTS.values()
        for freq in freqs
    ]
    points = iter(run_points(specs))
    for name in VARIANTS:
        g_series, l_series = [], []
        for freq in freqs:
            point = next(points)
            g_series.append(point.gbps)
            sim = LoadLatencySimulator(1e9 / point.pps, ring_size=1024)
            res = sim.run(point.pps * 1.05, n_packets=scale.latency_packets // 2)
            l_series.append(res.p50_us)
        gbps[name] = g_series
        latency[name] = l_series
    return Fig08Result(freqs, gbps, latency)


def check(result: Fig08Result) -> None:
    for i, freq in enumerate(result.frequencies):
        vanilla = result.gbps["Vanilla"][i]
        packetmill = result.gbps["PacketMill"][i]
        gain = (packetmill - vanilla) / vanilla
        assert gain > 0.08, "throughput gain %.1f%% at %.1f GHz" % (gain * 100, freq)
        lat_cut = 1 - result.median_latency_us["PacketMill"][i] / result.median_latency_us["Vanilla"][i]
        assert lat_cut > 0.05, "latency cut %.1f%% at %.1f GHz" % (lat_cut * 100, freq)


def format_table(result: Fig08Result) -> str:
    rows = []
    for name in VARIANTS:
        for i, freq in enumerate(result.frequencies):
            rows.append(
                Row(
                    label=name,
                    values={
                        "freq_GHz": freq,
                        "gbps": result.gbps[name][i],
                        "p50_us": result.median_latency_us[name][i],
                    },
                )
            )
    return format_rows(
        rows,
        ["freq_GHz", "gbps", "p50_us"],
        header="Figure 8: IDS+VLAN+router, frequency sweep",
    )


if __name__ == "__main__":
    result = run()
    print(format_table(result))
    check(result)
