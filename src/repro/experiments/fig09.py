"""Figure 9: memory-footprint slice of the WorkPackage surface.

WorkPackage with N = 1 access/packet and W = 4, sweeping the accessed
memory S from sub-MB to 20 MB @2.3 GHz.  Reported per the paper's three
stacked panels: throughput, LLC-load-miss percentage, and LLC loads
(perf's per-100-ms view).  Claims: LLC loads saturate once the footprint
escapes L2 (paper eyeballs ~3 MB); the miss ratio rises once the
footprint exceeds the effective LLC share (~14 MB); throughput is
inversely related to LLC loads; PacketMill shows more loads *per window*
simply because it processes more packets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.nfs import workpackage_forwarder
from repro.core.options import BuildOptions
from repro.exec.sweep import PointSpec, run_points
from repro.experiments.common import (
    DUT_FREQ_GHZ,
    QUICK,
    Row,
    Scale,
    format_rows,
)
from repro.experiments.result import ExperimentResult, series_points

N_ACCESSES = 1
W_NUMBERS = 4

VARIANTS = {
    "Vanilla": BuildOptions.vanilla(),
    "PacketMill": BuildOptions.packetmill(),
}


@dataclass
class Fig09Result(ExperimentResult):
    footprints_mb: List[float]
    gbps: Dict[str, List[float]]
    cpu_mpps: Dict[str, List[float]]
    miss_pct: Dict[str, List[float]]
    kloads_100ms: Dict[str, List[float]]

    name = "fig09"

    def _params(self):
        return {"footprints_mb": list(self.footprints_mb)}

    def _points(self):
        return series_points("footprint_mb", self.footprints_mb, {
            "gbps": self.gbps,
            "cpu_mpps": self.cpu_mpps,
            "miss_pct": self.miss_pct,
            "kloads_100ms": self.kloads_100ms,
        })


def run(scale: Scale = QUICK) -> Fig09Result:
    footprints = list(scale.footprints_mb)
    if footprints[-1] < 20.0:
        footprints = footprints + [20.0]
    gbps: Dict[str, List[float]] = {n: [] for n in VARIANTS}
    cpu_mpps: Dict[str, List[float]] = {n: [] for n in VARIANTS}
    miss: Dict[str, List[float]] = {n: [] for n in VARIANTS}
    loads: Dict[str, List[float]] = {n: [] for n in VARIANTS}
    specs = [
        PointSpec(workpackage_forwarder(s_mb, N_ACCESSES, W_NUMBERS), options,
                  DUT_FREQ_GHZ, scale.batches, scale.warmup_batches)
        for s_mb in footprints
        for options in VARIANTS.values()
    ]
    points = iter(run_points(specs))
    for s_mb in footprints:
        for name in VARIANTS:
            point = next(points)
            gbps[name].append(point.gbps)
            cpu_mpps[name].append(point.cpu_pps / 1e6)
            counters = point.run.counters
            llc_loads = counters["llc_loads"]
            miss_ratio = counters["llc_misses"] / llc_loads if llc_loads else 0.0
            miss[name].append(miss_ratio * 100)
            loads[name].append(point.counter_per_window("llc_loads") / 1e3)
    return Fig09Result(footprints, gbps, cpu_mpps, miss, loads)


def check(result: Fig09Result) -> None:
    foot = result.footprints_mb
    for name in VARIANTS:
        loads = result.kloads_100ms[name]
        cpu = result.cpu_mpps[name]
        miss = result.miss_pct[name]
        # The sustainable CPU rate decreases as the footprint grows
        # (throughput in the figure, before physical ceilings clamp it).
        assert cpu[0] > cpu[-1] * 1.05
        # LLC loads grow then saturate: the last doubling of footprint
        # grows loads by far less than the first doubling.
        first_growth = loads[1] - loads[0]
        last_growth = loads[-1] - loads[-2]
        assert last_growth < max(first_growth, 1.0) * 1.5
        # The miss ratio rises once the footprint exceeds the effective
        # LLC share (~14 MB).
        at_8 = min(m for s, m in zip(foot, miss) if s <= 8.0)
        at_20 = max(m for s, m in zip(foot, miss) if s >= 16.0)
        assert at_20 > at_8 + 5.0, "%s: no miss rise past the threshold" % name
    # PacketMill (static graph) has no dispatch-miss noise: its misses are
    # the WorkPackage's own, near zero below the threshold.
    pm_small = [m for s, m in zip(foot, result.miss_pct["PacketMill"]) if s <= 8.0]
    assert max(pm_small) < 2.0, "misses before the LLC threshold: %s" % pm_small
    # Once the WorkPackage's own loads dominate (S >= 2 MB), PacketMill
    # shows at least comparable loads per window -- it processes more
    # packets -- and it always delivers more throughput.  (At tiny S,
    # Vanilla's count is inflated by dynamic-dispatch loads instead.)
    for i in range(len(foot)):
        if foot[i] >= 2.0:
            assert result.kloads_100ms["PacketMill"][i] >= result.kloads_100ms["Vanilla"][i] * 0.85
        assert result.gbps["PacketMill"][i] > result.gbps["Vanilla"][i]


def format_table(result: Fig09Result) -> str:
    rows = []
    for name in VARIANTS:
        for i, s_mb in enumerate(result.footprints_mb):
            rows.append(
                Row(
                    label=name,
                    values={
                        "S_MB": s_mb,
                        "gbps": result.gbps[name][i],
                        "cpu_mpps": result.cpu_mpps[name][i],
                        "miss_%": result.miss_pct[name][i],
                        "kloads/100ms": result.kloads_100ms[name][i],
                    },
                )
            )
    return format_rows(
        rows,
        ["S_MB", "gbps", "cpu_mpps", "miss_%", "kloads/100ms"],
        header="Figure 9: memory-footprint slice (N=1, W=4) @%.1f GHz" % DUT_FREQ_GHZ,
    )


if __name__ == "__main__":
    result = run()
    print(format_table(result))
    check(result)
