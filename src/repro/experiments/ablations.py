"""Ablations of the design choices DESIGN.md calls out.

Not paper figures -- these isolate single knobs of the system:

- ``ddio_ways``: the paper tunes ``IIO LLC WAYS`` to 8 set bits so DDIO
  does not bottleneck; sweep the way quota and watch LLC behaviour.
- ``burst_size``: the RX burst amortizes poll/doorbell overheads and
  bounds X-Change's metadata working set.
- ``xchg_meta_buffers``: §3.1's "limited number of metadata buffers
  (e.g., 32)" claim -- too few hurts nothing here (they only get warmer),
  too many cools the working set.
- ``driver_models``: TinyNF vs. X-Change vs. vectorized classic DPDK.
- ``pgo``: the §5 future-work item stacked on top of PacketMill.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace
from typing import Dict, List

from repro.core.nfs import forwarder
from repro.core.options import BuildOptions, MetadataModel
from repro.dpdk.xchg_api import fastclick_conversions
from repro.exec import cache as exec_cache
from repro.exec.sweep import PointSpec, TraceKey, run_points
from repro.experiments.result import ExperimentResult
from repro.hw.params import MachineParams
from repro.net.trace import TraceSpec

FRAME = 1024
FREQ = 2.3
BATCHES = 160
WARMUP = 80

#: Every ablation replays the same fixed-size trace on every port/core.
TRACE = TraceKey("fixed", FRAME, seed=7, per_port=False)


@dataclass
class AblationResult(ExperimentResult):
    # The mixin's ``name`` class attribute reads as an inherited default
    # here, so ``rows`` needs one too to keep the field order legal.
    name: str
    rows: List[Dict[str, object]] = field(default_factory=list)

    def _points(self):
        return [dict(row) for row in self.rows]

    def column(self, key):
        return [row[key] for row in self.rows]

    def format_table(self) -> str:
        if not self.rows:
            return self.name
        columns = list(self.rows[0])
        lines = ["Ablation: %s" % self.name,
                 "".join("%16s" % c for c in columns)]
        for row in self.rows:
            cells = []
            for column in columns:
                value = row[column]
                cells.append("%16s" % (("%.2f" % value) if isinstance(value, float) else value))
            lines.append("".join(cells))
        return "\n".join(lines)


def ddio_ways() -> AblationResult:
    """LLC I/O way quota: 1 way starves DMA locality; 8 (the paper's
    setting) keeps packet data cache-resident."""
    way_counts = (1, 2, 4, 8)
    specs = [
        PointSpec(forwarder(), BuildOptions.metadata(MetadataModel.COPYING),
                  FREQ, BATCHES, WARMUP, trace=TRACE,
                  params_overrides=(("ddio_ways", ways),))
        for ways in way_counts
    ]
    rows = []
    for ways, point in zip(way_counts, run_points(specs)):
        rows.append({
            "ddio_ways": ways,
            "cpu_mpps": point.cpu_pps / 1e6,
            "llc_miss_per_pkt": point.run.counters["llc_misses"] / point.run.packets,
        })
    return AblationResult("ddio_ways", rows)


def check_ddio_ways(result: AblationResult) -> None:
    misses = result.column("llc_miss_per_pkt")
    assert misses[0] >= misses[-1], "more DDIO ways should not add misses"
    mpps = result.column("cpu_mpps")
    assert mpps[-1] >= mpps[0] * 0.99, "more DDIO ways should not hurt"


def burst_size() -> AblationResult:
    """Per-burst overheads amortize with larger bursts, with diminishing
    returns once the poll/doorbell share is negligible."""
    bursts = (4, 8, 16, 32, 64, 128)
    specs = [
        PointSpec(forwarder(burst=burst),
                  dc_replace(BuildOptions.packetmill(), burst=burst),
                  FREQ, BATCHES, WARMUP, trace=TRACE, burst=burst)
        for burst in bursts
    ]
    rows = [
        {"burst": burst, "cpu_mpps": point.cpu_pps / 1e6}
        for burst, point in zip(bursts, run_points(specs))
    ]
    return AblationResult("burst_size", rows)


def check_burst_size(result: AblationResult) -> None:
    mpps = result.column("cpu_mpps")
    assert mpps[2] > mpps[0], "bursting should amortize per-burst overhead"
    # Diminishing returns: the last doubling buys less than the first.
    first_gain = mpps[1] - mpps[0]
    last_gain = mpps[-1] - mpps[-2]
    assert last_gain < max(first_gain, 0.02)


def xchg_meta_buffers() -> AblationResult:
    """The metadata working set: a handful of buffers stays L1-warm; a
    mempool-sized population cycles through the cache like rte_mbufs."""
    from repro.dpdk.metadata import XChangeModel
    from repro.dpdk.nic import Nic
    from repro.dpdk.pmd import MlxPmd
    from repro.compiler.structlayout import LayoutRegistry
    from repro.hw.cpu import CpuCore
    from repro.hw.layout import AddressSpace
    from repro.hw.memory import MemorySystem

    rows = []
    for count in (8, 32, 64, 1024, 8192):
        params = MachineParams(freq_ghz=FREQ)
        mem = MemorySystem(params)
        cpu = CpuCore(params, mem)
        space = AddressSpace(seed=0)
        model = XChangeModel(conversions=fastclick_conversions(), meta_buffers=count)
        model.setup(space, params)
        registry = LayoutRegistry()
        model.register_layouts(registry)
        nic = Nic(params, mem, space,
                  exec_cache.trace_from_spec("fixed", FRAME, TraceSpec(seed=2)))
        pmd = MlxPmd(nic, model, cpu, registry, lto=True)
        for _ in range(60):
            pmd.tx_burst(pmd.rx_burst(32))
        cpu.reset()
        mem.reset_counters()
        n_batches = 150
        for _ in range(n_batches):
            pmd.tx_burst(pmd.rx_burst(32))
        packets = n_batches * 32
        rows.append({
            "meta_buffers": count,
            "ns_per_pkt": cpu.elapsed_ns() / packets,
            "l1_share": cpu.counters.l1_hits
            / max(1, cpu.counters.l1_hits + cpu.counters.l2_hits
                  + cpu.counters.llc_loads),
        })
    return AblationResult("xchg_meta_buffers", rows)


def check_xchg_meta_buffers(result: AblationResult) -> None:
    ns = result.column("ns_per_pkt")
    # The paper's sizing (burst + queue slack, ~32-64) is on the flat
    # optimum; a mempool-scale population is measurably worse.
    assert min(ns[:3]) <= ns[-1]
    assert ns[-1] >= ns[1] * 0.999


def driver_models() -> AblationResult:
    """TinyNF vs. X-Change vs. vectorized/scalar classic DPDK."""
    cases = [
        ("copying", BuildOptions.metadata(MetadataModel.COPYING)),
        ("copying+vec", BuildOptions(lto=True, vectorized_pmd=True)),
        ("xchange", BuildOptions.metadata(MetadataModel.XCHANGE)),
        ("tinynf", BuildOptions(metadata_model=MetadataModel.TINYNF, lto=True)),
    ]
    config = forwarder()
    specs = [
        PointSpec(config, options, FREQ, BATCHES, WARMUP, trace=TRACE)
        for _, options in cases
    ]
    rows = [
        {"model": label, "cpu_mpps": point.cpu_pps / 1e6}
        for (label, _), point in zip(cases, run_points(specs))
    ]
    return AblationResult("driver_models", rows)


def check_driver_models(result: AblationResult) -> None:
    rates = {row["model"]: row["cpu_mpps"] for row in result.rows}
    assert rates["tinynf"] >= rates["xchange"] * 0.98
    assert rates["xchange"] > rates["copying+vec"] > rates["copying"]


def pgo_stacking() -> AblationResult:
    """PGO on top of each build (the §5 'why not PGO instead' answer:
    it composes, and its margin is BOLT-class, not PacketMill-class)."""
    from repro.core.nfs import router

    cases = [
        ("vanilla", BuildOptions.vanilla()),
        ("vanilla+pgo", BuildOptions(pgo=True)),
        ("packetmill", BuildOptions.packetmill()),
        ("packetmill+pgo", dc_replace(BuildOptions.packetmill(), pgo=True)),
    ]
    config = router()
    specs = [
        PointSpec(config, options, FREQ, BATCHES, WARMUP, trace=TRACE)
        for _, options in cases
    ]
    rows = [
        {"build": label, "cpu_mpps": point.cpu_pps / 1e6}
        for (label, _), point in zip(cases, run_points(specs))
    ]
    return AblationResult("pgo_stacking", rows)


def check_pgo_stacking(result: AblationResult) -> None:
    rates = {row["build"]: row["cpu_mpps"] for row in result.rows}
    pgo_gain = rates["vanilla+pgo"] / rates["vanilla"] - 1
    pm_gain = rates["packetmill"] / rates["vanilla"] - 1
    assert 0.0 < pgo_gain < 0.10, "PGO should be a sub-ten-percent win"
    assert pm_gain > pgo_gain * 2, "PacketMill dominates PGO alone"
    assert rates["packetmill+pgo"] >= rates["packetmill"]


ALL = {
    "ddio_ways": (ddio_ways, check_ddio_ways),
    "burst_size": (burst_size, check_burst_size),
    "xchg_meta_buffers": (xchg_meta_buffers, check_xchg_meta_buffers),
    "driver_models": (driver_models, check_driver_models),
    "pgo_stacking": (pgo_stacking, check_pgo_stacking),
}


if __name__ == "__main__":
    for name, (run_fn, check_fn) in ALL.items():
        result = run_fn()
        print(result.format_table())
        check_fn(result)
        print("%s OK\n" % name)
