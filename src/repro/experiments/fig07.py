"""Figure 7: PacketMill's gains on synthetic memory/compute-intensive NFs.

A WorkPackage(S, N, W) element on the forwarding path @2.3 GHz; the
surface of throughput improvement over (S = memory footprint MB,
W = generated pseudo-random numbers), for N = 1 and N = 5 accesses per
packet.  Claims: PacketMill helps everywhere, but the gain shrinks as S,
W, or N grows (the NF becomes less I/O-bound), and N = 5 compresses both
Vanilla throughput and the improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.nfs import workpackage_forwarder
from repro.core.options import BuildOptions
from repro.exec.sweep import PointSpec, run_points
from repro.experiments.common import (
    DUT_FREQ_GHZ,
    QUICK,
    Row,
    Scale,
    format_rows,
    improvement_pct,
)
from repro.experiments.result import ExperimentResult

ACCESS_COUNTS = (1, 5)


@dataclass
class Fig07Result(ExperimentResult):
    footprints_mb: List[float]
    work_numbers: List[int]
    # (n, s_mb, w) -> (vanilla_gbps, improvement_pct)
    surface: Dict[Tuple[int, float, int], Tuple[float, float]]

    name = "fig07"

    def _params(self):
        return {
            "footprints_mb": list(self.footprints_mb),
            "work_numbers": list(self.work_numbers),
        }

    def _points(self):
        return [
            {
                "n_accesses": n,
                "footprint_mb": s_mb,
                "work": w,
                "vanilla_gbps": vanilla_gbps,
                "improvement_pct": gain_pct,
            }
            for (n, s_mb, w), (vanilla_gbps, gain_pct)
            in sorted(self.surface.items())
        ]


def run(scale: Scale = QUICK) -> Fig07Result:
    surface = {}
    grid = [
        (n, s_mb, w)
        for n in ACCESS_COUNTS
        for s_mb in scale.footprints_mb
        for w in scale.work_numbers
    ]
    specs = []
    for n, s_mb, w in grid:
        config = workpackage_forwarder(s_mb, n, w)
        specs.append(PointSpec(config, BuildOptions.vanilla(), DUT_FREQ_GHZ,
                               scale.batches, scale.warmup_batches))
        specs.append(PointSpec(config, BuildOptions.packetmill(), DUT_FREQ_GHZ,
                               scale.batches, scale.warmup_batches))
    points = iter(run_points(specs))
    for n, s_mb, w in grid:
        vanilla = next(points)
        packetmill = next(points)
        # Improvement of the CPU service rate: physical ceilings
        # (PCIe/link) would otherwise clip the surface where the
        # NF is light and PacketMill saturates the NIC.
        surface[(n, s_mb, w)] = (
            vanilla.gbps,
            improvement_pct(vanilla.cpu_pps, packetmill.cpu_pps),
        )
    return Fig07Result(list(scale.footprints_mb), list(scale.work_numbers), surface)


def check(result: Fig07Result) -> None:
    smin, smax = result.footprints_mb[0], result.footprints_mb[-1]
    wmin, wmax = result.work_numbers[0], result.work_numbers[-1]
    for n in ACCESS_COUNTS:
        # PacketMill always helps.
        for key, (vanilla_gbps, gain) in result.surface.items():
            if key[0] == n:
                assert gain > 2.0, "no gain at %s" % (key,)
        # Gains shrink along both axes (corner comparison).
        easy = result.surface[(n, smin, wmin)][1]
        hard = result.surface[(n, smax, wmax)][1]
        assert easy > hard, "gain did not shrink with S and W (N=%d)" % n
    # More accesses per packet -> lower Vanilla throughput and lower gain.
    v1, g1 = result.surface[(1, smax, wmin)]
    v5, g5 = result.surface[(5, smax, wmin)]
    assert v5 < v1
    assert g5 < g1 * 1.05


def format_table(result: Fig07Result) -> str:
    rows = []
    for (n, s_mb, w), (vanilla_gbps, gain) in sorted(result.surface.items()):
        rows.append(
            Row(
                label="N=%d S=%gMB W=%d" % (n, s_mb, w),
                values={"vanilla_gbps": vanilla_gbps, "improvement_%": gain},
            )
        )
    return format_rows(
        rows,
        ["vanilla_gbps", "improvement_%"],
        header="Figure 7: WorkPackage surface @%.1f GHz" % DUT_FREQ_GHZ,
    )


if __name__ == "__main__":
    result = run()
    print(format_table(result))
    check(result)
