"""Figure 6: packet-size sweep, router @2.3 GHz, Vanilla vs. PacketMill.

Throughput (Gbps) and packet rate (Mpps) across fixed frame sizes.
Claims: the pps improvement is consistent across sizes; Gbps climbs to
the line/PCIe ceiling with size; past ~800 B the achieved pps is set by
the physical ceilings (and therefore falls with frame size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.nfs import router
from repro.core.options import BuildOptions
from repro.exec.sweep import PointSpec, TraceKey, run_points
from repro.experiments.common import (
    DUT_FREQ_GHZ,
    QUICK,
    Row,
    Scale,
    format_rows,
)
from repro.experiments.result import ExperimentResult, series_points

VARIANTS = {
    "Vanilla": BuildOptions.vanilla(),
    "PacketMill": BuildOptions.packetmill(),
}


@dataclass
class Fig06Result(ExperimentResult):
    sizes: List[int]
    gbps: Dict[str, List[float]]
    mpps: Dict[str, List[float]]
    bound_by: Dict[str, List[str]]

    name = "fig06"

    def _params(self):
        return {"sizes": list(self.sizes)}

    def _points(self):
        return series_points("size", self.sizes, {
            "gbps": self.gbps,
            "mpps": self.mpps,
            "bound_by": self.bound_by,
        })


def run(scale: Scale = QUICK) -> Fig06Result:
    sizes = list(scale.packet_sizes)
    gbps: Dict[str, List[float]] = {n: [] for n in VARIANTS}
    mpps: Dict[str, List[float]] = {n: [] for n in VARIANTS}
    bound: Dict[str, List[str]] = {n: [] for n in VARIANTS}
    config = router()
    specs = [
        PointSpec(config, options, DUT_FREQ_GHZ,
                  scale.batches, scale.warmup_batches,
                  trace=TraceKey("fixed", size))
        for size in sizes
        for options in VARIANTS.values()
    ]
    points = iter(run_points(specs))
    for size in sizes:
        for name in VARIANTS:
            point = next(points)
            gbps[name].append(point.gbps)
            mpps[name].append(point.mpps)
            bound[name].append(point.bound_by)
    return Fig06Result(sizes, gbps, mpps, bound)


def check(result: Fig06Result) -> None:
    for i, size in enumerate(result.sizes):
        vanilla_pps = result.mpps["Vanilla"][i]
        pm_pps = result.mpps["PacketMill"][i]
        if result.bound_by["PacketMill"][i] == "cpu":
            # CPU-bound region: consistent pps gain across sizes.
            gain = pm_pps / vanilla_pps
            assert 1.1 < gain < 2.2, "gain %.2f at %d B" % (gain, size)
        else:
            assert pm_pps >= vanilla_pps * 0.999
    # Throughput grows with frame size up to the physical ceiling.
    pm_gbps = result.gbps["PacketMill"]
    assert pm_gbps[-1] > pm_gbps[0] * 3
    assert pm_gbps[-1] > 85.0, "large frames should approach line rate"
    # Once the ceiling binds, pps falls as frames grow (the paper's
    # PCIe observation past ~800 B).
    capped = [
        result.mpps["PacketMill"][i]
        for i in range(len(result.sizes))
        if result.bound_by["PacketMill"][i] != "cpu"
    ]
    assert all(a >= b for a, b in zip(capped, capped[1:]))


def format_table(result: Fig06Result) -> str:
    rows = []
    for name in VARIANTS:
        for i, size in enumerate(result.sizes):
            rows.append(
                Row(
                    label=name,
                    values={
                        "size_B": size,
                        "gbps": result.gbps[name][i],
                        "mpps": result.mpps[name][i],
                        "bound": result.bound_by[name][i],
                    },
                )
            )
    return format_rows(
        rows,
        ["size_B", "gbps", "mpps", "bound"],
        header="Figure 6: packet-size sweep, router @%.1f GHz" % DUT_FREQ_GHZ,
    )


if __name__ == "__main__":
    result = run()
    print(format_table(result))
    check(result)
