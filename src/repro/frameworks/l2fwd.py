"""The DPDK l2fwd sample application and its X-Change port (§4.6).

l2fwd is the minimal pure-DPDK forwarder: no modular framework, no
annotations -- it swaps MAC addresses directly in the mbuf's data and
retransmits.  ``l2fwd-xchg`` is the paper's modified version where "the
metadata is reduced to two simple fields (the buffer address and packet
length) instead of the 128-B rte_mbuf".
"""

from __future__ import annotations

from repro.compiler.ir import BranchHint, Compute, DataAccess, Program
from repro.compiler.lower import lower
from repro.compiler.structlayout import LayoutRegistry
from repro.compiler.runtime import Bindings, execute
from repro.core.binary import MeasuredRun
from repro.dpdk.metadata import OverlayingModel, XChangeModel
from repro.dpdk.nic import Nic
from repro.dpdk.pmd import MlxPmd
from repro.dpdk.xchg_api import minimal_conversions
from repro.hw.cpu import CpuCore
from repro.hw.layout import AddressSpace
from repro.hw.memory import MemorySystem
from repro.hw.params import MachineParams
from repro.net.trace import FixedSizeTraceGenerator, TraceSpec


def _app_program() -> Program:
    """l2fwd's per-packet main-loop body: read/patch the Ethernet header."""
    return Program(
        "l2fwd_loop",
        [
            DataAccess(0, 12, write=True),  # MAC swap
            Compute(34, note="l2fwd-loop"),
            BranchHint(0.02, note="port-check"),
        ],
    )


class L2fwdBinary:
    """A pure-DPDK forwarder bound to one core and one port."""

    def __init__(self, params: MachineParams, model, frame_len: int,
                 seed: int = 0, burst: int = 32):
        self.params = params
        self.options = None
        self.mem = MemorySystem(params, n_cores=1, seed=seed)
        self.cpu = CpuCore(params, self.mem)
        self.space = AddressSpace(seed=seed)
        self.registry = LayoutRegistry()
        self.model = model
        model.setup(self.space, params)
        model.register_layouts(self.registry)
        trace = FixedSizeTraceGenerator(frame_len, TraceSpec(seed=seed + 5))
        self.nic = Nic(params, self.mem, self.space, trace, name="l2fwd_nic")
        self.pmd = MlxPmd(self.nic, model, self.cpu, self.registry, lto=True)
        self.pmds = {0: self.pmd}
        self.burst = burst
        self._app = lower(_app_program(), self.registry)
        self._rx_packets = 0
        self._tx_packets = 0
        self._tx_bytes = 0

    # -- main loop ---------------------------------------------------------------

    def step(self) -> int:
        pkts = self.pmd.rx_burst(self.burst)
        for pkt in pkts:
            ref = pkt.mbuf
            execute(
                self.cpu,
                self._app,
                Bindings(
                    packet_meta=ref.meta_addr,
                    packet_mbuf=ref.mbuf_addr,
                    data=ref.data_addr,
                ),
            )
            pkt.ether().swap_addresses()
        sent = self.pmd.tx_burst(pkts)
        self._rx_packets += len(pkts)
        self._tx_packets += sent
        self._tx_bytes += sum(len(p) for p in pkts[:sent])
        return len(pkts)

    # -- measurement API (duck-typed to SpecializedBinary) --------------------------

    def warmup(self, batches: int = 100) -> None:
        for _ in range(batches):
            self.step()
        self.reset_measurements()

    def reset_measurements(self) -> None:
        self.cpu.reset()
        self.mem.reset_counters()
        self._rx_packets = 0
        self._tx_packets = 0
        self._tx_bytes = 0

    def run(self, batches: int) -> MeasuredRun:
        for _ in range(batches):
            self.step()
        counters = self.cpu.counters
        counters.packets += self._rx_packets
        return MeasuredRun(
            packets=self._rx_packets,
            tx_packets=self._tx_packets,
            tx_bytes=self._tx_bytes,
            drops=0,
            elapsed_ns=self.cpu.elapsed_ns(),
            instructions=self.cpu.instructions,
            total_cycles=self.cpu.total_cycles(),
            counters=counters.snapshot(),
        )

    def measure(self, batches: int = 250, warmup_batches: int = 120) -> MeasuredRun:
        self.warmup(warmup_batches)
        return self.run(batches)


def l2fwd(params: MachineParams, frame_len: int, seed: int = 0) -> L2fwdBinary:
    """Stock l2fwd: operates directly on the full rte_mbuf."""
    return L2fwdBinary(params, OverlayingModel(), frame_len, seed=seed)


def l2fwd_xchg(params: MachineParams, frame_len: int, seed: int = 0) -> L2fwdBinary:
    """l2fwd ported to X-Change with the two-field minimal metadata."""
    model = XChangeModel(conversions=minimal_conversions())
    return L2fwdBinary(params, model, frame_len, seed=seed)
