"""Baseline packet-processing frameworks for the §4.6 comparison.

Each builder returns an object :func:`repro.perf.runner.measure_throughput`
can drive.  Click-based frameworks reuse the PacketMill build pipeline
with the metadata model and batching discipline the real framework uses;
the two pure-DPDK sample applications (l2fwd, l2fwd-xchg) bypass the
modular framework entirely.
"""

from repro.frameworks.click_based import (
    bess_forwarder,
    fastclick_forwarder,
    fastclick_light_forwarder,
    packetmill_forwarder,
    vpp_forwarder,
)
from repro.frameworks.l2fwd import L2fwdBinary, l2fwd, l2fwd_xchg

FRAMEWORK_BUILDERS = {
    "FastClick (Copying)": fastclick_forwarder,
    "FastClick-Light (Overlaying)": fastclick_light_forwarder,
    "PacketMill (X-Change)": packetmill_forwarder,
    "VPP": vpp_forwarder,
    "BESS": bess_forwarder,
    "l2fwd": l2fwd,
    "l2fwd-xchg": l2fwd_xchg,
}

__all__ = [
    "FRAMEWORK_BUILDERS",
    "L2fwdBinary",
    "bess_forwarder",
    "fastclick_forwarder",
    "fastclick_light_forwarder",
    "l2fwd",
    "l2fwd_xchg",
    "packetmill_forwarder",
    "vpp_forwarder",
]
