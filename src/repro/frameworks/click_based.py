"""Click-family baselines built through the PacketMill pipeline.

Framework differences, per the paper's §2/§4.6 descriptions:

- **FastClick** -- Copying model (its default), dynamic graph, LTO on
  (every §4.6 build uses LTO so models compare at their best).
- **FastClick-Light** -- "disabling extra features and using the
  Overlaying model": lighter app path, mbuf-cast metadata.
- **BESS** -- Overlaying by design (``sn_buff`` over the mbuf), lean
  run-to-completion pipeline, so it matches FastClick-Light.
- **VPP** -- Copying+Overlaying hybrid (casts the mbuf but still copies
  fields into ``vlib_buffer_t`` for SSE-friendliness), large vectors; the
  paper measures it at Copying-level performance.
- **PacketMill** -- X-Change + all source-code optimizations + LTO.
"""

from __future__ import annotations

from typing import Optional

from repro.core.nfs import forwarder
from repro.core.options import BuildOptions, MetadataModel
from repro.core.packetmill import PacketMill
from repro.hw.params import MachineParams
from repro.net.trace import FixedSizeTraceGenerator, TraceSpec


def _trace(frame_len: int, seed: int):
    return lambda port, core: FixedSizeTraceGenerator(
        frame_len, TraceSpec(seed=seed + port)
    )


def fastclick_forwarder(params: MachineParams, frame_len: int, seed: int = 0):
    """Default FastClick: Copying model, dynamic graph."""
    options = BuildOptions.metadata(MetadataModel.COPYING)
    return PacketMill(forwarder(), options, params=params,
                      trace=_trace(frame_len, seed), seed=seed).build()


def fastclick_light_forwarder(params: MachineParams, frame_len: int, seed: int = 0):
    """FastClick with extra features disabled, Overlaying model."""
    options = BuildOptions.metadata(MetadataModel.OVERLAYING)
    return PacketMill(forwarder(), options, params=params,
                      trace=_trace(frame_len, seed), seed=seed).build()


def bess_forwarder(params: MachineParams, frame_len: int, seed: int = 0):
    """BESS: overlaying metadata, lean module pipeline (batch 32)."""
    options = BuildOptions.metadata(MetadataModel.OVERLAYING)
    return PacketMill(forwarder(), options, params=params,
                      trace=_trace(frame_len, seed), seed=seed).build()


def vpp_forwarder(params: MachineParams, frame_len: int, seed: int = 0):
    """VPP: copy-based vlib buffers, 256-packet vectors."""
    options = BuildOptions.metadata(MetadataModel.COPYING)
    return PacketMill(forwarder(burst=256), options, params=params,
                      trace=_trace(frame_len, seed), seed=seed, burst=256).build()


def packetmill_forwarder(params: MachineParams, frame_len: int, seed: int = 0,
                         options: Optional[BuildOptions] = None):
    """The full PacketMill system."""
    return PacketMill(forwarder(), options or BuildOptions.packetmill(),
                      params=params, trace=_trace(frame_len, seed), seed=seed).build()
