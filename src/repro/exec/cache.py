"""Content-keyed caches for the experiment suite.

Four layers, each bit-exact by construction:

- **Trace cache.**  Building a trace generator costs a pool of a couple
  thousand serialized frames.  The pool, the flow population, and the
  post-build RNG state are pure functions of the
  ``(kind, frame_len, TraceSpec)`` key, so the first build is snapshotted
  and later requests get a restored clone: same spec, same flows, same
  frames, same RNG state, cursor back at zero -- indistinguishable from a
  fresh construction.

- **Build cache.**  The compile half of :meth:`PacketMill.build` -- layout
  registration, IR passes, metadata reordering, lowering -- is a pure
  function of ``(config text, BuildOptions, machine params sans
  frequency)``.  The resulting :class:`LayoutRegistry` and
  ``{element: ExecProgram}`` map are immutable after the build (the
  reorder pass *replaces* registry entries, it never mutates a published
  layout, and nothing writes an ``ExecProgram`` after lowering), so they
  are shared across binaries.  Frequency is excluded from the key because
  it only scales time, never code: that is what lets a frequency sweep
  compile once.

- **Codegen cache.**  The generated-code tier's per-build artifact map
  (``{element: CompiledProgram}``) is a pure function of the same key as
  the build cache -- generated source bakes in offsets and charge
  constants, never the frequency -- so replica cores and sweep siblings
  under ``REPRO_TIER=codegen`` compile each element once per process.

- **Point cache.**  A whole measured sweep point
  (:class:`repro.exec.sweep.PointSpec` -> :class:`ThroughputPoint`) is
  deterministic in its spec, so repeated points (Table 1 reuses Fig. 4's
  3-GHz column) are measured once per process.

Hit/miss counters live in a module-level
:class:`~repro.telemetry.registry.CounterRegistry` and surface through
any :class:`~repro.click.handlers.HandlerBroker` under the virtual
``exec.cache.*`` namespace.

Environment gates (checked per call, so tests can flip them):
``REPRO_CACHE=0`` disables every layer; ``REPRO_TRACE_CACHE=0``,
``REPRO_BUILD_CACHE=0``, ``REPRO_CODEGEN_CACHE=0``, and
``REPRO_POINT_CACHE=0`` disable one.
"""

from __future__ import annotations

import os
import random
from dataclasses import fields as dataclass_fields
from typing import Dict, Optional, Tuple

from repro.net.flows import FlowSet
from repro.net.trace import CampusTraceGenerator, FixedSizeTraceGenerator, TraceSpec
from repro.telemetry.registry import CounterRegistry

#: Process-wide cache statistics (``exec.cache.*`` through handler brokers).
REGISTRY = CounterRegistry()

_TRACE_HITS = REGISTRY.counter("trace_hits")
_TRACE_MISSES = REGISTRY.counter("trace_misses")
_BUILD_HITS = REGISTRY.counter("build_hits")
_BUILD_MISSES = REGISTRY.counter("build_misses")
_POINT_HITS = REGISTRY.counter("point_hits")
_POINT_MISSES = REGISTRY.counter("point_misses")
_CODEGEN_HITS = REGISTRY.counter("codegen_hits")
_CODEGEN_MISSES = REGISTRY.counter("codegen_misses")

_OFF = ("0", "false", "off", "no")


def enabled(layer: str) -> bool:
    """Whether the ``trace`` / ``build`` / ``point`` cache layer is on."""
    if os.environ.get("REPRO_CACHE", "").lower() in _OFF:
        return False
    return os.environ.get("REPRO_%s_CACHE" % layer.upper(), "").lower() not in _OFF


# -- trace cache ---------------------------------------------------------------

#: Generator-class registry for :func:`trace_generator` keys.
TRACE_KINDS = {
    "campus": CampusTraceGenerator,
    "fixed": FixedSizeTraceGenerator,
}


class _TraceSnapshot:
    """The reusable innards of a built pooled-trace generator."""

    __slots__ = ("kind", "frame_len", "spec_fields", "rng_state",
                 "flows", "cdf", "pool", "pool_flows")

    def __init__(self, kind, frame_len, gen):
        self.kind = kind
        self.frame_len = frame_len
        spec = gen.spec
        self.spec_fields = (spec.n_flows, spec.seed, spec.pool_size,
                            tuple(spec.dst_subnets))
        self.rng_state = gen._rng.getstate()
        # Shared read-only after construction: FlowSet never mutates its
        # flow list or CDF, and _PooledTrace never rewrites its pool.
        self.flows = gen._flows._flows
        self.cdf = gen._flows._cdf
        self.pool = gen._pool
        self.pool_flows = gen._pool_flows

    def restore(self):
        """A generator bit-identical to a freshly built one."""
        cls = TRACE_KINDS[self.kind]
        gen = cls.__new__(cls)
        if self.frame_len is not None:
            gen.frame_len = self.frame_len
        n_flows, seed, pool_size, dst_subnets = self.spec_fields
        gen.spec = TraceSpec(n_flows=n_flows, seed=seed,
                             pool_size=pool_size, dst_subnets=dst_subnets)
        rng = random.Random()
        rng.setstate(self.rng_state)
        gen._rng = rng
        flows = FlowSet.__new__(FlowSet)
        flows._rng = rng
        flows._flows = self.flows
        flows._cdf = self.cdf
        gen._flows = flows
        gen._pool = self.pool
        gen._pool_flows = self.pool_flows
        gen._cursor = 0
        gen._seq = 0
        return gen


_trace_cache: Dict[tuple, _TraceSnapshot] = {}


def _trace_key(kind: str, frame_len: Optional[int], spec: TraceSpec) -> tuple:
    return (kind, frame_len, spec.n_flows, spec.seed, spec.pool_size,
            tuple(spec.dst_subnets))


def trace_from_spec(kind: str, frame_len: Optional[int], spec: TraceSpec):
    """Build (or restore) the pooled trace generator for ``spec``."""
    cls = TRACE_KINDS[kind]

    def fresh():
        if frame_len is not None:
            return cls(frame_len, spec)
        return cls(spec)

    if not enabled("trace"):
        return fresh()
    key = _trace_key(kind, frame_len, spec)
    snap = _trace_cache.get(key)
    if snap is None:
        _TRACE_MISSES.add(1)
        gen = fresh()
        _trace_cache[key] = _TraceSnapshot(kind, frame_len, gen)
        return gen
    _TRACE_HITS.add(1)
    return snap.restore()


def trace_generator(kind: str, frame_len: Optional[int] = None, seed: int = 42):
    """The common case: a default-:class:`TraceSpec` generator by seed."""
    return trace_from_spec(kind, frame_len, TraceSpec(seed=seed))


# -- build cache ---------------------------------------------------------------

_build_cache: Dict[tuple, Tuple[object, Dict[str, object]]] = {}


def _freeze(value):
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def params_signature(params) -> tuple:
    """Machine parameters as a hashable key, frequency excluded.

    Frequency scales cycle *time*, never the compiled artifacts, so the
    same compile serves a whole frequency sweep.
    """
    return tuple(
        (f.name, _freeze(getattr(params, f.name)))
        for f in dataclass_fields(params)
        if f.name != "freq_ghz"
    )


def lookup_build(config: str, options, params):
    """Cached ``(layout registry, exec programs)`` for a build, if any."""
    if not enabled("build"):
        return None
    artifacts = _build_cache.get((config, options, params_signature(params)))
    if artifacts is None:
        _BUILD_MISSES.add(1)
        return None
    _BUILD_HITS.add(1)
    return artifacts


def store_build(config: str, options, params, registry, exec_programs) -> None:
    if not enabled("build"):
        return
    _build_cache[(config, options, params_signature(params))] = (
        registry, exec_programs,
    )


# -- codegen cache -------------------------------------------------------------

_codegen_cache: Dict[tuple, Dict[str, object]] = {}


def lookup_codegen(config: str, options, params, facts=None):
    """Cached ``{element: CompiledProgram}`` map for a build, if any.

    ``facts`` is the build's ``{element: ProgramFacts}`` map (or ``None``)
    -- facts-specialized kernels charge differently, so they key
    separately; an empty map keys identically to ``None``.
    """
    if not enabled("codegen"):
        return None
    key = (config, options, params_signature(params), _facts_key(facts))
    compiled = _codegen_cache.get(key)
    if compiled is None:
        _CODEGEN_MISSES.add(1)
        return None
    _CODEGEN_HITS.add(1)
    return compiled


def store_codegen(config: str, options, params, compiled, facts=None) -> None:
    if not enabled("codegen"):
        return
    key = (config, options, params_signature(params), _facts_key(facts))
    _codegen_cache[key] = compiled


def _facts_key(facts):
    from repro.compiler.facts import facts_signature

    return facts_signature(facts)


# -- point cache ---------------------------------------------------------------

_point_cache: Dict[object, object] = {}


def point_get(spec):
    """Cached measurement for a hashable sweep point, or ``None``."""
    if not enabled("point"):
        return None
    result = _point_cache.get(spec)
    if result is None:
        _POINT_MISSES.add(1)
        return None
    _POINT_HITS.add(1)
    return result


def point_put(spec, result) -> None:
    if enabled("point") and result is not None:
        _point_cache[spec] = result


# -- lifecycle -----------------------------------------------------------------

def reset_caches() -> None:
    """Drop every cached artifact and zero the counters (tests, benches)."""
    _trace_cache.clear()
    _build_cache.clear()
    _codegen_cache.clear()
    _point_cache.clear()
    REGISTRY.reset()


def stats() -> Dict[str, float]:
    """Flat ``{counter: value}`` snapshot of the cache counters."""
    return REGISTRY.snapshot()
