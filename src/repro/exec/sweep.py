"""Deterministic parallel sweep engine.

Every experiment grid (variant x frequency x size x ...) is a list of
independent, picklable sweep points.  :class:`SweepEngine` fans the
points out over a :class:`~concurrent.futures.ProcessPoolExecutor` and
reassembles results in submission order, so an experiment's output is
byte-identical whether it ran serially or across N workers: each point
is a pure function of its spec (one fresh ``MemorySystem``/RNG universe
per point -- points never share simulator state, which is what makes the
fan-out sound).

Worker count comes from ``REPRO_JOBS`` (else the CPU count); set
``REPRO_SWEEP=serial`` (or ``jobs=1``) to force in-process execution.
Pool infrastructure failures (sandboxed environments without working
``fork``, pickling regressions) degrade to the serial path rather than
failing the experiment.

Measured points are memoized in :mod:`repro.exec.cache` by spec, so
identical points across experiments (Table 1 re-measures Fig. 4's 3-GHz
column) are simulated once per process.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.exec import cache
from repro.hw.params import MachineParams
from repro.net.rss import RssConfig
from repro.perf.runner import (
    measure_multicore,
    measure_sharded,
    measure_throughput,
)


@dataclass(frozen=True)
class TraceKey:
    """Picklable recipe for a trace factory (resolved in the worker).

    ``per_port=True`` reproduces the standard factories' decorrelation
    (``seed + port + 7*core``); ``per_port=False`` gives every queue the
    same seed (the ablations' fixed-trace setup).

    ``kind="skewed"`` builds a
    :class:`~repro.net.trace.SkewedTraceGenerator` (``n_flows`` flows,
    Zipf exponent ``skew``, or uniform when ``skew`` is ``None``).  Its
    flow population is lazy -- pure in (seed, rank) -- so it skips the
    snapshot cache entirely; construction is already cheap.
    """

    kind: str  # "campus" | "fixed" | "skewed"
    frame_len: Optional[int] = None
    seed: int = 101
    per_port: bool = True
    n_flows: Optional[int] = None
    skew: Optional[float] = None
    shift_at: Optional[int] = None
    shift_offset: Optional[int] = None

    def factory(self):
        kind, frame_len, seed = self.kind, self.frame_len, self.seed
        if kind == "skewed":
            from repro.net.trace import SkewedTraceGenerator

            n_flows, skew = self.n_flows or 1_000_000, self.skew
            per_port = self.per_port
            shift_at, shift_offset = self.shift_at, self.shift_offset

            def skewed(port, core):
                kwargs = {"n_flows": n_flows, "zipf_s": skew,
                          "seed": seed + port + 7 * core if per_port else seed,
                          "shift_at": shift_at, "shift_offset": shift_offset}
                if frame_len is not None:
                    kwargs["frame_len"] = frame_len
                return SkewedTraceGenerator(**kwargs)

            return skewed
        if self.per_port:
            return lambda port, core: cache.trace_generator(
                kind, frame_len, seed + port + 7 * core
            )
        return lambda port, core: cache.trace_generator(kind, frame_len, seed)


#: The default trace of ``build_and_measure``: campus mix, seed 101.
CAMPUS_TRACE = TraceKey("campus")


@dataclass(frozen=True)
class PointSpec:
    """One build-and-measure sweep point, picklable and hashable.

    ``execute`` replicates :func:`repro.experiments.common.build_and_measure`
    exactly: machine parameters are the defaults plus ``params_overrides``
    at ``freq_ghz``, the trace comes from ``trace`` (campus by default),
    and multi-core points (``n_cores > 1``) build the real RSS-sharded
    runtime -- one arrival stream per port, Toeplitz-steered across the
    replicas -- and measure it with :func:`measure_sharded`.
    """

    config: str
    options: BuildOptions
    freq_ghz: float
    batches: int
    warmup_batches: int
    trace: Optional[TraceKey] = None
    seed: int = 0
    n_cores: int = 1
    params_overrides: Tuple[Tuple[str, object], ...] = ()
    burst: Optional[int] = None
    rss: Optional[RssConfig] = None

    def execute(self):
        params = MachineParams(**dict(self.params_overrides)).at_frequency(
            self.freq_ghz
        )
        mill = PacketMill(
            self.config,
            self.options,
            params=params,
            trace=(self.trace or CAMPUS_TRACE).factory(),
            seed=self.seed,
            burst=self.burst,
        )
        if self.n_cores == 1:
            return measure_throughput(
                mill.build(),
                batches=self.batches,
                warmup_batches=self.warmup_batches,
            )
        return measure_sharded(
            mill.build_sharded(self.n_cores, rss=self.rss),
            batches=self.batches,
            warmup_batches=self.warmup_batches,
        )


@dataclass(frozen=True)
class FrameworkPointSpec:
    """A Fig. 11-style point: a named framework builder instead of a
    Click config through PacketMill."""

    framework: str
    frame_len: int
    freq_ghz: float
    batches: int
    warmup_batches: int
    seed: int = 3

    def execute(self):
        from repro.frameworks import FRAMEWORK_BUILDERS

        params = MachineParams().at_frequency(self.freq_ghz)
        binary = FRAMEWORK_BUILDERS[self.framework](
            params, self.frame_len, seed=self.seed
        )
        return measure_throughput(
            binary, batches=self.batches, warmup_batches=self.warmup_batches
        )


def run_point(spec):
    """Execute one sweep point (module-level, so process pools can map it)."""
    result = cache.point_get(spec)
    if result is None:
        result = spec.execute()
        cache.point_put(spec, result)
    return result


def default_jobs() -> int:
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


class SweepEngine:
    """Fan sweep points out over worker processes, results in order."""

    def __init__(self, jobs: Optional[int] = None, mode: Optional[str] = None):
        self.jobs = jobs if jobs is not None else default_jobs()
        # Explicit jobs (ctor arg or REPRO_JOBS) are taken at face value;
        # only the inferred default gets the oversubscription guard below.
        self.jobs_explicit = jobs is not None or bool(os.environ.get("REPRO_JOBS"))
        self.mode = mode or os.environ.get("REPRO_SWEEP", "auto")

    @property
    def parallel(self) -> bool:
        return self.mode != "serial" and self.jobs > 1

    def _effective_jobs(self, specs: Sequence) -> int:
        """Guard against nested oversubscription: each sharded point
        simulates ``n_cores`` replicas, so a sweep of wide points keeps
        total parallelism near ``REPRO_JOBS x n_cores <= cpu_count`` by
        dividing the inferred worker count by the widest point.  An
        explicit ``REPRO_JOBS`` (or ``jobs=``) always wins -- the
        operator asked for it.
        """
        if self.jobs_explicit:
            return self.jobs
        widest = max((getattr(spec, "n_cores", 1) for spec in specs), default=1)
        return max(1, self.jobs // max(1, widest))

    def run(self, specs: Sequence) -> List:
        specs = list(specs)
        if not self.parallel or len(specs) <= 1:
            return [run_point(spec) for spec in specs]
        jobs = self._effective_jobs(specs)
        results: List = [None] * len(specs)
        pending: List[int] = []
        for i, spec in enumerate(specs):
            cached = cache.point_get(spec)
            if cached is not None:
                results[i] = cached
            else:
                pending.append(i)
        if pending:
            try:
                with ProcessPoolExecutor(
                    max_workers=min(jobs, len(pending))
                ) as pool:
                    mapped = pool.map(run_point, [specs[i] for i in pending])
                    for i, result in zip(pending, mapped):
                        results[i] = result
            except (OSError, ImportError, pickle.PicklingError,
                    BrokenProcessPool):
                # The pool itself failed (no fork, no semaphores, a spec
                # that would not pickle): degrade to in-process execution
                # -- same results, just slower.
                pass
            for i in pending:
                if results[i] is None:
                    results[i] = run_point(specs[i])
                else:
                    cache.point_put(specs[i], results[i])
        return results


def run_points(specs: Sequence, jobs: Optional[int] = None,
               mode: Optional[str] = None) -> List:
    """One-shot convenience: ``SweepEngine(jobs, mode).run(specs)``."""
    return SweepEngine(jobs=jobs, mode=mode).run(specs)
