"""Execution infrastructure: content-keyed caches and the parallel sweep
engine the experiment suite runs on.

- :mod:`repro.exec.cache` -- build/trace/codegen/point caches with
  hit/miss counters exposed under ``exec.cache.*``.
- :mod:`repro.exec.sweep` -- picklable sweep points and the
  :class:`~repro.exec.sweep.SweepEngine` process-pool fan-out.

``repro.exec`` itself only imports the cache layer; the sweep module is
imported on demand because it pulls in the whole build pipeline
(``repro.core.packetmill``), which in turn uses the cache layer.
"""

from repro.exec import cache  # noqa: F401

__all__ = ["cache"]
