"""Core-level cost accounting.

A :class:`CpuCore` accumulates the cost of executing a compiled packet
program: instruction issue (bounded by the core's sustainable IPC),
exposed cache/branch stalls in core cycles, and uncore/memory stalls in
wall-clock nanoseconds.  From these it derives the quantities the paper
reports: time per packet, packets per second, and instructions per cycle.
"""

from __future__ import annotations

from repro.hw.memory import MemorySystem


class CpuCore:
    """One simulated core bound to a shared :class:`MemorySystem`."""

    def __init__(self, params, mem: MemorySystem, core_id: int = 0):
        self.params = params
        self.mem = mem
        self.core_id = core_id
        self.instructions = 0.0
        self.core_cycles = 0.0
        self.uncore_ns = 0.0

    # -- charging ----------------------------------------------------------------

    def charge_compute(self, instructions: float) -> None:
        """Pure ALU work: cost is issue-bandwidth-limited."""
        self.instructions += instructions
        self.core_cycles += instructions / self.params.issue_ipc

    def charge_cycles(self, cycles: float, instructions: float = 0.0) -> None:
        """Explicit stall cycles (e.g. dependency chains, fixed overheads)."""
        self.core_cycles += cycles
        self.instructions += instructions

    def charge_ns(self, ns: float) -> None:
        """Wall-clock cost in the uncore/I/O domain."""
        self.uncore_ns += ns

    def charge_branch_miss(self, count: float = 1.0) -> None:
        self.core_cycles += self.params.branch_miss_cycles * count
        self.mem.counters[self.core_id].handles.branch_misses.value += round(count)

    def mem_access(self, addr: int, size: int = 8, write: bool = False,
                   instructions: float = 1.0) -> None:
        """Issue a load/store through the cache hierarchy."""
        cycles, ns = self.mem.access(self.core_id, addr, size, write)
        self.instructions += instructions
        self.core_cycles += cycles + instructions / self.params.issue_ipc
        self.uncore_ns += ns

    def prefetch(self, addr: int, size: int = 64) -> None:
        """Issue a software prefetch (1 instruction, overlapped latency)."""
        ns = self.mem.prefetch(self.core_id, addr, size)
        self.instructions += 1
        self.core_cycles += 1 / self.params.issue_ipc
        self.uncore_ns += ns

    def dispatch_access(self, instructions: float = 1.0) -> None:
        """One dynamic-graph dispatch load (vtable/element/port pointer)."""
        cycles, ns = self.mem.dispatch_access(self.core_id)
        self.instructions += instructions
        self.core_cycles += cycles + instructions / self.params.issue_ipc
        self.uncore_ns += ns

    def random_access(self, footprint: int, instructions: float = 1.0) -> None:
        """One random access into a large working set (WorkPackage model)."""
        cycles, ns = self.mem.analytic_access(self.core_id, footprint)
        self.instructions += instructions
        self.core_cycles += cycles + instructions / self.params.issue_ipc
        self.uncore_ns += ns

    # -- results -------------------------------------------------------------------

    @property
    def counters(self):
        return self.mem.counters[self.core_id]

    def elapsed_ns(self) -> float:
        """Total wall-clock time accounted so far."""
        return self.core_cycles / self.params.freq_ghz + self.uncore_ns

    def total_cycles(self) -> float:
        """Core cycles elapsed, counting uncore stalls at the core clock --
        what ``perf``'s ``cycles`` event measures."""
        return self.core_cycles + self.uncore_ns * self.params.freq_ghz

    def ipc(self) -> float:
        cycles = self.total_cycles()
        if cycles == 0:
            return 0.0
        return self.instructions / cycles

    def reset(self) -> None:
        self.instructions = 0.0
        self.core_cycles = 0.0
        self.uncore_ns = 0.0
