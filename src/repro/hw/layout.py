"""Virtual address-space layout and allocators.

PacketMill's static-graph optimization moves element objects from scattered
heap allocations into a contiguous ``.data``/``.bss`` segment.  To let that
choice have its real consequences (cache-set spread, pages touched, TLB
reach), element state, mbuf pools, and descriptor rings all get concrete
virtual addresses from this module.

The heap allocator deliberately fragments: real ``malloc`` interleaves
metadata and other allocations, so consecutive ``new``-ed elements land on
different pages.  The static allocator packs objects back to back.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

STATIC_BASE = 0x0060_0000  # .data/.bss
HEAP_BASE = 0x5555_5555_0000
DMA_BASE = 0x7F00_0000_0000  # hugepage region DPDK maps for mbufs/rings
STACK_BASE = 0x7FFF_FF00_0000


@dataclass(frozen=True)
class Region:
    """A named allocated region of the simulated address space."""

    name: str
    base: int
    size: int
    kind: str  # "static" | "heap" | "dma" | "stack"

    @property
    def end(self) -> int:
        return self.base + self.size

    def addr(self, offset: int) -> int:
        if not 0 <= offset < self.size:
            raise ValueError(
                "offset %d outside region %s of size %d" % (offset, self.name, self.size)
            )
        return self.base + offset


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)


class AddressSpace:
    """Deterministic allocator over the simulated process address space."""

    def __init__(self, seed: int = 0, heap_fragmentation: float = 1.0,
                 offset: int = 0):
        """``heap_fragmentation`` scales the random padding between heap
        allocations; 0 makes the heap behave like the static segment.
        ``offset`` shifts every segment base -- used to give per-core
        replicas disjoint addresses within the shared cache hierarchy."""
        self._rng = random.Random(seed)
        self._static_base = STATIC_BASE + offset
        self._static_next = STATIC_BASE + offset
        self._heap_next = HEAP_BASE + offset
        self._dma_next = DMA_BASE + offset
        self._stack_next = STACK_BASE + offset
        self.heap_fragmentation = heap_fragmentation
        self.regions = []

    def alloc_static(self, name: str, size: int, align: int = 64) -> Region:
        """Pack an object into the static segment (contiguous, dense)."""
        base = _align_up(self._static_next, align)
        self._static_next = base + size
        return self._record(name, base, size, "static")

    def alloc_heap(self, name: str, size: int, align: int = 16) -> Region:
        """Allocate from the fragmented heap: allocator metadata plus a
        random gap separate consecutive allocations, scattering them over
        many pages (the dynamic-graph baseline)."""
        overhead = 32  # allocator header
        gap = 0
        if self.heap_fragmentation > 0:
            max_gap = int(4096 * self.heap_fragmentation)
            gap = self._rng.randrange(0, max_gap + 1)
        base = _align_up(self._heap_next + overhead + gap, align)
        self._heap_next = base + size
        return self._record(name, base, size, "heap")

    def alloc_dma(self, name: str, size: int, align: int = 64) -> Region:
        """Allocate from the hugepage DMA region (mbuf pools, NIC rings)."""
        base = _align_up(self._dma_next, align)
        self._dma_next = base + size
        return self._record(name, base, size, "dma")

    def alloc_stack(self, name: str, size: int, align: int = 16) -> Region:
        base = _align_up(self._stack_next, align)
        self._stack_next = base + size
        return self._record(name, base, size, "stack")

    def _record(self, name: str, base: int, size: int, kind: str) -> Region:
        region = Region(name=name, base=base, size=size, kind=kind)
        self.regions.append(region)
        return region

    def static_extent(self) -> int:
        """Bytes spanned by the static segment so far."""
        return self._static_next - self._static_base

    def pages_spanned(self, regions, page_size: int = 4096) -> int:
        """Distinct pages covered by the given regions."""
        pages = set()
        for region in regions:
            first = region.base // page_size
            last = (region.end - 1) // page_size
            pages.update(range(first, last + 1))
        return len(pages)
