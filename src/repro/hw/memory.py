"""The memory system: TLB + cache hierarchy + DRAM, with cost accounting.

Costs come back split into the two clock domains (core cycles vs. uncore
nanoseconds); see :mod:`repro.hw` for why.  LLC/DRAM latencies are divided
by the memory-level-parallelism factor because batched packet processing
keeps several misses in flight.

For multi-megabyte random-access working sets (the WorkPackage element of
§4.4/§4.9) an exact line-by-line simulation would need hundreds of
thousands of warm-up accesses, so :meth:`MemorySystem.analytic_access`
provides the standard capacity model instead: a uniformly random access
into a footprint of ``S`` bytes hits a level of effective capacity ``C``
with probability ``min(1, C/S)``.  The hot path (descriptors, metadata,
element state, packet headers) is always simulated exactly.
"""

from __future__ import annotations

import enum
import random
from typing import Tuple

from repro.hw.cache import CacheHierarchy
from repro.hw.counters import PerfCounters
from repro.hw.layout import DMA_BASE
from repro.hw.tlb import Tlb

HUGE_PAGE_SIZE = 2 * 1024 * 1024


class AccessLevel(enum.IntEnum):
    L1 = 0
    L2 = 1
    LLC = 2
    DRAM = 3


class MemorySystem:
    """Shared memory system for ``n_cores`` simulated cores."""

    def __init__(self, params, n_cores: int = 1, seed: int = 0):
        self.params = params
        self.n_cores = n_cores
        self.hierarchy = CacheHierarchy(params, n_cores)
        self.tlbs = [Tlb(params) for _ in range(n_cores)]
        self.counters = [PerfCounters() for _ in range(n_cores)]
        self._rng = random.Random(seed)
        # Effective per-level capacities for the analytic capacity model.
        # L1/L2 shares account for hot-path pollution; the LLC share is the
        # DESIGN.md §5 anchor (total minus DDIO ways, code, and pools).
        self.l1_effective = params.l1_size // 2
        self.l2_effective = int(params.l2_size * 0.75)
        self.llc_effective = 14 * 1024 * 1024

    # -- exact simulation ------------------------------------------------------

    def access(self, core: int, addr: int, size: int = 8,
               write: bool = False) -> Tuple[float, float]:
        """Access ``size`` bytes at ``addr``; returns (core_cycles, uncore_ns).

        Each cache line spanned counts as one load/store; the TLB is
        consulted once per page touched.
        """
        params = self.params
        h = self.counters[core].handles
        line = params.cache_line
        first_line = addr // line
        last_line = (addr + size - 1) // line
        cycles = 0.0
        ns = 0.0
        page = -1
        for line_addr in range(first_line, last_line + 1):
            line_page = self._page_of(line_addr * line)
            if line_page != page:
                page = line_page
                ns += self.tlbs[core].access(page)
            level = self.hierarchy.lookup(core, line_addr)
            if level == CacheHierarchy.L1:
                h.l1_hits.value += 1
                cycles += params.l1_hit_cycles
            elif level == CacheHierarchy.L2:
                h.l2_hits.value += 1
                cycles += params.l2_hit_cycles
            elif level == CacheHierarchy.LLC:
                h.llc_loads.value += 1
                h.llc_hits.value += 1
                ns += params.llc_hit_ns / params.mlp
            else:
                h.llc_loads.value += 1
                h.llc_misses.value += 1
                ns += params.dram_ns / params.mlp
        h.dtlb_walks.value = self.tlbs[core].walks
        return cycles, ns

    def _page_of(self, addr: int) -> int:
        """Page number; the DPDK DMA region is hugepage-backed (2 MB)."""
        if addr >= DMA_BASE:
            return (1 << 40) + (addr - DMA_BASE) // HUGE_PAGE_SIZE
        return addr // self.params.page_size

    # -- analytic capacity model -----------------------------------------------

    def dispatch_access(self, core: int) -> Tuple[float, float]:
        """One dynamic-graph dispatch load (heap-resident, ASLR-scattered).

        Served per the calibrated locality mix in the machine parameters;
        see ``MachineParams.heap_dispatch_p_*`` for why this is an anchor
        rather than an emergent result.
        """
        params = self.params
        h = self.counters[core].handles
        u = self._rng.random()
        if u < params.heap_dispatch_p_dram:
            h.llc_loads.value += 1
            h.llc_misses.value += 1
            return 0.0, params.dram_ns / params.mlp
        if u < params.heap_dispatch_p_dram + params.heap_dispatch_p_llc:
            h.llc_loads.value += 1
            h.llc_hits.value += 1
            return 0.0, params.llc_hit_ns / params.mlp
        if u < (params.heap_dispatch_p_dram + params.heap_dispatch_p_llc
                + params.heap_dispatch_p_l2):
            h.l2_hits.value += 1
            return params.l2_hit_cycles, 0.0
        h.l1_hits.value += 1
        return params.l1_hit_cycles, 0.0

    def analytic_access(self, core: int, footprint: int) -> Tuple[float, float]:
        """One uniformly-random access into a ``footprint``-byte region."""
        params = self.params
        h = self.counters[core].handles
        u = self._rng.random()
        p_l1 = min(1.0, self.l1_effective / footprint) if footprint else 1.0
        p_l2 = min(1.0, self.l2_effective / footprint) if footprint else 1.0
        p_llc = min(1.0, self.llc_effective / footprint) if footprint else 1.0
        if u < p_l1:
            h.l1_hits.value += 1
            return params.l1_hit_cycles, 0.0
        if u < p_l2:
            h.l2_hits.value += 1
            return params.l2_hit_cycles, 0.0
        h.llc_loads.value += 1
        if u < p_llc:
            h.llc_hits.value += 1
            return 0.0, params.llc_hit_ns / params.random_access_mlp
        h.llc_misses.value += 1
        return 0.0, params.dram_ns / params.random_access_mlp

    def prefetch(self, core: int, addr: int, size: int = 64) -> float:
        """Software prefetch: pull lines toward L1 without a demand load.

        Returns the (deeply overlapped) exposed latency in ns.  Prefetches
        are not demand loads, so no LLC-load/miss events are counted --
        matching what ``perf`` sees when the MLX5 RX loop prefetches the
        packet data before the application touches it.
        """
        params = self.params
        line = params.cache_line
        hierarchy = self.hierarchy
        ns = 0.0
        for line_addr in range(addr // line, (addr + size - 1) // line + 1):
            if hierarchy.l1[core].access(line_addr):
                continue
            if hierarchy.l2[core].access(line_addr):
                self.hierarchy.l1[core].fill(line_addr)
                continue
            if hierarchy.llc.access(line_addr):
                ns += params.llc_hit_ns / params.prefetch_mlp
            else:
                hierarchy.llc.fill(line_addr)
                ns += params.dram_ns / params.prefetch_mlp
            hierarchy.l2[core].fill(line_addr)
            hierarchy.l1[core].fill(line_addr)
        return ns

    # -- NIC DMA ------------------------------------------------------------------

    def dma_write(self, addr: int, size: int) -> None:
        """NIC writes ``size`` bytes (packet data or descriptors) via DDIO."""
        line = self.params.cache_line
        first_line = addr // line
        last_line = (addr + size - 1) // line
        for line_addr in range(first_line, last_line + 1):
            self.hierarchy.dma_write(line_addr)
        self.counters[0].handles.ddio_fills.value += last_line - first_line + 1

    def dma_read(self, addr: int, size: int) -> None:
        """NIC reads ``size`` bytes for transmission (no core-side cost)."""
        line = self.params.cache_line
        for line_addr in range(addr // line, (addr + size - 1) // line + 1):
            self.hierarchy.dma_read(line_addr)

    # -- housekeeping ---------------------------------------------------------------

    def registry_for(self, core: int):
        """The per-core counter registry backing ``counters[core]``.

        A build mounts this under ``cpu.`` in its own registry so the
        cache model's live handles and the build's telemetry read the
        same cells.
        """
        return self.counters[core].registry

    def reset_counters(self) -> None:
        for counters in self.counters:
            counters.reset()
        for tlb in self.tlbs:
            tlb.reset_stats()

    def flush(self) -> None:
        self.hierarchy.flush()
        for tlb in self.tlbs:
            tlb.flush()
        self.reset_counters()
