"""Two-level data TLB model.

The paper's static-graph optimization argues that allocating elements in a
contiguous static segment (rather than scattered heap chunks) yields "a
less fragmented access pattern and fewer TLB misses"; this model is what
lets that effect show up in the measurements.
"""

from __future__ import annotations

from collections import OrderedDict


class _LruSet(OrderedDict):
    """A fully-associative LRU set of page numbers with a capacity bound."""

    def __init__(self, capacity: int):
        super().__init__()
        self.capacity = capacity

    def __reduce__(self):
        # OrderedDict's default reconstructor passes the items to
        # __init__, which here takes a capacity -- rebuild explicitly so
        # instances survive pickling (process-pool sweep results carry
        # the full hardware model).
        return (self.__class__, (self.capacity,), None, None, iter(self.items()))

    def access(self, page: int) -> bool:
        if page in self:
            self.move_to_end(page)
            return True
        self[page] = True
        if len(self) > self.capacity:
            self.popitem(last=False)
        return False


class Tlb:
    """L1 DTLB backed by a unified STLB; misses cost a page-walk."""

    def __init__(self, params):
        self.params = params
        self._dtlb = _LruSet(params.dtlb_entries)
        self._stlb = _LruSet(params.stlb_entries)
        self.dtlb_misses = 0
        self.walks = 0
        self.accesses = 0

    def access(self, page: int) -> float:
        """Translate one page; returns the exposed walk latency in ns."""
        self.accesses += 1
        if self._dtlb.access(page):
            return 0.0
        self.dtlb_misses += 1
        if self._stlb.access(page):
            return 0.0  # STLB hits refill the DTLB essentially for free
        self.walks += 1
        return self.params.tlb_walk_ns

    def reset_stats(self) -> None:
        self.dtlb_misses = 0
        self.walks = 0
        self.accesses = 0

    def flush(self) -> None:
        self._dtlb.clear()
        self._stlb.clear()
        self.reset_stats()
