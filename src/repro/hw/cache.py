"""Set-associative caches with LRU replacement, plus DDIO-aware LLC fills.

The model is a classic inclusive three-level hierarchy.  The one extension
needed for this paper is Intel DDIO: NIC DMA writes allocate directly into
the last-level cache, but only into a limited number of ways per set, so
heavy I/O both *warms* the LLC (packet data arrives cached) and *pressures*
it (DDIO fills evict application lines from those ways).

Each set is an ordered mapping from line address to its DDIO flag, kept in
LRU-first order (lookups promote to the MRU end, inserts append).  The
mapping gives O(1) hit/miss checks on the simulator's hottest path while
reproducing exactly the hit, promotion, and eviction decisions of the
original list-scan implementation: iteration order of the mapping is the
same LRU-first order the list kept, so the "first DDIO line" victim and
the plain-LRU victim are identical line addresses.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class Cache:
    """One set-associative, write-allocate, LRU cache level.

    Tags are full line addresses (``addr // line_size``); each set maps
    line address -> DDIO flag, ordered least-recently-used first.
    """

    __slots__ = ("name", "size", "assoc", "line_size", "n_sets", "_sets",
                 "_ddio_count", "hits", "misses")

    def __init__(self, name: str, size: int, assoc: int, line_size: int = 64):
        if size % (assoc * line_size):
            raise ValueError("cache size must be a multiple of assoc * line_size")
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.n_sets = size // (assoc * line_size)
        self._sets: List[Dict[int, bool]] = [{} for _ in range(self.n_sets)]
        # Per-set count of DDIO-allocated lines (avoids rescanning flags).
        self._ddio_count: List[int] = [0] * self.n_sets
        self.hits = 0
        self.misses = 0

    def _set_index(self, line_addr: int) -> int:
        return line_addr % self.n_sets

    def access(self, line_addr: int) -> bool:
        """Look up a line; on a hit, promote it to MRU.  Returns hit/miss."""
        cset = self._sets[line_addr % self.n_sets]
        flag = cset.pop(line_addr, None)
        if flag is None:
            self.misses += 1
            return False
        self.hits += 1
        cset[line_addr] = flag  # re-insert at the MRU end
        return True

    def fill(self, line_addr: int, ddio: bool = False,
             ddio_ways: Optional[int] = None) -> Optional[int]:
        """Insert a line, evicting LRU if the set is full.

        With ``ddio=True`` and ``ddio_ways`` set, the line may only displace
        other DDIO lines once the DDIO way quota for the set is reached --
        Intel's way-restricted I/O allocation.  Returns the evicted line
        address, if any.
        """
        idx = line_addr % self.n_sets
        cset = self._sets[idx]
        if line_addr in cset:
            return None
        evicted = None
        if ddio and ddio_ways is not None and self._ddio_count[idx] >= ddio_ways:
            # Evict the LRU DDIO line rather than an application line.
            for line, is_ddio in cset.items():
                if is_ddio:
                    evicted = line
                    break
            if evicted is not None:
                del cset[evicted]
                self._ddio_count[idx] -= 1
        if evicted is None and len(cset) >= self.assoc:
            evicted = next(iter(cset))  # LRU-first order
            if cset.pop(evicted):
                self._ddio_count[idx] -= 1
        cset[line_addr] = ddio
        if ddio:
            self._ddio_count[idx] += 1
        return evicted

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line if present (used for DMA coherence)."""
        idx = line_addr % self.n_sets
        flag = self._sets[idx].pop(line_addr, None)
        if flag is None:
            return False
        if flag:
            self._ddio_count[idx] -= 1
        return True

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._sets[line_addr % self.n_sets]

    def occupancy(self) -> int:
        """Number of valid lines currently cached."""
        return sum(len(s) for s in self._sets)

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        for cset in self._sets:
            cset.clear()
        self._ddio_count = [0] * self.n_sets
        self.reset_stats()

    def __repr__(self) -> str:
        return "Cache(%s, %dKB, %d-way)" % (self.name, self.size // 1024, self.assoc)


class CacheHierarchy:
    """Per-core L1/L2 plus a shared LLC, with DDIO DMA fills.

    ``lookup`` walks the hierarchy and back-fills inclusively; ``dma_write``
    models the NIC writing packet data/descriptors straight into the LLC's
    DDIO ways while invalidating stale copies in core-private levels.
    """

    L1, L2, LLC, DRAM = range(4)

    def __init__(self, params, n_cores: int = 1):
        self.params = params
        self.n_cores = n_cores
        self.l1 = [Cache("L1-%d" % c, params.l1_size, params.l1_assoc, params.cache_line)
                   for c in range(n_cores)]
        self.l2 = [Cache("L2-%d" % c, params.l2_size, params.l2_assoc, params.cache_line)
                   for c in range(n_cores)]
        self.llc = Cache("LLC", params.llc_size, params.llc_assoc, params.cache_line)

    def lookup(self, core: int, line_addr: int) -> int:
        """Return the level that served the line and fill upper levels."""
        if self.l1[core].access(line_addr):
            return self.L1
        if self.l2[core].access(line_addr):
            self.l1[core].fill(line_addr)
            return self.L2
        if self.llc.access(line_addr):
            self.l2[core].fill(line_addr)
            self.l1[core].fill(line_addr)
            return self.LLC
        self.llc.fill(line_addr)
        self.l2[core].fill(line_addr)
        self.l1[core].fill(line_addr)
        return self.DRAM

    def dma_write(self, line_addr: int) -> None:
        """NIC DMA of one line: DDIO-allocate in LLC, invalidate core copies."""
        for core in range(self.n_cores):
            self.l1[core].invalidate(line_addr)
            self.l2[core].invalidate(line_addr)
        self.llc.fill(line_addr, ddio=True, ddio_ways=self.params.ddio_ways)

    def dma_read(self, line_addr: int) -> bool:
        """NIC DMA read (TX): served from LLC when resident.  Returns hit."""
        return self.llc.access(line_addr)

    def flush(self) -> None:
        for cache in self.l1 + self.l2 + [self.llc]:
            cache.flush()
