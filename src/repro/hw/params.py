"""Machine model parameters, calibrated once against public Skylake-SP data
and the paper's published absolute numbers (see DESIGN.md §5).

Every experiment uses the same :class:`MachineParams` instance; nothing is
re-tuned per experiment, so all relative effects emerge from the model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

KB = 1024
MB = 1024 * KB


@dataclass
class MachineParams:
    """Parameters of the simulated DUT (Xeon Gold 6140 class machine)."""

    # -- clocks ---------------------------------------------------------------
    freq_ghz: float = 2.3
    """Core frequency; the experiments sweep 1.2-3.0 GHz."""

    uncore_ghz: float = 2.4
    """Uncore frequency, pinned at the maximum as in the paper's testbed."""

    # -- cache geometry (Skylake-SP) ------------------------------------------
    cache_line: int = 64
    l1_size: int = 32 * KB
    l1_assoc: int = 8
    l2_size: int = 1 * MB
    l2_assoc: int = 16
    llc_size: int = 24 * MB + 768 * KB  # 24.75 MB shared
    llc_assoc: int = 11

    ddio_ways: int = 2
    """LLC ways NIC DMA may allocate into (default IIO configuration).
    The paper raises this to 8 (IIO LLC WAYS = 0x7F8) on the DUT."""

    # -- access costs ----------------------------------------------------------
    issue_ipc: float = 3.2
    """Sustainable instructions-per-cycle of the out-of-order core on
    branchy pointer-heavy packet-processing code (below the 4-wide peak)."""

    l1_hit_cycles: float = 0.0
    """L1 hits are hidden by the OoO window; cost is folded into issue."""

    l2_hit_cycles: float = 10.0
    """Extra core cycles exposed by an L1 miss that hits L2."""

    llc_hit_ns: float = 18.0
    """Uncore wall-clock latency for an LLC hit (~44 cycles at 2.4 GHz)."""

    dram_ns: float = 85.0
    """Uncore+DRAM latency for an LLC miss."""

    mlp: float = 4.0
    """Memory-level parallelism: batch processing overlaps this many
    outstanding LLC/DRAM misses, dividing their exposed latency."""

    prefetch_mlp: float = 8.0
    """Software prefetches (the MLX5 RX loop prefetches CQEs, mbufs, and
    packet data ahead of use) overlap more deeply than demand misses."""

    random_access_mlp: float = 2.0
    """Data-dependent random accesses (hash/table/WorkPackage walks)
    expose most of their latency; only adjacent packets overlap them."""

    branch_miss_cycles: float = 18.0
    """Indirect-branch misprediction penalty (virtual calls)."""

    # -- TLB --------------------------------------------------------------------
    page_size: int = 4096
    dtlb_entries: int = 64
    stlb_entries: int = 1536
    tlb_walk_ns: float = 25.0

    # -- NIC / PCIe --------------------------------------------------------------
    link_gbps: float = 100.0
    ether_overhead_bytes: int = 20  # preamble + SFD + IFG + FCS framing on the wire
    pcie_gbps: float = 112.0
    """Effective PCIe 3.0 x16 payload bandwidth (Neugebauer et al.)."""

    pcie_per_packet_ns: float = 38.0
    """Per-packet PCIe/NIC descriptor overhead; caps small-packet pps and
    makes pps fall once large frames saturate PCIe (paper Fig. 6)."""

    rx_ring_size: int = 1024
    tx_ring_size: int = 1024

    nic_queue_pps_limit: float = 12.3e6
    """Per-RX-queue packet-rate ceiling of the (non-vectorized) MLX5 path;
    this is the "other bottleneck" that flattens Fig. 5's curves at high
    core frequencies when a single RX/TX queue is used."""

    # -- graph-dispatch locality (DESIGN.md §5 anchor) ---------------------------
    dispatch_loads_per_element: int = 5
    """Pointer-chase loads per element visit per batch with a *dynamic*
    graph: element object, vtable, port array, next-element hop."""

    heap_dispatch_p_l2: float = 0.10
    heap_dispatch_p_llc: float = 0.25
    heap_dispatch_p_dram: float = 0.65
    """Locality of dynamic-dispatch metadata on the ASLR-randomized heap,
    calibrated to Table 1's Vanilla row (LLC loads/misses per packet).
    Conflict-miss behaviour under address-space randomization is below the
    fidelity of an LRU simulator, so it enters as a measured anchor; the
    static-graph variant replaces these loads with exact accesses to the
    packed static segment, which the cache model keeps warm on its own."""

    # -- derived helpers -----------------------------------------------------------

    def core_cycles_to_ns(self, cycles: float) -> float:
        return cycles / self.freq_ghz

    def ns_to_core_cycles(self, ns: float) -> float:
        return ns * self.freq_ghz

    def at_frequency(self, freq_ghz: float) -> "MachineParams":
        """A copy of these parameters with a different core clock."""
        return replace(self, freq_ghz=freq_ghz)

    def line_of(self, addr: int) -> int:
        return addr // self.cache_line

    def page_of(self, addr: int) -> int:
        return addr // self.page_size

    def wire_time_ns(self, frame_len: int) -> float:
        """Time one frame occupies the 100-Gbps wire, framing included."""
        bits = (frame_len + self.ether_overhead_bytes) * 8
        return bits / self.link_gbps

    def line_rate_pps(self, frame_len: int) -> float:
        """Maximum packets/s the link can carry at this frame length."""
        return 1e9 / self.wire_time_ns(frame_len)


DEFAULT_PARAMS = MachineParams()
