"""Cycle-level hardware model: caches, DDIO, TLB, CPU cost accounting.

This is the substitution for the paper's physical testbed (2x18-core Xeon
Gold 6140, Mellanox CX-5, 100-Gbps link).  Costs are split into two clock
domains, exactly as on the real machine:

- *core cycles* (instruction issue, L1/L2 hits, branch misses) scale with
  the core frequency the experiments sweep (1.2-3.0 GHz), and
- *uncore nanoseconds* (LLC, DRAM, PCIe) are fixed in wall-clock terms
  because the paper pins the uncore clock at its 2.4 GHz maximum.

This split is what produces the paper's almost-linear throughput-vs-
frequency curves with a small constant offset (Fig. 4).
"""

from repro.hw.cache import Cache, CacheHierarchy
from repro.hw.counters import PerfCounters
from repro.hw.cpu import CpuCore
from repro.hw.layout import AddressSpace, Region
from repro.hw.memory import AccessLevel, MemorySystem
from repro.hw.params import MachineParams
from repro.hw.tlb import Tlb

__all__ = [
    "AccessLevel",
    "AddressSpace",
    "Cache",
    "CacheHierarchy",
    "CpuCore",
    "MachineParams",
    "MemorySystem",
    "PerfCounters",
    "Region",
    "Tlb",
]
