"""perf-style hardware event counters.

The paper reports microarchitectural metrics sampled with ``perf`` every
100 ms (Table 1, §4.2, Fig. 9).  We count events per run and provide the
same per-100-ms view by scaling with the measured packet rate.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class PerfCounters:
    """Event counts accumulated over one measurement run."""

    instructions: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    llc_loads: int = 0      # loads that reached the LLC (= L2 misses)
    llc_hits: int = 0       # ... served by the LLC
    llc_misses: int = 0     # ... that went to DRAM
    dtlb_walks: int = 0
    branch_misses: int = 0
    ddio_fills: int = 0
    packets: int = 0
    # -- degraded-path counters (NIC/software drops mirrored per run, all
    # zero on a healthy run; see repro.faults and docs/FAULTS.md) ---------
    rx_nombuf: int = 0
    imissed: int = 0
    rx_errors: int = 0
    tx_full: int = 0
    sw_drops: int = 0
    element_errors: int = 0
    watchdog_resets: int = 0

    def add(self, other: "PerfCounters") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def per_packet(self, name: str) -> float:
        if self.packets == 0:
            raise ValueError("no packets recorded")
        return getattr(self, name) / self.packets

    def per_window(self, name: str, pps: float, window_s: float = 0.1) -> float:
        """Events per ``window_s`` at the measured packet rate (perf's view)."""
        return self.per_packet(name) * pps * window_s

    def llc_miss_ratio(self) -> float:
        """Fraction of LLC loads that missed to DRAM."""
        if self.llc_loads == 0:
            return 0.0
        return self.llc_misses / self.llc_loads

    def snapshot(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}
