"""perf-style hardware event counters.

The paper reports microarchitectural metrics sampled with ``perf`` every
100 ms (Table 1, §4.2, Fig. 9).  We count events per run and provide the
same per-100-ms view by scaling with the measured packet rate.

Storage lives in a :class:`repro.telemetry.registry.CounterRegistry`:
``PerfCounters`` is a *view* over one registry scope, so the same cells
the cache model bumps are what ``RunStats`` mirroring, handler reads,
and window samples observe -- no copies, no drift.  Attribute access is
unchanged (``counters.llc_misses`` reads and writes work as before); the
memory system's hot loops go through :attr:`PerfCounters.handles`, which
holds direct :class:`~repro.telemetry.registry.Counter` references so a
cache hit costs one attribute walk plus an integer add, same as the old
dataclass field bump.
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.ledger import RUNSTATS_MIRROR
from repro.telemetry.registry import CounterRegistry

#: Every event the view exposes, in report/snapshot order.  The first
#: block is microarchitectural; the trailing block is the degraded-path
#: ledger (NIC/software drops mirrored per run, all zero on a healthy
#: run; see repro.faults and docs/FAULTS.md).
PERF_FIELDS = (
    "instructions",
    "l1_hits",
    "l2_hits",
    "llc_loads",      # loads that reached the LLC (= L2 misses)
    "llc_hits",       # ... served by the LLC
    "llc_misses",     # ... that went to DRAM
    "dtlb_walks",
    "branch_misses",
    "ddio_fills",
    "packets",
    "rx_nombuf",
    "imissed",
    "rx_errors",
    "tx_full",
    "sw_drops",
    "element_errors",
    "watchdog_resets",
)


class _Handles:
    """Direct counter handles for hot loops (one slot per event)."""

    __slots__ = PERF_FIELDS


class PerfCounters:
    """Event counts accumulated over one measurement run.

    A view over one registry scope.  Constructed bare it owns a private
    registry (names are the bare event names); pass ``registry`` and a
    ``prefix`` to back it with shared storage instead.  Keyword initial
    values keep the old dataclass construction working:
    ``PerfCounters(llc_loads=500, packets=100)``.
    """

    FIELDS = PERF_FIELDS

    __slots__ = ("registry", "prefix", "handles")

    def __init__(self, registry: Optional[CounterRegistry] = None,
                 prefix: str = "", **initial):
        self.registry = registry if registry is not None else CounterRegistry()
        if prefix and not prefix.endswith("."):
            prefix += "."
        self.prefix = prefix
        self.handles = _Handles()
        for name in PERF_FIELDS:
            handle = self.registry.counter(prefix + name)
            setattr(self.handles, name, handle)
        for name, value in initial.items():
            if name not in PERF_FIELDS:
                raise TypeError("unexpected counter %r" % name)
            getattr(self.handles, name).value = value

    def add(self, other: "PerfCounters") -> None:
        for name in PERF_FIELDS:
            handle = getattr(self.handles, name)
            handle.value += getattr(other, name)

    def reset(self) -> None:
        for name in PERF_FIELDS:
            getattr(self.handles, name).value = 0

    def per_packet(self, name: str) -> float:
        if self.packets == 0:
            raise ValueError("no packets recorded")
        return getattr(self, name) / self.packets

    def per_window(self, name: str, pps: float, window_s: float = 0.1) -> float:
        """Events per ``window_s`` at the measured packet rate (perf's view)."""
        return self.per_packet(name) * pps * window_s

    def llc_miss_ratio(self) -> float:
        """Fraction of LLC loads that missed to DRAM."""
        if self.llc_loads == 0:
            return 0.0
        return self.llc_misses / self.llc_loads

    def snapshot(self) -> dict:
        return {name: getattr(self.handles, name).value for name in PERF_FIELDS}

    def sync_ledger(self, stats) -> None:
        """Mirror a RunStats-shaped drop ledger into this view.

        Since both sides can read from one registry this is often a
        no-op on shared storage, but it keeps detached views (frozen
        stats, the multi-queue aggregate) consistent through the same
        single schema (:data:`repro.telemetry.ledger.RUNSTATS_MIRROR`).
        """
        for counter_field, stats_attr in RUNSTATS_MIRROR:
            getattr(self.handles, counter_field).value = getattr(
                stats, stats_attr
            )

    def __eq__(self, other) -> bool:
        if not isinstance(other, PerfCounters):
            return NotImplemented
        return self.snapshot() == other.snapshot()

    def __repr__(self) -> str:
        nonzero = {
            name: value for name, value in self.snapshot().items() if value
        }
        return "PerfCounters(%s)" % ", ".join(
            "%s=%r" % kv for kv in nonzero.items()
        )


def _event_property(name: str) -> property:
    def fget(self):
        return getattr(self.handles, name).value

    def fset(self, value):
        getattr(self.handles, name).value = value

    return property(fget, fset, doc="Event count %r (registry-backed)." % name)


for _name in PERF_FIELDS:
    setattr(PerfCounters, _name, _event_property(_name))
del _name
