"""The asyncio control socket: live counter reads while a run is in flight.

A :class:`ControlSocket` wraps any
:class:`~repro.telemetry.registry.CounterRegistry` -- in practice the
:class:`~repro.core.sharded.ShardedRuntime`'s merged registry -- and
serves it over TCP to many concurrent clients.  Reads go straight to the
live handles, so a client polling mid-run sees counters move; nothing is
snapshotted or buffered on the server side.

Two dialects on one port:

- **Line protocol** (the examples and tests): one request per line,
  one-line replies, connection stays open.

  ==================  ========================================================
  request              reply
  ==================  ========================================================
  ``READ <name>``      ``<name> <value>`` (``GET <name>`` is a synonym)
  ``CORES``            ``<n>`` (replica count; 1 for a plain registry)
  ``NAMES [glob]``     one counter name per line, then ``.``
  ``METRICS``          Prometheus text exposition, terminated by ``# EOF``
  ``RETA [port]``      the port's live indirection table, space-separated
  ``REBALANCE [port]`` force one steering pass; replies ``moves <n>``
  ``QUIT``             closes the connection
  ==================  ========================================================

  ``RETA`` and ``REBALANCE`` need the socket constructed with
  ``runtime=`` (a :class:`~repro.core.sharded.ShardedRuntime`);
  ``REBALANCE`` additionally needs a steering policy on the runtime's
  :class:`~repro.net.rss.RssConfig`.  A forced rebalance runs on the
  control thread while the simulation steps on its own -- RETA entries
  swap one ``list[int]`` assignment at a time under the GIL, so the
  data path always reads a consistent entry, exactly like hardware
  applying a RETA update between two arriving frames.

- **HTTP** (Prometheus scrapes): a request line starting with
  ``GET /metrics`` gets a one-shot ``HTTP/1.0 200`` response carrying the
  same exposition body, then the connection closes.

The server runs its event loop on a daemon thread so a synchronous
driver loop (the simulation) and the control plane coexist without the
simulation going async: :meth:`start` returns the bound ``(host, port)``
once listening, :meth:`stop` tears the loop down.  It is also a context
manager: ``with ControlSocket(registry) as (host, port): ...``.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from typing import Optional, Tuple

from repro.control.prometheus import render
from repro.telemetry.registry import CounterRegistry, MergedRegistry


class ControlSocket:
    """Serve one registry to many concurrent TCP clients."""

    def __init__(self, registry: CounterRegistry, host: str = "127.0.0.1",
                 port: int = 0, namespace: str = "repro", runtime=None):
        self.registry = registry
        self.host = host
        self.port = port
        self.namespace = namespace
        #: Optional ShardedRuntime behind the registry; enables the
        #: steering verbs (RETA reads, forced REBALANCE).
        self.runtime = runtime
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``."""
        if self._thread is not None:
            raise RuntimeError("control socket already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-control", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return (self.host, self.port)

    def stop(self) -> None:
        loop = self._loop
        if loop is None:
            return
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._loop = None
        self._server = None
        self._thread = None
        self._ready.clear()

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._handle, self.host, self.port))
            self._server = server
            self.host, self.port = server.sockets[0].getsockname()[:2]
            self._ready.set()
            loop.run_forever()
            server.close()
            loop.run_until_complete(server.wait_closed())
            # Drain in-flight client handlers so nothing touches the
            # loop after it closes.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
        except BaseException as exc:  # surface bind failures to start()
            self._startup_error = exc
            self._ready.set()
        finally:
            loop.close()

    # -- protocol --------------------------------------------------------------

    def _n_cores(self) -> int:
        if isinstance(self.registry, MergedRegistry):
            return len(self.registry.children)
        return 1

    def _metrics(self) -> str:
        return render(self.registry, namespace=self.namespace)

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8", "replace").strip()
                if not line:
                    continue
                verb, _, arg = line.partition(" ")
                verb = verb.upper()
                if verb == "GET" and arg.split(" ", 1)[0].startswith("/"):
                    await self._serve_http(reader, writer, arg)
                    break
                if verb == "QUIT":
                    writer.write(b"bye\n")
                    break
                writer.write(self._dispatch(verb, arg.strip()))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                # Shutdown cancels in-flight handlers mid-close; finish
                # normally so the streams callback has no exception to log.
                pass

    def _dispatch(self, verb: str, arg: str) -> bytes:
        if verb in ("READ", "GET"):
            if not arg:
                return b"ERR missing counter name\n"
            if arg not in self.registry:
                return ("ERR unknown counter %s\n" % arg).encode()
            value = self.registry.get(arg)
            if isinstance(value, float) and value == int(value):
                value = int(value)
            return ("%s %s\n" % (arg, value)).encode()
        if verb == "CORES":
            return ("%d\n" % self._n_cores()).encode()
        if verb == "NAMES":
            names = self.registry.names(arg or None)
            return ("".join(n + "\n" for n in names) + ".\n").encode()
        if verb == "METRICS":
            return self._metrics().encode()
        if verb in ("RETA", "REBALANCE"):
            return self._steering_verb(verb, arg)
        return ("ERR unknown verb %s\n" % verb).encode()

    def _steering_verb(self, verb: str, arg: str) -> bytes:
        if self.runtime is None:
            return b"ERR no runtime attached\n"
        port: Optional[int] = None
        if arg:
            try:
                port = int(arg)
            except ValueError:
                return ("ERR bad port %r\n" % arg).encode()
        if verb == "RETA":
            if port is None:
                port = min(self.runtime.ports)
            mq = self.runtime.ports.get(port)
            if mq is None:
                return ("ERR unknown port %d\n" % port).encode()
            return (" ".join(str(q) for q in mq.table.entries) + "\n").encode()
        if port is not None and port not in self.runtime.ports:
            return ("ERR unknown port %d\n" % port).encode()
        try:
            moves = self.runtime.rebalance(port)
        except RuntimeError as exc:
            return ("ERR %s\n" % exc).encode()
        return ("moves %d\n" % moves).encode()

    async def _serve_http(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter, request: str) -> None:
        # Drain request headers up to the blank line.
        while True:
            raw = await reader.readline()
            if not raw or raw in (b"\r\n", b"\n"):
                break
        path = request.split(" ", 1)[0]
        if path.rstrip("/") == "/metrics" or path == "/":
            body = self._metrics().encode()
            status = b"HTTP/1.0 200 OK\r\n"
        else:
            body = b"not found\n"
            status = b"HTTP/1.0 404 Not Found\r\n"
        writer.write(
            status
            + b"Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
            + ("Content-Length: %d\r\n" % len(body)).encode()
            + b"Connection: close\r\n\r\n"
            + body)
        await writer.drain()


class ControlClient:
    """Minimal blocking line-protocol client (examples and tests).

    One persistent connection; each call is a request/reply round trip.
    """

    def __init__(self, host: str, port: int, timeout: float = 5.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def _request(self, line: str) -> str:
        self._file.write((line + "\n").encode())
        self._file.flush()
        reply = self._file.readline()
        if not reply:
            raise ConnectionError("control socket closed")
        return reply.decode().rstrip("\n")

    def read(self, name: str) -> float:
        reply = self._request("READ " + name)
        if reply.startswith("ERR"):
            raise KeyError(reply)
        value = reply.rsplit(" ", 1)[1]
        return float(value) if "." in value else int(value)

    def cores(self) -> int:
        return int(self._request("CORES"))

    def names(self, pattern: str = "") -> list:
        self._file.write(("NAMES %s" % pattern).strip().encode() + b"\n")
        self._file.flush()
        out = []
        while True:
            line = self._file.readline().decode().rstrip("\n")
            if line == ".":
                return out
            if not line:
                raise ConnectionError("control socket closed")
            out.append(line)

    def reta(self, port: Optional[int] = None) -> list:
        """The live indirection table of ``port`` (lowest port when None)."""
        reply = self._request("RETA" if port is None else "RETA %d" % port)
        if reply.startswith("ERR"):
            raise KeyError(reply)
        return [int(entry) for entry in reply.split()]

    def rebalance(self, port: Optional[int] = None) -> int:
        """Force a steering pass; returns RETA entries migrated."""
        reply = self._request(
            "REBALANCE" if port is None else "REBALANCE %d" % port)
        if reply.startswith("ERR"):
            raise RuntimeError(reply)
        return int(reply.rsplit(" ", 1)[1])

    def metrics(self) -> str:
        self._file.write(b"METRICS\n")
        self._file.flush()
        lines = []
        while True:
            line = self._file.readline().decode()
            if not line:
                raise ConnectionError("control socket closed")
            lines.append(line)
            if line.startswith("# EOF"):
                return "".join(lines)

    def close(self) -> None:
        try:
            self._file.write(b"QUIT\n")
            self._file.flush()
        except (OSError, ValueError):
            pass
        self._file.close()
        self._sock.close()

    def __enter__(self) -> "ControlClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["ControlClient", "ControlSocket"]
