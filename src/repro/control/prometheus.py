"""Prometheus text exposition for counter registries.

:func:`render` turns a :class:`~repro.telemetry.registry.CounterRegistry`
snapshot into the Prometheus text format (version 0.0.4): one ``# TYPE``
line per metric family, dotted counter names flattened to legal metric
names (``driver.rx_packets`` -> ``repro_driver_rx_packets``).

For a :class:`~repro.telemetry.registry.MergedRegistry` the exposition
carries *both* views of every aggregate name: the unlabeled cluster sum
and one ``{core="i"}`` series per replica -- so an operator can graph
total forwarding rate and per-core skew from the same scrape.  Mounted
ledgers (the per-port RSS books at ``rss.<port>.*``) render as plain
series under their mount prefix.
"""

from __future__ import annotations

import re

from repro.telemetry.registry import COUNTER, CounterRegistry, MergedRegistry

_ILLEGAL = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(name: str, namespace: str = "repro") -> str:
    """``driver.rx_packets`` -> ``repro_driver_rx_packets``."""
    return "%s_%s" % (namespace, _ILLEGAL.sub("_", name))


def _type_of(registry: CounterRegistry, name: str) -> str:
    return "counter" if registry.kind_of(name) == COUNTER else "gauge"


def _format_value(value) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render(registry: CounterRegistry, namespace: str = "repro") -> str:
    """The registry's current values in Prometheus text format."""
    lines = []
    if isinstance(registry, MergedRegistry):
        # Mounted ledgers (RSS steering books): plain series.
        for prefix in sorted(registry._mounts):
            mounted = registry._mounts[prefix]
            for name in mounted.names():
                full = prefix + "." + name
                metric = metric_name(full, namespace)
                lines.append("# TYPE %s %s" % (metric, _type_of(registry, full)))
                lines.append("%s %s" % (metric, _format_value(registry.get(full))))
        # Aggregate + per-core series for every child-owned name.
        for name in registry.aggregate_names():
            metric = metric_name(name, namespace)
            lines.append("# TYPE %s %s" % (metric, _type_of(registry, name)))
            lines.append("%s %s" % (metric, _format_value(registry.get(name))))
            for core, value in enumerate(registry.per_core(name)):
                lines.append('%s{core="%d"} %s'
                             % (metric, core, _format_value(value)))
    else:
        for name in registry.names():
            metric = metric_name(name, namespace)
            lines.append("# TYPE %s %s" % (metric, _type_of(registry, name)))
            lines.append("%s %s" % (metric, _format_value(registry.get(name))))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


__all__ = ["metric_name", "render"]
