"""Async control plane: live counter reads and Prometheus exposition.

The pieces: :class:`~repro.control.server.ControlSocket` serves a (merged)
counter registry over TCP to many concurrent clients while a run is in
flight; :func:`~repro.control.prometheus.render` produces the text
exposition; :class:`~repro.control.server.ControlClient` is the matching
blocking client used by the examples.
"""

from repro.control.prometheus import metric_name, render
from repro.control.server import ControlClient, ControlSocket

__all__ = ["ControlClient", "ControlSocket", "metric_name", "render"]
