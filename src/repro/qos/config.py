"""QoS buffer-management configuration: SONiC-style buffer profiles.

A :class:`QosConfig` describes how one port's ingress buffering is carved
up, the way a switch ASIC's MMU is programmed from a SONiC buffer
profile: every 802.1p priority gets a **private reserved quota**, may
spill into a port-wide **shared pool** up to a per-priority cap, and --
for PFC-enabled (lossless) priorities -- may land post-XOFF in-flight
frames in a **shared headroom pool**.  Units are packets, not bytes: the
simulation's mbufs are fixed-size, so a packet is the natural buffer
cell (real profiles express the same shape in bytes).

The config is pure data; :class:`repro.qos.port.QosPort` instantiates the
accounting, :mod:`repro.analyze.qos` lints profiles for inconsistencies
(headroom exceeding the pool, a priority with no pool, a pause element
watching an unbound pool), and :func:`repro.faults.audit.qos_audit`
checks the runtime books balance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

#: 802.1Q TCI layout: the PCP (priority code point) lives in the top 3 bits.
PCP_SHIFT = 13
PCP_MASK = 0x7


def packet_priority(pkt) -> int:
    """The 802.1p priority of a packet (PCP bits of its VLAN TCI)."""
    return (pkt.vlan_tci >> PCP_SHIFT) & PCP_MASK


@dataclass(frozen=True)
class BufferProfile:
    """Per-priority buffer carving (packets).

    ``reserved``     private quota always available to this priority;
    ``shared_max``   cap on spill into the port's shared pool;
    ``headroom``     cap on draw from the shared headroom pool -- used
                     only by PFC-enabled priorities, only once XOFF has
                     been crossed (it absorbs the in-flight frames a
                     pause frame cannot stop);
    ``xoff``/``xon`` pause assert/deassert occupancy thresholds.  When
                     ``xoff`` is None it defaults to the full private +
                     shared quota (pause only once the quota is gone);
                     ``xon`` defaults to half of ``xoff``.
    """

    reserved: int
    shared_max: int = 0
    headroom: int = 0
    xoff: Optional[int] = None
    xon: Optional[int] = None

    def __post_init__(self):
        for name in ("reserved", "shared_max", "headroom"):
            if getattr(self, name) < 0:
                raise ValueError("BufferProfile.%s must be >= 0" % name)

    @property
    def effective_xoff(self) -> int:
        return self.xoff if self.xoff is not None else self.reserved + self.shared_max

    @property
    def effective_xon(self) -> int:
        return self.xon if self.xon is not None else self.effective_xoff // 2


@dataclass(frozen=True)
class QosConfig:
    """One port-class worth of buffer carving.

    ``profiles``       per-priority :class:`BufferProfile` map;
    ``shared_size``    size of the port's shared pool (packets);
    ``headroom_size``  size of the shared headroom pool (packets);
    ``ports``          ports the config binds to (empty = every port of
                       the build).
    """

    profiles: Mapping[int, BufferProfile] = field(default_factory=dict)
    shared_size: int = 0
    headroom_size: int = 0
    ports: Tuple[int, ...] = ()

    def __post_init__(self):
        if self.shared_size < 0 or self.headroom_size < 0:
            raise ValueError("pool sizes must be >= 0")
        for prio in self.profiles:
            if not 0 <= prio <= PCP_MASK:
                raise ValueError("priority %r outside the 3-bit PCP range" % (prio,))


def default_qos() -> QosConfig:
    """The shipped two-priority carving: lossless prio 0, lossy prio 1.

    Sized against the driver's burst of 32: priority 0 pauses at an
    occupancy of 48 (inside its 32 + 64 quota) and its 64-packet
    headroom absorbs more than one full burst of post-XOFF in-flight
    frames, so a PFC-on incast loses no priority-0 packets.
    """
    return QosConfig(
        profiles={
            0: BufferProfile(reserved=32, shared_max=64, headroom=64,
                             xoff=48, xon=16),
            1: BufferProfile(reserved=16, shared_max=64),
        },
        shared_size=96,
        headroom_size=64,
    )


def tight_qos() -> QosConfig:
    """A deliberately small carving that congests quickly (test/CI use)."""
    return QosConfig(
        profiles={
            0: BufferProfile(reserved=8, shared_max=16, headroom=40,
                             xoff=12, xon=4),
            1: BufferProfile(reserved=4, shared_max=16),
        },
        shared_size=24,
        headroom_size=40,
    )


def shipped_qos_configs() -> Dict[str, QosConfig]:
    """Named QoS carvings shipped with the repo (CLI ``--qos`` catalog)."""
    return {"default": default_qos(), "tight": tight_qos()}
