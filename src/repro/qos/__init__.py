"""QoS buffer management: per-priority pools, shared headroom, and PFC.

The congestion-robustness layer of the reproduction.  A
:class:`~repro.qos.config.QosConfig` carves each port's ingress
buffering into per-priority reserved quotas, a shared pool, and a
shared PFC headroom pool; a :class:`~repro.qos.port.QosPort` runs the
admission/pause/drain accounting at the NIC boundary; the ``PFCPause``
element (:mod:`repro.click.elements.qos`) watches occupancy and asserts
per-priority pause upstream so the trace source throttles instead of
being dropped.

Everything is opt-in through ``PacketMill(qos=...)``: with no config the
NIC, PMD, and driver hot paths are bit-identical to a QoS-less build.
Conservation is audited by :func:`repro.faults.audit.qos_audit`, and
profile consistency by :mod:`repro.analyze.qos`.
"""

from repro.qos.config import (
    PCP_MASK,
    PCP_SHIFT,
    BufferProfile,
    QosConfig,
    default_qos,
    packet_priority,
    shipped_qos_configs,
    tight_qos,
)
from repro.qos.port import QosAccountingError, QosPort

__all__ = [
    "PCP_MASK",
    "PCP_SHIFT",
    "BufferProfile",
    "QosAccountingError",
    "QosConfig",
    "QosPort",
    "default_qos",
    "packet_priority",
    "shipped_qos_configs",
    "tight_qos",
]
