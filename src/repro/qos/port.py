"""Per-port QoS buffer accounting: admission, pause, and drain.

A :class:`QosPort` sits between the NIC's descriptor ring and the trace
source, playing the role of a switch MMU for one ingress port:

- **admission** (:meth:`QosPort.admit`): every arriving frame is charged
  to its priority's reserved quota first, then spills into the shared
  pool, then -- for PFC-enabled priorities that have crossed XOFF --
  into the shared headroom pool.  A frame no bucket can hold is dropped
  and counted; admission never raises on the data path.
- **pause** (:meth:`QosPort.poll_pause`): the PFCPause element polls
  occupancy once per driver iteration and asserts/deasserts per-priority
  pause at the profile's XOFF/XON thresholds.  Paused priorities are
  reported to the trace source (802.1Qbb pause frames upstream), which
  stops offering traffic instead of having it dropped.
- **drain** (:meth:`QosPort.drain`): when a frame leaves the system
  (transmitted, dropped by an element, or discarded as an RX error) its
  charge is released headroom-first, then shared, then reserved -- the
  SONiC "headroom reclaim on drain" order, so pause deasserts as early
  as possible.

All accounting lives in ``qos.<port>.*`` registry counters (occupancy
gauges, pause durations, headroom high-water marks) and charges **no
simulated CPU cost**: like the fault injector's external pressure, the
MMU is modelled hardware, not cycles on the DUT core.  When no QoS
config is given, no QosPort exists and every hot path is untouched.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional

from repro.qos.config import PCP_MASK, PCP_SHIFT, QosConfig
from repro.telemetry.registry import CounterRegistry


class QosAccountingError(RuntimeError):
    """The QoS books went inconsistent (double drain, unknown priority)."""


class _PriorityState:
    """One priority's buckets plus its registry handles."""

    __slots__ = (
        "profile", "xoff", "xon",
        "reserved_used", "shared_used", "headroom_used", "paused",
        "offered", "admitted", "dropped", "drained",
        "pause_events", "pause_iterations",
        "occupancy", "occupancy_hwm", "headroom_gauge", "headroom_hwm",
    )

    def __init__(self, profile, scope, prio: int):
        self.profile = profile
        self.xoff = profile.effective_xoff
        self.xon = profile.effective_xon
        self.reserved_used = 0
        self.shared_used = 0
        self.headroom_used = 0
        self.paused = False
        base = "prio%d." % prio
        self.offered = scope.counter(base + "offered")
        self.admitted = scope.counter(base + "admitted")
        self.dropped = scope.counter(base + "dropped")
        self.drained = scope.counter(base + "drained")
        self.pause_events = scope.counter(base + "pause_events")
        self.pause_iterations = scope.counter(base + "pause_iterations")
        self.occupancy = scope.gauge(base + "occupancy")
        self.occupancy_hwm = scope.gauge(base + "occupancy_hwm")
        self.headroom_gauge = scope.gauge(base + "headroom_used")
        self.headroom_hwm = scope.gauge(base + "headroom_hwm")

    @property
    def occ(self) -> int:
        return self.reserved_used + self.shared_used + self.headroom_used


class QosPort:
    """Ingress buffer accounting for one NIC port under one QosConfig."""

    def __init__(self, config: QosConfig, port: int,
                 registry: Optional[CounterRegistry] = None):
        self.registry = registry if registry is not None else CounterRegistry()
        self.port = port
        self.config = config
        self.shared_size = config.shared_size
        self.headroom_size = config.headroom_size
        self.shared_used = 0
        self.headroom_pool_used = 0
        scope = self.registry.scope("qos.%d" % port)
        self._shared_gauge = scope.gauge("shared.used")
        self._shared_hwm = scope.gauge("shared.hwm")
        self._headroom_gauge = scope.gauge("headroom.used")
        self._headroom_hwm = scope.gauge("headroom.hwm")
        self.unpooled_drops = scope.counter("unpooled_drops")
        self._pfc: FrozenSet[int] = frozenset()
        self._states: Dict[int, _PriorityState] = {
            prio: _PriorityState(profile, scope, prio)
            for prio, profile in sorted(config.profiles.items())
        }

    # -- PFC -----------------------------------------------------------------

    def enable_pfc(self, priorities: Optional[Iterable[int]] = None) -> None:
        """Mark priorities lossless (pause propagates, headroom usable)."""
        if priorities is None:
            self._pfc = frozenset(self._states)
        else:
            self._pfc = self._pfc | frozenset(priorities)

    @property
    def pfc_priorities(self) -> FrozenSet[int]:
        return self._pfc

    def paused_priorities(self) -> FrozenSet[int]:
        """Priorities the upstream source currently sees as paused."""
        return frozenset(
            prio for prio, state in self._states.items() if state.paused
        )

    def poll_pause(self) -> None:
        """One watch iteration: assert XOFF / deassert XON per priority.

        Called by the PFCPause element once per driver iteration; pause
        state is therefore stable within a burst, and the in-flight
        remainder of the iteration that crossed XOFF is what the
        headroom pool absorbs.
        """
        for prio in self._pfc:
            state = self._states.get(prio)
            if state is None:
                continue
            occ = state.occ
            if state.paused:
                state.pause_iterations.value += 1
                if occ <= state.xon:
                    state.paused = False
            elif occ >= state.xoff:
                state.paused = True
                state.pause_events.value += 1
                state.pause_iterations.value += 1

    # -- admission / drain ----------------------------------------------------

    def admit(self, pkt) -> bool:
        """Charge an arriving frame to a bucket, or count the drop.

        Returns False when no bucket can hold the frame; the caller
        leaves the descriptor unconsumed and the frame never enters the
        pipeline (it is accounted in ``qos.<port>.prio<p>.dropped``).
        """
        prio = (pkt.vlan_tci >> PCP_SHIFT) & PCP_MASK
        state = self._states.get(prio)
        if state is None:
            self.unpooled_drops.value += 1
            return False
        state.offered.value += 1
        profile = state.profile
        if state.reserved_used < profile.reserved:
            state.reserved_used += 1
        elif (state.shared_used < profile.shared_max
              and self.shared_used < self.shared_size):
            state.shared_used += 1
            self.shared_used += 1
            self._shared_gauge.value = self.shared_used
            if self.shared_used > self._shared_hwm.value:
                self._shared_hwm.value = self.shared_used
        elif (prio in self._pfc
              and (state.paused or state.occ >= state.xoff)
              and state.headroom_used < profile.headroom
              and self.headroom_pool_used < self.headroom_size):
            state.headroom_used += 1
            self.headroom_pool_used += 1
            self._headroom_gauge.value = self.headroom_pool_used
            if self.headroom_pool_used > self._headroom_hwm.value:
                self._headroom_hwm.value = self.headroom_pool_used
            state.headroom_gauge.value = state.headroom_used
            if state.headroom_used > state.headroom_hwm.value:
                state.headroom_hwm.value = state.headroom_used
        else:
            state.dropped.value += 1
            return False
        state.admitted.value += 1
        occ = state.occ
        state.occupancy.value = occ
        if occ > state.occupancy_hwm.value:
            state.occupancy_hwm.value = occ
        pkt.qos_ticket = (self, prio)
        return True

    def drain(self, prio: int) -> None:
        """Release one frame's charge, headroom-first (SONiC reclaim order)."""
        state = self._states.get(prio)
        if state is None:
            raise QosAccountingError(
                "drain for priority %d with no buffer profile on port %d"
                % (prio, self.port))
        if state.headroom_used:
            state.headroom_used -= 1
            self.headroom_pool_used -= 1
            self._headroom_gauge.value = self.headroom_pool_used
            state.headroom_gauge.value = state.headroom_used
        elif state.shared_used:
            state.shared_used -= 1
            self.shared_used -= 1
            self._shared_gauge.value = self.shared_used
        elif state.reserved_used:
            state.reserved_used -= 1
        else:
            raise QosAccountingError(
                "drain without a matching admit on port %d priority %d "
                "(double drain?)" % (self.port, prio))
        state.drained.value += 1
        state.occupancy.value = state.occ

    # -- introspection ---------------------------------------------------------

    @property
    def priorities(self):
        return tuple(sorted(self._states))

    def occupancy(self, prio: int) -> int:
        state = self._states.get(prio)
        return 0 if state is None else state.occ

    def total_occupancy(self) -> int:
        return sum(state.occ for state in self._states.values())

    def is_paused(self, prio: int) -> bool:
        state = self._states.get(prio)
        return False if state is None else state.paused

    def priority_accounts(self) -> Dict[int, Dict[str, int]]:
        """Raw per-priority books, the audit's ground truth."""
        return {
            prio: {
                "offered": state.offered.value,
                "admitted": state.admitted.value,
                "dropped": state.dropped.value,
                "drained": state.drained.value,
                "reserved_used": state.reserved_used,
                "shared_used": state.shared_used,
                "headroom_used": state.headroom_used,
                "occupancy": state.occ,
                "paused": int(state.paused),
                "pause_events": state.pause_events.value,
                "pause_iterations": state.pause_iterations.value,
            }
            for prio, state in self._states.items()
        }

    def snapshot(self) -> Dict[str, int]:
        """The port's ``qos.*`` registry slice (prefix stripped)."""
        return self.registry.scope("qos.%d" % self.port).snapshot()
