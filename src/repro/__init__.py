"""PacketMill (ASPLOS '21) reproduction on a simulated commodity-hardware substrate.

The package is organized in layers, bottom-up:

- :mod:`repro.telemetry` -- counter registry, windowed sampling, cycle
  attribution, trace spans (the one source of truth for every statistic).
- :mod:`repro.net` -- packets, protocol headers, traffic traces.
- :mod:`repro.hw` -- cycle-level hardware model (caches, DDIO, TLB, CPU).
- :mod:`repro.dpdk` -- userspace NIC substrate (mbufs, mempools, PMD, PCIe).
- :mod:`repro.compiler` -- mini-IR and the optimization passes PacketMill
  applies (devirtualization, constant embedding, static graph, LTO inlining,
  metadata struct-field reordering).
- :mod:`repro.click` -- the modular packet-processing framework (FastClick
  analogue): config language, element library, run-to-completion driver.
- :mod:`repro.core` -- the paper's contribution: the X-Change metadata model
  and the PacketMill build pipeline producing specialized binaries.
- :mod:`repro.frameworks` -- baseline frameworks (VPP, BESS, l2fwd, ...).
- :mod:`repro.perf` -- measurement harness (throughput, latency, counters).
- :mod:`repro.experiments` -- one module per paper figure/table.
"""

__version__ = "1.0.0"

__all__ = [
    "PacketMill",
    "RunProfile",
    "BuildOptions",
    "MetadataModel",
    "ExecutionTier",
    "TierPolicy",
    "FaultSchedule",
    "FaultSpec",
    "ShardedRuntime",
    "RssConfig",
    "SteeringPolicy",
    "ControlSocket",
    "MergedRegistry",
    "CounterRegistry",
    "Telemetry",
    "TelemetryConfig",
    "AnalysisReport",
    "analyze_config",
    "__version__",
]

_LAZY = {
    "PacketMill": ("repro.core.packetmill", "PacketMill"),
    "RunProfile": ("repro.core.profile", "RunProfile"),
    "BuildOptions": ("repro.core.options", "BuildOptions"),
    "MetadataModel": ("repro.core.options", "MetadataModel"),
    "ExecutionTier": ("repro.compiler.runtime", "ExecutionTier"),
    "TierPolicy": ("repro.compiler.runtime", "TierPolicy"),
    "FaultSchedule": ("repro.faults.schedule", "FaultSchedule"),
    "FaultSpec": ("repro.faults.schedule", "FaultSpec"),
    "ShardedRuntime": ("repro.core.sharded", "ShardedRuntime"),
    "RssConfig": ("repro.net.rss", "RssConfig"),
    "SteeringPolicy": ("repro.net.steering", "SteeringPolicy"),
    "ControlSocket": ("repro.control", "ControlSocket"),
    "MergedRegistry": ("repro.telemetry.registry", "MergedRegistry"),
    "CounterRegistry": ("repro.telemetry.registry", "CounterRegistry"),
    "Telemetry": ("repro.telemetry", "Telemetry"),
    "TelemetryConfig": ("repro.telemetry", "TelemetryConfig"),
    "AnalysisReport": ("repro.analyze.findings", "AnalysisReport"),
    "analyze_config": ("repro.analyze.api", "analyze_config"),
}


def __getattr__(name):
    """Lazily expose the top-level API without importing every layer upfront."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError("module 'repro' has no attribute %r" % name) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
