"""Statistics helpers: percentiles and the fits annotated on the figures.

Fig. 4 annotates linear throughput-vs-frequency fits (``T(f) = a + b f``)
and quadratic latency fits with their R²; these are the same estimators.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not samples:
        raise ValueError("no samples")
    if not 0 <= q <= 100:
        raise ValueError("percentile out of range: %r" % q)
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    # The delta form is exact when both samples are equal, keeping the
    # percentile function monotone in q despite float rounding.
    return ordered[low] + (ordered[high] - ordered[low]) * frac


def mean(samples: Sequence[float]) -> float:
    if not samples:
        raise ValueError("no samples")
    return sum(samples) / len(samples)


def _r_squared(ys: Sequence[float], predicted: Sequence[float]) -> float:
    y_mean = mean(ys)
    ss_tot = sum((y - y_mean) ** 2 for y in ys)
    ss_res = sum((y - p) ** 2 for y, p in zip(ys, predicted))
    if ss_tot == 0:
        return 1.0
    return 1.0 - ss_res / ss_tot


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float, float]:
    """Least-squares ``y = a + b x``; returns (a, b, r_squared)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need >= 2 paired samples")
    n = len(xs)
    sx = sum(xs)
    sy = sum(ys)
    sxx = sum(x * x for x in xs)
    sxy = sum(x * y for x, y in zip(xs, ys))
    denom = n * sxx - sx * sx
    if denom == 0:
        raise ValueError("degenerate x values")
    b = (n * sxy - sx * sy) / denom
    a = (sy - b * sx) / n
    predicted = [a + b * x for x in xs]
    return a, b, _r_squared(ys, predicted)


def quadratic_fit(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float, float, float]:
    """Least-squares ``y = a + b x + c x^2``; returns (a, b, c, r_squared)."""
    if len(xs) != len(ys) or len(xs) < 3:
        raise ValueError("need >= 3 paired samples")
    # Normal equations for the 3-parameter fit.
    n = len(xs)
    s = [sum(x ** k for x in xs) for k in range(5)]
    t = [sum(y * x ** k for x, y in zip(xs, ys)) for k in range(3)]
    # Solve the 3x3 system via Gaussian elimination.
    matrix = [
        [n, s[1], s[2], t[0]],
        [s[1], s[2], s[3], t[1]],
        [s[2], s[3], s[4], t[2]],
    ]
    for col in range(3):
        pivot_row = max(range(col, 3), key=lambda r: abs(matrix[r][col]))
        if abs(matrix[pivot_row][col]) < 1e-12:
            raise ValueError("degenerate x values")
        matrix[col], matrix[pivot_row] = matrix[pivot_row], matrix[col]
        pivot = matrix[col][col]
        matrix[col] = [v / pivot for v in matrix[col]]
        for row in range(3):
            if row != col:
                factor = matrix[row][col]
                matrix[row] = [rv - factor * cv for rv, cv in zip(matrix[row], matrix[col])]
    a, b, c = matrix[0][3], matrix[1][3], matrix[2][3]
    predicted = [a + b * x + c * x * x for x in xs]
    return a, b, c, _r_squared(ys, predicted)
