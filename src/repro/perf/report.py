"""Run health reporting: distinguish "CPU-bound" from "fault-degraded".

A throughput number alone cannot tell an operator *why* a run fell short
of line rate: the core may simply be saturated, or the pipeline may be
shedding load because of faults (mempool exhaustion, link flaps, frame
corruption, TX backpressure).  This module reads the degraded-path ledger
(:class:`repro.click.driver.RunStats` or the mirrored perf-counter
snapshot) and renders the distinction, the same way an operator would
read ``rte_eth_stats``/xstats next to a perf profile.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.click.driver import RunStats
from repro.telemetry.ledger import (
    HW_DETAIL_NAMES,
    LEDGER_FIELDS,
    ledger_from_stats,
)

HEALTHY = "healthy"
FAULT_DEGRADED = "fault-degraded"
CONGESTED = "congested"

#: Ledger entries that mark a run as degraded, with display labels --
#: the single schema from repro.telemetry.ledger.
_DROP_FIELDS = LEDGER_FIELDS


def _ledger(source: Union[RunStats, Dict[str, int]]) -> Dict[str, int]:
    """Normalize a RunStats or counter snapshot into the drop ledger."""
    if isinstance(source, RunStats):
        return ledger_from_stats(source)
    return {name: int(source.get(name, 0)) for name, _ in _DROP_FIELDS}


def classify(source: Union[RunStats, Dict[str, int]]) -> str:
    """``"healthy"`` or ``"fault-degraded"`` for one run's ledger."""
    ledger = _ledger(source)
    return FAULT_DEGRADED if any(ledger.values()) else HEALTHY


def drop_breakdown(source: Union[RunStats, Dict[str, int]]) -> Dict[str, int]:
    """The nonzero entries of the drop ledger."""
    return {name: count for name, count in _ledger(source).items() if count}


def format_report(
    stats: RunStats,
    bound_by: Optional[str] = None,
    label: str = "run",
) -> str:
    """Render one run's health report.

    ``bound_by`` is the physical ceiling from
    :class:`repro.perf.runner.ThroughputPoint` ("cpu", "link", ...); it is
    reported only for healthy runs, where it is the true explanation of
    the achieved rate.
    """
    verdict = classify(stats)
    lines = ["%s: %s" % (label, verdict)]
    if verdict == HEALTHY:
        if bound_by:
            lines.append("  bound by: %s" % bound_by)
        lines.append("  rx=%d tx=%d drops=%d"
                     % (stats.rx_packets, stats.tx_packets, stats.drops))
        return "\n".join(lines)
    ledger = _ledger(stats)
    lines.append("  rx=%d tx=%d pipeline_drops=%d dropped_total=%d"
                 % (stats.rx_packets, stats.tx_packets, stats.drops,
                    stats.dropped_total))
    for name, description in _DROP_FIELDS:
        if ledger[name]:
            lines.append("  %-38s %d" % (description + ":", ledger[name]))
    if stats.errors_by_element:
        for element, count in sorted(stats.errors_by_element.items()):
            lines.append("    error boundary at %-20s %d" % (element + ":", count))
    detail = stats.hw_counters
    for extra in HW_DETAIL_NAMES:
        if detail.get(extra):
            lines.append("  %-38s %d" % (extra + ":", detail[extra]))
    return "\n".join(lines)


def classify_qos(audit: Dict[int, Dict[str, object]]) -> str:
    """``"healthy"`` or ``"congested"`` from a :func:`qos_audit` result.

    A run is *congested* when the QoS machinery had to act: admission
    dropped frames, pause asserted, or the shared headroom pool was
    touched.  This is deliberately distinct from :func:`classify`'s
    fault verdict -- congestion is offered load exceeding capacity, not
    a malfunction.
    """
    for breakdown in audit.values():
        for acc in breakdown["priorities"].values():
            if acc["dropped"] or acc["pause_events"]:
                return CONGESTED
    return HEALTHY


def format_qos_report(audit: Dict[int, Dict[str, object]],
                      label: str = "run") -> str:
    """Render per-port, per-priority QoS books from a :func:`qos_audit`.

    Shows offered/admitted/dropped/pause accounting per priority plus
    the port-level pool usage; audit ``errors`` (conservation
    violations) are rendered prominently when present.
    """
    lines = ["%s: %s" % (label, classify_qos(audit))]
    for port, breakdown in sorted(audit.items()):
        lines.append("  port %d: shared=%d headroom=%d occupancy=%d "
                     "unpooled_drops=%d"
                     % (port, breakdown["shared_used"],
                        breakdown["headroom_used"], breakdown["occupancy"],
                        breakdown["unpooled_drops"]))
        for prio, acc in sorted(breakdown["priorities"].items()):
            lines.append(
                "    prio %d: offered=%-6d admitted=%-6d dropped=%-5d "
                "pause_events=%-4d pause_iterations=%d"
                % (prio, acc["offered"], acc["admitted"], acc["dropped"],
                   acc["pause_events"], acc["pause_iterations"]))
        for error in breakdown["errors"]:
            lines.append("    CONSERVATION VIOLATION: %s" % error)
    return "\n".join(lines)


def format_telemetry_report(telemetry, metric: str = "cycles",
                            window_names=None) -> str:
    """Render one build's telemetry: attribution, flamegraph, windows.

    ``telemetry`` is the :class:`repro.telemetry.Telemetry` bundle a
    measured run carries (``run.telemetry``); sections whose recorder
    was disabled are skipped.
    """
    sections = []
    if telemetry.attribution is not None and telemetry.attribution.buckets():
        sections.append(telemetry.attribution.format_top(metric))
    if telemetry.spans is not None and telemetry.spans.folded():
        sections.append(telemetry.flamegraph())
    if telemetry.sampler is not None and telemetry.sampler.windows:
        sections.append(telemetry.sampler.format_table(window_names))
    if not sections:
        return "(no telemetry recorded)"
    return "\n\n".join(sections)
