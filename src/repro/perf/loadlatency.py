"""Open-loop load/latency simulation (Figs. 1, 4, 8).

The generator offers packets at a fixed rate regardless of the DUT's
progress (open loop).  The DUT serves them in bursts at the service rate
measured from the hardware model.  A finite RX ring gives the classic
behaviour of these experiments: flat latency under light load, a sharp
knee near saturation, then latency pinned at ring-depth/service-rate with
drops -- which is why Fig. 1's curves bend where they do.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.perf.stats import mean, percentile


@dataclass
class LatencyResult:
    """Latency distribution at one offered load."""

    offered_pps: float
    achieved_pps: float
    drop_rate: float
    mean_us: float
    p50_us: float
    p99_us: float
    samples: int

    @property
    def saturated(self) -> bool:
        return self.drop_rate > 0.005


class LoadLatencySimulator:
    """Batch-service queueing simulation over a finite RX ring."""

    def __init__(
        self,
        service_ns_per_packet: float,
        ring_size: int = 1024,
        burst: int = 32,
        poll_overhead_ns: float = 30.0,
        base_latency_us: float = 6.0,
        seed: int = 1,
    ):
        """``base_latency_us`` is the load-independent floor: wire + NIC +
        PCIe + generator timestamping, ~5-8 us on the paper's testbed."""
        if service_ns_per_packet <= 0:
            raise ValueError("service time must be positive")
        self.service_ns = service_ns_per_packet
        self.ring_size = ring_size
        self.burst = burst
        self.poll_overhead_ns = poll_overhead_ns
        self.base_latency_us = base_latency_us
        self.seed = seed

    def capacity_pps(self) -> float:
        """The service rate the ring can sustain."""
        batch_ns = self.burst * self.service_ns + self.poll_overhead_ns
        return self.burst / batch_ns * 1e9

    def run(self, offered_pps: float, n_packets: int = 200_000) -> LatencyResult:
        """Simulate ``n_packets`` Poisson arrivals at ``offered_pps``."""
        if offered_pps <= 0:
            raise ValueError("offered load must be positive")
        rng = random.Random(self.seed)
        interval = 1e9 / offered_pps
        arrivals: List[float] = []
        t = 0.0
        for _ in range(n_packets):
            t += rng.expovariate(1.0) * interval
            arrivals.append(t)

        latencies_ns: List[float] = []
        drops = 0
        queue: List[float] = []  # arrival times of queued packets
        head = 0  # next arrival index not yet enqueued
        now = 0.0
        while head < n_packets or queue:
            # Enqueue everything that has arrived by `now`; ring overflow drops.
            while head < n_packets and arrivals[head] <= now:
                if len(queue) < self.ring_size:
                    queue.append(arrivals[head])
                else:
                    drops += 1
                head += 1
            if not queue:
                # Idle: jump to the next arrival.
                now = arrivals[head]
                continue
            batch = queue[: self.burst]
            del queue[: len(batch)]
            now += self.poll_overhead_ns + len(batch) * self.service_ns
            for arrival in batch:
                latencies_ns.append(now - arrival)

        served = len(latencies_ns)
        duration_s = (now - arrivals[0]) / 1e9 if served else 0.0
        achieved = served / duration_s if duration_s > 0 else 0.0
        base_ns = self.base_latency_us * 1000.0
        lat_us = [(l + base_ns) / 1000.0 for l in latencies_ns]
        return LatencyResult(
            offered_pps=offered_pps,
            achieved_pps=achieved,
            drop_rate=drops / n_packets,
            mean_us=mean(lat_us),
            p50_us=percentile(lat_us, 50),
            p99_us=percentile(lat_us, 99),
            samples=served,
        )

    def sweep(self, loads_pps, n_packets: int = 120_000) -> List[LatencyResult]:
        return [self.run(load, n_packets) for load in loads_pps]
