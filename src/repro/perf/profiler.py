"""Per-element profiling: where do the packet's nanoseconds go?

The paper's premise for specialization is that "for a given network
function and workload there is a subset of all execution paths that are
very frequently used".  This profiler attributes the hardware model's
costs to individual elements (plus the PMD RX/TX paths and graph
dispatch), producing the breakdown a perf-record session would give on
the real system -- and the input a PGO-style workflow would consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.binary import SpecializedBinary


@dataclass
class ElementProfile:
    """Accumulated cost of one element (or pseudo-element)."""

    name: str
    class_name: str
    packets: int = 0
    ns: float = 0.0
    instructions: float = 0.0

    @property
    def ns_per_packet(self) -> float:
        return self.ns / self.packets if self.packets else 0.0


@dataclass
class ProfileReport:
    """The whole run's attribution."""

    total_ns: float
    total_packets: int
    elements: Dict[str, ElementProfile] = field(default_factory=dict)

    def sorted_by_cost(self) -> List[ElementProfile]:
        return sorted(self.elements.values(), key=lambda e: -e.ns)

    def share(self, name: str) -> float:
        if self.total_ns == 0:
            return 0.0
        return self.elements[name].ns / self.total_ns

    def hottest(self) -> ElementProfile:
        return self.sorted_by_cost()[0]

    def format_table(self) -> str:
        lines = [
            "%-26s %-18s %10s %10s %7s"
            % ("element", "class", "ns/pkt", "instr/pkt", "share"),
        ]
        for profile in self.sorted_by_cost():
            if profile.packets == 0:
                continue
            lines.append(
                "%-26s %-18s %10.2f %10.1f %6.1f%%"
                % (
                    profile.name,
                    profile.class_name,
                    profile.ns_per_packet,
                    profile.instructions / profile.packets,
                    self.share(profile.name) * 100,
                )
            )
        lines.append("total: %.1f ns/packet over %d packets"
                     % (self.total_ns / max(1, self.total_packets),
                        self.total_packets))
        return "\n".join(lines)


class ElementProfiler:
    """Attribute a binary's run cost to its elements.

    Wraps the driver's per-element charging and the PMDs' burst methods
    with cost snapshots.  Profiling perturbs nothing: it reads the same
    accumulators the measurement uses.
    """

    def __init__(self, binary: SpecializedBinary):
        self.binary = binary

    def profile(self, batches: int = 150, warmup_batches: int = 80) -> ProfileReport:
        binary = self.binary
        driver = binary.driver
        cpu = binary.cpu
        profiles: Dict[str, ElementProfile] = {}
        for element in binary.graph.all_elements():
            profiles[element.name] = ElementProfile(
                element.name, element.decl.class_name
            )
        rx_profile = profiles["<pmd-rx>"] = ElementProfile("<pmd-rx>", "MlxPmd")
        tx_profile = profiles["<pmd-tx>"] = ElementProfile("<pmd-tx>", "MlxPmd")

        original_charge = driver._charge_element

        def charging_wrapper(element, batch):
            before = cpu.elapsed_ns()
            before_instr = cpu.instructions
            original_charge(element, batch)
            profile = profiles[element.name]
            profile.ns += cpu.elapsed_ns() - before
            profile.instructions += cpu.instructions - before_instr
            profile.packets += len(batch)

        wrapped_pmds = []
        for pmd in binary.pmds.values():
            original_rx = pmd.rx_burst
            original_tx = pmd.tx_burst

            def rx_wrapper(max_burst, _orig=original_rx):
                before = cpu.elapsed_ns()
                before_instr = cpu.instructions
                out = _orig(max_burst)
                rx_profile.ns += cpu.elapsed_ns() - before
                rx_profile.instructions += cpu.instructions - before_instr
                rx_profile.packets += len(out)
                return out

            def tx_wrapper(packets, _orig=original_tx):
                before = cpu.elapsed_ns()
                before_instr = cpu.instructions
                sent = _orig(packets)
                tx_profile.ns += cpu.elapsed_ns() - before
                tx_profile.instructions += cpu.instructions - before_instr
                tx_profile.packets += sent
                return sent

            wrapped_pmds.append((pmd, original_rx, original_tx))
            pmd.rx_burst = rx_wrapper
            pmd.tx_burst = tx_wrapper

        driver._charge_element = charging_wrapper
        try:
            binary.warmup(warmup_batches)
            for profile in profiles.values():
                profile.packets = 0
                profile.ns = 0.0
                profile.instructions = 0.0
            run = binary.run(batches)
        finally:
            driver._charge_element = original_charge
            for pmd, original_rx, original_tx in wrapped_pmds:
                pmd.rx_burst = original_rx
                pmd.tx_burst = original_tx
        return ProfileReport(
            total_ns=run.elapsed_ns,
            total_packets=run.packets,
            elements=profiles,
        )
