"""Measurement harness: throughput, open-loop latency, sweeps, statistics.

This plays the role of the paper's NPF testbed orchestration: it drives
built binaries to steady state, applies the physical rate ceilings (link,
PCIe, NIC queue), simulates the open-loop latency experiments, and
computes the summary statistics the figures report.
"""

from repro.perf.loadlatency import LatencyResult, LoadLatencySimulator
from repro.perf.report import (
    classify,
    classify_qos,
    drop_breakdown,
    format_qos_report,
    format_report,
)
from repro.perf.runner import (
    ThroughputPoint,
    measure_multicore,
    measure_sharded,
    measure_throughput,
)
from repro.perf.stats import linear_fit, percentile, quadratic_fit

__all__ = [
    "LatencyResult",
    "LoadLatencySimulator",
    "ThroughputPoint",
    "classify",
    "classify_qos",
    "drop_breakdown",
    "format_qos_report",
    "format_report",
    "linear_fit",
    "measure_multicore",
    "measure_sharded",
    "measure_throughput",
    "percentile",
    "quadratic_fit",
]
