"""ASCII chart rendering for experiment results.

The paper's figures are throughput/latency curves; these helpers render
the reproduced series directly in the terminal (benchmarks print them
alongside the numeric tables), with one marker character per series and
min/max-labelled axes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

MARKERS = "xo*+#@%&"


def line_chart(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (xs, ys) series on one shared-axis character grid."""
    if not series:
        raise ValueError("no series to plot")
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys) or not xs:
            raise ValueError("series %r needs equal, non-empty xs/ys" % name)
    all_x = [x for xs, _ in series.values() for x in xs]
    all_y = [y for _, ys in series.values() for y in ys]
    x_min, x_max = min(all_x), max(all_x)
    y_min, y_max = min(all_y), max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    if x_max == x_min:
        x_max = x_min + 1.0
    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        col = int(round((x - x_min) / (x_max - x_min) * (width - 1)))
        row = int(round((y - y_min) / (y_max - y_min) * (height - 1)))
        grid[height - 1 - row][col] = marker

    legend = []
    for index, (name, (xs, ys)) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        legend.append("%s %s" % (marker, name))
        for x, y in zip(xs, ys):
            place(x, y, marker)

    lines = []
    if title:
        lines.append(title)
    y_top = "%.4g" % y_max
    y_bot = "%.4g" % y_min
    margin = max(len(y_top), len(y_bot), len(y_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_top
        elif row_index == height - 1:
            label = y_bot
        elif row_index == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append("%*s |%s" % (margin, label, "".join(row)))
    lines.append("%*s +%s" % (margin, "", "-" * width))
    x_axis = "%.4g" % x_min + " " * max(1, width - len("%.4g" % x_min) - len("%.4g" % x_max)) + "%.4g" % x_max
    lines.append("%*s  %s" % (margin, "", x_axis))
    if x_label:
        lines.append("%*s  %s" % (margin, "", x_label.center(width)))
    lines.append("%*s  %s" % (margin, "", "   ".join(legend)))
    return "\n".join(lines)


def result_chart(result, x: str, y: str, group: str = "variant",
                 width: int = 64, height: int = 16, title: str = "") -> str:
    """Chart any :class:`repro.experiments.result.ExperimentResult`.

    Pivots the result's flat ``points`` into per-``group`` series and
    renders them with :func:`line_chart` -- no per-figure shape knowledge
    needed (``result_chart(fig06.run(scale), "size", "gbps")``).
    """
    series = result.series(x, y, group)
    return line_chart(
        series,
        width=width,
        height=height,
        title=title or "%s: %s vs %s" % (result.name, y, x),
        x_label=x,
        y_label=y,
    )


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 50, title: str = "", unit: str = "") -> str:
    """Horizontal bar chart with value annotations."""
    if len(labels) != len(values) or not labels:
        raise ValueError("labels and values must pair up")
    peak = max(values)
    if peak <= 0:
        raise ValueError("need a positive maximum value")
    label_width = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(value / peak * width)))
        lines.append(
            "%-*s |%-*s %.2f%s" % (label_width, label, width, bar, value, unit)
        )
    return "\n".join(lines)
