"""NPF-style experiment orchestration (the paper's §B.2 workflow tool).

The authors drive their testbed with the Network Performance Framework:
declare variables, run every combination several times with randomized
environments, and report medians.  This module provides the same
workflow over simulated binaries: a grid of variables, a runner callable,
per-repeat seed randomization (the stand-in for NPF's ASLR/env-var
randomization that fights measurement bias, §5), medians across repeats,
and CSV export.
"""

from __future__ import annotations

import csv
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence

from repro.perf.stats import percentile


@dataclass(frozen=True)
class Variable:
    """One experiment axis."""

    name: str
    values: Sequence

    def __post_init__(self):
        if not self.values:
            raise ValueError("variable %r has no values" % self.name)


@dataclass
class TestResult:
    """All repeats of one grid point."""

    __test__ = False  # not a pytest case, despite the Test* name

    point: Dict[str, object]
    metrics: Dict[str, List[float]] = field(default_factory=dict)

    def median(self, metric: str) -> float:
        return percentile(self.metrics[metric], 50)

    def spread(self, metric: str) -> float:
        """Max relative deviation from the median across repeats."""
        med = self.median(metric)
        if med == 0:
            return 0.0
        return max(abs(v - med) / abs(med) for v in self.metrics[metric])


class ResultSet:
    """Results for a whole grid."""

    def __init__(self, name: str, variables: Sequence[str], metrics: Sequence[str]):
        self.name = name
        self.variables = list(variables)
        self.metric_names = list(metrics)
        self.results: List[TestResult] = []

    def add(self, result: TestResult) -> None:
        self.results.append(result)

    def rows(self) -> List[Dict[str, object]]:
        out = []
        for result in self.results:
            row = dict(result.point)
            for metric in self.metric_names:
                row[metric] = result.median(metric)
            out.append(row)
        return out

    def column(self, metric: str) -> List[float]:
        return [r.median(metric) for r in self.results]

    def filtered(self, **conditions) -> List[TestResult]:
        return [
            r
            for r in self.results
            if all(r.point.get(k) == v for k, v in conditions.items())
        ]

    def to_csv(self, path: str) -> None:
        fieldnames = self.variables + self.metric_names
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            for row in self.rows():
                writer.writerow({k: row[k] for k in fieldnames})

    def format(self) -> str:
        header = "  ".join("%12s" % c for c in self.variables + self.metric_names)
        lines = [self.name, header]
        for row in self.rows():
            cells = []
            for column in self.variables + self.metric_names:
                value = row[column]
                cells.append("%12s" % (("%.3f" % value) if isinstance(value, float) else value))
            lines.append("  ".join(cells))
        return "\n".join(lines)


class NpfRunner:
    """Run a runner callable over a variable grid with repeats."""

    def __init__(self, repeats: int = 3, base_seed: int = 1000):
        if repeats < 1:
            raise ValueError("need at least one repeat")
        self.repeats = repeats
        self.base_seed = base_seed

    def run(
        self,
        name: str,
        variables: Sequence[Variable],
        runner: Callable[..., Mapping[str, float]],
    ) -> ResultSet:
        """``runner(seed=..., **point)`` must return a metric dict."""
        names = [v.name for v in variables]
        metric_names: List[str] = []
        result_set = None
        for combo in itertools.product(*(v.values for v in variables)):
            point = dict(zip(names, combo))
            result = TestResult(point=point)
            for repeat in range(self.repeats):
                seed = self.base_seed + 17 * repeat  # randomized environment
                metrics = runner(seed=seed, **point)
                if not metric_names:
                    metric_names = list(metrics)
                for key, value in metrics.items():
                    result.metrics.setdefault(key, []).append(float(value))
            if result_set is None:
                result_set = ResultSet(name, names, metric_names)
            result_set.add(result)
        if result_set is None:
            raise ValueError("empty variable grid")
        return result_set
