"""Saturated-throughput measurement with physical rate ceilings.

The hardware model yields a CPU service rate (packets/s one core can
process); the *achieved* rate is additionally bounded by the 100-Gbps
link, the PCIe link, and the non-vectorized MLX5 single-queue ceiling --
the "other bottlenecks" that flatten Fig. 5's curves at high frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.binary import MeasuredRun, SpecializedBinary
from repro.dpdk.pcie import PcieModel
from repro.telemetry.registry import merge


def aggregate_counters(binaries: Sequence[SpecializedBinary]):
    """Name-wise sum of every replica's registry snapshot.

    The multicore view of the telemetry registry: per-core counters
    (``driver.rx_packets``, ``cpu.llc_misses``, ``nic.0.imissed``, ...)
    merged across replicas, the way ``rte_eth_stats`` aggregates queues.
    """
    return merge(b.telemetry.registry.snapshot() for b in binaries)


@dataclass
class ThroughputPoint:
    """One steady-state throughput measurement."""

    pps: float
    gbps: float
    cpu_pps: float
    ns_per_packet: float
    mean_frame_len: float
    bound_by: str  # "cpu" | "queue" | "pcie" | "link"
    run: MeasuredRun

    @property
    def mpps(self) -> float:
        return self.pps / 1e6

    @property
    def fault_degraded(self) -> bool:
        """Whether the measured run shed load to faults (vs being CPU-bound)."""
        return self.run.stats is not None and self.run.stats.fault_degraded

    def health_report(self, label: str = "run") -> str:
        """Render the healthy/fault-degraded verdict for this measurement."""
        from repro.perf.report import format_report

        if self.run.stats is None:
            return "%s: healthy\n  bound by: %s" % (label, self.bound_by)
        return format_report(self.run.stats, bound_by=self.bound_by, label=label)

    def counter_per_window(self, name: str, window_s: float = 0.1) -> float:
        """perf-style events per 100 ms at the achieved rate."""
        return self.run.counters[name] / self.run.packets * self.pps * window_s


def _apply_ceilings(cpu_pps: float, frame_len: float, params, n_ports: int):
    """Clamp the CPU rate by the per-port physical limits."""
    pcie = PcieModel(params)
    limits = {
        "cpu": cpu_pps,
        "queue": params.nic_queue_pps_limit * n_ports,
        "pcie": pcie.pps_limit(frame_len) * n_ports,
        "link": params.line_rate_pps(frame_len) * n_ports,
    }
    bound_by = min(limits, key=limits.get)
    return limits[bound_by], bound_by


def measure_throughput(
    binary: SpecializedBinary,
    batches: int = 250,
    warmup_batches: int = 120,
) -> ThroughputPoint:
    """Measure one binary at saturation."""
    run = binary.measure(batches=batches, warmup_batches=warmup_batches)
    cpu_pps = 1e9 / run.ns_per_packet
    frame = run.mean_frame_len or 64.0
    n_ports = len(binary.pmds)
    pps, bound_by = _apply_ceilings(cpu_pps, frame, binary.params, n_ports)
    return ThroughputPoint(
        pps=pps,
        gbps=pps * frame * 8 / 1e9,
        cpu_pps=cpu_pps,
        ns_per_packet=run.ns_per_packet,
        mean_frame_len=frame,
        bound_by=bound_by,
        run=run,
    )


def _aggregate_point(runs: Sequence[MeasuredRun], params, n_ports: int,
                     n_cores: int) -> ThroughputPoint:
    """Fold per-core measured runs into one cluster-level point.

    The aggregate CPU rate is the sum of per-core service rates, clamped
    by the shared link/PCIe (RSS splits one port's traffic, so the port
    ceilings apply to the *sum*); the queue ceiling scales with cores
    because every core adds an RX queue.  With ``n_cores == 1`` every
    formula reduces exactly to :func:`measure_throughput`'s.
    """
    total_cpu_pps = sum(1e9 / r.ns_per_packet for r in runs)
    frame = runs[0].mean_frame_len or 64.0
    limits = {
        "cpu": total_cpu_pps,
        "queue": params.nic_queue_pps_limit * n_cores * n_ports,
        "pcie": PcieModel(params).pps_limit(frame) * n_ports,
        "link": params.line_rate_pps(frame) * n_ports,
    }
    bound_by = min(limits, key=limits.get)
    pps = limits[bound_by]
    total_packets = sum(r.packets for r in runs)
    total_ns = sum(r.elapsed_ns for r in runs)
    return ThroughputPoint(
        pps=pps,
        gbps=pps * frame * 8 / 1e9,
        cpu_pps=total_cpu_pps,
        ns_per_packet=total_ns / total_packets if total_packets else float("inf"),
        mean_frame_len=frame,
        bound_by=bound_by,
        run=runs[0],
    )


def measure_multicore(
    binaries: Sequence[SpecializedBinary],
    batches: int = 200,
    warmup_batches: int = 100,
) -> ThroughputPoint:
    """Aggregate throughput of per-core replicas sharing the LLC.

    The pre-sharding approximation: N independent binaries, each with its
    own full-rate trace, stepped round-robin so their cache footprints
    really contend in the shared LLC.  For the real single-arrival-stream
    RSS fan-out, build a :class:`~repro.core.sharded.ShardedRuntime` and
    use :func:`measure_sharded`.
    """
    if not binaries:
        raise ValueError("no binaries")
    for binary in binaries:
        binary.warmup(warmup_batches)
    # Interleave so LLC contention between replicas is realistic.
    for _ in range(batches):
        for binary in binaries:
            binary.driver.step()
    runs: List[MeasuredRun] = [b.run(0) for b in binaries]
    return _aggregate_point(runs, binaries[0].params, len(binaries[0].pmds),
                            len(binaries))


def measure_sharded(
    runtime,
    batches: int = 200,
    warmup_batches: int = 100,
) -> ThroughputPoint:
    """Measure an RSS-sharded runtime at saturation.

    Warms up and steps the whole cluster in interleaved rounds (the
    :class:`~repro.core.sharded.ShardedRuntime` already round-robins its
    replicas), then aggregates with the same ceiling arithmetic as
    :func:`measure_multicore`.  A 1-core sharded runtime produces a
    point *bit-identical* to :func:`measure_throughput` on the unsharded
    binary -- the identity the tier-1 suite pins.
    """
    runtime.warmup(warmup_batches)
    runtime.run_batches(batches)
    runs = runtime.runs()
    first = runtime.replicas[0]
    return _aggregate_point(runs, first.params, len(first.pmds),
                            runtime.n_cores)
