"""Per-element cost attribution: which element burns the cycles?

The driver's cost accounting is one shared accumulator (the ``CpuCore``
and its perf counters), so a run's total says nothing about *where* the
cycles went.  Attribution tiles the run's timeline into buckets: the
driver marks the accumulators, executes one region (an element's charge,
a PMD burst, a drop release), and calls :meth:`CycleAttribution.sync`
with the bucket that owns everything since the previous mark.

Because every region between two marks is assigned to exactly one bucket
and the marks tile the run contiguously, the bucket totals sum to the
run's totals -- the conservation property the tests pin.  Integer events
(cache hits/misses) conserve exactly; cycles/instructions are floats and
conserve to floating-point accumulation error.

Buckets land in the registry under their own names --
``element.rt.cycles``, ``pmd.rx.instructions``, ``driver.cycles`` -- so
handlers, window samples, and exports see attribution through the same
glob reads as every other counter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.telemetry.registry import CounterRegistry

#: Bucket for main-loop cost between attributed regions (poll loop,
#: batch bookkeeping, queue draining) -- perf's ``[unknown]`` analogue,
#: except it is measured, not inferred.
DRIVER_BUCKET = "driver"

#: The accumulators every sync snapshots, in order.
TRACKED = (
    "cycles", "instructions",
    "l1_hits", "l2_hits", "llc_loads", "llc_hits", "llc_misses",
)


class CycleAttribution:
    """Mark/sync cost attribution over one core's accumulators."""

    def __init__(self, registry: CounterRegistry):
        self.registry = registry
        self.cpu = None
        self._mark: Optional[Tuple[float, ...]] = None
        self._buckets: Dict[str, List] = {}  # bucket -> [Counter, ...] per TRACKED

    def bind(self, cpu) -> None:
        """Attach the core whose accumulators are being attributed."""
        self.cpu = cpu
        self.rebase()

    def _read(self) -> Tuple[float, ...]:
        cpu = self.cpu
        counters = cpu.counters
        return (
            cpu.total_cycles(),
            cpu.instructions,
            counters.l1_hits,
            counters.l2_hits,
            counters.llc_loads,
            counters.llc_hits,
            counters.llc_misses,
        )

    def rebase(self) -> None:
        """Move the mark to "now" without attributing (stats reset)."""
        if self.cpu is not None:
            self._mark = self._read()

    def _handles(self, bucket: str) -> List:
        handles = self._buckets.get(bucket)
        if handles is None:
            handles = [
                self.registry.counter("%s.%s" % (bucket, metric))
                for metric in TRACKED
            ]
            self._buckets[bucket] = handles
        return handles

    def sync(self, bucket: str) -> None:
        """Attribute everything since the last mark to ``bucket``."""
        now = self._read()
        mark = self._mark
        self._mark = now
        if mark is None:
            return
        for handle, new, old in zip(self._handles(bucket), now, mark):
            if new != old:
                handle.value += new - old

    # -- reading --------------------------------------------------------------

    def buckets(self) -> List[str]:
        return sorted(self._buckets)

    def totals(self, metric: str = "cycles") -> Dict[str, float]:
        """Per-bucket totals for one tracked metric."""
        index = TRACKED.index(metric)
        return {
            bucket: handles[index].value
            for bucket, handles in self._buckets.items()
        }

    def total(self, metric: str = "cycles") -> float:
        return sum(self.totals(metric).values())

    def top(self, metric: str = "cycles") -> List[Tuple[str, float, float]]:
        """``(bucket, value, share)`` rows, most expensive first."""
        totals = self.totals(metric)
        grand = sum(totals.values()) or 1.0
        rows = sorted(totals.items(), key=lambda kv: -kv[1])
        return [(bucket, value, value / grand) for bucket, value in rows]

    def format_top(self, metric: str = "cycles", limit: int = 0) -> str:
        """A ``perf report``-style table of the per-bucket breakdown."""
        rows = self.top(metric)
        if limit:
            rows = rows[:limit]
        lines = [
            "attribution by %s" % metric,
            "%8s  %14s  %-s" % ("share", metric, "bucket"),
        ]
        for bucket, value, share in rows:
            lines.append("%7.2f%%  %14.1f  %s" % (share * 100, value, bucket))
        return "\n".join(lines)

    def to_records(self) -> List[Dict[str, float]]:
        """Flat JSON/CSV-ready records, one per bucket."""
        out = []
        for bucket in self.buckets():
            record: Dict[str, float] = {"bucket": bucket}
            for metric, handle in zip(TRACKED, self._buckets[bucket]):
                record[metric] = handle.value
            out.append(record)
        return out
