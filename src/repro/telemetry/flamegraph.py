"""ASCII flamegraph and ``perf report``-style top views for span data.

Renders the :class:`repro.telemetry.spans.SpanRecorder` aggregation two
ways:

- :func:`render_flamegraph` -- an indented tree where each stack frame
  gets a bar proportional to its inclusive time (a flamegraph rotated
  90 degrees so it survives a terminal);
- :func:`render_top` -- flat hottest-frames-first, with self/inclusive
  shares, the way ``perf report --no-children``/``--children`` reads.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Tuple

from repro.telemetry.spans import Path, SpanRecorder


def _children(folded: Dict[Path, Tuple[float, int]]):
    tree: Dict[Path, List[Path]] = {}
    for path in folded:
        tree.setdefault(path[:-1], []).append(path)
    for paths in tree.values():
        paths.sort(key=lambda p: -folded[p][0])
    return tree


def render_flamegraph(recorder: SpanRecorder, width: int = 40,
                      min_share: float = 0.001) -> str:
    """Indented-tree flamegraph; bars scale with inclusive simulated ns."""
    folded = recorder.folded()
    if not folded:
        return "(no spans recorded)"
    tree = _children(folded)
    total = recorder.total_ns() or 1.0
    lines = ["flamegraph (inclusive simulated time)"]

    def emit(path: Path, depth: int) -> None:
        ns, count = folded[path]
        share = ns / total
        if share < min_share:
            return
        bar = "#" * max(1, int(round(share * width)))
        lines.append(
            "%7.2f%% %-*s %s%s  (%d ns, %d calls)"
            % (share * 100, width, bar, "  " * depth, path[-1], round(ns), count)
        )
        for child in tree.get(path, ()):
            emit(child, depth + 1)

    for root in tree.get((), ()):
        emit(root, 0)
    return "\n".join(lines)


def render_top(recorder: SpanRecorder, limit: int = 0) -> str:
    """Flat hottest-first table: self share, inclusive share, frame."""
    folded = recorder.folded()
    if not folded:
        return "(no spans recorded)"
    self_times = recorder.self_ns()
    total = recorder.total_ns() or 1.0
    rows = sorted(folded, key=lambda p: -self_times[p])
    if limit:
        rows = rows[:limit]
    lines = [
        "span top (by self time)",
        "%8s %8s %12s %8s  %s" % ("self", "incl", "self_ns", "calls", "stack"),
    ]
    for path in rows:
        ns, count = folded[path]
        lines.append(
            "%7.2f%% %7.2f%% %12d %8d  %s"
            % (
                self_times[path] / total * 100,
                ns / total * 100,
                round(self_times[path]),
                count,
                ";".join(path),
            )
        )
    return "\n".join(lines)


def spans_to_json(recorder: SpanRecorder) -> str:
    """JSON export of the folded stacks (records + total)."""
    return json.dumps(
        {"total_ns": recorder.total_ns(), "spans": recorder.to_records()},
        indent=2,
        sort_keys=True,
    )


def spans_to_csv(recorder: SpanRecorder) -> str:
    """CSV export of the folded stacks."""
    records = recorder.to_records()
    out = io.StringIO()
    writer = csv.DictWriter(
        out, fieldnames=["stack", "depth", "inclusive_ns", "self_ns", "count"]
    )
    writer.writeheader()
    for record in records:
        writer.writerow(record)
    return out.getvalue()
