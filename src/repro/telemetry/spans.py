"""Packet-lifecycle trace spans over the simulated clock.

A span brackets one stage of a batch's life -- ``iteration`` >
``pmd.rx`` > ``dma`` / ``convert``, then one nested span per element the
batch traverses, then ``pmd.tx``.  Because spans nest along the actual
pipeline path, the aggregated stacks *are* the flamegraph of the network
function: ``iteration;element.c;element.rt;element.output``.

The recorder aggregates on pop (total simulated ns + count per unique
stack), so memory stays bounded no matter how long the run is; the raw
event stream is not kept.  Time comes from a bound clock callable
(``cpu.elapsed_ns``), which advances only when the hardware model charges
cost -- recording perturbs nothing.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

Path = Tuple[str, ...]


class SpanRecorder:
    """Stack-structured span aggregation (folded-stacks style)."""

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self.clock = clock
        self._stack: List[Tuple[str, float]] = []
        #: path -> [inclusive_ns, count]
        self._agg: Dict[Path, List[float]] = {}

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self.clock = clock

    # -- recording ------------------------------------------------------------

    def push(self, name: str) -> None:
        self._stack.append((name, self.clock()))

    def pop(self) -> None:
        name, start = self._stack.pop()
        path = tuple(frame for frame, _ in self._stack) + (name,)
        entry = self._agg.get(path)
        if entry is None:
            entry = self._agg[path] = [0.0, 0]
        entry[0] += self.clock() - start
        entry[1] += 1

    def pop_n(self, n: int) -> None:
        for _ in range(n):
            self.pop()

    @contextmanager
    def span(self, name: str):
        self.push(name)
        try:
            yield
        finally:
            self.pop()

    def reset(self) -> None:
        self._stack = []
        self._agg = {}

    # -- reading --------------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._stack)

    def folded(self) -> Dict[Path, Tuple[float, int]]:
        """``{stack_path: (inclusive_ns, count)}`` for every recorded stack."""
        return {path: (ns, int(count)) for path, (ns, count) in self._agg.items()}

    def self_ns(self) -> Dict[Path, float]:
        """Exclusive time per stack: inclusive minus direct children."""
        out = {path: ns for path, (ns, _) in self._agg.items()}
        for path, (ns, _) in self._agg.items():
            parent = path[:-1]
            if parent in out:
                out[parent] -= ns
        return out

    def total_ns(self) -> float:
        """Inclusive time of all root spans."""
        return sum(ns for path, (ns, _) in self._agg.items() if len(path) == 1)

    def to_folded_text(self) -> str:
        """``a;b;c <ns>`` lines -- the flamegraph.pl/speedscope input format."""
        lines = []
        for path in sorted(self._agg):
            ns, _ = self._agg[path]
            lines.append("%s %d" % (";".join(path), round(ns)))
        return "\n".join(lines)

    def to_records(self) -> List[Dict[str, object]]:
        """Flat JSON/CSV-ready records, one per unique stack."""
        self_times = self.self_ns()
        out = []
        for path in sorted(self._agg):
            ns, count = self._agg[path]
            out.append({
                "stack": ";".join(path),
                "depth": len(path),
                "inclusive_ns": ns,
                "self_ns": self_times[path],
                "count": int(count),
            })
        return out
