"""Windowed sampling of the counter registry over *simulated* time.

The paper's Table 1 / Fig. 9 numbers are ``perf`` samples taken every
100 ms of wall-clock time.  The simulator's clock is the hardware model's
accumulated nanoseconds, so the sampler closes a window every
``window_ns`` of simulated time and records the registry delta for that
window -- the same view ``perf stat -I 100`` gives on the real testbed.

Sampling happens at main-loop iteration granularity (the driver calls
:meth:`WindowSampler.observe` once per iteration), exactly like a timer
interrupt landing between bursts: a window closes at the first iteration
boundary past its edge, and its recorded ``t_end_ns`` is the true clock,
not the nominal edge.

Simulated runs are often shorter than one real 100-ms window, so
:meth:`WindowSample.per_100ms` normalizes any window (including the final
partial one) by its actual duration -- that normalized view is the
paper-comparable number regardless of the configured window length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.telemetry.registry import CounterRegistry, Number, delta

#: The paper's perf sampling interval, in simulated nanoseconds.
PAPER_WINDOW_NS = 100e6


@dataclass
class WindowSample:
    """One closed sampling window."""

    index: int
    t_start_ns: float
    t_end_ns: float
    #: Per-counter delta over this window.
    values: Dict[str, Number]
    #: Cumulative registry snapshot at window close (monotone for counters).
    cumulative: Dict[str, Number]
    #: True for the trailing window closed by :meth:`WindowSampler.flush`.
    partial: bool = False

    @property
    def duration_ns(self) -> float:
        return self.t_end_ns - self.t_start_ns

    def per_100ms(self, name: str) -> float:
        """This window's delta normalized to the paper's 100-ms interval."""
        if self.duration_ns <= 0:
            return 0.0
        return self.values.get(name, 0) * (PAPER_WINDOW_NS / self.duration_ns)

    def rate_per_s(self, name: str) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.values.get(name, 0) * 1e9 / self.duration_ns


@dataclass
class WindowSampler:
    """Closes registry windows as the simulated clock advances."""

    registry: CounterRegistry
    window_ns: float = PAPER_WINDOW_NS
    max_windows: int = 100_000
    windows: List[WindowSample] = field(default_factory=list)

    def __post_init__(self):
        if self.window_ns <= 0:
            raise ValueError("window_ns must be positive")
        self._origin_ns = 0.0
        self._base: Dict[str, Number] = {}
        self._started = False

    # -- driving --------------------------------------------------------------

    def restart(self, now_ns: float) -> None:
        """Drop history and begin windowing from ``now_ns`` (stats reset)."""
        self.windows = []
        self._origin_ns = now_ns
        self._base = self.registry.snapshot()
        self._started = True

    def observe(self, now_ns: float) -> None:
        """Advance the sampler to ``now_ns``, closing any elapsed windows.

        When an iteration jumps more than one window, the whole delta is
        charged to the first elapsed window (the iteration that crossed
        it) and the remaining windows close empty -- matching how a
        sampling profiler attributes one long event.
        """
        if not self._started:
            self.restart(now_ns)
            return
        while (now_ns - self._origin_ns >= self.window_ns
               and len(self.windows) < self.max_windows):
            snap = self.registry.snapshot()
            end = min(now_ns, self._origin_ns + self.window_ns)
            self.windows.append(
                WindowSample(
                    index=len(self.windows),
                    t_start_ns=self._origin_ns,
                    t_end_ns=end,
                    values=delta(snap, self._base),
                    cumulative=snap,
                )
            )
            self._base = snap
            self._origin_ns += self.window_ns

    def flush(self, now_ns: float) -> None:
        """Close the trailing partial window, if it saw any time."""
        if not self._started:
            return
        self.observe(now_ns)
        if now_ns > self._origin_ns and len(self.windows) < self.max_windows:
            snap = self.registry.snapshot()
            self.windows.append(
                WindowSample(
                    index=len(self.windows),
                    t_start_ns=self._origin_ns,
                    t_end_ns=now_ns,
                    values=delta(snap, self._base),
                    cumulative=snap,
                    partial=True,
                )
            )
            self._base = snap
            self._origin_ns = now_ns

    # -- reading --------------------------------------------------------------

    def series(self, name: str) -> List[Number]:
        """Per-window deltas of one counter."""
        return [w.values.get(name, 0) for w in self.windows]

    def cumulative_series(self, name: str) -> List[Number]:
        return [w.cumulative.get(name, 0) for w in self.windows]

    def paper_view(self, names: Sequence[str]) -> List[Dict[str, float]]:
        """Per-window values normalized to events/100 ms (perf's view)."""
        return [
            {name: window.per_100ms(name) for name in names}
            for window in self.windows
        ]

    def format_table(self, names: Optional[Sequence[str]] = None,
                     normalize: bool = True) -> str:
        """A ``perf stat -I``-style table of the recorded windows."""
        if not self.windows:
            return "(no windows sampled)"
        if names is None:
            busiest = max(self.windows, key=lambda w: len(w.values))
            names = sorted(
                name for name, value in busiest.values.items() if value
            )[:8]
        header = "%10s %10s" % ("t_ms", "dur_ms")
        header += "".join("%16s" % n.rsplit(".", 1)[-1] for n in names)
        lines = [
            "window samples (%s, values %s)" % (
                "%g ns" % self.window_ns,
                "per 100 ms" if normalize else "per window",
            ),
            header,
        ]
        for window in self.windows:
            row = "%10.3f %10.3f" % (
                window.t_start_ns / 1e6, window.duration_ns / 1e6
            )
            for name in names:
                value = (window.per_100ms(name) if normalize
                         else window.values.get(name, 0))
                row += "%16.5g" % value
            if window.partial:
                row += "  (partial)"
            lines.append(row)
        return "\n".join(lines)

    def to_records(self) -> List[Dict[str, Number]]:
        """Flat JSON/CSV-ready records, one per window."""
        out = []
        for window in self.windows:
            record: Dict[str, Number] = {
                "window": window.index,
                "t_start_ns": window.t_start_ns,
                "t_end_ns": window.t_end_ns,
                "partial": int(window.partial),
            }
            record.update(window.values)
            out.append(record)
        return out
