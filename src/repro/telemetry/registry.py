"""The counter registry: one source of truth for every statistic.

Counters used to live in three drifting copies -- ``RunStats`` fields,
``PerfCounters`` fields, and the NICs' xstats dataclass -- hand-mirrored
into each other at the end of every run.  The registry collapses them:
each statistic is one :class:`Counter` handle stored under a hierarchical
dotted name (``cpu.llc_misses``, ``nic.0.imissed``, ``driver.rx_packets``,
``element.rt.drops``), and the old classes become *views* over the same
storage.

Handles are deliberately tiny (``__slots__``, direct ``.value`` access)
so the hardware model's hot loops pay the same cost they paid for plain
dataclass attributes.  Reading is uniform: :meth:`CounterRegistry.snapshot`
flattens everything (including mounted sub-registries) into one dict, and
:meth:`CounterRegistry.match` answers glob queries like ``nic.*.imissed``.

Snapshot/delta semantics: a snapshot is a plain ``{name: value}`` dict;
:func:`delta` subtracts two of them, which is how the window sampler and
the driver's hardware-counter mirroring express "since the last reset".
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Dict, Iterable, List, Optional, Union

Number = Union[int, float]

#: Monotonically non-decreasing event count (perf-style).
COUNTER = "counter"
#: Point-in-time level (queue depth, window rate); may move both ways.
GAUGE = "gauge"

_GLOB_CHARS = frozenset("*?[")


def is_glob(pattern: str) -> bool:
    """Whether ``pattern`` contains glob metacharacters."""
    return bool(_GLOB_CHARS.intersection(pattern))


class TelemetryError(ValueError):
    """Registry misuse: kind mismatch or non-monotone counter update."""


class Counter:
    """One named statistic.  The handle *is* the storage.

    Hot paths (the cache model, the PMDs) keep a direct reference and
    bump ``handle.value`` -- everything else reads the same cell through
    the registry, so there is nothing to mirror and nothing to drift.
    """

    __slots__ = ("name", "kind", "value")

    def __init__(self, name: str, kind: str = COUNTER, value: Number = 0):
        self.name = name
        self.kind = kind
        self.value = value

    def add(self, n: Number = 1) -> None:
        """Increment; counters reject negative steps (monotonicity)."""
        if n < 0 and self.kind == COUNTER:
            raise TelemetryError(
                "counter %r is monotone; cannot add %r" % (self.name, n)
            )
        self.value += n

    def set(self, value: Number) -> None:
        """Overwrite the value (gauges, resets, and ledger mirroring)."""
        self.value = value

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return "Counter(%r, %s=%r)" % (self.name, self.kind, self.value)


class CounterRegistry:
    """Hierarchical, dot-named counter store with mounts and glob reads."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._mounts: Dict[str, "CounterRegistry"] = {}

    # -- creation / access ---------------------------------------------------

    def counter(self, name: str, kind: str = COUNTER) -> Counter:
        """Get or create the handle for ``name`` (kind-checked)."""
        for prefix, mounted in self._mounts.items():
            if name.startswith(prefix + "."):
                return mounted.counter(name[len(prefix) + 1:], kind)
        handle = self._counters.get(name)
        if handle is None:
            handle = self._counters[name] = Counter(name, kind)
        elif handle.kind != kind:
            raise TelemetryError(
                "counter %r is a %s, requested as %s" % (name, handle.kind, kind)
            )
        return handle

    def gauge(self, name: str) -> Counter:
        return self.counter(name, GAUGE)

    def get(self, name: str, default: Number = 0) -> Number:
        """Current value of ``name`` (mounts resolved), or ``default``."""
        for prefix, mounted in self._mounts.items():
            if name.startswith(prefix + "."):
                return mounted.get(name[len(prefix) + 1:], default)
        handle = self._counters.get(name)
        return default if handle is None else handle.value

    def __contains__(self, name: str) -> bool:
        for prefix, mounted in self._mounts.items():
            if name.startswith(prefix + "."):
                return name[len(prefix) + 1:] in mounted
        return name in self._counters

    # -- composition ---------------------------------------------------------

    def mount(self, prefix: str, registry: "CounterRegistry") -> None:
        """Expose another registry's counters under ``prefix.``.

        Mounting is how one per-binary registry unifies storage that is
        created elsewhere (the shared memory system's per-core counters)
        without migrating live handles.
        """
        if not prefix or is_glob(prefix):
            raise TelemetryError("mount prefix must be a literal name")
        self._mounts[prefix] = registry

    # -- reading -------------------------------------------------------------

    def names(self, pattern: Optional[str] = None) -> List[str]:
        """All counter names (mounts flattened), sorted, optionally globbed."""
        out = list(self._counters)
        for prefix, mounted in self._mounts.items():
            out.extend(prefix + "." + name for name in mounted.names())
        if pattern is not None:
            out = [name for name in out if fnmatchcase(name, pattern)]
        return sorted(out)

    def kind_of(self, name: str) -> Optional[str]:
        for prefix, mounted in self._mounts.items():
            if name.startswith(prefix + "."):
                return mounted.kind_of(name[len(prefix) + 1:])
        handle = self._counters.get(name)
        return None if handle is None else handle.kind

    def snapshot(self, pattern: Optional[str] = None) -> Dict[str, Number]:
        """Flattened ``{name: value}`` view, optionally glob-filtered."""
        return {name: self.get(name) for name in self.names(pattern)}

    def match(self, pattern: str) -> Dict[str, Number]:
        """Glob read: ``registry.match("nic.*.imissed")``."""
        return self.snapshot(pattern)

    # -- lifecycle -----------------------------------------------------------

    def reset(self, prefix: str = "") -> None:
        """Zero every counter under ``prefix`` (all, when empty)."""
        for name, handle in self._counters.items():
            if name.startswith(prefix):
                handle.reset()
        for mount_prefix, mounted in self._mounts.items():
            if not prefix:
                mounted.reset()
            elif prefix.startswith(mount_prefix + "."):
                mounted.reset(prefix[len(mount_prefix) + 1:])
            elif (mount_prefix + ".").startswith(prefix):
                mounted.reset()

    def scope(self, prefix: str) -> "CounterScope":
        return CounterScope(self, prefix)

    @classmethod
    def merge(cls, registries: Iterable["CounterRegistry"],
              prefix: str = "core") -> "MergedRegistry":
        """A live cluster-level view over per-core registries.

        ``merged.get("driver.rx_packets")`` sums the name across every
        child; ``merged.get("core2.driver.rx_packets")`` reads core 2
        alone.  Unlike :func:`merge` (which sums dict snapshots), the
        returned registry is *live*: reads see the children's current
        values, so a control plane can watch a run in flight.
        """
        return MergedRegistry(registries, prefix=prefix)


class MergedRegistry(CounterRegistry):
    """Aggregating read-only view over N per-core registries.

    Name resolution order: ordinary mounts first (the sharded runtime
    mounts per-port RSS ledgers here), then ``<prefix><i>.rest`` reads
    child ``i`` directly, then a bare name sums across every child that
    has it.  ``names()`` exposes both forms, so glob reads and
    Prometheus exposition see aggregate series *and* per-core series.

    Creating counters through the merged view is refused -- per-core hot
    paths own their handles; the merged view exists to be read.
    """

    def __init__(self, children: Iterable[CounterRegistry], prefix: str = "core"):
        super().__init__()
        if not prefix or is_glob(prefix):
            raise TelemetryError("core prefix must be a literal name")
        self.children: List[CounterRegistry] = list(children)
        self.prefix = prefix

    # -- resolution ----------------------------------------------------------

    def _child_split(self, name: str):
        """``core3.driver.x`` -> ``(3, "driver.x")``, else ``None``."""
        if not name.startswith(self.prefix):
            return None
        head, dot, rest = name.partition(".")
        if not dot:
            return None
        digits = head[len(self.prefix):]
        if not digits.isdigit():
            return None
        return int(digits), rest

    def counter(self, name: str, kind: str = COUNTER) -> Counter:
        raise TelemetryError(
            "merged registry is read-only; create %r on a per-core registry"
            % name)

    def get(self, name: str, default: Number = 0) -> Number:
        for prefix, mounted in self._mounts.items():
            if name.startswith(prefix + "."):
                return mounted.get(name[len(prefix) + 1:], default)
        split = self._child_split(name)
        if split is not None:
            index, rest = split
            if 0 <= index < len(self.children):
                return self.children[index].get(rest, default)
            return default
        total: Optional[Number] = None
        for child in self.children:
            if name in child:
                total = (total or 0) + child.get(name)
        return default if total is None else total

    def __contains__(self, name: str) -> bool:
        for prefix, mounted in self._mounts.items():
            if name.startswith(prefix + "."):
                return name[len(prefix) + 1:] in mounted
        split = self._child_split(name)
        if split is not None:
            index, rest = split
            return 0 <= index < len(self.children) and rest in self.children[index]
        return any(name in child for child in self.children)

    def kind_of(self, name: str) -> Optional[str]:
        for prefix, mounted in self._mounts.items():
            if name.startswith(prefix + "."):
                return mounted.kind_of(name[len(prefix) + 1:])
        split = self._child_split(name)
        if split is not None:
            index, rest = split
            if 0 <= index < len(self.children):
                return self.children[index].kind_of(rest)
            return None
        for child in self.children:
            kind = child.kind_of(name)
            if kind is not None:
                return kind
        return None

    def names(self, pattern: Optional[str] = None) -> List[str]:
        seen = set()
        for mount_prefix, mounted in self._mounts.items():
            seen.update(mount_prefix + "." + n for n in mounted.names())
        for index, child in enumerate(self.children):
            for n in child.names():
                seen.add(n)
                seen.add("%s%d.%s" % (self.prefix, index, n))
        if pattern is not None:
            seen = {n for n in seen if fnmatchcase(n, pattern)}
        return sorted(seen)

    def aggregate_names(self, pattern: Optional[str] = None) -> List[str]:
        """Only the summed (non-core-prefixed) names."""
        seen = set()
        for child in self.children:
            seen.update(child.names())
        if pattern is not None:
            seen = {n for n in seen if fnmatchcase(n, pattern)}
        return sorted(seen)

    def per_core(self, name: str) -> List[Number]:
        """The per-child values behind one aggregate name."""
        return [child.get(name) for child in self.children]

    def reset(self, prefix: str = "") -> None:
        for child in self.children:
            child.reset(prefix)
        super().reset(prefix)


class CounterScope:
    """A prefixed window onto a registry (one element's, one NIC's)."""

    __slots__ = ("registry", "prefix")

    def __init__(self, registry: CounterRegistry, prefix: str):
        if prefix and not prefix.endswith("."):
            prefix += "."
        self.registry = registry
        self.prefix = prefix

    def counter(self, name: str, kind: str = COUNTER) -> Counter:
        return self.registry.counter(self.prefix + name, kind)

    def gauge(self, name: str) -> Counter:
        return self.registry.gauge(self.prefix + name)

    def get(self, name: str, default: Number = 0) -> Number:
        return self.registry.get(self.prefix + name, default)

    def snapshot(self) -> Dict[str, Number]:
        """Scope-local names (prefix stripped), sorted."""
        strip = len(self.prefix)
        return {
            name[strip:]: value
            for name, value in self.registry.snapshot(self.prefix + "*").items()
        }

    def reset(self) -> None:
        self.registry.reset(self.prefix)


def delta(new: Dict[str, Number], old: Dict[str, Number]) -> Dict[str, Number]:
    """Per-name difference of two snapshots (names absent from ``old`` = 0)."""
    return {name: value - old.get(name, 0) for name, value in new.items()}


def merge(snapshots: Iterable[Dict[str, Number]]) -> Dict[str, Number]:
    """Sum snapshots name-wise (aggregating multiple cores/ports)."""
    total: Dict[str, Number] = {}
    for snap in snapshots:
        for name, value in snap.items():
            total[name] = total.get(name, 0) + value
    return total
