"""The drop ledger schema, defined once.

Before the registry existed, the list of degraded-path counters --
``rx_nombuf``, ``imissed``, ``rx_errors``, ``tx_full``, plus the software
incidents -- was spelled out independently in ``RunStats``,
``PerfCounters``, and ``repro.perf.report``.  This module is the single
definition all of them import, so adding a drop source is a one-line
change that every view picks up.
"""

from __future__ import annotations

#: Ledger entries that mark a run as fault-degraded, with display labels.
#: Order matters: reports render in this order.
LEDGER_FIELDS = (
    ("rx_nombuf", "RX alloc failures (rx_nombuf)"),
    ("imissed", "no-descriptor drops (imissed)"),
    ("rx_errors", "damaged frames dropped (rx_errors)"),
    ("tx_full", "TX backpressure refusals (tx_full)"),
    ("element_errors", "element error-boundary incidents"),
    ("watchdog_resets", "watchdog recoveries"),
)

#: Just the ledger counter names, in report order.
LEDGER_NAMES = tuple(name for name, _ in LEDGER_FIELDS)

#: NIC-side ledger entries (mirrored from hardware counters as deltas).
HW_LEDGER_NAMES = ("rx_nombuf", "imissed", "rx_errors", "tx_full")

#: Second-order NIC detail counters reports append when nonzero.
HW_DETAIL_NAMES = (
    "rx_truncated", "rx_corrupt", "link_down_polls", "cqe_stalls",
    "rx_underruns",
)

#: How the perf-counter view's ledger fields map onto RunStats attributes:
#: (PerfCounters field, RunStats attribute).
RUNSTATS_MIRROR = (
    ("rx_nombuf", "rx_nombuf"),
    ("imissed", "imissed"),
    ("rx_errors", "rx_errors"),
    ("tx_full", "tx_full"),
    ("sw_drops", "drops"),
    ("element_errors", "error_batches"),
    ("watchdog_resets", "watchdog_resets"),
)


def ledger_from_stats(stats) -> dict:
    """The drop ledger of a RunStats-shaped object, keyed by ledger name."""
    return {
        "rx_nombuf": stats.rx_nombuf,
        "imissed": stats.imissed,
        "rx_errors": stats.rx_errors,
        "tx_full": stats.tx_full,
        "element_errors": stats.error_batches,
        "watchdog_resets": stats.watchdog_resets,
    }
