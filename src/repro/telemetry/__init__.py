"""Telemetry (``repro.telemetry``): one counter/handler surface for the stack.

The paper's argument is *attribution* -- tying throughput to LLC loads,
misses, and IPC sampled by ``perf`` every 100 ms, per pipeline stage.
This package is the simulator's equivalent, in four pieces:

- :mod:`repro.telemetry.registry` -- the :class:`CounterRegistry`:
  hierarchical dotted names, typed counter/gauge handles, snapshot/delta
  semantics, glob reads, and mounts.  It is the storage behind
  ``RunStats``, ``PerfCounters``, and the NIC xstats -- those classes are
  now views, so shared counters cannot drift.
- :mod:`repro.telemetry.sampler` -- the 100-ms-window
  :class:`WindowSampler` driven by simulated time (the ``perf stat -I``
  view of a run).
- :mod:`repro.telemetry.attribution` -- :class:`CycleAttribution`:
  cycles, instructions, and cache events tiled into per-element /
  per-PMD buckets that sum to the run totals.
- :mod:`repro.telemetry.spans` / :mod:`~repro.telemetry.flamegraph` --
  packet-lifecycle spans (rx-dma > conversion > per-element > tx) with
  ASCII flamegraph/top rendering and JSON/CSV export.

Enable it per build with ``PacketMill(..., telemetry=TelemetryConfig())``.
Like ``repro.faults``, every observation hook is ``None``-guarded when
disabled, observation charges no simulated cost and draws no randomness,
so fig/report outputs are bit-identical with telemetry on or off.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from typing import Optional

from repro.telemetry.attribution import DRIVER_BUCKET, CycleAttribution
from repro.telemetry.flamegraph import (
    render_flamegraph,
    render_top,
    spans_to_csv,
    spans_to_json,
)
from repro.telemetry.ledger import LEDGER_FIELDS, LEDGER_NAMES
from repro.telemetry.registry import (
    COUNTER,
    GAUGE,
    Counter,
    CounterRegistry,
    CounterScope,
    MergedRegistry,
    TelemetryError,
    delta,
    is_glob,
    merge,
)
from repro.telemetry.sampler import PAPER_WINDOW_NS, WindowSampler, WindowSample
from repro.telemetry.spans import SpanRecorder


@dataclass(frozen=True)
class TelemetryConfig:
    """What to record beyond the always-on counter registry."""

    #: Close a registry window every ``window_ns`` of simulated time.
    windows: bool = True
    window_ns: float = PAPER_WINDOW_NS
    max_windows: int = 100_000
    #: Attribute cycles/instructions/cache events to elements and PMDs.
    attribution: bool = True
    #: Record packet-lifecycle spans for flamegraph/top views.
    spans: bool = True


class Telemetry:
    """One build's telemetry bundle: registry + optional recorders.

    Always owns a registry (counter storage is unconditional); the
    sampler, attribution, and span recorder exist only when the config
    asks for them, so the driver's hot-path guards stay ``None`` checks.
    """

    def __init__(self, registry: Optional[CounterRegistry] = None,
                 config: Optional[TelemetryConfig] = None):
        self.registry = registry if registry is not None else CounterRegistry()
        self.config = config
        self.sampler: Optional[WindowSampler] = None
        self.attribution: Optional[CycleAttribution] = None
        self.spans: Optional[SpanRecorder] = None
        if config is not None:
            if config.windows:
                self.sampler = WindowSampler(
                    self.registry, window_ns=config.window_ns,
                    max_windows=config.max_windows,
                )
            if config.attribution:
                self.attribution = CycleAttribution(self.registry)
            if config.spans:
                self.spans = SpanRecorder()

    @property
    def enabled(self) -> bool:
        """Whether any recorder beyond the registry is active."""
        return (self.sampler is not None or self.attribution is not None
                or self.spans is not None)

    # -- rendering convenience -------------------------------------------------

    def flamegraph(self, width: int = 40) -> str:
        if self.spans is None:
            return "(spans disabled)"
        return render_flamegraph(self.spans, width=width)

    def top(self, metric: str = "cycles") -> str:
        if self.attribution is None:
            return "(attribution disabled)"
        return self.attribution.format_top(metric)

    def windows_table(self, names=None) -> str:
        if self.sampler is None:
            return "(window sampling disabled)"
        return self.sampler.format_table(names)

    # -- export ---------------------------------------------------------------

    def to_json(self) -> str:
        """Everything recorded, as one JSON document."""
        doc = {"counters": self.registry.snapshot()}
        if self.sampler is not None:
            doc["windows"] = self.sampler.to_records()
        if self.attribution is not None:
            doc["attribution"] = self.attribution.to_records()
        if self.spans is not None:
            doc["spans"] = self.spans.to_records()
        return json.dumps(doc, indent=2, sort_keys=True)

    def to_csv(self) -> str:
        """The registry snapshot as ``name,value`` CSV."""
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(["name", "value"])
        for name, value in self.registry.snapshot().items():
            writer.writerow([name, value])
        return out.getvalue()


__all__ = [
    "COUNTER",
    "Counter",
    "CounterRegistry",
    "MergedRegistry",
    "CounterScope",
    "CycleAttribution",
    "DRIVER_BUCKET",
    "GAUGE",
    "LEDGER_FIELDS",
    "LEDGER_NAMES",
    "PAPER_WINDOW_NS",
    "SpanRecorder",
    "Telemetry",
    "TelemetryConfig",
    "TelemetryError",
    "WindowSample",
    "WindowSampler",
    "delta",
    "is_glob",
    "merge",
    "render_flamegraph",
    "render_top",
    "spans_to_csv",
    "spans_to_json",
]
