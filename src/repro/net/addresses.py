"""MAC and IPv4 address value types.

Small immutable wrappers around the raw byte/int representations used in
packet buffers.  They parse and render the usual textual forms and support
ordering/hashing so they can be used as dictionary keys in routing tables.
"""

from __future__ import annotations

import re

_MAC_RE = re.compile(r"^([0-9A-Fa-f]{2}[:-]){5}[0-9A-Fa-f]{2}$")


class MacAddress:
    """A 48-bit Ethernet MAC address."""

    __slots__ = ("_value",)

    def __init__(self, value):
        if isinstance(value, MacAddress):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value < (1 << 48):
                raise ValueError("MAC address out of range: %#x" % value)
            self._value = value
        elif isinstance(value, (bytes, bytearray, memoryview)):
            raw = bytes(value)
            if len(raw) != 6:
                raise ValueError("MAC address needs 6 bytes, got %d" % len(raw))
            self._value = int.from_bytes(raw, "big")
        elif isinstance(value, str):
            if not _MAC_RE.match(value):
                raise ValueError("invalid MAC address: %r" % value)
            self._value = int(value.replace("-", ":").replace(":", ""), 16)
        else:
            raise TypeError("cannot build MacAddress from %r" % type(value))

    @classmethod
    def broadcast(cls) -> "MacAddress":
        return cls((1 << 48) - 1)

    @classmethod
    def zero(cls) -> "MacAddress":
        return cls(0)

    @property
    def packed(self) -> bytes:
        return self._value.to_bytes(6, "big")

    @property
    def value(self) -> int:
        return self._value

    def is_broadcast(self) -> bool:
        return self._value == (1 << 48) - 1

    def is_multicast(self) -> bool:
        return bool((self._value >> 40) & 0x01)

    def __int__(self) -> int:
        return self._value

    def __bytes__(self) -> bytes:
        return self.packed

    def __eq__(self, other) -> bool:
        if isinstance(other, MacAddress):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "MacAddress") -> bool:
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(self._value)

    def __str__(self) -> str:
        return ":".join("%02x" % b for b in self.packed)

    def __repr__(self) -> str:
        return "MacAddress('%s')" % self


class IPv4Address:
    """A 32-bit IPv4 address."""

    __slots__ = ("_value",)

    def __init__(self, value):
        if isinstance(value, IPv4Address):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value < (1 << 32):
                raise ValueError("IPv4 address out of range: %#x" % value)
            self._value = value
        elif isinstance(value, (bytes, bytearray, memoryview)):
            raw = bytes(value)
            if len(raw) != 4:
                raise ValueError("IPv4 address needs 4 bytes, got %d" % len(raw))
            self._value = int.from_bytes(raw, "big")
        elif isinstance(value, str):
            parts = value.split(".")
            if len(parts) != 4:
                raise ValueError("invalid IPv4 address: %r" % value)
            octets = []
            for part in parts:
                if not part.isdigit():
                    raise ValueError("invalid IPv4 address: %r" % value)
                octet = int(part)
                if octet > 255:
                    raise ValueError("invalid IPv4 address: %r" % value)
                octets.append(octet)
            self._value = int.from_bytes(bytes(octets), "big")
        else:
            raise TypeError("cannot build IPv4Address from %r" % type(value))

    @property
    def packed(self) -> bytes:
        return self._value.to_bytes(4, "big")

    @property
    def value(self) -> int:
        return self._value

    def in_prefix(self, prefix: "IPv4Address", prefix_len: int) -> bool:
        """Return True when this address falls inside ``prefix/prefix_len``."""
        if not 0 <= prefix_len <= 32:
            raise ValueError("prefix length out of range: %d" % prefix_len)
        if prefix_len == 0:
            return True
        mask = ((1 << prefix_len) - 1) << (32 - prefix_len)
        return (self._value & mask) == (prefix.value & mask)

    def __int__(self) -> int:
        return self._value

    def __bytes__(self) -> bytes:
        return self.packed

    def __eq__(self, other) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(self._value)

    def __str__(self) -> str:
        return ".".join(str(b) for b in self.packed)

    def __repr__(self) -> str:
        return "IPv4Address('%s')" % self
