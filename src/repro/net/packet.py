"""The framework-side packet object (FastClick's ``Packet`` class analogue).

A :class:`Packet` owns a byte buffer laid out like a DPDK data segment:
``headroom`` spare bytes (for prepending headers, e.g. VLAN encapsulation)
followed by the live frame bytes.  Alongside the raw bytes it carries:

- *metadata*: buffer length, input port, RSS hash, VLAN TCI, timestamp --
  the information the NIC/driver produces about the frame, and
- *annotations*: a fixed 48-byte scratch area (Click's ``anno`` region) plus
  cached header offsets, which elements use to pass derived information
  down the processing graph.

The paper's §2.2 centres on how this object is materialized from DPDK's
``rte_mbuf`` (Copying vs. Overlaying vs. X-Change); the byte-level layout
differences are modelled in :mod:`repro.compiler.structlayout` while this
class provides the functional behaviour shared by all models.
"""

from __future__ import annotations

from typing import Optional

from repro.net.protocols.arp import ArpHeader
from repro.net.protocols.ether import EtherHeader
from repro.net.protocols.icmp import IcmpHeader
from repro.net.protocols.ip4 import Ipv4Header
from repro.net.protocols.tcp import TcpHeader
from repro.net.protocols.udp import UdpHeader
from repro.net.protocols.vlan import VlanHeader

DEFAULT_HEADROOM = 128
ANNO_SIZE = 48

# Fixed annotation offsets, mirroring Click's packet_anno.hh conventions.
ANNO_PAINT = 0  # u8: element-defined color
ANNO_VLAN_TCI = 2  # u16: VLAN tag control information
ANNO_DST_IP = 4  # u32: destination IP (set by routing lookup)
ANNO_AGGREGATE = 8  # u32: flow aggregate / RSS bucket
ANNO_EXTRA_LENGTH = 12  # u32
ANNO_SEQUENCE = 16  # u32: generator sequence number


class Packet:
    """A network packet with metadata and a 48-byte annotation area."""

    __slots__ = (
        "buffer",
        "headroom",
        "length",
        "anno",
        "timestamp",
        "port",
        "rss_hash",
        "vlan_tci",
        "packet_type",
        "mac_header_offset",
        "network_header_offset",
        "transport_header_offset",
        "mbuf",
        "rx_error",
        "qos_ticket",
    )

    def __init__(
        self,
        data: bytes = b"",
        headroom: int = DEFAULT_HEADROOM,
        timestamp: float = 0.0,
        port: int = 0,
    ):
        self.buffer = bytearray(headroom) + bytearray(data)
        self.headroom = headroom
        self.length = len(data)
        self.anno = bytearray(ANNO_SIZE)
        self.timestamp = timestamp
        self.port = port
        self.rss_hash = 0
        self.vlan_tci = 0
        self.packet_type = 0
        self.mac_header_offset: Optional[int] = None
        self.network_header_offset: Optional[int] = None
        self.transport_header_offset: Optional[int] = None
        self.mbuf = None  # back-pointer when overlaid on a DPDK mbuf
        # Hardware receive verdict ("truncated" | "corrupt" | None); set by
        # the fault injector, checked by the PMD's offload validation.
        self.rx_error: Optional[str] = None
        # (QosPort, priority) charge taken at ingress admission; released
        # exactly once when the frame leaves the system.  Clones never
        # carry a ticket: only the original frame passed admission.
        self.qos_ticket = None

    @property
    def priority(self) -> int:
        """802.1p priority: the PCP bits of the VLAN TCI (802.1Qbb PFC)."""
        return (self.vlan_tci >> 13) & 0x7

    @priority.setter
    def priority(self, value: int) -> None:
        self.vlan_tci = ((value & 0x7) << 13) | (self.vlan_tci & 0x1FFF)

    # -- raw data ------------------------------------------------------------

    def data(self) -> memoryview:
        """Writable view over the live frame bytes."""
        return memoryview(self.buffer)[self.headroom : self.headroom + self.length]

    def data_bytes(self) -> bytes:
        return bytes(self.data())

    def push(self, nbytes: int) -> None:
        """Extend the frame ``nbytes`` into the headroom (prepend space)."""
        if nbytes > self.headroom:
            raise ValueError(
                "push of %d bytes exceeds headroom of %d" % (nbytes, self.headroom)
            )
        self.headroom -= nbytes
        self.length += nbytes
        self._shift_header_offsets(nbytes)

    def pull(self, nbytes: int) -> None:
        """Strip ``nbytes`` from the front of the frame into the headroom."""
        if nbytes > self.length:
            raise ValueError("pull of %d bytes exceeds length %d" % (nbytes, self.length))
        self.headroom += nbytes
        self.length -= nbytes
        self._shift_header_offsets(-nbytes)

    def take(self, nbytes: int) -> None:
        """Strip ``nbytes`` from the end of the frame."""
        if nbytes > self.length:
            raise ValueError("take of %d bytes exceeds length %d" % (nbytes, self.length))
        self.length -= nbytes

    def _shift_header_offsets(self, delta: int) -> None:
        if self.mac_header_offset is not None:
            self.mac_header_offset += delta
        if self.network_header_offset is not None:
            self.network_header_offset += delta
        if self.transport_header_offset is not None:
            self.transport_header_offset += delta

    def clone(self) -> "Packet":
        """Deep copy (data and annotations)."""
        other = Packet(b"", headroom=0)
        other.buffer = bytearray(self.buffer)
        other.headroom = self.headroom
        other.length = self.length
        other.anno = bytearray(self.anno)
        other.timestamp = self.timestamp
        other.port = self.port
        other.rss_hash = self.rss_hash
        other.vlan_tci = self.vlan_tci
        other.packet_type = self.packet_type
        other.mac_header_offset = self.mac_header_offset
        other.network_header_offset = self.network_header_offset
        other.transport_header_offset = self.transport_header_offset
        other.rx_error = self.rx_error
        return other

    # -- annotations ---------------------------------------------------------

    def anno_u8(self, offset: int) -> int:
        return self.anno[offset]

    def set_anno_u8(self, offset: int, value: int) -> None:
        self.anno[offset] = value & 0xFF

    def anno_u16(self, offset: int) -> int:
        return int.from_bytes(self.anno[offset : offset + 2], "big")

    def set_anno_u16(self, offset: int, value: int) -> None:
        self.anno[offset : offset + 2] = (value & 0xFFFF).to_bytes(2, "big")

    def anno_u32(self, offset: int) -> int:
        return int.from_bytes(self.anno[offset : offset + 4], "big")

    def set_anno_u32(self, offset: int, value: int) -> None:
        self.anno[offset : offset + 4] = (value & 0xFFFFFFFF).to_bytes(4, "big")

    # -- header views ---------------------------------------------------------

    def _abs(self, rel: Optional[int]) -> int:
        if rel is None:
            raise ValueError("header offset not set; run a classification element first")
        return self.headroom + rel

    def ether(self) -> EtherHeader:
        offset = 0 if self.mac_header_offset is None else self.mac_header_offset
        return EtherHeader(self.buffer, self.headroom + offset)

    def vlan(self) -> VlanHeader:
        offset = 0 if self.mac_header_offset is None else self.mac_header_offset
        return VlanHeader(self.buffer, self.headroom + offset + EtherHeader.LENGTH)

    def ip(self) -> Ipv4Header:
        return Ipv4Header(self.buffer, self._abs(self.network_header_offset))

    def tcp(self) -> TcpHeader:
        return TcpHeader(self.buffer, self._abs(self.transport_header_offset))

    def udp(self) -> UdpHeader:
        return UdpHeader(self.buffer, self._abs(self.transport_header_offset))

    def icmp(self) -> IcmpHeader:
        return IcmpHeader(self.buffer, self._abs(self.transport_header_offset))

    def arp(self) -> ArpHeader:
        offset = 0 if self.mac_header_offset is None else self.mac_header_offset
        return ArpHeader(self.buffer, self.headroom + offset + EtherHeader.LENGTH)

    def transport_available(self) -> int:
        """Bytes available from the transport header to the end of the frame."""
        return self.length - self.transport_header_offset

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        return "Packet(len=%d, port=%d, ts=%.9f)" % (self.length, self.port, self.timestamp)
