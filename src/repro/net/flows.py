"""Flow (5-tuple) modelling and RSS hashing for trace generation."""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache

from repro.net.addresses import IPv4Address
from repro.net.rss import toeplitz_v4

# Protocol numbers (duplicated from protocols to avoid a layering cycle).
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17


@dataclass(frozen=True)
class FlowSpec:
    """An IPv4 5-tuple identifying one flow."""

    src_ip: IPv4Address
    dst_ip: IPv4Address
    proto: int
    src_port: int
    dst_port: int

    def reversed(self) -> "FlowSpec":
        """The return-direction flow (as a NAT's reverse mapping sees it)."""
        return FlowSpec(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            proto=self.proto,
            src_port=self.dst_port,
            dst_port=self.src_port,
        )

    def rss_hash(self) -> int:
        """The Microsoft Toeplitz 32-bit receive-side-scaling hash.

        Exactly the hash a ConnectX-class NIC computes with the default
        key (:mod:`repro.net.rss`): TCP/UDP hash the 12-byte
        addresses+ports input, other protocols the 8-byte addresses-only
        input.  Memoized per tuple -- trace pools draw the same flows
        over and over.
        """
        return _toeplitz_of(self.src_ip.value, self.dst_ip.value,
                            self.proto, self.src_port, self.dst_port)


@lru_cache(maxsize=65536)
def _toeplitz_of(src_ip: int, dst_ip: int, proto: int,
                 src_port: int, dst_port: int) -> int:
    return toeplitz_v4(src_ip, dst_ip, proto, src_port, dst_port)


class FlowSet:
    """A reproducible population of flows with Zipf-like popularity.

    Campus/ISP traffic is heavy-tailed: a few elephant flows carry most
    packets.  ``pick()`` draws flows with a Zipf(s) popularity so generated
    traces exhibit realistic locality (which matters for the NAT's hash
    table and the router's route cache behaviour).
    """

    def __init__(
        self,
        count: int,
        rng: random.Random,
        proto_mix=((PROTO_TCP, 0.85), (PROTO_UDP, 0.14), (PROTO_ICMP, 0.01)),
        src_subnet: str = "10.0.0.0",
        dst_subnet: str = "192.168.0.0",
        zipf_s: float = 1.1,
    ):
        if count < 1:
            raise ValueError("flow count must be >= 1")
        self._rng = rng
        self._flows = []
        protos, weights = zip(*proto_mix)
        src_base = IPv4Address(src_subnet).value
        dst_base = IPv4Address(dst_subnet).value
        for i in range(count):
            proto = rng.choices(protos, weights=weights)[0]
            flow = FlowSpec(
                src_ip=IPv4Address(src_base + rng.randrange(1, 1 << 16)),
                dst_ip=IPv4Address(dst_base + rng.randrange(1, 1 << 16)),
                proto=proto,
                src_port=rng.randrange(1024, 65536) if proto != PROTO_ICMP else 0,
                dst_port=rng.choice((80, 443, 53, 8080, 22))
                if proto != PROTO_ICMP
                else 0,
            )
            self._flows.append(flow)
        # Precompute a Zipf CDF over flow ranks for O(log n) sampling.
        harmonics = [1.0 / ((rank + 1) ** zipf_s) for rank in range(count)]
        total = sum(harmonics)
        self._cdf = []
        acc = 0.0
        for h in harmonics:
            acc += h / total
            self._cdf.append(acc)

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self):
        return iter(self._flows)

    def __getitem__(self, index: int) -> FlowSpec:
        return self._flows[index]

    def pick(self) -> FlowSpec:
        """Sample one flow according to the Zipf popularity."""
        u = self._rng.random()
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return self._flows[lo]
