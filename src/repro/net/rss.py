"""Receive-side scaling: the Microsoft Toeplitz hash and indirection table.

RSS is how a single physical port feeds N cores without reordering any
flow: the NIC hashes each frame's 5-tuple with the Toeplitz function,
indexes an indirection table with the low bits of the hash, and DMA's the
frame to the RX queue the table names.  Because the hash is a pure
function of the tuple, every packet of a flow lands on the same queue --
per-flow ordering is preserved while flows spread across cores.

This module reproduces the NIC-side pieces faithfully enough to study
sharding behaviour:

- :func:`toeplitz_hash` / :class:`ToeplitzKey` -- the real Microsoft
  Toeplitz over the RSS input (verified against the vectors published in
  the Windows NDIS RSS specification, see ``tests/net/test_rss.py``).
- :class:`IndirectionTable` -- the RETA: ``table[hash % size] -> queue``.
- :class:`RssConfig` -- hashable/picklable knob bundle (key, table size,
  mempool policy, per-queue backlog bound) carried by ``RunProfile`` and
  sweep ``PointSpec``s.
- :func:`parse_flow` -- extract the IPv4 5-tuple from raw frame bytes
  (the fallback when a packet arrives without a precomputed hash).

Layering: this module sits below ``repro.net.flows`` (which calls
:func:`toeplitz_v4` for ``FlowSpec.rss_hash``) and must not import it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, List, Optional, Tuple

from repro.net.steering import SteeringPolicy

#: The 40-byte default secret key from the Microsoft RSS specification
#: (the same default DPDK, mlx5, and ixgbe ship).  40 bytes covers the
#: largest input (IPv6 with ports, 36 bytes) plus the 31-bit window tail.
MICROSOFT_RSS_KEY = bytes((
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2,
    0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4,
    0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
))

_MASK32 = 0xFFFFFFFF

# IPv4 protocol numbers that hash with ports (TCP/UDP per the spec; the
# hash falls back to the 8-byte IP-only input for everything else).
_PORTED_PROTOS = frozenset((6, 17))


class ToeplitzKey:
    """A Toeplitz secret key with per-byte lookup tables.

    The textbook definition XORs a sliding 32-bit window of the key for
    every *bit* set in the input.  Per-byte tables fold eight window
    lookups into one, making the per-packet cost eight table reads for a
    12-byte input instead of 96 bit tests.
    """

    __slots__ = ("key", "_tables")

    def __init__(self, key: bytes = MICROSOFT_RSS_KEY, max_input: int = 12):
        if len(key) < max_input + 4:
            raise ValueError(
                "RSS key must cover the input plus a 32-bit window "
                "(%d bytes given, %d needed)" % (len(key), max_input + 4))
        self.key = bytes(key)
        key_int = int.from_bytes(self.key, "big")
        key_bits = 8 * len(self.key)
        tables: List[Tuple[int, ...]] = []
        for byte_index in range(max_input):
            windows = [
                (key_int >> (key_bits - 32 - (8 * byte_index + bit))) & _MASK32
                for bit in range(8)
            ]
            row = []
            for value in range(256):
                acc = 0
                for bit in range(8):
                    if value & (0x80 >> bit):
                        acc ^= windows[bit]
                row.append(acc)
            tables.append(tuple(row))
        self._tables = tuple(tables)

    def hash_bytes(self, data: bytes) -> int:
        """Toeplitz hash of ``data`` (must fit the precomputed tables)."""
        if len(data) > len(self._tables):
            raise ValueError(
                "input of %d bytes exceeds the %d-byte tables"
                % (len(data), len(self._tables)))
        acc = 0
        tables = self._tables
        for index, byte in enumerate(data):
            acc ^= tables[index][byte]
        return acc

    def hash_v4(self, src_ip: int, dst_ip: int,
                src_port: Optional[int] = None,
                dst_port: Optional[int] = None) -> int:
        """Hash an IPv4 tuple: 12-byte input with ports, 8-byte without."""
        data = src_ip.to_bytes(4, "big") + dst_ip.to_bytes(4, "big")
        if src_port is not None and dst_port is not None:
            data += src_port.to_bytes(2, "big") + dst_port.to_bytes(2, "big")
        return self.hash_bytes(data)


@lru_cache(maxsize=4)
def _key_for(key: bytes) -> ToeplitzKey:
    return ToeplitzKey(key)


def toeplitz_hash(data: bytes, key: bytes = MICROSOFT_RSS_KEY) -> int:
    """One-shot Toeplitz hash of raw input bytes."""
    return _key_for(key).hash_bytes(data)


def toeplitz_v4(src_ip: int, dst_ip: int, proto: int,
                src_port: int, dst_port: int,
                key: bytes = MICROSOFT_RSS_KEY) -> int:
    """The hash a ported NIC computes for an IPv4 frame.

    TCP and UDP hash the full 12-byte (addresses + ports) input; other
    protocols (ICMP, fragments, ...) hash addresses only, exactly as the
    NDIS ``IPv4`` hash type prescribes.
    """
    if proto in _PORTED_PROTOS:
        return _key_for(key).hash_v4(src_ip, dst_ip, src_port, dst_port)
    return _key_for(key).hash_v4(src_ip, dst_ip)


class IndirectionTable:
    """The RSS redirection table (RETA): low hash bits -> RX queue id.

    The default 128-entry table matches ConnectX-class hardware; entries
    are initialized round-robin across queues, which is what drivers
    program for equal-weight sharding.  ``retarget`` rewrites entries
    (the knob dynamic rebalancers would turn).
    """

    __slots__ = ("entries", "n_queues")

    def __init__(self, n_queues: int, size: int = 128):
        if n_queues < 1:
            raise ValueError("need at least one queue")
        if size < n_queues:
            raise ValueError("table smaller than the queue count")
        self.n_queues = n_queues
        self.entries: List[int] = [i % n_queues for i in range(size)]

    def queue_for(self, rss_hash: int) -> int:
        return self.entries[rss_hash % len(self.entries)]

    def retarget(self, index: int, queue: int) -> None:
        if not 0 <= queue < self.n_queues:
            raise ValueError("queue %d out of range" % queue)
        self.entries[index % len(self.entries)] = queue

    def retarget_batch(self, moves: Iterable[Tuple[int, int]]) -> int:
        """Apply ``(index, queue)`` rewrites atomically.

        Every move is validated before any entry changes, so a bad queue
        id in the middle of a batch leaves the table untouched -- the
        semantics of ``rte_eth_dev_rss_reta_update``, which takes the
        whole table in one call.  Returns the number of entries written.
        """
        size = len(self.entries)
        staged = [(index % size, queue) for index, queue in moves]
        for _, queue in staged:
            if not 0 <= queue < self.n_queues:
                raise ValueError("queue %d out of range" % queue)
        for index, queue in staged:
            self.entries[index] = queue
        return len(staged)

    def buckets_for_queue(self, queue: int) -> List[int]:
        """Indices of every entry currently steering to ``queue``."""
        return [i for i, q in enumerate(self.entries) if q == queue]

    def spread(self) -> List[int]:
        """Per-queue entry counts (the table's static weight per queue)."""
        counts = [0] * self.n_queues
        for q in self.entries:
            counts[q] += 1
        return counts

    def histogram(self, hashes) -> List[int]:
        """Per-queue counts for an iterable of hashes (distribution tests)."""
        counts = [0] * self.n_queues
        for h in hashes:
            counts[self.queue_for(h)] += 1
        return counts


#: Mempool policies for the sharded NIC: ``partitioned`` gives every
#: queue's PMD its own mempool (DPDK's per-queue ``rte_pktmbuf_pool``
#: idiom, the default); ``shared`` binds all queues to one pool so
#: exhaustion couples the queues (the scenario PR 1's mempool faults and
#: PR 6's buffer carving care about).
MEMPOOL_PARTITIONED = "partitioned"
MEMPOOL_SHARED = "shared"


@dataclass(frozen=True)
class RssConfig:
    """Sharding knobs, picklable and hashable so sweeps can key on them.

    ``backlog_cap`` bounds the per-queue staging backlog between the
    shared arrival stream and each queue's descriptor ring -- the
    simulated analogue of the RX descriptor ring depth headroom.  When an
    elephant flow overloads one queue past the cap, further frames
    steered there are dropped and counted (``imissed`` on that queue,
    ``rss.qN.dropped`` in the port ledger), never silently lost.

    ``ingest_budget`` caps how many arrivals one queue poll may pull from
    the shared trace while hunting for a frame of its own (``None`` =
    auto: ``4 * burst * n_queues``, enough for moderate imbalance to keep
    every queue's bursts full).

    ``steering`` attaches an adaptive-steering control loop
    (:class:`~repro.net.steering.SteeringPolicy`): the sharded runtime
    then rebalances the indirection table from live queue occupancy,
    gated by the policy's migration cost model.  ``None`` (the default)
    keeps the PR 8 static-RETA behaviour bit-for-bit.
    """

    key: bytes = MICROSOFT_RSS_KEY
    table_size: int = 128
    mempool: str = MEMPOOL_PARTITIONED
    backlog_cap: int = 4096
    ingest_budget: Optional[int] = None
    steering: Optional[SteeringPolicy] = None

    def __post_init__(self):
        if len(self.key) < 16:
            raise ValueError("RSS key too short")
        if self.table_size < 1:
            raise ValueError("table_size must be >= 1")
        if self.mempool not in (MEMPOOL_PARTITIONED, MEMPOOL_SHARED):
            raise ValueError("mempool must be %r or %r"
                             % (MEMPOOL_PARTITIONED, MEMPOOL_SHARED))
        if self.backlog_cap < 1:
            raise ValueError("backlog_cap must be >= 1")
        if self.ingest_budget is not None and self.ingest_budget < 1:
            raise ValueError("ingest_budget must be >= 1 (or None)")
        if self.steering is not None and not isinstance(self.steering,
                                                        SteeringPolicy):
            raise ValueError("steering must be a SteeringPolicy (or None)")


# -- frame parsing ----------------------------------------------------------

_ETHERTYPE_IP = 0x0800
_ETHERTYPE_VLAN = 0x8100


def parse_flow(frame, offset: int = 0) -> Optional[Tuple[int, int, int, int, int]]:
    """Extract ``(src_ip, dst_ip, proto, src_port, dst_port)`` from a frame.

    Understands plain Ethernet/IPv4 and one 802.1Q tag.  Returns ``None``
    for anything else (non-IP, truncated) -- such frames hash to 0 and
    land on queue 0, which is what hardware RSS does with frames its hash
    types do not cover.
    """
    view = memoryview(frame)[offset:]
    if len(view) < 34:
        return None
    ethertype = (view[12] << 8) | view[13]
    l3 = 14
    if ethertype == _ETHERTYPE_VLAN:
        if len(view) < 38:
            return None
        ethertype = (view[16] << 8) | view[17]
        l3 = 18
    if ethertype != _ETHERTYPE_IP:
        return None
    ihl = (view[l3] & 0x0F) * 4
    if ihl < 20 or len(view) < l3 + ihl:
        return None
    proto = view[l3 + 9]
    src_ip = int.from_bytes(view[l3 + 12:l3 + 16], "big")
    dst_ip = int.from_bytes(view[l3 + 16:l3 + 20], "big")
    src_port = dst_port = 0
    l4 = l3 + ihl
    if proto in _PORTED_PROTOS and len(view) >= l4 + 4:
        src_port = (view[l4] << 8) | view[l4 + 1]
        dst_port = (view[l4 + 2] << 8) | view[l4 + 3]
    return src_ip, dst_ip, proto, src_port, dst_port


def hash_frame(frame, key: bytes = MICROSOFT_RSS_KEY) -> int:
    """The RSS hash the NIC would compute for raw frame bytes."""
    tup = parse_flow(frame)
    if tup is None:
        return 0
    return toeplitz_v4(*tup, key=key)
