"""Classic libpcap file I/O and pcap-backed trace replay.

The paper replays a captured campus trace through the DUT.  This module
lets this reproduction do the same with any real capture: write generated
traffic to a ``.pcap`` (readable by tcpdump/wireshark), read captures
back, and wrap one as a trace source for the simulated NIC
(:class:`PcapTraceGenerator`), replaying it N times like the paper
replays its first two million packets 25 times.

Format: classic pcap (not pcapng), microsecond timestamps, LINKTYPE_ETHERNET.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, List, Tuple

from repro.net.packet import ANNO_SEQUENCE, Packet

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1
GLOBAL_HEADER = struct.Struct("<IHHiIII")
RECORD_HEADER = struct.Struct("<IIII")


class PcapFormatError(ValueError):
    """Not a classic pcap file, or a truncated one."""


def write_pcap(path: str, frames: Iterable[Tuple[float, bytes]],
               snaplen: int = 65535) -> int:
    """Write (timestamp_seconds, frame_bytes) records; returns the count."""
    count = 0
    with open(path, "wb") as handle:
        handle.write(
            GLOBAL_HEADER.pack(
                PCAP_MAGIC, PCAP_VERSION[0], PCAP_VERSION[1],
                0, 0, snaplen, LINKTYPE_ETHERNET,
            )
        )
        for timestamp, frame in frames:
            ts_sec = int(timestamp)
            ts_usec = int(round((timestamp - ts_sec) * 1e6))
            if ts_usec >= 1_000_000:  # rounding spill into the next second
                ts_sec += 1
                ts_usec -= 1_000_000
            captured = frame[:snaplen]
            handle.write(
                RECORD_HEADER.pack(ts_sec, ts_usec, len(captured), len(frame))
            )
            handle.write(captured)
            count += 1
    return count


def write_packets(path: str, packets: Iterable[Packet]) -> int:
    """Convenience: dump Packet objects with their timestamps."""
    return write_pcap(path, ((p.timestamp, p.data_bytes()) for p in packets))


def read_pcap(path: str) -> Iterator[Tuple[float, bytes]]:
    """Yield (timestamp_seconds, frame_bytes) from a classic pcap file."""
    with open(path, "rb") as handle:
        header = handle.read(GLOBAL_HEADER.size)
        if len(header) < GLOBAL_HEADER.size:
            raise PcapFormatError("truncated pcap global header")
        magic = struct.unpack("<I", header[:4])[0]
        if magic == PCAP_MAGIC:
            endian = "<"
        elif magic == 0xD4C3B2A1:
            endian = ">"
        else:
            raise PcapFormatError("bad pcap magic: %#x" % magic)
        fields = struct.unpack(endian + "IHHiIII", header)
        if fields[1:3] != PCAP_VERSION:
            raise PcapFormatError("unsupported pcap version %s.%s" % fields[1:3])
        if fields[6] != LINKTYPE_ETHERNET:
            raise PcapFormatError("unsupported link type %d" % fields[6])
        record = struct.Struct(endian + "IIII")
        while True:
            raw = handle.read(record.size)
            if not raw:
                return
            if len(raw) < record.size:
                raise PcapFormatError("truncated record header")
            ts_sec, ts_usec, incl_len, _orig_len = record.unpack(raw)
            frame = handle.read(incl_len)
            if len(frame) < incl_len:
                raise PcapFormatError("truncated packet record")
            yield ts_sec + ts_usec / 1e6, frame


class PcapTraceGenerator:
    """A NIC trace source backed by a capture file (loops like a replay).

    Satisfies the same interface the synthetic generators provide
    (``next_packet``, ``packets``, ``mean_frame_length``), so a capture
    can drive any experiment: pass it as ``trace=`` to ``PacketMill``.
    """

    def __init__(self, path: str, repeat: bool = True):
        self._records: List[Tuple[float, bytes]] = list(read_pcap(path))
        if not self._records:
            raise PcapFormatError("capture %r holds no packets" % path)
        self.path = path
        self.repeat = repeat
        self._cursor = 0
        self._seq = 0

    def __len__(self) -> int:
        return len(self._records)

    def mean_frame_length(self) -> float:
        return sum(len(f) for _, f in self._records) / len(self._records)

    def next_packet(self, timestamp: float = 0.0) -> Packet:
        if self._cursor >= len(self._records):
            if not self.repeat:
                raise StopIteration("capture exhausted")
            self._cursor = 0
        _, frame = self._records[self._cursor]
        self._cursor += 1
        pkt = Packet(frame, timestamp=timestamp)
        pkt.set_anno_u32(ANNO_SEQUENCE, self._seq)
        self._seq += 1
        return pkt

    def packets(self, count: int, rate_pps=None) -> Iterator[Packet]:
        interval = 1.0 / rate_pps if rate_pps else 0.0
        for i in range(count):
            yield self.next_packet(timestamp=i * interval)
