"""Trace statistics: the summary numbers the paper quotes about traces.

("The campus trace has 799 M packets with an average size of 981 B" --
this module computes those facts for any trace or capture: packet/byte
counts, size histogram, protocol mix, flow counts and concentration.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.net.packet import Packet
from repro.net.protocols import (
    ETHERTYPE_ARP,
    ETHERTYPE_IP,
    IP_PROTO_ICMP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
)

SIZE_BINS = (64, 128, 256, 512, 1024, 1514)

_PROTO_NAMES = {IP_PROTO_TCP: "tcp", IP_PROTO_UDP: "udp", IP_PROTO_ICMP: "icmp"}


@dataclass
class TraceStats:
    """Accumulated statistics over a packet stream."""

    packets: int = 0
    bytes: int = 0
    min_len: int = 1 << 30
    max_len: int = 0
    size_histogram: Dict[int, int] = field(default_factory=dict)
    protocols: Dict[str, int] = field(default_factory=dict)
    flows: Dict[Tuple, int] = field(default_factory=dict)

    # -- accumulation ------------------------------------------------------------

    def add_frame(self, frame: bytes) -> None:
        length = len(frame)
        self.packets += 1
        self.bytes += length
        self.min_len = min(self.min_len, length)
        self.max_len = max(self.max_len, length)
        self.size_histogram[self._bin(length)] = (
            self.size_histogram.get(self._bin(length), 0) + 1
        )
        ethertype = int.from_bytes(frame[12:14], "big") if length >= 14 else 0
        if ethertype == ETHERTYPE_IP and length >= 34:
            proto = frame[23]
            name = _PROTO_NAMES.get(proto, "other-ip")
            self.protocols[name] = self.protocols.get(name, 0) + 1
            flow = self._flow_key(frame, proto)
            self.flows[flow] = self.flows.get(flow, 0) + 1
        elif ethertype == ETHERTYPE_ARP:
            self.protocols["arp"] = self.protocols.get("arp", 0) + 1
        else:
            self.protocols["other"] = self.protocols.get("other", 0) + 1

    def add_packet(self, pkt: Packet) -> None:
        self.add_frame(pkt.data_bytes())

    @staticmethod
    def _bin(length: int) -> int:
        for edge in SIZE_BINS:
            if length <= edge:
                return edge
        return SIZE_BINS[-1]

    @staticmethod
    def _flow_key(frame: bytes, proto: int) -> Tuple:
        src = frame[26:30]
        dst = frame[30:34]
        ports = frame[34:38] if proto in (IP_PROTO_TCP, IP_PROTO_UDP) and len(frame) >= 38 else b""
        return (bytes(src), bytes(dst), proto, bytes(ports))

    # -- derived facts --------------------------------------------------------------

    @property
    def mean_len(self) -> float:
        return self.bytes / self.packets if self.packets else 0.0

    @property
    def n_flows(self) -> int:
        return len(self.flows)

    def protocol_share(self, name: str) -> float:
        if not self.packets:
            return 0.0
        return self.protocols.get(name, 0) / self.packets

    def top_flow_share(self, fraction: float = 0.1) -> float:
        """Share of packets carried by the top ``fraction`` of flows --
        the heavy-tail concentration metric."""
        if not self.flows:
            return 0.0
        counts = sorted(self.flows.values(), reverse=True)
        top_n = max(1, int(len(counts) * fraction))
        return sum(counts[:top_n]) / self.packets

    def format_report(self) -> str:
        lines = [
            "packets: %d" % self.packets,
            "bytes: %d" % self.bytes,
            "mean frame: %.1f B (min %d, max %d)"
            % (self.mean_len, self.min_len if self.packets else 0, self.max_len),
            "flows: %d (top-10%% carry %.0f%%)"
            % (self.n_flows, self.top_flow_share() * 100),
            "protocols: "
            + ", ".join(
                "%s %.1f%%" % (name, share * 100)
                for name, share in sorted(
                    ((n, self.protocol_share(n)) for n in self.protocols),
                    key=lambda kv: -kv[1],
                )
            ),
            "sizes: "
            + ", ".join(
                "<=%d: %d" % (edge, self.size_histogram.get(edge, 0))
                for edge in SIZE_BINS
            ),
        ]
        return "\n".join(lines)


def collect(frames_or_packets: Iterable) -> TraceStats:
    """Build stats from an iterable of frames (bytes) or Packet objects."""
    stats = TraceStats()
    for item in frames_or_packets:
        if isinstance(item, Packet):
            stats.add_packet(item)
        else:
            stats.add_frame(item)
    return stats
