"""Ethernet II header codec."""

from __future__ import annotations

from repro.net.addresses import MacAddress

ETHER_HEADER_LEN = 14


class EtherHeader:
    """A mutable view over a 14-byte Ethernet II header inside a buffer."""

    __slots__ = ("_buf", "_off")

    LENGTH = ETHER_HEADER_LEN

    def __init__(self, buf: bytearray, offset: int = 0):
        if len(buf) - offset < ETHER_HEADER_LEN:
            raise ValueError("buffer too short for Ethernet header")
        self._buf = buf
        self._off = offset

    @classmethod
    def build(cls, dst: MacAddress, src: MacAddress, ethertype: int) -> bytes:
        """Serialize a fresh Ethernet header."""
        return dst.packed + src.packed + ethertype.to_bytes(2, "big")

    @property
    def dst(self) -> MacAddress:
        return MacAddress(bytes(self._buf[self._off : self._off + 6]))

    @dst.setter
    def dst(self, mac: MacAddress) -> None:
        self._buf[self._off : self._off + 6] = MacAddress(mac).packed

    @property
    def src(self) -> MacAddress:
        return MacAddress(bytes(self._buf[self._off + 6 : self._off + 12]))

    @src.setter
    def src(self, mac: MacAddress) -> None:
        self._buf[self._off + 6 : self._off + 12] = MacAddress(mac).packed

    @property
    def ethertype(self) -> int:
        return int.from_bytes(self._buf[self._off + 12 : self._off + 14], "big")

    @ethertype.setter
    def ethertype(self, value: int) -> None:
        self._buf[self._off + 12 : self._off + 14] = value.to_bytes(2, "big")

    def swap_addresses(self) -> None:
        """Exchange source and destination MACs (EtherMirror's operation)."""
        off = self._off
        dst = bytes(self._buf[off : off + 6])
        self._buf[off : off + 6] = self._buf[off + 6 : off + 12]
        self._buf[off + 6 : off + 12] = dst

    def __repr__(self) -> str:
        return "EtherHeader(dst=%s, src=%s, type=0x%04x)" % (
            self.dst,
            self.src,
            self.ethertype,
        )
