"""IEEE 802.1Q VLAN tag codec."""

from __future__ import annotations

VLAN_HEADER_LEN = 4


class VlanHeader:
    """View over a 4-byte 802.1Q tag (TCI + inner ethertype)."""

    __slots__ = ("_buf", "_off")

    LENGTH = VLAN_HEADER_LEN

    def __init__(self, buf: bytearray, offset: int):
        if len(buf) - offset < VLAN_HEADER_LEN:
            raise ValueError("buffer too short for VLAN tag")
        self._buf = buf
        self._off = offset

    @classmethod
    def build(cls, vlan_id: int, inner_ethertype: int, pcp: int = 0, dei: int = 0) -> bytes:
        if not 0 <= vlan_id < 4096:
            raise ValueError("VLAN ID out of range: %d" % vlan_id)
        if not 0 <= pcp < 8:
            raise ValueError("PCP out of range: %d" % pcp)
        tci = (pcp << 13) | ((dei & 1) << 12) | vlan_id
        return tci.to_bytes(2, "big") + inner_ethertype.to_bytes(2, "big")

    @property
    def tci(self) -> int:
        return int.from_bytes(self._buf[self._off : self._off + 2], "big")

    @tci.setter
    def tci(self, value: int) -> None:
        self._buf[self._off : self._off + 2] = value.to_bytes(2, "big")

    @property
    def vlan_id(self) -> int:
        return self.tci & 0x0FFF

    @vlan_id.setter
    def vlan_id(self, value: int) -> None:
        if not 0 <= value < 4096:
            raise ValueError("VLAN ID out of range: %d" % value)
        self.tci = (self.tci & 0xF000) | value

    @property
    def pcp(self) -> int:
        return self.tci >> 13

    @property
    def inner_ethertype(self) -> int:
        return int.from_bytes(self._buf[self._off + 2 : self._off + 4], "big")

    @inner_ethertype.setter
    def inner_ethertype(self, value: int) -> None:
        self._buf[self._off + 2 : self._off + 4] = value.to_bytes(2, "big")

    def __repr__(self) -> str:
        return "VlanHeader(id=%d, pcp=%d, inner=0x%04x)" % (
            self.vlan_id,
            self.pcp,
            self.inner_ethertype,
        )
