"""TCP header codec."""

from __future__ import annotations

from repro.net.checksum import incremental_update

TCP_MIN_HEADER_LEN = 20

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10
FLAG_URG = 0x20


class TcpHeader:
    """View over a TCP header (20 bytes + options) inside a buffer."""

    __slots__ = ("_buf", "_off")

    LENGTH = TCP_MIN_HEADER_LEN

    FIN = FLAG_FIN
    SYN = FLAG_SYN
    RST = FLAG_RST
    PSH = FLAG_PSH
    ACK = FLAG_ACK
    URG = FLAG_URG

    def __init__(self, buf: bytearray, offset: int):
        if len(buf) - offset < TCP_MIN_HEADER_LEN:
            raise ValueError("buffer too short for TCP header")
        self._buf = buf
        self._off = offset

    @classmethod
    def build(
        cls,
        src_port: int,
        dst_port: int,
        seq: int = 0,
        ack: int = 0,
        flags: int = FLAG_ACK,
        window: int = 0xFFFF,
    ) -> bytes:
        header = bytearray(TCP_MIN_HEADER_LEN)
        header[0:2] = src_port.to_bytes(2, "big")
        header[2:4] = dst_port.to_bytes(2, "big")
        header[4:8] = seq.to_bytes(4, "big")
        header[8:12] = ack.to_bytes(4, "big")
        header[12] = (TCP_MIN_HEADER_LEN // 4) << 4
        header[13] = flags
        header[14:16] = window.to_bytes(2, "big")
        return bytes(header)

    @property
    def src_port(self) -> int:
        return int.from_bytes(self._buf[self._off : self._off + 2], "big")

    @src_port.setter
    def src_port(self, value: int) -> None:
        self._set_port(0, value)

    @property
    def dst_port(self) -> int:
        return int.from_bytes(self._buf[self._off + 2 : self._off + 4], "big")

    @dst_port.setter
    def dst_port(self, value: int) -> None:
        self._set_port(2, value)

    def _set_port(self, rel: int, value: int) -> None:
        """Rewrite a port, incrementally fixing the TCP checksum (NAPT path)."""
        off = self._off + rel
        old = int.from_bytes(self._buf[off : off + 2], "big")
        self._buf[off : off + 2] = value.to_bytes(2, "big")
        self.checksum = incremental_update(self.checksum, old, value)

    @property
    def seq(self) -> int:
        return int.from_bytes(self._buf[self._off + 4 : self._off + 8], "big")

    @property
    def ack_num(self) -> int:
        return int.from_bytes(self._buf[self._off + 8 : self._off + 12], "big")

    @property
    def data_offset(self) -> int:
        """Header length in 32-bit words."""
        return self._buf[self._off + 12] >> 4

    @property
    def header_len(self) -> int:
        return self.data_offset * 4

    @property
    def flags(self) -> int:
        return self._buf[self._off + 13]

    @flags.setter
    def flags(self, value: int) -> None:
        self._buf[self._off + 13] = value

    @property
    def window(self) -> int:
        return int.from_bytes(self._buf[self._off + 14 : self._off + 16], "big")

    @property
    def checksum(self) -> int:
        return int.from_bytes(self._buf[self._off + 16 : self._off + 18], "big")

    @checksum.setter
    def checksum(self, value: int) -> None:
        self._buf[self._off + 16 : self._off + 18] = value.to_bytes(2, "big")

    def verify_structure(self, available: int) -> bool:
        """IDS-style structural check: sane data offset within the segment."""
        return 5 <= self.data_offset and self.header_len <= available

    def adjust_checksum_for_address(self, old_ip_words: tuple, new_ip_words: tuple) -> None:
        """Fix the TCP checksum after the pseudo-header address changed."""
        checksum = self.checksum
        for old, new in zip(old_ip_words, new_ip_words):
            checksum = incremental_update(checksum, old, new)
        self.checksum = checksum

    def __repr__(self) -> str:
        return "TcpHeader(sport=%d, dport=%d, flags=0x%02x)" % (
            self.src_port,
            self.dst_port,
            self.flags,
        )
