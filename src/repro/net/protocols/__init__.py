"""View-style protocol header codecs over packet byte buffers."""

from repro.net.protocols.arp import ArpHeader
from repro.net.protocols.ether import EtherHeader
from repro.net.protocols.icmp import IcmpHeader
from repro.net.protocols.ip4 import Ipv4Header
from repro.net.protocols.tcp import TcpHeader
from repro.net.protocols.udp import UdpHeader
from repro.net.protocols.vlan import VlanHeader

ETHERTYPE_IP = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_VLAN = 0x8100

IP_PROTO_ICMP = 1
IP_PROTO_TCP = 6
IP_PROTO_UDP = 17

__all__ = [
    "ArpHeader",
    "EtherHeader",
    "IcmpHeader",
    "Ipv4Header",
    "TcpHeader",
    "UdpHeader",
    "VlanHeader",
    "ETHERTYPE_IP",
    "ETHERTYPE_ARP",
    "ETHERTYPE_VLAN",
    "IP_PROTO_ICMP",
    "IP_PROTO_TCP",
    "IP_PROTO_UDP",
]
