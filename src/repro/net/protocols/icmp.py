"""ICMP header codec."""

from __future__ import annotations

from repro.net.checksum import internet_checksum, verify_checksum

ICMP_HEADER_LEN = 8

ICMP_ECHO_REPLY = 0
ICMP_DEST_UNREACHABLE = 3
ICMP_ECHO_REQUEST = 8
ICMP_TIME_EXCEEDED = 11


class IcmpHeader:
    """View over an 8-byte ICMP header inside a buffer."""

    __slots__ = ("_buf", "_off")

    LENGTH = ICMP_HEADER_LEN

    ECHO_REPLY = ICMP_ECHO_REPLY
    DEST_UNREACHABLE = ICMP_DEST_UNREACHABLE
    ECHO_REQUEST = ICMP_ECHO_REQUEST
    TIME_EXCEEDED = ICMP_TIME_EXCEEDED

    def __init__(self, buf: bytearray, offset: int):
        if len(buf) - offset < ICMP_HEADER_LEN:
            raise ValueError("buffer too short for ICMP header")
        self._buf = buf
        self._off = offset

    @classmethod
    def build(cls, icmp_type: int, code: int = 0, ident: int = 0, seq: int = 0,
              payload: bytes = b"") -> bytes:
        header = bytearray(ICMP_HEADER_LEN)
        header[0] = icmp_type
        header[1] = code
        header[4:6] = ident.to_bytes(2, "big")
        header[6:8] = seq.to_bytes(2, "big")
        header[2:4] = internet_checksum(bytes(header) + payload).to_bytes(2, "big")
        return bytes(header)

    @property
    def icmp_type(self) -> int:
        return self._buf[self._off]

    @icmp_type.setter
    def icmp_type(self, value: int) -> None:
        self._buf[self._off] = value

    @property
    def code(self) -> int:
        return self._buf[self._off + 1]

    @property
    def checksum(self) -> int:
        return int.from_bytes(self._buf[self._off + 2 : self._off + 4], "big")

    @checksum.setter
    def checksum(self, value: int) -> None:
        self._buf[self._off + 2 : self._off + 4] = value.to_bytes(2, "big")

    @property
    def ident(self) -> int:
        return int.from_bytes(self._buf[self._off + 4 : self._off + 6], "big")

    @property
    def seq(self) -> int:
        return int.from_bytes(self._buf[self._off + 6 : self._off + 8], "big")

    def verify(self, payload_len: int) -> bool:
        """Verify the ICMP checksum over header + payload."""
        end = self._off + ICMP_HEADER_LEN + payload_len
        return verify_checksum(bytes(self._buf[self._off : end]))

    def verify_structure(self, available: int) -> bool:
        """IDS-style structural check: known type and room for the header."""
        return available >= ICMP_HEADER_LEN and self.icmp_type in (
            ICMP_ECHO_REPLY,
            ICMP_DEST_UNREACHABLE,
            ICMP_ECHO_REQUEST,
            ICMP_TIME_EXCEEDED,
        )

    def __repr__(self) -> str:
        return "IcmpHeader(type=%d, code=%d)" % (self.icmp_type, self.code)
