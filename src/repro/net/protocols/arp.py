"""ARP (IPv4-over-Ethernet) header codec."""

from __future__ import annotations

from repro.net.addresses import IPv4Address, MacAddress

ARP_HEADER_LEN = 28

ARP_OP_REQUEST = 1
ARP_OP_REPLY = 2


class ArpHeader:
    """View over a 28-byte Ethernet/IPv4 ARP payload."""

    __slots__ = ("_buf", "_off")

    LENGTH = ARP_HEADER_LEN
    OP_REQUEST = ARP_OP_REQUEST
    OP_REPLY = ARP_OP_REPLY

    def __init__(self, buf: bytearray, offset: int):
        if len(buf) - offset < ARP_HEADER_LEN:
            raise ValueError("buffer too short for ARP header")
        self._buf = buf
        self._off = offset

    @classmethod
    def build(
        cls,
        op: int,
        sender_mac: MacAddress,
        sender_ip: IPv4Address,
        target_mac: MacAddress,
        target_ip: IPv4Address,
    ) -> bytes:
        return (
            (1).to_bytes(2, "big")  # htype: Ethernet
            + (0x0800).to_bytes(2, "big")  # ptype: IPv4
            + bytes((6, 4))  # hlen, plen
            + op.to_bytes(2, "big")
            + sender_mac.packed
            + sender_ip.packed
            + target_mac.packed
            + target_ip.packed
        )

    def _u16(self, rel: int) -> int:
        return int.from_bytes(self._buf[self._off + rel : self._off + rel + 2], "big")

    @property
    def op(self) -> int:
        return self._u16(6)

    @op.setter
    def op(self, value: int) -> None:
        self._buf[self._off + 6 : self._off + 8] = value.to_bytes(2, "big")

    @property
    def sender_mac(self) -> MacAddress:
        return MacAddress(bytes(self._buf[self._off + 8 : self._off + 14]))

    @sender_mac.setter
    def sender_mac(self, mac: MacAddress) -> None:
        self._buf[self._off + 8 : self._off + 14] = MacAddress(mac).packed

    @property
    def sender_ip(self) -> IPv4Address:
        return IPv4Address(bytes(self._buf[self._off + 14 : self._off + 18]))

    @sender_ip.setter
    def sender_ip(self, ip: IPv4Address) -> None:
        self._buf[self._off + 14 : self._off + 18] = IPv4Address(ip).packed

    @property
    def target_mac(self) -> MacAddress:
        return MacAddress(bytes(self._buf[self._off + 18 : self._off + 24]))

    @target_mac.setter
    def target_mac(self, mac: MacAddress) -> None:
        self._buf[self._off + 18 : self._off + 24] = MacAddress(mac).packed

    @property
    def target_ip(self) -> IPv4Address:
        return IPv4Address(bytes(self._buf[self._off + 24 : self._off + 28]))

    @target_ip.setter
    def target_ip(self, ip: IPv4Address) -> None:
        self._buf[self._off + 24 : self._off + 28] = IPv4Address(ip).packed

    def is_valid(self) -> bool:
        """Check the fixed hardware/protocol type fields."""
        return (
            self._u16(0) == 1
            and self._u16(2) == 0x0800
            and self._buf[self._off + 4] == 6
            and self._buf[self._off + 5] == 4
        )

    def __repr__(self) -> str:
        return "ArpHeader(op=%d, sender=%s, target=%s)" % (
            self.op,
            self.sender_ip,
            self.target_ip,
        )
