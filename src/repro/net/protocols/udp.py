"""UDP header codec."""

from __future__ import annotations

from repro.net.checksum import incremental_update

UDP_HEADER_LEN = 8


class UdpHeader:
    """View over an 8-byte UDP header inside a buffer."""

    __slots__ = ("_buf", "_off")

    LENGTH = UDP_HEADER_LEN

    def __init__(self, buf: bytearray, offset: int):
        if len(buf) - offset < UDP_HEADER_LEN:
            raise ValueError("buffer too short for UDP header")
        self._buf = buf
        self._off = offset

    @classmethod
    def build(cls, src_port: int, dst_port: int, payload_len: int) -> bytes:
        header = bytearray(UDP_HEADER_LEN)
        header[0:2] = src_port.to_bytes(2, "big")
        header[2:4] = dst_port.to_bytes(2, "big")
        header[4:6] = (UDP_HEADER_LEN + payload_len).to_bytes(2, "big")
        # Checksum 0 = not computed; legal for UDP over IPv4.
        return bytes(header)

    @property
    def src_port(self) -> int:
        return int.from_bytes(self._buf[self._off : self._off + 2], "big")

    @src_port.setter
    def src_port(self, value: int) -> None:
        self._set_port(0, value)

    @property
    def dst_port(self) -> int:
        return int.from_bytes(self._buf[self._off + 2 : self._off + 4], "big")

    @dst_port.setter
    def dst_port(self, value: int) -> None:
        self._set_port(2, value)

    def _set_port(self, rel: int, value: int) -> None:
        off = self._off + rel
        old = int.from_bytes(self._buf[off : off + 2], "big")
        self._buf[off : off + 2] = value.to_bytes(2, "big")
        if self.checksum != 0:  # zero means "no checksum" for UDP/IPv4
            self.checksum = incremental_update(self.checksum, old, value) or 0xFFFF

    @property
    def length(self) -> int:
        return int.from_bytes(self._buf[self._off + 4 : self._off + 6], "big")

    @length.setter
    def length(self, value: int) -> None:
        self._buf[self._off + 4 : self._off + 6] = value.to_bytes(2, "big")

    @property
    def checksum(self) -> int:
        return int.from_bytes(self._buf[self._off + 6 : self._off + 8], "big")

    @checksum.setter
    def checksum(self, value: int) -> None:
        self._buf[self._off + 6 : self._off + 8] = value.to_bytes(2, "big")

    def verify_structure(self, available: int) -> bool:
        """IDS-style structural check: UDP length fits the remaining bytes."""
        return UDP_HEADER_LEN <= self.length <= available

    def __repr__(self) -> str:
        return "UdpHeader(sport=%d, dport=%d, len=%d)" % (
            self.src_port,
            self.dst_port,
            self.length,
        )
