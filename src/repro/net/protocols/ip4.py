"""IPv4 header codec with checksum support."""

from __future__ import annotations

from repro.net.addresses import IPv4Address
from repro.net.checksum import incremental_update, internet_checksum, verify_checksum

IPV4_MIN_HEADER_LEN = 20


class Ipv4Header:
    """View over an IPv4 header (20 bytes + options) inside a buffer."""

    __slots__ = ("_buf", "_off")

    LENGTH = IPV4_MIN_HEADER_LEN

    def __init__(self, buf: bytearray, offset: int):
        if len(buf) - offset < IPV4_MIN_HEADER_LEN:
            raise ValueError("buffer too short for IPv4 header")
        self._buf = buf
        self._off = offset

    @classmethod
    def build(
        cls,
        src: IPv4Address,
        dst: IPv4Address,
        proto: int,
        payload_len: int,
        ttl: int = 64,
        ident: int = 0,
        dscp: int = 0,
        flags: int = 0x2,  # don't-fragment, like most modern stacks
    ) -> bytes:
        total_len = IPV4_MIN_HEADER_LEN + payload_len
        header = bytearray(IPV4_MIN_HEADER_LEN)
        header[0] = (4 << 4) | 5  # version 4, IHL 5
        header[1] = dscp << 2
        header[2:4] = total_len.to_bytes(2, "big")
        header[4:6] = ident.to_bytes(2, "big")
        header[6:8] = ((flags << 13) | 0).to_bytes(2, "big")
        header[8] = ttl
        header[9] = proto
        header[12:16] = src.packed
        header[16:20] = dst.packed
        header[10:12] = internet_checksum(bytes(header)).to_bytes(2, "big")
        return bytes(header)

    # -- field accessors ----------------------------------------------------

    @property
    def version(self) -> int:
        return self._buf[self._off] >> 4

    @property
    def ihl(self) -> int:
        """Header length in 32-bit words."""
        return self._buf[self._off] & 0x0F

    @property
    def header_len(self) -> int:
        return self.ihl * 4

    @property
    def total_len(self) -> int:
        return int.from_bytes(self._buf[self._off + 2 : self._off + 4], "big")

    @total_len.setter
    def total_len(self, value: int) -> None:
        self._buf[self._off + 2 : self._off + 4] = value.to_bytes(2, "big")

    @property
    def ident(self) -> int:
        return int.from_bytes(self._buf[self._off + 4 : self._off + 6], "big")

    @property
    def flags(self) -> int:
        return self._buf[self._off + 6] >> 5

    @property
    def frag_offset(self) -> int:
        raw = int.from_bytes(self._buf[self._off + 6 : self._off + 8], "big")
        return raw & 0x1FFF

    @property
    def ttl(self) -> int:
        return self._buf[self._off + 8]

    @ttl.setter
    def ttl(self, value: int) -> None:
        self._buf[self._off + 8] = value

    @property
    def proto(self) -> int:
        return self._buf[self._off + 9]

    @property
    def checksum(self) -> int:
        return int.from_bytes(self._buf[self._off + 10 : self._off + 12], "big")

    @checksum.setter
    def checksum(self, value: int) -> None:
        self._buf[self._off + 10 : self._off + 12] = value.to_bytes(2, "big")

    @property
    def src(self) -> IPv4Address:
        return IPv4Address(bytes(self._buf[self._off + 12 : self._off + 16]))

    @src.setter
    def src(self, ip: IPv4Address) -> None:
        self._set_address(12, IPv4Address(ip))

    @property
    def dst(self) -> IPv4Address:
        return IPv4Address(bytes(self._buf[self._off + 16 : self._off + 20]))

    @dst.setter
    def dst(self, ip: IPv4Address) -> None:
        self._set_address(16, IPv4Address(ip))

    # -- operations ----------------------------------------------------------

    def _set_address(self, rel: int, ip: IPv4Address) -> None:
        """Rewrite an address field, incrementally fixing the checksum."""
        off = self._off + rel
        checksum = self.checksum
        for half in range(2):
            old = int.from_bytes(self._buf[off + 2 * half : off + 2 * half + 2], "big")
            new = int.from_bytes(ip.packed[2 * half : 2 * half + 2], "big")
            checksum = incremental_update(checksum, old, new)
        self._buf[off : off + 4] = ip.packed
        self.checksum = checksum

    def header_bytes(self) -> bytes:
        return bytes(self._buf[self._off : self._off + self.header_len])

    def verify(self) -> bool:
        """Full header sanity check, as CheckIPHeader performs."""
        if self.version != 4:
            return False
        if self.ihl < 5:
            return False
        if self.total_len < self.header_len:
            return False
        if len(self._buf) - self._off < self.header_len:
            return False
        return verify_checksum(self.header_bytes())

    def decrement_ttl(self) -> int:
        """Decrement TTL with the RFC 1624 incremental checksum fix.

        Returns the new TTL.  Callers must check for zero and drop/ICMP.
        """
        old_word = (self.ttl << 8) | self.proto
        self.ttl = self.ttl - 1
        new_word = (self.ttl << 8) | self.proto
        self.checksum = incremental_update(self.checksum, old_word, new_word)
        return self.ttl

    def recompute_checksum(self) -> None:
        self.checksum = 0
        self.checksum = internet_checksum(self.header_bytes())

    def __repr__(self) -> str:
        return "Ipv4Header(src=%s, dst=%s, proto=%d, ttl=%d, len=%d)" % (
            self.src,
            self.dst,
            self.proto,
            self.ttl,
            self.total_len,
        )
