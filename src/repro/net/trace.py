"""Traffic trace generators.

The paper evaluates with (i) a 28-minute campus trace (799 M packets,
average size 981 B) that GDPR prevents publishing, and (ii) synthetic
fixed-size traces.  :class:`CampusTraceGenerator` is the substitution for
the former: it reproduces the published mean packet size with a realistic
bimodal size distribution (ACK-sized minima and MTU-sized maxima) and a
heavy-tailed flow population, which is what the metadata-locality results
depend on.  :class:`FixedSizeTraceGenerator` reproduces the latter exactly.

Generators pre-build a pool of distinct frames and cycle through it --
the same strategy the paper uses when replaying the first two million
trace packets 25 times.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass, field
from functools import lru_cache
from itertools import accumulate
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.flows import PROTO_ICMP, PROTO_TCP, PROTO_UDP, FlowSet, FlowSpec
from repro.net.packet import ANNO_SEQUENCE, Packet
from repro.net.protocols import (
    ETHERTYPE_IP,
    EtherHeader,
    IcmpHeader,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
)

MIN_FRAME = 64
MAX_FRAME = 1514

GENERATOR_MAC = MacAddress("02:00:00:00:00:01")
DUT_MAC = MacAddress("02:00:00:00:00:02")


@lru_cache(maxsize=16384)
def build_frame(flow: FlowSpec, frame_len: int, ttl: int = 64,
                src_mac: MacAddress = GENERATOR_MAC,
                dst_mac: MacAddress = DUT_MAC) -> bytes:
    """Serialize a full Ethernet/IPv4/L4 frame of exactly ``frame_len`` bytes.

    Pure in its (hashable) arguments and memoized: trace pools draw the
    same flow/size combinations repeatedly, and the returned ``bytes`` is
    immutable so sharing one object across pools is safe.
    """
    if frame_len < MIN_FRAME:
        raise ValueError("frame must be at least %d bytes" % MIN_FRAME)
    ether = EtherHeader.build(dst_mac, src_mac, ETHERTYPE_IP)
    ip_payload_len = frame_len - EtherHeader.LENGTH - Ipv4Header.LENGTH
    if flow.proto == PROTO_TCP:
        l4 = TcpHeader.build(flow.src_port, flow.dst_port)
    elif flow.proto == PROTO_UDP:
        l4 = UdpHeader.build(flow.src_port, flow.dst_port, ip_payload_len - UdpHeader.LENGTH)
    elif flow.proto == PROTO_ICMP:
        l4 = IcmpHeader.build(IcmpHeader.ECHO_REQUEST, ident=flow.src_port or 1)
    else:
        raise ValueError("unsupported protocol %d" % flow.proto)
    if ip_payload_len < len(l4):
        raise ValueError("frame length %d too small for L4 header" % frame_len)
    ip = Ipv4Header.build(flow.src_ip, flow.dst_ip, flow.proto, ip_payload_len, ttl=ttl)
    padding = bytes(ip_payload_len - len(l4))
    return ether + ip + l4 + padding


@dataclass
class TraceSpec:
    """Parameters shared by all trace generators."""

    n_flows: int = 1024
    seed: int = 42
    pool_size: int = 2048
    dst_subnets: Sequence[str] = field(
        default_factory=lambda: ("192.168.0.0", "192.168.64.0", "192.168.128.0", "192.168.192.0")
    )


class _PooledTrace:
    """Base class: builds a frame pool once, then cycles it deterministically."""

    def __init__(self, spec: TraceSpec):
        self.spec = spec
        self._rng = random.Random(spec.seed)
        self._flows = FlowSet(spec.n_flows, self._rng)
        self._pool: List[bytes] = []
        self._pool_flows: List[FlowSpec] = []
        self._cursor = 0
        self._seq = 0
        self._build_pool()

    def _frame_length(self) -> int:
        raise NotImplementedError

    def _build_pool(self) -> None:
        for _ in range(self.spec.pool_size):
            flow = self._flows.pick()
            self._pool.append(build_frame(flow, self._frame_length()))
            self._pool_flows.append(flow)

    @property
    def flows(self) -> FlowSet:
        return self._flows

    def mean_frame_length(self) -> float:
        return sum(len(f) for f in self._pool) / len(self._pool)

    def next_packet(self, timestamp: float = 0.0) -> Packet:
        """Materialize the next packet from the pool."""
        frame = self._pool[self._cursor]
        flow = self._pool_flows[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._pool)
        pkt = Packet(frame, timestamp=timestamp)
        pkt.rss_hash = flow.rss_hash()
        pkt.set_anno_u32(ANNO_SEQUENCE, self._seq)
        self._seq += 1
        return pkt

    def packets(self, count: int, rate_pps: Optional[float] = None) -> Iterator[Packet]:
        """Yield ``count`` packets; with ``rate_pps`` set, timestamps advance CBR."""
        interval = 1.0 / rate_pps if rate_pps else 0.0
        for i in range(count):
            yield self.next_packet(timestamp=i * interval)


class FiniteTrace:
    """Cap any trace generator at ``limit`` packets (a finite capture).

    ``next_packet`` raises ``StopIteration`` once the limit is reached --
    the same exhaustion signal a replayed pcap produces -- which
    :meth:`repro.dpdk.nic.Nic.deliver` converts into a clean end of run.
    """

    def __init__(self, inner, limit: int):
        if limit < 0:
            raise ValueError("trace limit must be >= 0")
        self.inner = inner
        self.limit = limit
        self.produced = 0

    def next_packet(self, timestamp: float = 0.0) -> Packet:
        if self.produced >= self.limit:
            raise StopIteration("trace exhausted after %d packets" % self.limit)
        self.produced += 1
        return self.inner.next_packet(timestamp)

    @property
    def remaining(self) -> int:
        return self.limit - self.produced

    def mean_frame_length(self) -> float:
        return self.inner.mean_frame_length()

    @property
    def flows(self):
        return self.inner.flows


class FixedSizeTraceGenerator(_PooledTrace):
    """Synthetic trace of fixed-size frames (paper §4.3, §4.6)."""

    def __init__(self, frame_len: int, spec: Optional[TraceSpec] = None):
        if not MIN_FRAME <= frame_len <= MAX_FRAME + 4:  # +4 leaves room for VLAN tests
            raise ValueError("frame length %d outside [%d, %d]" % (frame_len, MIN_FRAME, MAX_FRAME + 4))
        self.frame_len = frame_len
        super().__init__(spec or TraceSpec())

    def _frame_length(self) -> int:
        return self.frame_len


class _PacedTrace(_PooledTrace):
    """Base class for paced congestion generators (the QoS workload side).

    Beyond the plain ``next_packet`` protocol these speak the *paced
    source* protocol the QoS-enabled NIC path uses:

    - :meth:`begin_poll` is called once per driver iteration to refresh
      the per-iteration arrival budget (fractional credits, so offered
      load need not be an integer per iteration).
    - :meth:`poll_packet` is called per RX slot with the set of
      currently *paused* priorities and returns one frame or ``None``
      (source idle, or every eligible priority paused).  A paused
      priority's frames stay at the source -- that is what PFC
      backpressure means -- up to a bounded credit cap; load shed beyond
      the cap is accounted in :attr:`source_throttled` rather than
      silently lost, so conservation audits can close the ledger.

    ``limit`` (0 = unbounded) caps total emission; hitting it raises
    ``StopIteration`` exactly like :class:`FiniteTrace`.
    """

    def __init__(self, rates: Mapping[int, float], limit: int = 0,
                 frame_len: int = 256, burst_cap: float = 4.0,
                 spec: Optional[TraceSpec] = None):
        if limit < 0:
            raise ValueError("trace limit must be >= 0")
        for prio, rate in rates.items():
            if not 0 <= prio <= 7:
                raise ValueError("priority %d outside 802.1p range" % prio)
            if rate < 0:
                raise ValueError("negative rate for priority %d" % prio)
        self.rates: Dict[int, float] = dict(rates)
        self.limit = limit
        self.frame_len = frame_len
        #: Credit ceiling, in multiples of each priority's per-iteration
        #: rate: bounds the backlog that builds while paused, so XON
        #: release produces a bounded recovery burst, not a flood.
        self.burst_cap = burst_cap
        self._credit: Dict[int, float] = {p: 0.0 for p in self.rates}
        self._caps: Dict[int, float] = {
            p: max(1.0, r * burst_cap) for p, r in self.rates.items()
        }
        self.produced = 0
        #: Per-priority counts of frames actually emitted.
        self.emitted: Dict[int, int] = {p: 0 for p in self.rates}
        #: Fractional load shed at the source because the paused backlog
        #: hit the credit cap (units: packets).
        self.source_throttled = 0.0
        self._rr = sorted(self.rates)
        super().__init__(spec or TraceSpec())

    def _frame_length(self) -> int:
        return self.frame_len

    def _refresh(self, prio: int, amount: float) -> None:
        want = self._credit[prio] + amount
        new = min(want, self._caps[prio])
        self.source_throttled += want - new
        self._credit[prio] = new

    def begin_poll(self) -> None:
        """Refresh this iteration's arrival credits (NIC hook)."""
        for prio, rate in self.rates.items():
            self._refresh(prio, rate)

    def poll_packet(self, paused: FrozenSet[int] = frozenset()) -> Optional[Packet]:
        """Emit one frame from an unpaused priority, or ``None``."""
        if self.limit and self.produced >= self.limit:
            raise StopIteration(
                "trace exhausted after %d packets" % self.produced)
        # Round-robin across priorities so no class starves another at
        # the source; contention is created downstream, at the queues.
        for _ in range(len(self._rr)):
            prio = self._rr[0]
            self._rr = self._rr[1:] + [prio]
            if self._credit[prio] >= 1.0 and prio not in paused:
                self._credit[prio] -= 1.0
                pkt = self.next_packet()
                pkt.priority = prio
                self.produced += 1
                self.emitted[prio] += 1
                return pkt
        return None


class OversubscribedTrace(_PacedTrace):
    """Constant offered load exceeding the service capacity.

    ``rates`` maps 802.1p priority to offered packets per driver
    iteration.  Point it at a pipeline whose :class:`RatedQueue` drains
    fewer packets per iteration than the sum of the rates and the
    difference must go somewhere: queue occupancy, shared-pool spill,
    PFC pause (frames held here, at the source), or counted drops.
    """


class IncastBurstTrace(_PacedTrace):
    """Synchronized many-to-one bursts -- the incast pattern.

    Every ``period`` iterations, ``senders`` sources each contribute a
    ``burst_len``-packet burst at ``priority`` (default 0, the lossless
    class in the shipped QoS configs); between bursts an optional
    constant ``background_rate`` flows at ``background_priority``.  The
    burst arrives faster than any reasonable service rate can drain --
    exactly the transient that shared headroom and PFC exist to absorb.
    """

    def __init__(self, senders: int = 8, burst_len: int = 4, period: int = 8,
                 priority: int = 0, background_rate: float = 0.0,
                 background_priority: int = 1, limit: int = 0,
                 frame_len: int = 128, spec: Optional[TraceSpec] = None):
        if senders < 1 or burst_len < 1 or period < 1:
            raise ValueError("incast needs positive senders/burst_len/period")
        self.senders = senders
        self.burst_len = burst_len
        self.period = period
        self.burst_priority = priority
        rates: Dict[int, float] = {priority: 0.0}
        if background_rate:
            rates[background_priority] = background_rate
        self._iteration = 0
        super().__init__(rates, limit=limit, frame_len=frame_len, spec=spec)
        # The burst backlog may hold up to two full incasts while paused.
        self._caps[priority] = float(2 * senders * burst_len)

    def begin_poll(self) -> None:
        if self._iteration % self.period == 0:
            self._refresh(self.burst_priority,
                          float(self.senders * self.burst_len))
        self._iteration += 1
        for prio, rate in self.rates.items():
            if rate:
                self._refresh(prio, rate)


def _mix32(x: int) -> int:
    """A 32-bit finalizer (murmur3-style): pure, well-mixing, cheap."""
    x &= 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 0x7FEB352D) & 0xFFFFFFFF
    x ^= x >> 15
    x = (x * 0x846CA68B) & 0xFFFFFFFF
    x ^= x >> 16
    return x


class _LazyFlowView:
    """Sequence facade over a :class:`SkewedTraceGenerator`'s flow space."""

    __slots__ = ("_gen",)

    def __init__(self, gen: "SkewedTraceGenerator"):
        self._gen = gen

    def __len__(self) -> int:
        return self._gen.n_flows

    def __getitem__(self, rank: int) -> FlowSpec:
        return self._gen.flow_at(rank)


class SkewedTraceGenerator:
    """A million-flow trace with configurable popularity skew.

    The "millions of users" workload: the flow population is *lazy* -- a
    flow is a pure function of ``(seed, rank)``, so a million-flow (or
    billion-flow) population costs nothing to stand up and pickles as
    three integers.  Popularity is either uniform (``zipf_s=None``) or
    Zipf(s) over ranks, where small ranks are the elephants: at
    ``zipf_s=1.1`` over a million flows the top flow alone carries ~7% of
    packets, which is exactly the load RSS cannot spread (every packet of
    a flow must stay on one queue) and what the ``rss_imbalance``
    experiment measures.

    Speaks the plain trace protocol (``next_packet`` / ``packets`` /
    ``mean_frame_length`` / ``flows``), so it drops in anywhere a pooled
    generator does, including under :class:`FiniteTrace`.

    ``shift_at`` makes the elephant set *non-stationary*: every
    ``shift_at`` packets the rank->flow mapping rotates by
    ``shift_offset`` (default ``n_flows // 2``), so a different set of
    flows becomes hot while the popularity *distribution* is unchanged.
    The rotation is a pure function of the emitted-packet index, so the
    trace stays deterministic and pure in ``(seed, rank)`` -- the
    workload that separates steering policies that merely converge once
    from policies that keep adapting.
    """

    def __init__(self, n_flows: int = 1_000_000, zipf_s: Optional[float] = None,
                 frame_len: int = 256, seed: int = 7,
                 src_subnet: str = "10.0.0.0", dst_subnet: str = "192.168.0.0",
                 shift_at: Optional[int] = None,
                 shift_offset: Optional[int] = None):
        if n_flows < 1:
            raise ValueError("flow count must be >= 1")
        if not MIN_FRAME <= frame_len <= MAX_FRAME:
            raise ValueError("frame length %d outside [%d, %d]"
                             % (frame_len, MIN_FRAME, MAX_FRAME))
        if zipf_s is not None and zipf_s <= 0:
            raise ValueError("zipf_s must be positive (or None for uniform)")
        if shift_at is not None and shift_at < 1:
            raise ValueError("shift_at must be >= 1 (or None for stationary)")
        if shift_offset is not None and shift_at is None:
            raise ValueError("shift_offset needs shift_at")
        self.n_flows = n_flows
        self.zipf_s = zipf_s
        self.frame_len = frame_len
        self.seed = seed
        self.shift_at = shift_at
        self.shift_offset = (
            0 if shift_at is None
            else (shift_offset if shift_offset is not None
                  else max(1, n_flows // 2)))
        self._src_base = IPv4Address(src_subnet).value
        self._dst_base = IPv4Address(dst_subnet).value
        self._rng = random.Random(seed)
        self._seq = 0
        self._cdf: Optional[List[float]] = None
        if zipf_s is not None:
            weights = [(rank + 1) ** -zipf_s for rank in range(n_flows)]
            total = sum(weights)
            self._cdf = list(accumulate(w / total for w in weights))

    def flow_at(self, rank: int) -> FlowSpec:
        """The flow at popularity rank ``rank`` (pure in seed and rank)."""
        if not 0 <= rank < self.n_flows:
            raise IndexError("flow rank %d outside population" % rank)
        h1 = _mix32(self.seed * 0x9E3779B9 + 2 * rank + 1)
        h2 = _mix32(h1 ^ (rank + 0x5851F42D))
        r = h1 % 100
        proto = PROTO_TCP if r < 85 else (PROTO_UDP if r < 99 else PROTO_ICMP)
        # 10/8 sources x /16 destinations: a million distinct tuples with
        # destinations the shipped routing tables still cover.
        src_ip = IPv4Address(self._src_base + 1 + (h2 % ((1 << 24) - 2)))
        dst_ip = IPv4Address(self._dst_base + 1 + (h1 >> 16) % 65534)
        if proto == PROTO_ICMP:
            src_port = dst_port = 0
        else:
            src_port = 1024 + (h2 >> 16) % (65536 - 1024)
            dst_port = (80, 443, 53, 8080, 22)[h1 % 5]
        return FlowSpec(src_ip=src_ip, dst_ip=dst_ip, proto=proto,
                        src_port=src_port, dst_port=dst_port)

    def _pick_rank(self) -> int:
        u = self._rng.random()
        if self._cdf is None:
            return min(int(u * self.n_flows), self.n_flows - 1)
        return bisect_left(self._cdf, u)

    @property
    def flows(self) -> _LazyFlowView:
        return _LazyFlowView(self)

    def mean_frame_length(self) -> float:
        return float(self.frame_len)

    def next_packet(self, timestamp: float = 0.0) -> Packet:
        rank = self._pick_rank()
        if self.shift_at is not None:
            # Rotate the hot set every shift_at packets: popularity rank
            # is unchanged, which flows hold it is a pure function of
            # the packet index.
            rotations = self._seq // self.shift_at
            if rotations:
                rank = (rank + rotations * self.shift_offset) % self.n_flows
        flow = self.flow_at(rank)
        pkt = Packet(build_frame(flow, self.frame_len), timestamp=timestamp)
        pkt.rss_hash = flow.rss_hash()
        pkt.set_anno_u32(ANNO_SEQUENCE, self._seq)
        self._seq += 1
        return pkt

    def packets(self, count: int, rate_pps: Optional[float] = None) -> Iterator[Packet]:
        interval = 1.0 / rate_pps if rate_pps else 0.0
        for i in range(count):
            yield self.next_packet(timestamp=i * interval)


class CampusTraceGenerator(_PooledTrace):
    """Synthetic stand-in for the paper's 981-B-average campus trace.

    Internet mixes are bimodal: control/ACK segments near the 64-B minimum
    and bulk-transfer segments at the MTU.  The weights below give a mean
    frame size of ~981 B, matching the published trace statistic.
    """

    # (low, high, weight) size bands.  Mean ~= 981 B.
    SIZE_BANDS = (
        (64, 100, 0.245),
        (100, 576, 0.08),
        (576, 1200, 0.06),
        (1400, 1514, 0.615),
    )

    def _frame_length(self) -> int:
        u = self._rng.random()
        acc = 0.0
        for low, high, weight in self.SIZE_BANDS:
            acc += weight
            if u <= acc:
                return self._rng.randrange(low, high)
        return MAX_FRAME

    @classmethod
    def expected_mean(cls) -> float:
        """Analytic mean of the size distribution (for tests)."""
        return sum(w * (low + high - 1) / 2.0 for low, high, w in cls.SIZE_BANDS) / sum(
            w for _, _, w in cls.SIZE_BANDS
        )
