"""Traffic trace generators.

The paper evaluates with (i) a 28-minute campus trace (799 M packets,
average size 981 B) that GDPR prevents publishing, and (ii) synthetic
fixed-size traces.  :class:`CampusTraceGenerator` is the substitution for
the former: it reproduces the published mean packet size with a realistic
bimodal size distribution (ACK-sized minima and MTU-sized maxima) and a
heavy-tailed flow population, which is what the metadata-locality results
depend on.  :class:`FixedSizeTraceGenerator` reproduces the latter exactly.

Generators pre-build a pool of distinct frames and cycle through it --
the same strategy the paper uses when replaying the first two million
trace packets 25 times.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator, List, Optional, Sequence

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.flows import PROTO_ICMP, PROTO_TCP, PROTO_UDP, FlowSet, FlowSpec
from repro.net.packet import ANNO_SEQUENCE, Packet
from repro.net.protocols import (
    ETHERTYPE_IP,
    EtherHeader,
    IcmpHeader,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
)

MIN_FRAME = 64
MAX_FRAME = 1514

GENERATOR_MAC = MacAddress("02:00:00:00:00:01")
DUT_MAC = MacAddress("02:00:00:00:00:02")


@lru_cache(maxsize=16384)
def build_frame(flow: FlowSpec, frame_len: int, ttl: int = 64,
                src_mac: MacAddress = GENERATOR_MAC,
                dst_mac: MacAddress = DUT_MAC) -> bytes:
    """Serialize a full Ethernet/IPv4/L4 frame of exactly ``frame_len`` bytes.

    Pure in its (hashable) arguments and memoized: trace pools draw the
    same flow/size combinations repeatedly, and the returned ``bytes`` is
    immutable so sharing one object across pools is safe.
    """
    if frame_len < MIN_FRAME:
        raise ValueError("frame must be at least %d bytes" % MIN_FRAME)
    ether = EtherHeader.build(dst_mac, src_mac, ETHERTYPE_IP)
    ip_payload_len = frame_len - EtherHeader.LENGTH - Ipv4Header.LENGTH
    if flow.proto == PROTO_TCP:
        l4 = TcpHeader.build(flow.src_port, flow.dst_port)
    elif flow.proto == PROTO_UDP:
        l4 = UdpHeader.build(flow.src_port, flow.dst_port, ip_payload_len - UdpHeader.LENGTH)
    elif flow.proto == PROTO_ICMP:
        l4 = IcmpHeader.build(IcmpHeader.ECHO_REQUEST, ident=flow.src_port or 1)
    else:
        raise ValueError("unsupported protocol %d" % flow.proto)
    if ip_payload_len < len(l4):
        raise ValueError("frame length %d too small for L4 header" % frame_len)
    ip = Ipv4Header.build(flow.src_ip, flow.dst_ip, flow.proto, ip_payload_len, ttl=ttl)
    padding = bytes(ip_payload_len - len(l4))
    return ether + ip + l4 + padding


@dataclass
class TraceSpec:
    """Parameters shared by all trace generators."""

    n_flows: int = 1024
    seed: int = 42
    pool_size: int = 2048
    dst_subnets: Sequence[str] = field(
        default_factory=lambda: ("192.168.0.0", "192.168.64.0", "192.168.128.0", "192.168.192.0")
    )


class _PooledTrace:
    """Base class: builds a frame pool once, then cycles it deterministically."""

    def __init__(self, spec: TraceSpec):
        self.spec = spec
        self._rng = random.Random(spec.seed)
        self._flows = FlowSet(spec.n_flows, self._rng)
        self._pool: List[bytes] = []
        self._pool_flows: List[FlowSpec] = []
        self._cursor = 0
        self._seq = 0
        self._build_pool()

    def _frame_length(self) -> int:
        raise NotImplementedError

    def _build_pool(self) -> None:
        for _ in range(self.spec.pool_size):
            flow = self._flows.pick()
            self._pool.append(build_frame(flow, self._frame_length()))
            self._pool_flows.append(flow)

    @property
    def flows(self) -> FlowSet:
        return self._flows

    def mean_frame_length(self) -> float:
        return sum(len(f) for f in self._pool) / len(self._pool)

    def next_packet(self, timestamp: float = 0.0) -> Packet:
        """Materialize the next packet from the pool."""
        frame = self._pool[self._cursor]
        flow = self._pool_flows[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._pool)
        pkt = Packet(frame, timestamp=timestamp)
        pkt.rss_hash = flow.rss_hash()
        pkt.set_anno_u32(ANNO_SEQUENCE, self._seq)
        self._seq += 1
        return pkt

    def packets(self, count: int, rate_pps: Optional[float] = None) -> Iterator[Packet]:
        """Yield ``count`` packets; with ``rate_pps`` set, timestamps advance CBR."""
        interval = 1.0 / rate_pps if rate_pps else 0.0
        for i in range(count):
            yield self.next_packet(timestamp=i * interval)


class FiniteTrace:
    """Cap any trace generator at ``limit`` packets (a finite capture).

    ``next_packet`` raises ``StopIteration`` once the limit is reached --
    the same exhaustion signal a replayed pcap produces -- which
    :meth:`repro.dpdk.nic.Nic.deliver` converts into a clean end of run.
    """

    def __init__(self, inner, limit: int):
        if limit < 0:
            raise ValueError("trace limit must be >= 0")
        self.inner = inner
        self.limit = limit
        self.produced = 0

    def next_packet(self, timestamp: float = 0.0) -> Packet:
        if self.produced >= self.limit:
            raise StopIteration("trace exhausted after %d packets" % self.limit)
        self.produced += 1
        return self.inner.next_packet(timestamp)

    @property
    def remaining(self) -> int:
        return self.limit - self.produced

    def mean_frame_length(self) -> float:
        return self.inner.mean_frame_length()

    @property
    def flows(self):
        return self.inner.flows


class FixedSizeTraceGenerator(_PooledTrace):
    """Synthetic trace of fixed-size frames (paper §4.3, §4.6)."""

    def __init__(self, frame_len: int, spec: Optional[TraceSpec] = None):
        if not MIN_FRAME <= frame_len <= MAX_FRAME + 4:  # +4 leaves room for VLAN tests
            raise ValueError("frame length %d outside [%d, %d]" % (frame_len, MIN_FRAME, MAX_FRAME + 4))
        self.frame_len = frame_len
        super().__init__(spec or TraceSpec())

    def _frame_length(self) -> int:
        return self.frame_len


class CampusTraceGenerator(_PooledTrace):
    """Synthetic stand-in for the paper's 981-B-average campus trace.

    Internet mixes are bimodal: control/ACK segments near the 64-B minimum
    and bulk-transfer segments at the MTU.  The weights below give a mean
    frame size of ~981 B, matching the published trace statistic.
    """

    # (low, high, weight) size bands.  Mean ~= 981 B.
    SIZE_BANDS = (
        (64, 100, 0.245),
        (100, 576, 0.08),
        (576, 1200, 0.06),
        (1400, 1514, 0.615),
    )

    def _frame_length(self) -> int:
        u = self._rng.random()
        acc = 0.0
        for low, high, weight in self.SIZE_BANDS:
            acc += weight
            if u <= acc:
                return self._rng.randrange(low, high)
        return MAX_FRAME

    @classmethod
    def expected_mean(cls) -> float:
        """Analytic mean of the size distribution (for tests)."""
        return sum(w * (low + high - 1) / 2.0 for low, high, w in cls.SIZE_BANDS) / sum(
            w for _, _, w in cls.SIZE_BANDS
        )
