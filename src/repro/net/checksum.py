"""RFC 1071 Internet checksum, as used by IPv4/TCP/UDP/ICMP headers."""

from __future__ import annotations

from functools import lru_cache


def _ones_complement_sum(data: bytes, initial: int = 0) -> int:
    total = initial
    length = len(data)
    # Sum 16-bit big-endian words; pad a trailing odd byte with zero.
    for i in range(0, length - 1, 2):
        total += (data[i] << 8) | data[i + 1]
    if length & 1:
        total += data[-1] << 8
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


_cached_sum = lru_cache(maxsize=4096)(_ones_complement_sum)


def ones_complement_sum(data: bytes, initial: int = 0) -> int:
    """16-bit one's-complement sum of ``data`` folded into 16 bits.

    Pure in its inputs, so ``bytes`` arguments (the common case -- traces
    replay the same headers over and over) are memoized; mutable buffers
    fall through to the direct computation.
    """
    if type(data) is bytes:
        return _cached_sum(data, initial)
    return _ones_complement_sum(data, initial)


def internet_checksum(data: bytes, initial: int = 0) -> int:
    """Compute the Internet checksum (complement of the one's-complement sum)."""
    return (~ones_complement_sum(data, initial)) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True when ``data`` (checksum field included) sums to the all-ones value."""
    return ones_complement_sum(data) == 0xFFFF


def incremental_update(old_checksum: int, old_field: int, new_field: int) -> int:
    """RFC 1624 incremental checksum update for a single 16-bit field change.

    ``HC' = ~(~HC + ~m + m')`` where ``m``/``m'`` are the old/new field values.
    """
    if not 0 <= old_checksum <= 0xFFFF:
        raise ValueError("checksum out of range")
    total = (~old_checksum & 0xFFFF) + (~old_field & 0xFFFF) + (new_field & 0xFFFF)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def pseudo_header_sum(src: bytes, dst: bytes, proto: int, length: int) -> int:
    """One's-complement sum of the IPv4 pseudo-header for TCP/UDP checksums."""
    pseudo = src + dst + bytes((0, proto)) + length.to_bytes(2, "big")
    return ones_complement_sum(pseudo)
