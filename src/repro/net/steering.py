"""Adaptive flow steering: dynamic RETA rebalancing under skew.

Static RSS spreads *flows*, not *load*: when a Zipf elephant set
concentrates traffic on a few hashes, the hot queue saturates and sheds
frames while its siblings starve (the ``rss_imbalance`` experiment
quantifies the loss at >10% of cluster throughput).  This module is the
fix the experiment argues for -- a control loop that watches per-queue
load and rewrites the indirection table (RETA) while the run is in
flight, the software analogue of ``rte_eth_dev_rss_reta_update``.

The loop is deliberately *cost-aware* rather than heuristic (the
Kugelblitz argument): every candidate bucket migration is charged a
modelled price -- a fixed per-move cost (cache/state transfer on the new
core) plus a per-staged-frame reordering penalty (frames of the bucket
already queued on the old core will drain there and can be overtaken on
the new one) -- and is only paid for when the projected reduction of the
hottest queue's load exceeds it.  Hysteresis (consecutive over-trigger
evaluations) and a cooldown between migration batches keep the table
from thrashing when the imbalance estimate is noisy.

For elephants no RETA rewrite can fix -- a single flow whose bucket
alone exceeds a fair core share -- the policy can optionally enable an
RSS++-style *software dispatch* stage: the saturating bucket's frames
are sprayed round-robin across every queue, trading that flow's ordering
guarantee for cluster throughput.  Dispatch decisions use the same
windowed load estimate and are retired with hysteresis (at half the
enable share) once the elephant cools off.

Layering: this module sits beside :mod:`repro.net.rss` but imports
nothing from it -- the rebalancer drives any object with the
:class:`~repro.dpdk.nic.MultiQueueNic` steering surface (``table``,
``backlogs``, ``bucket_counts``, ``retarget_bucket``, dispatch hooks).
:class:`~repro.net.rss.RssConfig` carries the policy so sweeps and
profiles stay picklable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.telemetry.registry import CounterRegistry, CounterScope


@dataclass(frozen=True)
class SteeringPolicy:
    """Knobs for the adaptive steering loop (hashable and picklable).

    All loads are measured over the *window* since the previous
    evaluation: per-RETA-bucket packet deltas attributed to the bucket's
    owning queue, plus ``occupancy_weight`` times the queue's current
    staging-backlog depth (so a queue that is already behind counts as
    hotter than its arrival rate alone says).
    """

    #: Lockstep rounds between occupancy evaluations.
    interval: int = 8
    #: max/mean window-load imbalance that arms the rebalancer.
    trigger: float = 1.25
    #: Stop migrating once the hot queue is within this factor of mean.
    settle: float = 1.05
    #: Consecutive armed evaluations required before the first move.
    hysteresis: int = 2
    #: Rounds after a migration batch during which no further batch runs.
    cooldown: int = 16
    #: RETA entries migrated per rebalance batch.
    max_moves: int = 4
    #: Modelled price of one bucket migration, in window packets
    #: (cache/state transfer to the new core).
    move_cost: float = 32.0
    #: Additional price per frame of the bucket still staged on the old
    #: queue at migration time (reordering exposure while they drain).
    reorder_cost: float = 0.1
    #: Evaluations on windows smaller than this are skipped (noise).
    min_window: int = 64
    #: Weight of current backlog depth against window arrivals.
    occupancy_weight: float = 1.0
    #: Enable the RSS++-style software dispatch stage for elephants.
    dispatch: bool = False
    #: Window share past which one bucket is sprayed across all queues;
    #: dispatch is retired with hysteresis at half this share.
    dispatch_share: float = 0.25

    def __post_init__(self):
        if self.interval < 1:
            raise ValueError("interval must be >= 1")
        if self.trigger < 1.0:
            raise ValueError("trigger is a max/mean ratio; must be >= 1.0")
        if not 1.0 <= self.settle <= self.trigger:
            raise ValueError("settle must lie in [1.0, trigger]")
        if self.hysteresis < 1:
            raise ValueError("hysteresis must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if self.max_moves < 1:
            raise ValueError("max_moves must be >= 1")
        if self.move_cost < 0 or self.reorder_cost < 0:
            raise ValueError("migration costs must be >= 0")
        if self.min_window < 1:
            raise ValueError("min_window must be >= 1")
        if self.occupancy_weight < 0:
            raise ValueError("occupancy_weight must be >= 0")
        if not 0.0 < self.dispatch_share <= 1.0:
            raise ValueError("dispatch_share must lie in (0, 1]")


class RetaRebalancer:
    """The per-port control loop: windowed load estimate -> RETA moves.

    One instance per :class:`~repro.dpdk.nic.MultiQueueNic`; the sharded
    runtime calls :meth:`evaluate` every ``policy.interval`` lockstep
    rounds (via :class:`ShardSteering`).  All decisions are pure
    functions of the port's counters and the policy, so runs stay
    deterministic.
    """

    def __init__(self, mq, policy: SteeringPolicy,
                 scope: CounterScope):
        self.mq = mq
        self.policy = policy
        mq.enable_bucket_stats()
        self._evals = scope.counter("evals")
        self._rebalances = scope.counter("rebalances")
        self._moves = scope.counter("moves")
        self._drained = scope.counter("migration_drains")
        self._skipped_cooldown = scope.counter("skipped_cooldown")
        self._skipped_cost = scope.counter("skipped_cost")
        self._dispatch_on = scope.counter("dispatch_enabled")
        self._dispatch_off = scope.counter("dispatch_retired")
        self._imbalance = scope.gauge("imbalance")
        self._dispatch_gauge = scope.gauge("dispatch_buckets")
        self._last_counts: List[int] = mq.bucket_counts()
        self._streak = 0
        self._last_batch_round: Optional[int] = None

    # -- load estimation -------------------------------------------------------

    def _window(self) -> List[int]:
        """Per-bucket packet counts since the previous evaluation."""
        counts = self.mq.bucket_counts()
        window = [c - p for c, p in zip(counts, self._last_counts)]
        self._last_counts = counts
        return window

    def _queue_loads(self, window: List[int]) -> List[float]:
        """Window arrivals summed by owning queue, plus weighted backlog.

        Buckets under software dispatch are sprayed round-robin, so
        their arrivals are spread evenly over the queues here instead of
        being charged to the nominal RETA owner -- otherwise a dispatched
        elephant makes its old queue look permanently hot and every
        candidate RETA move for the *other* flows fails the cost gate.
        """
        mq = self.mq
        loads = [0.0] * mq.n_queues
        entries = mq.table.entries
        dispatched = mq.dispatch_buckets
        sprayed = 0
        for bucket, arrived in enumerate(window):
            if not arrived:
                continue
            if bucket in dispatched:
                sprayed += arrived
            else:
                loads[entries[bucket]] += arrived
        if sprayed:
            per_queue = sprayed / mq.n_queues
            loads = [load + per_queue for load in loads]
        weight = self.policy.occupancy_weight
        if weight:
            for q, backlog in enumerate(mq.backlogs):
                loads[q] += weight * len(backlog)
        return loads

    # -- the control step ------------------------------------------------------

    def evaluate(self, round_no: int, force: bool = False) -> int:
        """One control step; returns the number of RETA entries moved.

        ``force`` (the control plane's ``REBALANCE``) bypasses the
        trigger, hysteresis, cooldown, and cost gates -- the operator
        asked -- but still only applies moves that strictly reduce the
        hottest queue's estimated load.
        """
        policy = self.policy
        self._evals.value += 1
        window = self._window()
        total = sum(window)
        if total < policy.min_window and not force:
            return 0
        loads = self._queue_loads(window)
        mean = sum(loads) / len(loads)
        imbalance = (max(loads) / mean) if mean else 1.0
        self._imbalance.value = round(imbalance, 6)
        if policy.dispatch and total:
            self._manage_dispatch(window, total)
        if not force:
            if imbalance < policy.trigger:
                self._streak = 0
                return 0
            self._streak += 1
            if self._streak < policy.hysteresis:
                return 0
            if (self._last_batch_round is not None
                    and round_no - self._last_batch_round < policy.cooldown):
                self._skipped_cooldown.value += 1
                return 0
        moved = self._migrate(window, loads, mean, force)
        if moved:
            self._rebalances.value += 1
            self._last_batch_round = round_no
            self._streak = 0
        return moved

    def _manage_dispatch(self, window: List[int], total: int) -> None:
        """Enable/retire packet-level spraying for saturating buckets."""
        mq = self.mq
        share = self.policy.dispatch_share
        for bucket in list(mq.dispatch_buckets):
            if window[bucket] / total < share / 2:
                mq.retire_dispatch(bucket)
                self._dispatch_off.value += 1
        for bucket, arrived in enumerate(window):
            if bucket not in mq.dispatch_buckets and arrived / total > share:
                mq.enable_dispatch(bucket)
                self._dispatch_on.value += 1
        self._dispatch_gauge.value = len(mq.dispatch_buckets)

    def _migrate(self, window: List[int], loads: List[float],
                 mean: float, force: bool) -> int:
        """Greedy hot-to-cold bucket moves, each gated by the cost model."""
        mq = self.mq
        policy = self.policy
        owner = list(mq.table.entries)
        n = mq.n_queues
        # The gain of a move is measured per evaluation window, but the
        # migration price (state transfer, reordering exposure of staged
        # frames) is paid once.  A batch persists for at least
        # ``cooldown`` rounds before the next one can revise it, so the
        # projected benefit is amortized over cooldown/interval windows
        # -- without this, a deeply backlogged queue (the case that most
        # needs relief) can never afford to shed its buckets.
        horizon = max(1.0, policy.cooldown / policy.interval)
        moves: List[Tuple[int, int]] = []
        for _ in range(policy.max_moves):
            hot = max(range(n), key=loads.__getitem__)
            if loads[hot] <= mean * policy.settle:
                break
            cold = min(range(n), key=loads.__getitem__)
            chosen = None
            candidates = sorted(
                (b for b in range(len(owner))
                 if owner[b] == hot and window[b] > 0
                 and b not in mq.dispatch_buckets),
                key=window.__getitem__, reverse=True)
            for bucket in candidates:
                arrived = window[bucket]
                new_hot = loads[hot] - arrived
                new_cold = loads[cold] + arrived
                gain = loads[hot] - max(new_hot, new_cold)
                if gain <= 0:
                    continue  # would just swap which queue is hottest
                if not force:
                    staged = mq.staged_in_bucket(bucket)
                    cost = policy.move_cost + policy.reorder_cost * staged
                    if gain * horizon <= cost:
                        self._skipped_cost.value += 1
                        continue
                chosen = (bucket, arrived)
                break
            if chosen is None:
                break
            bucket, arrived = chosen
            drained = mq.retarget_bucket(bucket, cold)
            owner[bucket] = cold
            loads[hot] -= arrived
            loads[cold] += arrived
            self._moves.value += 1
            self._drained.value += drained
            moves.append((bucket, cold))
        return len(moves)


class ShardSteering:
    """Cluster-level steering: one rebalancer per physical port.

    Owns the ``steering.*`` counter registry the sharded runtime mounts
    into its merged view (``steering.port<p>.moves`` and friends), and
    fans the per-round hook out to every port's rebalancer.
    """

    def __init__(self, ports: Dict[int, object], policy: SteeringPolicy):
        self.policy = policy
        self.registry = CounterRegistry()
        self.rebalancers: Dict[int, RetaRebalancer] = {
            port: RetaRebalancer(mq, policy,
                                 self.registry.scope("port%d" % port))
            for port, mq in sorted(ports.items())
        }

    def on_round(self, round_no: int) -> int:
        """The lockstep hook: evaluate every port each ``interval`` rounds."""
        if round_no % self.policy.interval:
            return 0
        return sum(r.evaluate(round_no) for r in self.rebalancers.values())

    def rebalance(self, round_no: int, port: Optional[int] = None) -> int:
        """Operator-forced rebalance (the control plane's ``REBALANCE``)."""
        if port is not None:
            if port not in self.rebalancers:
                raise KeyError("no steering on port %d" % port)
            targets = [self.rebalancers[port]]
        else:
            targets = list(self.rebalancers.values())
        return sum(r.evaluate(round_no, force=True) for r in targets)

    def moves(self) -> int:
        """Total RETA entries migrated across every port."""
        return sum(r._moves.value for r in self.rebalancers.values())


__all__ = ["RetaRebalancer", "ShardSteering", "SteeringPolicy"]
