"""Packet substrate: byte-level packets, protocol codecs, and traffic traces."""

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.packet import Packet
from repro.net.trace import (
    CampusTraceGenerator,
    FixedSizeTraceGenerator,
    IncastBurstTrace,
    OversubscribedTrace,
    TraceSpec,
)

__all__ = [
    "IPv4Address",
    "MacAddress",
    "Packet",
    "CampusTraceGenerator",
    "FixedSizeTraceGenerator",
    "IncastBurstTrace",
    "OversubscribedTrace",
    "TraceSpec",
]
