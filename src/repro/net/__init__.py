"""Packet substrate: byte-level packets, protocol codecs, and traffic traces."""

from repro.net.addresses import IPv4Address, MacAddress
from repro.net.packet import Packet
from repro.net.rss import IndirectionTable, RssConfig, toeplitz_v4
from repro.net.steering import RetaRebalancer, ShardSteering, SteeringPolicy
from repro.net.trace import (
    CampusTraceGenerator,
    FixedSizeTraceGenerator,
    IncastBurstTrace,
    OversubscribedTrace,
    SkewedTraceGenerator,
    TraceSpec,
)

__all__ = [
    "IPv4Address",
    "MacAddress",
    "Packet",
    "IndirectionTable",
    "RssConfig",
    "RetaRebalancer",
    "ShardSteering",
    "SteeringPolicy",
    "toeplitz_v4",
    "CampusTraceGenerator",
    "FixedSizeTraceGenerator",
    "IncastBurstTrace",
    "OversubscribedTrace",
    "SkewedTraceGenerator",
    "TraceSpec",
]
