"""The paper's contribution: X-Change and the PacketMill build pipeline."""

from repro.core.options import BuildOptions, MetadataModel
from repro.core.packetmill import PacketMill
from repro.core.profile import RunProfile
from repro.core.binary import SpecializedBinary

__all__ = [
    "BuildOptions",
    "MetadataModel",
    "PacketMill",
    "RunProfile",
    "SpecializedBinary",
]
