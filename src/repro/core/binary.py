"""The output of a PacketMill build: a specialized, executable binary.

A :class:`SpecializedBinary` bundles everything one core needs to run the
network function: the instantiated graph, the compiled per-element cost
programs, the PMDs, and the hardware model instances.  It exposes the
measurement primitives the perf harness drives (warmup, timed runs,
counter snapshots).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.click.driver import RouterDriver, RunStats
from repro.telemetry.ledger import LEDGER_NAMES, RUNSTATS_MIRROR


@dataclass
class MeasuredRun:
    """Results of one timed run of a binary."""

    packets: int
    tx_packets: int
    tx_bytes: int
    drops: int
    elapsed_ns: float
    instructions: float
    total_cycles: float
    counters: dict
    #: The driver's full RunStats (drop ledger included), when available.
    stats: Optional[RunStats] = None
    #: The build's repro.telemetry.Telemetry bundle, when available.  A
    #: live handle into the registry, not a measurement -- two runs with
    #: identical numbers must compare equal regardless of which bundle
    #: produced them.
    telemetry: Optional[object] = field(default=None, compare=False)

    @property
    def ns_per_packet(self) -> float:
        return self.elapsed_ns / self.packets if self.packets else float("inf")

    @property
    def cycles_per_packet(self) -> float:
        return self.total_cycles / self.packets if self.packets else float("inf")

    @property
    def ipc(self) -> float:
        return self.instructions / self.total_cycles if self.total_cycles else 0.0

    @property
    def mean_frame_len(self) -> float:
        return self.tx_bytes / self.tx_packets if self.tx_packets else 0.0

    @property
    def ledger(self) -> Dict[str, int]:
        """The run's drop ledger, read from the counter snapshot."""
        return {
            counter_field: self.counters.get(counter_field, 0)
            for counter_field, _ in RUNSTATS_MIRROR
        }


def _ledger_shim(name: str) -> property:
    def fget(self):
        return self.counters.get(name, 0)

    return property(
        fget, doc="Ledger counter %r, read from the counter snapshot." % name
    )


# Direct attribute access to the ledger (run.rx_nombuf, run.tx_full, ...),
# reading the same snapshot every other view of the run does.
for _name in LEDGER_NAMES + ("sw_drops",):
    setattr(MeasuredRun, _name, _ledger_shim(_name))
del _name


class SpecializedBinary:
    """One built network function bound to one core."""

    def __init__(self, *, options, params, graph, driver: RouterDriver,
                 cpu, mem, space, pmds: Dict[int, object], registry,
                 exec_programs, trace, model, pass_manager=None):
        self.options = options
        self.params = params
        self.graph = graph
        self.driver = driver
        self.cpu = cpu
        self.mem = mem
        self.space = space
        self.pmds = pmds
        self.registry = registry
        self.exec_programs = exec_programs
        self.trace = trace
        self.model = model
        self.pass_manager = pass_manager
        self.injector = None  # set by PacketMill when a fault schedule is wired

    # -- measurement ------------------------------------------------------------

    def warmup(self, batches: int = 100) -> None:
        """Run until caches/TLBs/rings reach steady state, then reset stats."""
        self.driver.run_batches(batches)
        self.reset_measurements()

    def reset_measurements(self) -> None:
        self.cpu.reset()
        self.mem.reset_counters()
        self.driver.reset_stats()

    def run(self, batches: int) -> MeasuredRun:
        """Run ``batches`` main-loop iterations and collect the numbers."""
        stats: RunStats = self.driver.run_batches(batches)
        counters = self.cpu.counters
        packets = stats.rx_packets
        counters.packets += packets
        # Mirror the degraded-path ledger into the perf counter view so
        # reports can tell "CPU-bound" from "fault-degraded" (all zero on
        # a healthy run; stats fields are deltas since the last reset).
        # The mapping is the single schema in repro.telemetry.ledger.
        counters.sync_ledger(stats)
        return MeasuredRun(
            packets=packets,
            tx_packets=stats.tx_packets,
            tx_bytes=stats.tx_bytes,
            drops=stats.drops,
            elapsed_ns=self.cpu.elapsed_ns(),
            instructions=self.cpu.instructions,
            total_cycles=self.cpu.total_cycles(),
            counters=counters.snapshot(),
            stats=stats,
            telemetry=getattr(self.driver, "telemetry", None),
        )

    def measure(self, batches: int = 300, warmup_batches: int = 120) -> MeasuredRun:
        """Warm up, then measure a steady-state run."""
        self.warmup(warmup_batches)
        return self.run(batches)

    # -- introspection ---------------------------------------------------------------

    def element(self, name: str):
        return self.graph.element(name)

    def packet_layout(self):
        """The active (possibly reordered) app metadata layout."""
        return self.registry.get("Packet")

    def describe(self) -> str:
        lines = [
            "SpecializedBinary(%s)" % self.options.label(),
            "  elements: %d" % len(self.graph),
            "  metadata: %s (reorder=%s)" % (
                self.options.metadata_model.value,
                self.options.reorder_metadata,
            ),
            "  freq: %.1f GHz" % self.params.freq_ghz,
        ]
        return "\n".join(lines)
