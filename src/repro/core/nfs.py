"""The evaluation's network-function configurations (paper Appendix A).

Each function returns a Click configuration string.  Addresses match the
trace generators in :mod:`repro.net.trace`: traffic flows from
``10.0.0.0/16`` sources toward ``192.168.0.0/16`` destinations, entering
on DPDK port 0.
"""

from __future__ import annotations

DUT_MAC = "02:00:00:00:00:02"
GENERATOR_MAC = "02:00:00:00:00:01"
NEXT_HOP_MAC = "02:00:00:00:00:03"


def forwarder(burst: int = 32, port: int = 0) -> str:
    """A.1: the simple forwarder -- receive, rewrite MACs, transmit."""
    return """
    input :: FromDPDKDevice(PORT %(port)d, N_QUEUES 1, BURST %(burst)d);
    output :: ToDPDKDevice(PORT %(port)d, BURST %(burst)d);
    input -> EtherMirror -> output;
    """ % {"port": port, "burst": burst}


def forwarder_two_nics(burst: int = 32) -> str:
    """§4.2's 200-Gbps setup: one core forwarding for two NICs."""
    return """
    in0 :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST %(burst)d);
    out0 :: ToDPDKDevice(PORT 0, BURST %(burst)d);
    in1 :: FromDPDKDevice(PORT 1, N_QUEUES 1, BURST %(burst)d);
    out1 :: ToDPDKDevice(PORT 1, BURST %(burst)d);
    in0 -> EtherMirror -> out0;
    in1 -> EtherMirror -> out1;
    """ % {"burst": burst}


ROUTES = (
    "192.168.0.0/18 0",
    "192.168.64.0/18 0",
    "192.168.128.0/18 0",
    "192.168.192.0/18 0",
    "0.0.0.0/0 0",
)


def router(burst: int = 32, icmp_errors: bool = False) -> str:
    """A.2: the standards-compliant IP router (one rule per port).

    With ``icmp_errors`` the expired-TTL output generates RFC 792
    time-exceeded errors instead of silently dropping, completing the
    "compliant with IP routing standards" path.
    """
    ttl_error = ""
    decttl = "dec :: DecIPTTL;"
    if icmp_errors:
        ttl_error = (
            "dec[1] -> ICMPError(192.168.1.1, timeexceeded)"
            " -> EtherRewrite(SRC %s, DST %s) -> output;" % (DUT_MAC, GENERATOR_MAC)
        )
    return """
    input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST %(burst)d);
    output :: ToDPDKDevice(PORT 0, BURST %(burst)d);
    c :: Classifier(12/0800, 12/0806, -);
    rt :: RadixIPLookup(%(routes)s);
    %(decttl)s
    input -> c;
    c[0] -> CheckIPHeader(14) -> rt;
    rt[0] -> dec
          -> EtherRewrite(SRC %(dut)s, DST %(nh)s)
          -> output;
    c[1] -> ARPResponder(192.168.1.1 %(dut)s) -> output;
    c[2] -> Discard;
    %(ttl_error)s
    """ % {"burst": burst, "routes": ", ".join(ROUTES), "dut": DUT_MAC,
           "nh": NEXT_HOP_MAC, "decttl": decttl, "ttl_error": ttl_error}


def guarded_router(burst: int = 32) -> str:
    """The constant-propagation showcase: a double-guarded IP router.

    Deliberately written the way real configurations accrete: the front
    classifier already split IP (port 0) from ARP (port 1), yet the ARP
    branch passes through a *second* classifier before a shared
    RadixIPLookup, and the routed side is painted and re-dispatched by a
    PaintSwitch whose color was just pinned.  Path-sensitive analysis
    proves ``arpguard``'s IP arm and ``sw``'s port 0 dead
    (``constant-branch``) and drops the false ``paint_anno``
    use-before-init a port-insensitive merge would report on ``sw``;
    with ``facts`` enabled the build dead-code-eliminates both
    dispatches.
    """
    return """
    input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST %(burst)d);
    output :: ToDPDKDevice(PORT 0, BURST %(burst)d);
    front :: Classifier(12/0800, 12/0806, -);
    arpguard :: Classifier(12/0800, -);
    rt :: RadixIPLookup(%(routes)s);
    sw :: PaintSwitch(N 2);
    input -> front;
    front[0] -> CheckIPHeader(14) -> Paint(1) -> rt;
    front[1] -> arpguard;
    arpguard[0] -> rt;
    arpguard[1] -> ARPResponder(192.168.1.1 %(dut)s) -> output;
    front[2] -> Discard;
    rt[0] -> DecIPTTL -> sw;
    sw[0] -> Discard;
    sw[1] -> EtherRewrite(SRC %(dut)s, DST %(nh)s) -> output;
    """ % {"burst": burst, "routes": ", ".join(ROUTES), "dut": DUT_MAC,
           "nh": NEXT_HOP_MAC}


def ids_router(burst: int = 32, vlan_tci: int = 100) -> str:
    """A.3: IDS (TCP/UDP/ICMP header checks) + VLAN encap + the router."""
    return """
    input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST %(burst)d);
    output :: ToDPDKDevice(PORT 0, BURST %(burst)d);
    c :: Classifier(12/0800, 12/0806, -);
    ipc :: IPClassifier(tcp, udp, icmp, -);
    rt :: RadixIPLookup(%(routes)s);
    input -> c;
    c[0] -> CheckIPHeader(14) -> ipc;
    ipc[0] -> CheckTCPHeader -> rt;
    ipc[1] -> CheckUDPHeader -> rt;
    ipc[2] -> CheckICMPHeader -> rt;
    ipc[3] -> rt;
    rt[0] -> DecIPTTL
          -> VLANEncap(VLAN_TCI %(tci)d)
          -> EtherRewrite(SRC %(dut)s, DST %(nh)s)
          -> output;
    c[1] -> ARPResponder(192.168.1.1 %(dut)s) -> output;
    c[2] -> Discard;
    """ % {"burst": burst, "routes": ", ".join(ROUTES), "tci": vlan_tci,
           "dut": DUT_MAC, "nh": NEXT_HOP_MAC}


def nat_router(burst: int = 32, public_ip: str = "10.99.0.1",
               capacity: int = 16384) -> str:
    """A.3: the stateful NAPT (cuckoo flow table) in front of the router."""
    return """
    input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST %(burst)d);
    output :: ToDPDKDevice(PORT 0, BURST %(burst)d);
    c :: Classifier(12/0800, 12/0806, -);
    rt :: RadixIPLookup(%(routes)s);
    input -> c;
    c[0] -> CheckIPHeader(14)
         -> IPRewriter(SRCIP %(public)s, CAPACITY %(capacity)d)
         -> rt;
    rt[0] -> DecIPTTL
          -> EtherRewrite(SRC %(dut)s, DST %(nh)s)
          -> output;
    c[1] -> ARPResponder(192.168.1.1 %(dut)s) -> output;
    c[2] -> Discard;
    """ % {"burst": burst, "routes": ", ".join(ROUTES), "public": public_ip,
           "capacity": capacity, "dut": DUT_MAC, "nh": NEXT_HOP_MAC}


def qos_forwarder(burst: int = 32, port: int = 0, rate: int = 8,
                  capacity: int = 512, pfc: bool = True) -> str:
    """The congestion-evaluation pipeline: priority split, rated service.

    Traffic is routed by 802.1p priority into per-class rated queues --
    the service bottleneck that makes oversubscription and incast
    observable -- and forwarded.  Priority 0 is the lossless class: with
    ``pfc`` the PFCPause element watches port ``port``'s QoS buffer pool
    and pauses it upstream at XOFF; without it the same pipeline is the
    lossy baseline the degraded-capacity experiment compares against.
    The queue capacities deliberately exceed the QoS pool sizes so
    admission, not the queues, is what drops under congestion.
    """
    pause = ""
    if pfc:
        pause = "pfc :: PFCPause(PORT %d, PRIORITIES 0);" % port
    return """
    input :: FromDPDKDevice(PORT %(port)d, N_QUEUES 1, BURST %(burst)d);
    output :: ToDPDKDevice(PORT %(port)d, BURST %(burst)d);
    prio :: PrioritySwitch(N 2);
    q0 :: RatedQueue(CAPACITY %(capacity)d, RATE %(rate)d);
    q1 :: RatedQueue(CAPACITY %(capacity)d, RATE %(rate)d);
    %(pause)s
    input -> prio;
    prio[0] -> q0 -> EtherMirror -> output;
    prio[1] -> q1 -> EtherMirror -> output;
    """ % {"port": port, "burst": burst, "rate": rate,
           "capacity": capacity, "pause": pause}


def workpackage_forwarder(s_mb: float, n_accesses: int, w_numbers: int,
                          burst: int = 32) -> str:
    """A.4: WorkPackage(S, N, W) along the forwarding configuration."""
    return """
    input :: FromDPDKDevice(PORT 0, N_QUEUES 1, BURST %(burst)d);
    output :: ToDPDKDevice(PORT 0, BURST %(burst)d);
    input -> WorkPackage(S %(s)g, N %(n)d, W %(w)d) -> EtherMirror -> output;
    """ % {"burst": burst, "s": s_mb, "n": n_accesses, "w": w_numbers}
