"""PacketMill: grind a network-function configuration into a specialized
binary (the paper's Fig. 3 pipeline).

Stages, mirroring the figure:

1. **Parse** the Click configuration into a processing graph.
2. **Source-code modifications**: devirtualization (click-devirtualize),
   constant embedding, and static graph embedding, expressed as IR passes
   over each element's per-packet program plus the dispatch policy.
3. **Metadata customization**: pick the metadata model; X-Change wires the
   PMD's conversion functions into the application's Packet struct.
4. **IR-code modifications** (LTO): inline the conversion/call overhead
   and optionally run the struct-field reordering pass over the whole
   program's access counts.
5. **Link** everything into a :class:`SpecializedBinary` bound to a core,
   NIC(s), and the hardware model.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Union

from repro.click.driver import (
    DISPATCH_DIRECT,
    DISPATCH_INLINE,
    DISPATCH_VIRTUAL,
    DispatchPolicy,
    RouterDriver,
)
from repro.click.graph import ProcessingGraph
from repro.compiler import codegen as _codegen
from repro.compiler.lower import lower
from repro.compiler.passes import reorder_metadata
from repro.compiler.runtime import ExecutionTier, as_policy, select_tier
from repro.compiler.structlayout import LayoutRegistry
from repro.core.binary import SpecializedBinary
from repro.core.options import BuildOptions, MetadataModel
from repro.core.profile import RunProfile
from repro.dpdk.metadata import CopyingModel, OverlayingModel, XChangeModel
from repro.dpdk.nic import Nic
from repro.dpdk.tinynf import TinyNfModel
from repro.dpdk.pmd import MlxPmd
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.faults.watchdog import DEFAULT_THRESHOLD, Watchdog
from repro.dpdk.xchg_api import fastclick_conversions
from repro.exec import cache as exec_cache
from repro.hw.cpu import CpuCore
from repro.hw.layout import AddressSpace
from repro.hw.memory import MemorySystem
from repro.hw.params import DEFAULT_PARAMS, MachineParams
from repro.net.trace import CampusTraceGenerator, TraceSpec
from repro.qos import QosConfig, QosPort
from repro.telemetry import Telemetry, TelemetryConfig

TraceFactory = Callable[[int, int], object]  # (port, core) -> trace generator


class BuildError(RuntimeError):
    """The requested build cannot be assembled."""


def _default_trace_factory(port: int, core: int):
    return exec_cache.trace_from_spec(
        "campus", None, TraceSpec(seed=101 + 13 * port + 7 * core)
    )


class PacketMill:
    """Builds specialized binaries for a Click configuration."""

    def __init__(
        self,
        config: str,
        options: Optional[BuildOptions] = None,
        params: Optional[MachineParams] = None,
        trace: Union[None, object, TraceFactory] = None,
        seed: int = 0,
        burst: Optional[int] = None,
        faults: Optional[FaultSchedule] = None,
        watchdog_threshold: int = DEFAULT_THRESHOLD,
        telemetry: Union[None, bool, TelemetryConfig] = None,
        analyze: Union[None, bool, str] = None,
        qos: Optional[QosConfig] = None,
        tier=None,
        n_cores: int = 1,
        rss=None,
        facts: Union[None, bool] = None,
    ):
        # The keyword surface is a thin shim over RunProfile -- the
        # documented config object; from_profile() passes one directly.
        self._apply_profile(config, RunProfile(
            options=options, params=params, trace=trace, seed=seed,
            burst=burst, faults=faults,
            watchdog_threshold=watchdog_threshold, telemetry=telemetry,
            analyze=analyze, qos=qos, tier=tier, n_cores=n_cores, rss=rss,
            facts=facts,
        ))

    @classmethod
    def from_profile(cls, config: str, profile: Optional[RunProfile] = None
                     ) -> "PacketMill":
        """Build from one consolidated :class:`RunProfile` value."""
        mill = cls.__new__(cls)
        mill._apply_profile(config, profile or RunProfile())
        return mill

    def _apply_profile(self, config: str, profile: RunProfile) -> None:
        self.config = config
        self.profile = profile
        self.options = profile.options or BuildOptions.vanilla()
        self.params = profile.params or DEFAULT_PARAMS
        self.seed = profile.seed
        self.burst = profile.burst or self.options.burst
        self.faults = profile.faults
        self.watchdog_threshold = profile.watchdog_threshold
        # Execution-tier policy (None defers to REPRO_TIER / defaults);
        # resolved per core at build time, when the instrumentation that
        # can demote a tier (faults, watchdog, telemetry) is known.
        self.tier_policy = as_policy(profile.tier)
        # RSS sharding: n_cores > 1 makes build_runtime() return an
        # N-replica ShardedRuntime; rss carries the steering knobs.
        self.n_cores = profile.n_cores
        self.rss = profile.rss
        # Set transiently by build_sharded() when the RSS config asks for
        # one mempool shared by every queue's PMD.
        self._model_override = None
        # QoS buffer management: None (the default) leaves every QoS hook
        # unreachable -- the build is bit-identical to a pre-QoS one.
        self.qos = profile.qos
        # Static analysis at build time: "error" (or True) refuses to
        # build a configuration with error-severity findings, "warn"
        # analyzes and attaches the report without gating.  Default off;
        # REPRO_ANALYZE=1|error|warn opts a whole run in.
        self._analyze_mode = self._resolve_analyze_mode(profile.analyze)
        self._analysis_report = None
        # Constant-propagation facts: when on, proven-dead branches are
        # eliminated from every tier's programs.  Default off;
        # REPRO_FACTS=1 opts a whole run in.  The per-instance memo holds
        # the (facts map, constprop stats) pair -- config and options are
        # fixed per instance, so replica builds share one computation.
        self._facts_mode = self._resolve_facts_mode(profile.facts)
        self._facts_memo = None
        # Counter storage is always on (it IS the stats); the optional
        # recorders (windows, attribution, spans) only exist when a
        # config is passed -- observation charges nothing either way.
        telemetry = profile.telemetry
        if telemetry is True:
            telemetry = TelemetryConfig()
        self.telemetry_config: Optional[TelemetryConfig] = telemetry or None
        trace = profile.trace
        if trace is None:
            self._trace_factory: TraceFactory = _default_trace_factory
        elif callable(trace) and not hasattr(trace, "next_packet"):
            self._trace_factory = trace
        else:
            self._trace_factory = lambda port, core: trace

    @staticmethod
    def _resolve_analyze_mode(analyze) -> Optional[str]:
        if analyze is None:
            analyze = os.environ.get("REPRO_ANALYZE", "")
        if analyze in (False, None) or str(analyze).lower() in (
            "", "0", "false", "off", "no",
        ):
            return None
        if analyze is True:
            return "error"
        mode = str(analyze).lower()
        if mode in ("1", "true", "on", "yes", "error"):
            return "error"
        if mode in ("warn", "warning", "report"):
            return "warn"
        raise BuildError(
            "unknown analyze mode %r (expected error/warn/off)" % (analyze,)
        )

    @staticmethod
    def _resolve_facts_mode(facts) -> bool:
        if facts is None:
            facts = os.environ.get("REPRO_FACTS", "")
        if facts in (False, None) or str(facts).lower() in (
            "", "0", "false", "off", "no",
        ):
            return False
        return True

    def analysis(self):
        """The build's :class:`~repro.analyze.AnalysisReport` (runs the
        analysis on first use; independent of the analyze mode)."""
        if self._analysis_report is None:
            from repro.analyze import analyze_config

            self._analysis_report = analyze_config(
                self.config, self.options,
                subject=self.options.label(),
                qos=self.qos,
                profile=self.profile,
            )
        return self._analysis_report

    # -- model / policy selection ---------------------------------------------------

    def _make_model(self):
        model = self.options.metadata_model
        if model is MetadataModel.COPYING:
            return CopyingModel()
        if model is MetadataModel.OVERLAYING:
            return OverlayingModel()
        if model is MetadataModel.TINYNF:
            return TinyNfModel()
        return XChangeModel(conversions=fastclick_conversions())

    def _dispatch_policy(self) -> DispatchPolicy:
        options = self.options
        if options.static_graph:
            return DispatchPolicy(mode=DISPATCH_INLINE, static_segment=True)
        if options.devirtualize:
            return DispatchPolicy(mode=DISPATCH_DIRECT, static_segment=False)
        return DispatchPolicy(mode=DISPATCH_VIRTUAL, static_segment=False)

    def _element_pass_manager(self):
        from repro.compiler.pipeline import PassManager

        return PassManager.from_options(self.options)

    @staticmethod
    def _codegen_verifier(registry: LayoutRegistry):
        """The IR verifier as a codegen ``verify`` hook.

        Built here because ``repro.compiler`` sits below ``repro.analyze``
        in the layering; codegen itself only receives an opaque callable
        and runs it before every generation.
        """
        from repro.analyze.findings import ERROR
        from repro.analyze.verifier import verify_exec_program

        def verify(program):
            findings = [
                f for f in verify_exec_program(program, registry)
                if f.severity == ERROR
            ]
            if findings:
                raise _codegen.CodegenError(
                    "IR verification refused codegen of %r:\n%s"
                    % (program.name, "\n".join(str(f) for f in findings))
                )

        return verify

    def _compute_facts(self, pass_manager, registry):
        """The memoized ``({element: ProgramFacts}, constprop stats)`` pair.

        Config and options are fixed per instance, so one computation
        serves every replica build (element names are stable across the
        per-core graph re-parses).
        """
        if self._facts_memo is None:
            from repro.analyze.constprop import (
                ConstProp,
                compute_program_facts,
            )

            graph = ProcessingGraph.from_text(self.config)
            constprop = ConstProp(graph)
            facts = compute_program_facts(
                graph, pass_manager.run, registry, constprop=constprop)
            self._facts_memo = (facts, dict(constprop.stats))
        return self._facts_memo

    # -- build ------------------------------------------------------------------------

    def build(self) -> SpecializedBinary:
        """Build a single-core binary."""
        mem = MemorySystem(self.params, n_cores=1, seed=self.seed)
        return self._build_core(mem, core_id=0)

    def build_multicore(self, n_cores: int) -> List[SpecializedBinary]:
        """Build per-core replicas sharing one memory system (RSS model).

        Each core runs its own graph replica and polls its own NIC queue;
        RSS keeps flows core-local, which the per-core trace seeds model.
        (This is the *approximation* of sharding -- decorrelated per-core
        traces; :meth:`build_sharded` is the real thing, one shared
        arrival stream steered by the Toeplitz hash.)
        """
        if n_cores < 1:
            raise BuildError("need at least one core")
        mem = MemorySystem(self.params, n_cores=n_cores, seed=self.seed)
        return [self._build_core(mem, core_id=c) for c in range(n_cores)]

    def build_runtime(self):
        """The profile's runtime: a binary, or a sharded runtime when
        ``n_cores > 1`` (what ``from_profile(...).build_runtime()`` is for)."""
        if self.n_cores > 1:
            return self.build_sharded()
        return self.build()

    def build_sharded(self, n_cores: Optional[int] = None, rss=None):
        """Build an RSS-sharded runtime: one shared arrival stream per
        port, Toeplitz-steered across ``n_cores`` per-core replicas.

        Every replica is a full :class:`SpecializedBinary` (own CpuCore,
        PMDs, driver, execution tier) built by the same ``_build_core``
        path as :meth:`build`; what changes is the trace wiring -- each
        replica's NIC pulls from its :class:`~repro.dpdk.nic.QueueTrace`
        view of the port's :class:`~repro.dpdk.nic.MultiQueueNic` -- and
        the fault wiring, which is scoped per queue
        (``FaultSchedule.for_queue``).  With ``rss.mempool="shared"``
        every queue's PMD allocates from core 0's mempool instead of a
        partitioned per-core pool.

        An ``n_cores=1`` sharded build is charge-for-charge identical to
        :meth:`build`: the steering stage degenerates to a pass-through
        and costs nothing.
        """
        from repro.core.sharded import ShardedRuntime
        from repro.dpdk.nic import MultiQueueNic
        from repro.net.rss import MEMPOOL_SHARED, RssConfig

        n = self.n_cores if n_cores is None else n_cores
        if n < 1:
            raise BuildError("need at least one core")
        config = rss or self.rss or RssConfig()
        graph = ProcessingGraph.from_text(self.config)
        ports = sorted(
            {e.param("port") for e in graph.by_class("FromDPDKDevice")}
            | {e.param("port") for e in graph.by_class("ToDPDKDevice")}
        )
        if not ports:
            raise BuildError("configuration uses no DPDK ports")
        mem = MemorySystem(self.params, n_cores=n, seed=self.seed)
        # One physical multi-queue port per DPDK port; the port's shared
        # arrival stream is the (port, core=0) trace.
        mqs = {
            port: MultiQueueNic(
                self._trace_factory(port, 0), n, config,
                port=port, name="port%d" % port, burst=self.burst,
            )
            for port in ports
        }
        saved_factory = self._trace_factory
        saved_faults = self.faults
        replicas: List[SpecializedBinary] = []
        try:
            self._trace_factory = (
                lambda port, core: mqs[port].queue_trace(core)
            )
            for core in range(n):
                if saved_faults is not None:
                    # Per-queue fault scoping: a core whose filtered
                    # schedule is empty gets no injector at all.
                    self.faults = saved_faults.for_queue(core)
                if config.mempool == MEMPOOL_SHARED and replicas:
                    self._model_override = replicas[0].model
                replicas.append(self._build_core(mem, core_id=core))
        finally:
            self._trace_factory = saved_factory
            self.faults = saved_faults
            self._model_override = None
        for core, binary in enumerate(replicas):
            for port, pmd in binary.pmds.items():
                mqs[port].bind_queue(core, pmd.nic)
        return ShardedRuntime(replicas, mqs, config=config)

    def _build_core(self, mem: MemorySystem, core_id: int) -> SpecializedBinary:
        options = self.options
        params = self.params
        graph = ProcessingGraph.from_text(self.config)
        ports = sorted(
            {e.param("port") for e in graph.by_class("FromDPDKDevice")}
            | {e.param("port") for e in graph.by_class("ToDPDKDevice")}
        )
        if not ports:
            raise BuildError("configuration uses no DPDK ports")
        # Half-wired configurations fail here, naming element and port,
        # instead of silently never delivering packets to the gap.
        graph.check_required_inputs()
        analysis = None
        if self._analyze_mode:
            analysis = self.analysis()
            if self._analyze_mode == "error" and not analysis.ok:
                raise BuildError(
                    "static analysis refused the build:\n%s"
                    % analysis.to_text(min_severity="error")
                )
        cpu = CpuCore(params, mem, core_id)
        # One registry per binary; the shared memory system's per-core
        # counters are mounted under cpu. so the cache model's live
        # handles and this build's telemetry read the same cells.
        telemetry = Telemetry(config=self.telemetry_config)
        telemetry.registry.mount("cpu", mem.registry_for(core_id))
        # Disjoint per-core address ranges: replicas share the LLC but must
        # not alias each other's lines.
        space = AddressSpace(seed=self.seed + core_id, offset=core_id << 36)

        # A sharded build with a shared mempool reuses core 0's model
        # instance (one pool, one set of buffers) instead of setting up a
        # partitioned per-core one.
        shared_model = self._model_override is not None
        model = self._model_override if shared_model else self._make_model()
        if options.reorder_metadata and not model.reorder_allowed:
            raise BuildError(
                "metadata model %r does not allow struct reordering" % model.name
            )
        if not model.supports_buffering:
            holders = [
                e.name for e in graph.all_elements()
                if getattr(e, "buffers_packets", False)
            ]
            if holders:
                raise BuildError(
                    "metadata model %r cannot buffer packets, but the "
                    "configuration holds them in: %s (the TinyNF "
                    "restriction the paper contrasts X-Change against)"
                    % (model.name, ", ".join(holders))
                )
        if not shared_model:
            model.setup(space, params)

        # -- element state allocation (static graph vs. scattered heap) -----
        elements = graph.all_elements()
        for element in elements:
            size = max(64, element.state_size)
            if options.static_graph:
                element.state_region = space.alloc_static(element.name, size)
            else:
                element.state_region = space.alloc_heap(element.name, size)

        # -- IR passes over the whole program ---------------------------------
        # The compile half is a pure function of (config, options, params
        # sans frequency); the registry and lowered programs are immutable
        # once built, so replica builds and sweep siblings share them.
        pass_manager = self._element_pass_manager()
        cached = exec_cache.lookup_build(self.config, options, params)
        if cached is None:
            registry = LayoutRegistry()
            model.register_layouts(registry)
            if self._analyze_mode:
                # Debug mode: re-verify each program after every pass so
                # a pass bug is caught at the application that broke it.
                from repro.analyze import attach_verifier

                attach_verifier(pass_manager, registry)
            element_ir = {
                e.name: pass_manager.run(e.ir_program()) for e in elements
            }
            if options.reorder_metadata:
                whole_program = list(element_ir.values()) + [
                    model.rx_program(), model.tx_program(),
                ]
                reorder_metadata(whole_program, registry, struct="Packet")
            exec_programs = {
                name: lower(program, registry)
                for name, program in element_ir.items()
            }
            exec_cache.store_build(
                self.config, options, params, registry, exec_programs
            )
        else:
            registry, exec_programs = cached

        # -- constant-propagation facts (opt-in dead-code elimination) --------
        # Facts are minted against the build's own pass pipeline and the
        # FINAL registry (reordered or not), so specialized programs lower
        # to the exact offsets the originals did.  Every tier -- the
        # interpreter included -- runs the same pruned programs, keeping
        # cross-tier bit-identity; the original exec_programs stay cached
        # and untouched (facts.apply returns new programs).
        program_facts = None
        run_programs = exec_programs
        if self._facts_mode:
            program_facts, facts_stats = self._compute_facts(
                pass_manager, registry)
            if program_facts:
                run_programs = {
                    name: (program_facts[name].apply(program)
                           if name in program_facts else program)
                    for name, program in exec_programs.items()
                }
                counters = telemetry.registry
                counters.counter(
                    "analyze.constprop.programs_specialized"
                ).add(len(program_facts))
                counters.counter(
                    "analyze.constprop.branches_eliminated"
                ).add(sum(
                    f.branches_eliminated for f in program_facts.values()))
                counters.counter(
                    "analyze.constprop.instructions_eliminated"
                ).add(sum(
                    f.dead_instructions for f in program_facts.values()))
                counters.counter("analyze.constprop.facts_proven").add(
                    facts_stats.get("constprop.facts_proven", 0))

        # -- NICs and PMDs (one queue per port on this core; `ports` was
        # computed and validated up front, right after parsing) ----------------
        # -- fault wiring (inert unless a non-empty schedule was given) --------
        injector = None
        watchdog = None
        if self.faults is not None and not self.faults.is_empty:
            # Offset the seed per core so replicas see decorrelated-but-
            # deterministic fault sequences.
            injector = FaultInjector(self.faults, seed=self.faults.seed + 7919 * core_id)
            if model.mempool is not None:
                injector.bind_mempool(model.mempool)
            watchdog = Watchdog(self.watchdog_threshold)

        # -- execution tier (resolved ONCE; PMDs and driver share it) ----------
        selection = select_tier(
            self.tier_policy,
            faults=injector is not None,
            watchdog=watchdog is not None,
            telemetry=telemetry.enabled,
        )
        codegen_verify = None
        codegen_map = None
        if selection.tier is ExecutionTier.CODEGEN:
            codegen_verify = self._codegen_verifier(registry)
            codegen_map = exec_cache.lookup_codegen(
                self.config, options, params, facts=program_facts)
            if codegen_map is None:
                try:
                    # The facts kwarg is passed only for elements that
                    # actually have facts: codegen prunes, compiles, and
                    # self-checks those against the interpreter on the
                    # pruned program -- the same program the driver runs.
                    codegen_map = {}
                    for name, program in exec_programs.items():
                        pf = (program_facts or {}).get(name)
                        if pf is not None:
                            codegen_map[name] = _codegen.compile_program(
                                program, verify=codegen_verify,
                                check=selection.check, facts=pf,
                            )
                        else:
                            codegen_map[name] = _codegen.compile_program(
                                program, verify=codegen_verify,
                                check=selection.check,
                            )
                except _codegen.CodegenError:
                    # One unverifiable element demotes the whole build:
                    # tiers are all-or-nothing per binary so the settled
                    # tier is meaningful in reports.  The driver counts
                    # the demotion (it sees ``demoted``).
                    selection = replace(
                        selection, tier=ExecutionTier.COMPILED,
                        demoted=True, reason="codegen compile failed",
                    )
                    codegen_map = None
                else:
                    exec_cache.store_codegen(
                        self.config, options, params, codegen_map,
                        facts=program_facts,
                    )

        pmds: Dict[int, MlxPmd] = {}
        for port in ports:
            trace = self._trace_factory(port, core_id)
            nic = Nic(params, mem, space, trace,
                      name="nic%d_c%d" % (port, core_id), port=port,
                      registry=telemetry.registry)
            nic.faults = injector
            pmds[port] = MlxPmd(
                nic, model, cpu, registry,
                lto=options.lto,
                vectorized=options.vectorized_pmd,
                pgo=options.pgo,
                tier=selection,
                codegen_verify=codegen_verify,
            )

        # -- QoS buffer pools (absent unless a config was given) ---------------
        qos_ports: Dict[int, QosPort] = {}
        if self.qos is not None:
            for port in (self.qos.ports or ports):
                if port not in pmds:
                    raise BuildError(
                        "QoS config names port %d, which the configuration "
                        "does not use" % port
                    )
                pool = QosPort(self.qos, port, registry=telemetry.registry)
                qos_ports[port] = pool
                pmds[port].nic.qos = pool
        for element in graph.by_class("PFCPause"):
            watched = element.param("port")
            if watched not in qos_ports:
                raise BuildError(
                    "pause element %s watches port %d but no QoS buffer "
                    "pool is bound there (pass qos= to PacketMill)"
                    % (element.name, watched)
                )
            element.bind_pool(qos_ports[watched])

        dispatch = self._dispatch_policy()
        driver = RouterDriver(
            graph, cpu, params, run_programs, dispatch, pmds, burst=self.burst,
            injector=injector, watchdog=watchdog, telemetry=telemetry,
            qos_ports=qos_ports or None,
            tier=selection, codegen=codegen_map, codegen_verify=codegen_verify,
            layout_registry=registry,
        )
        binary = SpecializedBinary(
            options=options,
            params=params,
            graph=graph,
            driver=driver,
            cpu=cpu,
            mem=mem,
            space=space,
            pmds=pmds,
            registry=registry,
            exec_programs=run_programs,
            trace=pmds[ports[0]].nic.trace,
            model=model,
        )
        binary.pass_manager = pass_manager
        binary.program_facts = program_facts
        binary.injector = injector
        binary.qos_ports = qos_ports
        binary.telemetry = telemetry
        binary.analysis = analysis
        if analysis is not None:
            analysis.record(telemetry.registry)
        return binary
