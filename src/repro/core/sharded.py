"""The N-replica sharded runtime: RSS fan-out made first-class.

Before this module, "multicore" meant building N independent binaries
with N independent traces and summing their numbers.  A
:class:`ShardedRuntime` is the real thing: one arrival stream per
physical port, hashed and steered by :class:`~repro.dpdk.nic.MultiQueueNic`
across N RX queues, each queue feeding one complete per-core replica
(CpuCore + PMDs + RouterDriver, any execution tier), all stepped
round-robin under simulated time so their cache footprints genuinely
contend in the shared LLC.

Determinism and identity guarantees (tested in
``tests/core/test_sharded.py``):

- the same build is charge-for-charge deterministic regardless of how
  ``run_batches`` calls are sliced;
- an ``n_cores=1`` sharded runtime is *bit-identical* to the unsharded
  :class:`~repro.core.binary.SpecializedBinary` path -- the RSS stage
  degenerates to a pass-through and charges nothing;
- packet conservation closes globally: every frame ingested from the
  shared trace is steered, dropped-with-a-counter, or still staged
  (see :func:`repro.faults.audit.sharded_audit`).

Telemetry: :attr:`registry` is a live
:class:`~repro.telemetry.registry.MergedRegistry` -- aggregate reads sum
across cores, ``core<i>.`` names address one replica, and each port's
RSS ledger is mounted at ``rss.<port>.``.  The asyncio control plane
(:mod:`repro.control`) serves exactly this view while a run is in
flight.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.binary import MeasuredRun, SpecializedBinary
from repro.dpdk.nic import MultiQueueNic
from repro.net.rss import RssConfig
from repro.net.steering import ShardSteering
from repro.telemetry.registry import CounterRegistry, MergedRegistry


class ShardedRuntime:
    """N per-core replicas behind one RSS-sharded physical port set.

    When the :class:`~repro.net.rss.RssConfig` carries a
    :class:`~repro.net.steering.SteeringPolicy`, the runtime also owns
    the adaptive-steering control loop: every ``policy.interval``
    lockstep rounds each port's :class:`~repro.net.steering.RetaRebalancer`
    reads queue occupancy and bucket arrival windows and -- when the
    migration cost model approves -- retargets hot indirection-table
    entries onto underloaded queues.  ``steering.*`` counters are
    mounted in the merged registry, and :meth:`rebalance` is the
    operator's forced pass (the control plane's ``REBALANCE`` verb).
    Without a policy nothing is created and the data path is
    bit-identical to static RSS.
    """

    def __init__(self, replicas: List[SpecializedBinary],
                 ports: Dict[int, MultiQueueNic],
                 config: Optional[RssConfig] = None):
        if not replicas:
            raise ValueError("a sharded runtime needs at least one replica")
        self.replicas = replicas
        self.ports = ports
        self.config = config or RssConfig()
        self.rounds = 0
        self.steering: Optional[ShardSteering] = (
            ShardSteering(ports, self.config.steering)
            if self.config.steering is not None else None
        )
        self.registry: MergedRegistry = CounterRegistry.merge(
            [b.telemetry.registry for b in replicas]
        )
        for port, mq in sorted(ports.items()):
            self.registry.mount("rss.%d" % port, mq.registry)
        if self.steering is not None:
            self.registry.mount("steering", self.steering.registry)

    # -- shape -----------------------------------------------------------------

    @property
    def n_cores(self) -> int:
        return len(self.replicas)

    @property
    def drivers(self):
        return [b.driver for b in self.replicas]

    def replica(self, core: int) -> SpecializedBinary:
        return self.replicas[core]

    # -- execution -------------------------------------------------------------

    def step(self) -> int:
        """One round-robin sweep: every non-EOF replica runs one iteration."""
        received = 0
        for binary in self.replicas:
            driver = binary.driver
            if driver.at_eof():
                continue
            received += driver.step()
        self.rounds += 1
        if self.steering is not None:
            self.steering.on_round(self.rounds)
        return received

    def run_batches(self, n_batches: int) -> int:
        """Interleave ``n_batches`` main-loop iterations across replicas.

        Replicas advance in lockstep rounds (core 0 steps, core 1 steps,
        ...), the simulated analogue of cores running concurrently
        against one LLC.  A replica whose finite trace drains leaves the
        rotation cleanly (quiesced, stats intact), exactly as
        :meth:`RouterDriver.run_batches` ends a single-core run.
        Returns the number of rounds actually executed.
        """
        drivers = self.drivers
        steering = self.steering
        finished = set()
        rounds = 0
        for _ in range(n_batches):
            if len(finished) == len(drivers):
                break
            for index, driver in enumerate(drivers):
                if index in finished:
                    continue
                driver.step()
                if driver.at_eof():
                    driver.quiesce()
                    finished.add(index)
            rounds += 1
            self.rounds += 1
            if steering is not None:
                steering.on_round(self.rounds)
        for driver in drivers:
            # Epilogue only (0 iterations): attribution/sampler sync and
            # the NIC-counter mirror into RunStats.
            driver.run_batches(0)
        return rounds

    def run_until_eof(self, max_batches: int = 1_000_000) -> int:
        """Drive finite traces to completion; returns rounds executed.

        Raises if the cap is hit first -- a sharded run that cannot
        drain is a bug (a starved queue or a stuck backlog), not a
        result.
        """
        rounds = 0
        while not self.at_eof():
            if rounds >= max_batches:
                raise RuntimeError(
                    "sharded run did not reach EOF within %d rounds"
                    % max_batches)
            chunk = self.run_batches(min(1024, max_batches - rounds))
            rounds += chunk
            if chunk == 0:
                break
        return rounds

    def warmup(self, batches: int = 100) -> None:
        """Interleaved warmup, then reset every replica's measurements."""
        self.run_batches(batches)
        for binary in self.replicas:
            binary.reset_measurements()

    def runs(self) -> List[MeasuredRun]:
        """Collect each replica's measured run (no further iterations)."""
        return [binary.run(0) for binary in self.replicas]

    # -- state -----------------------------------------------------------------

    def at_eof(self) -> bool:
        return all(driver.at_eof() for driver in self.drivers)

    def elapsed_ns(self) -> float:
        """Wall-clock of the sharded run: the *slowest* core sets the pace."""
        return max(binary.cpu.elapsed_ns() for binary in self.replicas)

    def in_flight_packets(self) -> int:
        staged = sum(sum(mq.backlog_depths()) for mq in self.ports.values())
        return staged + sum(d.in_flight_packets() for d in self.drivers)

    # -- steering --------------------------------------------------------------

    def rebalance(self, port: Optional[int] = None) -> int:
        """Force one steering pass now (all ports, or just ``port``).

        The operator path behind the control plane's ``REBALANCE`` verb:
        bypasses the trigger/hysteresis/cooldown/cost gates but still
        only applies strictly-improving moves.  Returns the number of
        RETA entries migrated.  Raises when no steering policy is
        configured -- a forced rebalance on a static table would be a
        silent no-op the operator should hear about.
        """
        if self.steering is None:
            raise RuntimeError(
                "no steering policy configured (RssConfig(steering=...))")
        return self.steering.rebalance(self.rounds, port)

    # -- observation -----------------------------------------------------------

    def merged_snapshot(self, pattern: Optional[str] = None):
        """Flattened aggregate + per-core + RSS-ledger counter view."""
        return self.registry.snapshot(pattern)

    def conservation(self):
        """Global and per-port packet-conservation breakdown."""
        from repro.faults.audit import sharded_audit

        return sharded_audit(self)

    def assert_conserved(self):
        from repro.faults.audit import assert_sharded_conserved

        return assert_sharded_conserved(self)

    def describe(self) -> str:
        lines = ["ShardedRuntime(%d cores)" % self.n_cores]
        for port, mq in sorted(self.ports.items()):
            lines.append(
                "  port %d: %d queues, table=%d, ingested=%d, backlogs=%s"
                % (port, mq.n_queues, len(mq.table.entries), mq.ingested,
                   mq.backlog_depths()))
            if self.steering is not None:
                scope = "port%d." % port
                reg = self.steering.registry
                lines.append(
                    "    steering: moves=%d rebalances=%d dispatched=%d "
                    "imbalance=%.2f"
                    % (reg.get(scope + "moves"),
                       reg.get(scope + "rebalances"),
                       mq.registry.get("dispatched"),
                       reg.get(scope + "imbalance")))
        for index, binary in enumerate(self.replicas):
            stats = binary.driver.stats
            lines.append(
                "  core %d: tier=%s rx=%d tx=%d drops=%d"
                % (index, binary.driver.tier.value, stats.rx_packets,
                   stats.tx_packets, stats.drops))
        return "\n".join(lines)


__all__ = ["ShardedRuntime"]
