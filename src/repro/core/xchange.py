"""X-Change, from the application's point of view.

The mechanics live in :mod:`repro.dpdk.xchg_api` (the API is part of DPDK,
as in the paper); this module re-exports them and provides the wiring
helper PacketMill uses: build an :class:`~repro.dpdk.metadata.XChangeModel`
whose conversion functions write directly into FastClick's ``Packet``.
"""

from __future__ import annotations

from repro.dpdk.metadata import XChangeModel
from repro.dpdk.xchg_api import (
    RX_METADATA_ITEMS,
    TX_METADATA_ITEMS,
    ConversionSet,
    fastclick_conversions,
    minimal_conversions,
    standard_dpdk_conversions,
)

__all__ = [
    "ConversionSet",
    "RX_METADATA_ITEMS",
    "TX_METADATA_ITEMS",
    "fastclick_conversions",
    "make_fastclick_xchange",
    "minimal_conversions",
    "standard_dpdk_conversions",
]


def make_fastclick_xchange(meta_buffers: int = 64) -> XChangeModel:
    """The PacketMill configuration: X-Change with FastClick conversions."""
    return XChangeModel(conversions=fastclick_conversions(), meta_buffers=meta_buffers)
