"""Build options: which PacketMill optimizations a binary gets.

The named constructors reproduce the exact variants the evaluation
compares (Fig. 4's per-technique rows, Fig. 5's metadata models, and the
combined "PacketMill" configuration used in Figs. 1, 6, 8, and 10 --
which, per the paper's §4.4 footnote, is X-Change + the source-code
optimizations + LTO, *without* metadata reordering).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class MetadataModel(str, enum.Enum):
    """The §2.2 metadata-management models (plus TinyNF for the §3.1
    contrast: lean like X-Change, but no packet buffering allowed)."""

    COPYING = "copying"
    OVERLAYING = "overlaying"
    XCHANGE = "xchange"
    TINYNF = "tinynf"


class OptionsError(ValueError):
    """Inconsistent build-option combination."""


@dataclass(frozen=True)
class BuildOptions:
    """One build's optimization switches."""

    metadata_model: MetadataModel = MetadataModel.COPYING
    devirtualize: bool = False
    constant_embedding: bool = False
    static_graph: bool = False
    lto: bool = False
    reorder_metadata: bool = False
    vectorized_pmd: bool = False
    pgo: bool = False
    burst: int = 32

    def __post_init__(self):
        if self.reorder_metadata and not self.lto:
            raise OptionsError("metadata reordering is an LTO pass; enable lto")
        if self.reorder_metadata and self.metadata_model is not MetadataModel.COPYING:
            raise OptionsError(
                "the reordering pass only supports the Copying model "
                "(the paper's prototype limitation, §3.2.2)"
            )
        if self.vectorized_pmd and self.metadata_model in (
            MetadataModel.XCHANGE, MetadataModel.TINYNF,
        ):
            raise OptionsError(
                "the X-Change prototype does not support the vectorized "
                "PMD (paper §4.1 footnote); disable one of the two"
            )
        if not 1 <= self.burst <= 256:
            raise OptionsError("burst must be in [1, 256]")

    # -- the paper's named variants -----------------------------------------------

    @classmethod
    def vanilla(cls) -> "BuildOptions":
        """Unmodified FastClick: Copying model, dynamic graph."""
        return cls()

    @classmethod
    def devirtualized(cls) -> "BuildOptions":
        """click-devirtualize only (Fig. 4 "Devirtualize")."""
        return cls(devirtualize=True)

    @classmethod
    def constant(cls) -> "BuildOptions":
        """Constant embedding only (Fig. 4 "Constant Embedding")."""
        return cls(constant_embedding=True)

    @classmethod
    def static(cls) -> "BuildOptions":
        """Static graph: elements + connections embedded in the source
        (implies full devirtualization and inlining)."""
        return cls(static_graph=True, devirtualize=True)

    @classmethod
    def all_code_opts(cls) -> "BuildOptions":
        """Fig. 4's "All": every source-code optimization, Copying model."""
        return cls(devirtualize=True, constant_embedding=True, static_graph=True)

    @classmethod
    def lto_reorder(cls) -> "BuildOptions":
        """§4.1's LTO + struct-reordering experiment (on Vanilla code)."""
        return cls(lto=True, reorder_metadata=True)

    @classmethod
    def metadata(cls, model: MetadataModel) -> "BuildOptions":
        """Fig. 5's metadata-model comparison: LTO on, code opts off."""
        return cls(metadata_model=model, lto=True)

    @classmethod
    def packetmill(cls) -> "BuildOptions":
        """The full system: X-Change + source-code optimizations + LTO."""
        return cls(
            metadata_model=MetadataModel.XCHANGE,
            devirtualize=True,
            constant_embedding=True,
            static_graph=True,
            lto=True,
        )

    def with_model(self, model: MetadataModel) -> "BuildOptions":
        return replace(self, metadata_model=model)

    def label(self) -> str:
        """Short human-readable tag for result tables."""
        bits = [self.metadata_model.value]
        for flag, tag in (
            (self.devirtualize, "devirt"),
            (self.constant_embedding, "const"),
            (self.static_graph, "static"),
            (self.lto, "lto"),
            (self.reorder_metadata, "reorder"),
            (self.vectorized_pmd, "vec"),
            (self.pgo, "pgo"),
        ):
            if flag:
                bits.append(tag)
        return "+".join(bits)
