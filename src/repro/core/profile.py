"""RunProfile: one documented config object for a PacketMill build.

Subsystem wiring used to accumulate as ad-hoc ``PacketMill(...)`` keyword
arguments (``faults=``, ``telemetry=``, ``qos=``, ``analyze=``, ...).
:class:`RunProfile` consolidates them into a single declarative value that
can be stored, compared, and passed around:

    profile = RunProfile(
        options=BuildOptions.packetmill(),
        params=MachineParams(freq_ghz=2.3),
        telemetry=TelemetryConfig(),
        tier="codegen",
    )
    binary = PacketMill.from_profile(config, profile).build()

Every field has the same meaning (and default) as the corresponding
``PacketMill`` keyword, which remains a thin shim over this object, so
existing call sites keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Callable, Optional, Union

from repro.compiler.runtime import ExecutionTier, TierPolicy
from repro.core.options import BuildOptions
from repro.faults.schedule import FaultSchedule
from repro.faults.watchdog import DEFAULT_THRESHOLD
from repro.hw.params import MachineParams
from repro.net.rss import RssConfig
from repro.qos import QosConfig
from repro.telemetry import TelemetryConfig


@dataclass
class RunProfile:
    """Everything that shapes one PacketMill build beyond the config text.

    Fields:

    - ``options``: the build variant (default ``BuildOptions.vanilla()``).
    - ``params``: machine parameters (default ``DEFAULT_PARAMS``).
    - ``trace``: a trace generator, or a ``(port, core) -> generator``
      factory (default: cached campus trace per port/core).
    - ``seed``: address-space / memory-system seed.
    - ``burst``: driver burst size (default: from ``options``).
    - ``faults``: a :class:`~repro.faults.schedule.FaultSchedule`; wiring
      is inert when ``None`` or empty.
    - ``watchdog_threshold``: stall iterations before a watchdog reset.
    - ``telemetry``: ``True`` or a :class:`TelemetryConfig` to attach the
      optional recorders (windows, attribution, spans).
    - ``analyze``: ``"error"``/``"warn"``/``True`` to run static analysis
      at build time (``REPRO_ANALYZE`` opts whole runs in).
    - ``qos``: a :class:`~repro.qos.QosConfig` for ingress buffer carving
      and PFC; every QoS hook is unreachable when ``None``.
    - ``tier``: requested :class:`ExecutionTier`, its spelling, or a full
      :class:`TierPolicy` (``REPRO_TIER`` applies when ``None``).
    - ``n_cores``: replica count; ``> 1`` makes
      :meth:`PacketMill.build_runtime` return the RSS-sharded
      :class:`~repro.core.sharded.ShardedRuntime` instead of one binary.
    - ``rss``: the :class:`~repro.net.rss.RssConfig` driving flow
      sharding (key, indirection table size, mempool policy, per-queue
      backlog bound); defaults apply when ``None``.
    - ``facts``: ``True`` to feed constant-propagation facts into the
      build -- proven-dead classifier arms and decided switches are
      dead-code-eliminated from every tier's programs (``REPRO_FACTS``
      opts whole runs in when ``None``).
    """

    options: Optional[BuildOptions] = None
    params: Optional[MachineParams] = None
    trace: Union[None, object, Callable[[int, int], object]] = None
    seed: int = 0
    burst: Optional[int] = None
    faults: Optional[FaultSchedule] = None
    watchdog_threshold: int = DEFAULT_THRESHOLD
    telemetry: Union[None, bool, TelemetryConfig] = None
    analyze: Union[None, bool, str] = None
    qos: Optional[QosConfig] = None
    tier: Union[None, str, ExecutionTier, TierPolicy] = None
    n_cores: int = 1
    rss: Optional[RssConfig] = None
    facts: Union[None, bool] = None

    def with_overrides(self, **changes) -> "RunProfile":
        """A copy with the given fields replaced (sweep convenience)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """The non-default fields, one per line (for logs and reports)."""
        lines = []
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                lines.append("%s=%r" % (f.name, value))
        return "\n".join(lines) or "(defaults)"


__all__ = ["RunProfile"]
