"""End-of-run invariants: mempool leak detection and packet conservation.

Two invariants hold for every run, healthy or degraded:

1. **Mempool conservation** -- ``gets == puts + in_flight``: every buffer
   ever allocated is either back in the pool or accounted for by a live
   holder (posted RX descriptors, unreaped TX descriptors, packets parked
   in Queue elements, or the fault injector's hostages).  A difference is
   a leak (or a double-free the pool itself did not catch).

2. **Packet conservation** -- every frame the NIC delivered was either
   forwarded, counted as a drop somewhere, or is still in flight inside
   the pipeline:
   ``rx_delivered == tx_packets + drops + rx_errors + in_flight``.

3. **QoS buffer conservation** (:func:`qos_audit`, when QoS is
   configured) -- the SONiC buffer-checker invariants, per port and per
   priority: ``offered == admitted + dropped``; ``admitted - drained ==
   occupancy``; the per-priority shared and headroom charges sum exactly
   to the port's pool usage; ticketed packets in flight equal total pool
   occupancy; and once nothing is in flight, no headroom stays stranded.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class MempoolLeakError(AssertionError):
    """The pool's gets/puts/in-flight ledger does not balance."""


class QosConservationError(AssertionError):
    """The QoS buffer books do not balance (leak or stranded headroom)."""


def _driver_nics(driver):
    seen = []
    for pmd in driver.pmds.values():
        if pmd.nic not in seen:
            seen.append(pmd.nic)
    return seen


def mempool_audit(driver, injector=None) -> Dict[str, int]:
    """Balance the pool ledger against every live buffer holder.

    Returns the breakdown; ``leak`` is the number of buffers that are
    neither free nor attributable to any holder (0 for a clean run).
    """
    pool = driver._model.mempool
    if pool is None:  # X-Change / TinyNF exchange buffers, nothing pooled
        return {"pooled": 0, "leak": 0}
    posted_rx = sum(nic.rx_ring.count for nic in _driver_nics(driver))
    unreaped_tx = sum(nic.tx_ring.count for nic in _driver_nics(driver))
    queued = sum(
        queue.occupancy for queue in driver.queue_elements
        if hasattr(queue, "occupancy")
    )
    hostages = injector.in_flight if injector is not None else 0
    outstanding = pool.gets - pool.puts
    accounted = posted_rx + unreaped_tx + queued + hostages
    return {
        "pooled": pool.n,
        "gets": pool.gets,
        "puts": pool.puts,
        "outstanding": outstanding,
        "posted_rx": posted_rx,
        "unreaped_tx": unreaped_tx,
        "queued": queued,
        "hostages": hostages,
        "leak": outstanding - accounted,
    }


def assert_no_leak(driver, injector=None) -> Dict[str, int]:
    """Raise :class:`MempoolLeakError` unless the ledger balances."""
    audit = mempool_audit(driver, injector)
    if audit["leak"] != 0:
        raise MempoolLeakError(
            "mempool leak: %(leak)d buffer(s) unaccounted "
            "(outstanding=%(outstanding)d posted_rx=%(posted_rx)d "
            "unreaped_tx=%(unreaped_tx)d queued=%(queued)d "
            "hostages=%(hostages)d)" % audit
        )
    return audit


def _ticketed_in_flight(driver, pool) -> int:
    """Packets parked in Queue elements still holding a charge on ``pool``."""
    held = 0
    for queue in driver.queue_elements:
        for pkt in getattr(queue, "_fifo", ()):
            ticket = getattr(pkt, "qos_ticket", None)
            if ticket is not None and ticket[0] is pool:
                held += 1
    return held


def qos_audit(driver) -> Dict[int, Dict[str, object]]:
    """SONiC-buffer-checker-style audit of every bound :class:`QosPort`.

    Returns ``{port: breakdown}``; each breakdown carries the raw books
    plus an ``errors`` list naming every violated invariant (empty for a
    clean run).  A driver with no QoS bound returns ``{}``.
    """
    out: Dict[int, Dict[str, object]] = {}
    for port, pool in sorted(getattr(driver, "qos_ports", {}).items()):
        accounts = pool.priority_accounts()
        errors: List[str] = []
        shared_sum = 0
        headroom_sum = 0
        occupancy_sum = 0
        for prio, acc in sorted(accounts.items()):
            shared_sum += acc["shared_used"]
            headroom_sum += acc["headroom_used"]
            occupancy_sum += acc["occupancy"]
            if acc["offered"] != acc["admitted"] + acc["dropped"]:
                errors.append(
                    "port %d prio %d: offered %d != admitted %d + dropped %d"
                    % (port, prio, acc["offered"], acc["admitted"],
                       acc["dropped"]))
            if acc["admitted"] - acc["drained"] != acc["occupancy"]:
                errors.append(
                    "port %d prio %d: admitted %d - drained %d != "
                    "occupancy %d (buffer leak)"
                    % (port, prio, acc["admitted"], acc["drained"],
                       acc["occupancy"]))
        if shared_sum != pool.shared_used:
            errors.append(
                "port %d: per-priority shared charges %d != shared pool "
                "used %d" % (port, shared_sum, pool.shared_used))
        if headroom_sum != pool.headroom_pool_used:
            errors.append(
                "port %d: per-priority headroom charges %d != headroom "
                "pool used %d" % (port, headroom_sum, pool.headroom_pool_used))
        in_flight = _ticketed_in_flight(driver, pool)
        if in_flight != occupancy_sum:
            errors.append(
                "port %d: %d ticketed packet(s) in flight but pool "
                "occupancy is %d" % (port, in_flight, occupancy_sum))
        if in_flight == 0 and pool.headroom_pool_used != 0:
            errors.append(
                "port %d: %d headroom cell(s) stranded after drain"
                % (port, pool.headroom_pool_used))
        out[port] = {
            "priorities": accounts,
            "shared_used": pool.shared_used,
            "headroom_used": pool.headroom_pool_used,
            "occupancy": occupancy_sum,
            "in_flight": in_flight,
            "unpooled_drops": pool.unpooled_drops.value,
            "errors": errors,
        }
    return out


def assert_qos_conserved(driver) -> Dict[int, Dict[str, object]]:
    """Raise :class:`QosConservationError` unless every QoS book balances."""
    audit = qos_audit(driver)
    errors = [err for breakdown in audit.values()
              for err in breakdown["errors"]]
    if errors:
        raise QosConservationError(
            "QoS buffer conservation violated:\n  " + "\n  ".join(errors))
    return audit


class ShardConservationError(AssertionError):
    """The sharded runtime's packet books do not balance."""


def sharded_audit(runtime) -> Dict[str, object]:
    """Packet conservation across an entire RSS-sharded runtime.

    Extends :func:`check_conservation` from one replica to the cluster.
    Three layers of books must agree (all *lifetime* counters, so the
    audit -- like the per-core one -- must run on a runtime whose stats
    were never reset mid-run):

    1. **RSS steering**, per port: every frame ingested from the shared
       trace was steered to a queue backlog or dropped at a full one --
       ``ingested == sum(steered) + sum(dropped)``.
    2. **Queue hand-off**, per port: every steered frame was delivered
       by its queue's NIC, refused by QoS admission, or still waits in
       the staging backlog -- ``steered == delivered + qos_refused +
       backlog``.
    3. **Pipeline**, per replica *and* globally: the existing
       ``rx_delivered == forwarded + dropped + rx_errors + in_flight``
       invariant.

    With adaptive steering enabled a fourth book opens: every ingested
    frame is charged to exactly one RETA bucket *before* any retarget or
    dispatch decision, so ``sum(bucket<i>) == ingested`` must hold no
    matter how many migrations rewrote the table mid-run.  The per-port
    breakdown then also carries the migration ledger (``reta_moves``,
    ``migration_drains``, ``dispatched``) so a failed audit names what
    the control loop was doing when the books diverged.

    Returns the full breakdown with an ``errors`` list (empty when every
    book balances) and a global ``balance`` (0 when offered load equals
    forwarded + every counted loss + everything still in flight).
    """
    errors: List[str] = []
    per_core = []
    for index, binary in enumerate(runtime.replicas):
        audit = check_conservation(binary.driver, binary.injector)
        per_core.append(audit)
        if audit["balance"] != 0:
            errors.append(
                "core %d: pipeline imbalance %d (%r)"
                % (index, audit["balance"], audit))
    ports: Dict[int, Dict[str, int]] = {}
    total_ingested = 0
    total_rss_dropped = 0
    total_backlog = 0
    total_qos_refused = 0
    for port, mq in sorted(runtime.ports.items()):
        ingested = mq.ingested
        steered = mq.steered()
        dropped = mq.dropped()
        backlog = sum(mq.backlog_depths())
        delivered = sum(
            nic.rx_delivered for nic in mq.queues if nic is not None
        )
        qos_refused = 0
        for binary in runtime.replicas:
            pool = getattr(binary.driver, "qos_ports", {}).get(port)
            if pool is not None:
                qos_refused += sum(
                    acc["dropped"] for acc in pool.priority_accounts().values()
                )
        if ingested != steered + dropped:
            errors.append(
                "port %d: ingested %d != steered %d + dropped %d"
                % (port, ingested, steered, dropped))
        if steered != delivered + qos_refused + backlog:
            errors.append(
                "port %d: steered %d != delivered %d + qos_refused %d "
                "+ backlog %d"
                % (port, steered, delivered, qos_refused, backlog))
        ports[port] = {
            "ingested": ingested,
            "steered": steered,
            "rss_dropped": dropped,
            "delivered": delivered,
            "qos_refused": qos_refused,
            "backlog": backlog,
        }
        buckets = mq.bucket_counts() if hasattr(mq, "bucket_counts") else None
        if buckets is not None:
            # Steering is live: the bucket books must close across every
            # RETA migration and dispatch decision.
            bucket_total = sum(buckets)
            if bucket_total != ingested:
                errors.append(
                    "port %d: bucket accounting %d != ingested %d "
                    "(a migration lost or double-charged frames)"
                    % (port, bucket_total, ingested))
            ports[port].update({
                "bucket_total": bucket_total,
                "reta_moves": mq.registry.get("reta_moves"),
                "migration_drains": mq.registry.get("migration_drains"),
                "dispatched": mq.registry.get("dispatched"),
            })
        total_ingested += ingested
        total_rss_dropped += dropped
        total_backlog += backlog
        total_qos_refused += qos_refused
    forwarded = sum(audit["forwarded"] for audit in per_core)
    pipeline_dropped = sum(audit["dropped"] for audit in per_core)
    rx_errors = sum(audit["rx_errors"] for audit in per_core)
    in_flight = sum(audit["in_flight"] for audit in per_core)
    balance = total_ingested - (
        forwarded + pipeline_dropped + rx_errors + in_flight
        + total_rss_dropped + total_qos_refused + total_backlog
    )
    if balance != 0:
        errors.append("global imbalance: %d frame(s) unaccounted" % balance)
    return {
        "offered": total_ingested,
        "forwarded": forwarded,
        "dropped": pipeline_dropped + total_rss_dropped + total_qos_refused,
        "rx_errors": rx_errors,
        "in_flight": in_flight + total_backlog,
        "balance": balance,
        "per_core": per_core,
        "ports": ports,
        "errors": errors,
    }


def assert_sharded_conserved(runtime) -> Dict[str, object]:
    """Raise :class:`ShardConservationError` unless every book balances."""
    audit = sharded_audit(runtime)
    if audit["errors"]:
        raise ShardConservationError(
            "sharded packet conservation violated:\n  "
            + "\n  ".join(audit["errors"]))
    return audit


def check_conservation(driver, injector: Optional[object] = None) -> Dict[str, int]:
    """Packet-conservation breakdown for the driver's *lifetime* stats.

    Uses the NICs' cumulative hardware counters against the driver's
    cumulative software stats, so it must be evaluated on a driver whose
    stats were never reset mid-run (as the tests do).  ``balance`` is 0
    when every delivered frame is accounted for.
    """
    stats = driver.stats
    nics = _driver_nics(driver)
    rx_delivered = sum(nic.rx_delivered for nic in nics)
    rx_errors = sum(nic.counters.rx_errors for nic in nics)
    in_flight = driver.in_flight_packets()
    forwarded = stats.tx_packets
    dropped = stats.drops
    return {
        "rx_delivered": rx_delivered,
        "forwarded": forwarded,
        "dropped": dropped,
        "rx_errors": rx_errors,
        "in_flight": in_flight,
        "balance": rx_delivered - (forwarded + dropped + rx_errors + in_flight),
    }
