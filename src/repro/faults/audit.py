"""End-of-run invariants: mempool leak detection and packet conservation.

Two invariants hold for every run, healthy or degraded:

1. **Mempool conservation** -- ``gets == puts + in_flight``: every buffer
   ever allocated is either back in the pool or accounted for by a live
   holder (posted RX descriptors, unreaped TX descriptors, packets parked
   in Queue elements, or the fault injector's hostages).  A difference is
   a leak (or a double-free the pool itself did not catch).

2. **Packet conservation** -- every frame the NIC delivered was either
   forwarded, counted as a drop somewhere, or is still in flight inside
   the pipeline:
   ``rx_delivered == tx_packets + drops + rx_errors + in_flight``.
"""

from __future__ import annotations

from typing import Dict, Optional


class MempoolLeakError(AssertionError):
    """The pool's gets/puts/in-flight ledger does not balance."""


def _driver_nics(driver):
    seen = []
    for pmd in driver.pmds.values():
        if pmd.nic not in seen:
            seen.append(pmd.nic)
    return seen


def mempool_audit(driver, injector=None) -> Dict[str, int]:
    """Balance the pool ledger against every live buffer holder.

    Returns the breakdown; ``leak`` is the number of buffers that are
    neither free nor attributable to any holder (0 for a clean run).
    """
    pool = driver._model.mempool
    if pool is None:  # X-Change / TinyNF exchange buffers, nothing pooled
        return {"pooled": 0, "leak": 0}
    posted_rx = sum(nic.rx_ring.count for nic in _driver_nics(driver))
    unreaped_tx = sum(nic.tx_ring.count for nic in _driver_nics(driver))
    queued = sum(
        queue.occupancy for queue in driver.queue_elements
        if hasattr(queue, "occupancy")
    )
    hostages = injector.in_flight if injector is not None else 0
    outstanding = pool.gets - pool.puts
    accounted = posted_rx + unreaped_tx + queued + hostages
    return {
        "pooled": pool.n,
        "gets": pool.gets,
        "puts": pool.puts,
        "outstanding": outstanding,
        "posted_rx": posted_rx,
        "unreaped_tx": unreaped_tx,
        "queued": queued,
        "hostages": hostages,
        "leak": outstanding - accounted,
    }


def assert_no_leak(driver, injector=None) -> Dict[str, int]:
    """Raise :class:`MempoolLeakError` unless the ledger balances."""
    audit = mempool_audit(driver, injector)
    if audit["leak"] != 0:
        raise MempoolLeakError(
            "mempool leak: %(leak)d buffer(s) unaccounted "
            "(outstanding=%(outstanding)d posted_rx=%(posted_rx)d "
            "unreaped_tx=%(unreaped_tx)d queued=%(queued)d "
            "hostages=%(hostages)d)" % audit
        )
    return audit


def check_conservation(driver, injector: Optional[object] = None) -> Dict[str, int]:
    """Packet-conservation breakdown for the driver's *lifetime* stats.

    Uses the NICs' cumulative hardware counters against the driver's
    cumulative software stats, so it must be evaluated on a driver whose
    stats were never reset mid-run (as the tests do).  ``balance`` is 0
    when every delivered frame is accounted for.
    """
    stats = driver.stats
    nics = _driver_nics(driver)
    rx_delivered = sum(nic.rx_delivered for nic in nics)
    rx_errors = sum(nic.counters.rx_errors for nic in nics)
    in_flight = driver.in_flight_packets()
    forwarded = stats.tx_packets
    dropped = stats.drops
    return {
        "rx_delivered": rx_delivered,
        "forwarded": forwarded,
        "dropped": dropped,
        "rx_errors": rx_errors,
        "in_flight": in_flight,
        "balance": rx_delivered - (forwarded + dropped + rx_errors + in_flight),
    }
