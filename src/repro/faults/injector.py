"""The deterministic fault injector.

One :class:`FaultInjector` is wired per core (it is attached to each of
the core's NICs as ``nic.faults`` and to the driver).  It owns a single
seeded RNG consumed in a fixed order -- once per opportunity, in the
order opportunities occur in the simulation -- so two runs of the same
schedule produce byte-identical fault sequences and therefore identical
drop counters.

The injector never raises into the data path.  Each hook either reduces a
budget, mutates a frame in place, or withholds mempool buffers; the
*consequences* (counted drops, backpressure) are realized by the NIC/PMD/
driver layers, mirroring how real hardware surfaces faults as counters
rather than exceptions.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.faults import schedule as sched
from repro.faults.schedule import FaultSchedule, FaultSpec

#: Frames shorter than this are runts a real NIC discards on arrival.
MIN_VALID_FRAME = 64


class FaultInjector:
    """Applies one :class:`FaultSchedule` to one core's data path."""

    def __init__(self, schedule: FaultSchedule, seed: Optional[int] = None):
        self.schedule = schedule
        self.seed = schedule.seed if seed is None else seed
        self._rng = random.Random(self.seed)
        self.tick = -1  # advanced to 0 by the first begin_iteration()
        self._pool = None
        self._hostages: List = []
        #: Fault *opportunities* taken, for introspection/tests.
        self.events = {kind: 0 for kind in sched.ALL_KINDS}

    # -- wiring ------------------------------------------------------------------

    def bind_mempool(self, pool) -> None:
        """Attach the mempool that MBUF_EXHAUSTION windows squeeze."""
        self._pool = pool

    @property
    def in_flight(self) -> int:
        """Buffers currently held hostage (counted in the leak audit)."""
        return len(self._hostages)

    # -- per-iteration hook (driver) -----------------------------------------------

    def begin_iteration(self) -> None:
        """Advance the fault clock one main-loop iteration."""
        self.tick += 1
        self._apply_mempool_pressure()

    def _apply_mempool_pressure(self) -> None:
        pool = self._pool
        if pool is None:
            return
        specs = self.schedule.active(sched.MBUF_EXHAUSTION, self.tick)
        if not specs:
            if self._hostages:
                # Window closed: hand every hostage back to the pool.
                while self._hostages:
                    pool.put(self._hostages.pop())
            return
        # Hold ``magnitude`` of the whole pool hostage (at most everything
        # that is currently free).  This is external pressure -- another
        # consumer of the pool -- so no CPU cost is charged here.
        fraction = max(spec.effective_magnitude for spec in specs)
        target = int(round(pool.n * fraction))
        while len(self._hostages) < target and pool.available > 0:
            self._hostages.append(pool.get())
            self.events[sched.MBUF_EXHAUSTION] += 1

    # -- RX-side hooks (NIC) ----------------------------------------------------------

    def rx_budget(self, nic, max_n: int) -> int:
        """How many frames the NIC may deliver this poll.

        Window faults zero the budget (link down, CQEs withheld); a rate
        dip scales it; an underrun probabilistically empties one poll.
        Counter side effects land on ``nic.counters`` so the degraded
        state is visible exactly where real DPDK surfaces it.
        """
        port = nic.port
        tick = self.tick
        if self.schedule.active(sched.LINK_FLAP, tick, port):
            nic.counters.link_down_polls += 1
            self.events[sched.LINK_FLAP] += 1
            return 0
        if self.schedule.active(sched.CQE_STALL, tick, port):
            nic.counters.cqe_stalls += 1
            self.events[sched.CQE_STALL] += 1
            return 0
        for spec in self.schedule.active(sched.RX_UNDERRUN, tick, port):
            if self._rng.random() < spec.probability:
                nic.counters.rx_underruns += 1
                self.events[sched.RX_UNDERRUN] += 1
                return 0
        budget = max_n
        for spec in self.schedule.active(sched.RATE_DIP, tick, port):
            budget = int(budget * spec.effective_magnitude)
            self.events[sched.RATE_DIP] += 1
        return budget

    def mutate_frame(self, pkt, port: int) -> Optional[str]:
        """Possibly damage one arriving frame in place.

        Returns the damage verdict ("truncated" | "corrupt") or None.
        The damage is genuine: corruption flips a byte inside the IP
        header so the Internet checksum really fails; truncation shortens
        the frame below its declared IP total length.
        """
        tick = self.tick
        for spec in self.schedule.active(sched.TRUNCATE, tick, port):
            if self._rng.random() < spec.probability:
                self.events[sched.TRUNCATE] += 1
                return self._truncate(pkt, spec)
        for spec in self.schedule.active(sched.CORRUPT, tick, port):
            if self._rng.random() < spec.probability:
                self.events[sched.CORRUPT] += 1
                return self._corrupt(pkt)
        return None

    @staticmethod
    def _truncate(pkt, spec: FaultSpec) -> str:
        keep = max(1, int(len(pkt) * spec.effective_magnitude))
        if keep < len(pkt):
            pkt.take(len(pkt) - keep)
        pkt.rx_error = "truncated"
        return "truncated"

    @staticmethod
    def _corrupt(pkt) -> str:
        # Flip the TTL byte inside the IPv4 header (Ethernet 14 + offset 8):
        # any header byte change invalidates the RFC 1071 header checksum.
        data = pkt.data()
        offset = 22 if len(pkt) > 22 else len(pkt) - 1
        data[offset] ^= 0xFF
        pkt.rx_error = "corrupt"
        return "corrupt"

    # -- TX-side hook (PMD) ------------------------------------------------------------

    def tx_blocked(self, port: int) -> bool:
        """Whether the TX ring refuses work this burst (peer backpressure)."""
        for spec in self.schedule.active(sched.TX_BACKPRESSURE, self.tick, port):
            if self._rng.random() < spec.probability:
                self.events[sched.TX_BACKPRESSURE] += 1
                return True
        return False

    # -- teardown -----------------------------------------------------------------------

    def release_all(self) -> None:
        """Return every hostage buffer (end of run / audit preparation)."""
        if self._pool is None:
            return
        while self._hostages:
            self._pool.put(self._hostages.pop())

    def __repr__(self) -> str:
        return "<FaultInjector tick=%d seed=%d %s>" % (
            self.tick, self.seed, self.schedule,
        )
