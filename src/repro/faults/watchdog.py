"""Stall detection for the driver's main loop.

A healthy run-to-completion loop makes progress every iteration (packets
received or transmitted).  Under faults it can wedge: the RX ring drains
because the mempool is exhausted, or the TX ring sits full under
backpressure.  The watchdog counts consecutive zero-progress iterations
and trips after ``threshold`` of them; the driver responds by reaping TX
completions and replenishing RX rings (see ``RouterDriver``), which is
exactly the recovery a real poll-mode driver performs opportunistically.
"""

from __future__ import annotations

DEFAULT_THRESHOLD = 64


class Watchdog:
    """Trips after ``threshold`` consecutive zero-progress iterations."""

    def __init__(self, threshold: int = DEFAULT_THRESHOLD):
        if threshold < 1:
            raise ValueError("watchdog threshold must be >= 1")
        self.threshold = threshold
        self.stalled_iterations = 0
        self.trips = 0

    def observe(self, progress: bool) -> bool:
        """Record one iteration's outcome; returns True when tripping."""
        if progress:
            self.stalled_iterations = 0
            return False
        self.stalled_iterations += 1
        if self.stalled_iterations >= self.threshold:
            self.trips += 1
            self.stalled_iterations = 0
            return True
        return False

    def reset(self) -> None:
        self.stalled_iterations = 0

    def __repr__(self) -> str:
        return "<Watchdog threshold=%d stalled=%d trips=%d>" % (
            self.threshold, self.stalled_iterations, self.trips,
        )
