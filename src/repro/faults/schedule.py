"""Declarative, seed-driven fault schedules.

A :class:`FaultSchedule` is a list of :class:`FaultSpec` entries, each
describing *one* fault mechanism, *when* it is armed (an iteration window
``[start, stop)`` of the driver's main loop), and *how intensely* it fires
(an activation probability evaluated against the schedule's seeded RNG
plus a kind-specific magnitude).  Schedules are pure data: the same
schedule with the same seed always produces the same fault sequence, so
degraded runs are as reproducible as healthy ones.

Fault taxonomy (see ``docs/FAULTS.md``):

==================  ==========================================================
kind                 models
==================  ==========================================================
MBUF_EXHAUSTION      mempool pressure -- a fraction of the pool is held
                     hostage, so PMD replenishment fails (``rx_nombuf``).
RX_UNDERRUN          the NIC intermittently has no frame ready for a poll.
LINK_FLAP            the link is down for the window (zero deliveries).
RATE_DIP             the arrival rate dips to ``magnitude`` of nominal.
TRUNCATE             frames arrive cut short (runts / mid-frame loss).
CORRUPT              frames arrive with flipped bytes (bad IP/TCP checksum).
CQE_STALL            completion delivery stalls (CQEs withheld).
TX_BACKPRESSURE      the TX ring refuses new work (peer asserting pause).
==================  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

# -- fault kinds ----------------------------------------------------------------

MBUF_EXHAUSTION = "mbuf_exhaustion"
RX_UNDERRUN = "rx_underrun"
LINK_FLAP = "link_flap"
RATE_DIP = "rate_dip"
TRUNCATE = "truncate"
CORRUPT = "corrupt"
CQE_STALL = "cqe_stall"
TX_BACKPRESSURE = "tx_backpressure"

ALL_KINDS = (
    MBUF_EXHAUSTION,
    RX_UNDERRUN,
    LINK_FLAP,
    RATE_DIP,
    TRUNCATE,
    CORRUPT,
    CQE_STALL,
    TX_BACKPRESSURE,
)

#: Default ``magnitude`` per kind (see :class:`FaultSpec.magnitude`).
_DEFAULT_MAGNITUDE = {
    MBUF_EXHAUSTION: 1.0,  # fraction of the free pool held hostage
    RATE_DIP: 0.25,        # fraction of the nominal arrival rate kept
    TRUNCATE: 0.5,         # fraction of the frame that survives
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault mechanism armed over an iteration window.

    ``start``/``stop`` bound the main-loop iterations (driver steps) in
    which the fault is armed; ``None`` means unbounded on that side.
    While armed, *window faults* (link flap, CQE stall, mempool pressure)
    are simply in force; *probabilistic faults* (underrun, truncation,
    corruption, TX backpressure) additionally roll ``probability`` against
    the schedule's seeded RNG per opportunity.
    """

    kind: str
    start: Optional[int] = None
    stop: Optional[int] = None
    probability: float = 1.0
    magnitude: Optional[float] = None
    port: Optional[int] = None
    #: RX queue scope: ``None`` hits every queue (the pre-sharding
    #: behaviour); an integer arms the fault only on that queue's
    #: replica, so a schedule can degrade one core of a sharded run.
    queue: Optional[int] = None

    def __post_init__(self):
        if self.queue is not None and self.queue < 0:
            raise ValueError("queue must be >= 0")
        if self.kind not in ALL_KINDS:
            raise ValueError(
                "unknown fault kind %r (expected one of %s)"
                % (self.kind, ", ".join(ALL_KINDS))
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability %r outside [0, 1]" % (self.probability,))
        if self.start is not None and self.start < 0:
            raise ValueError("start must be >= 0")
        if (
            self.start is not None
            and self.stop is not None
            and self.stop <= self.start
        ):
            raise ValueError(
                "empty fault window [%d, %d)" % (self.start, self.stop)
            )
        if self.magnitude is not None and not 0.0 <= self.magnitude <= 1.0:
            raise ValueError("magnitude %r outside [0, 1]" % (self.magnitude,))

    @property
    def effective_magnitude(self) -> float:
        if self.magnitude is not None:
            return self.magnitude
        return _DEFAULT_MAGNITUDE.get(self.kind, 1.0)

    def active_at(self, tick: int) -> bool:
        """Whether the window covers main-loop iteration ``tick``."""
        if self.start is not None and tick < self.start:
            return False
        if self.stop is not None and tick >= self.stop:
            return False
        return True

    def applies_to_port(self, port: int) -> bool:
        return self.port is None or self.port == port

    def last_tick(self) -> Optional[int]:
        """Last iteration the window covers (None = unbounded)."""
        if self.stop is None:
            return None
        return self.stop - 1


class FaultSchedule:
    """An ordered collection of fault specs plus the seed that drives them."""

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int = 0):
        self.specs: List[FaultSpec] = list(specs)
        self.seed = seed

    # -- constructors ----------------------------------------------------------

    @classmethod
    def empty(cls, seed: int = 0) -> "FaultSchedule":
        return cls((), seed=seed)

    @classmethod
    def from_dicts(cls, entries: Sequence[Dict], seed: int = 0) -> "FaultSchedule":
        """Build a schedule from plain dicts (the JSON/TOML-friendly form).

        >>> FaultSchedule.from_dicts(
        ...     [{"kind": "link_flap", "start": 100, "stop": 120}], seed=7)
        ... # doctest: +ELLIPSIS
        <FaultSchedule 1 spec(s), seed=7>
        """
        return cls((FaultSpec(**entry) for entry in entries), seed=seed)

    # -- queries -----------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.specs

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def for_queue(self, queue: int) -> "FaultSchedule":
        """The sub-schedule one RX queue's replica sees.

        Specs with ``queue=None`` apply everywhere; queue-scoped specs
        survive only on their own queue.  The seed is preserved -- each
        replica's injector already decorrelates it per core -- and an
        empty result means that core runs entirely fault-free (no
        injector is even wired, so its tier never demotes).
        """
        return FaultSchedule(
            (spec for spec in self.specs
             if spec.queue is None or spec.queue == queue),
            seed=self.seed,
        )

    def active(self, kind: str, tick: int, port: Optional[int] = None) -> List[FaultSpec]:
        """Specs of ``kind`` whose window covers ``tick`` (and ``port``)."""
        return [
            spec
            for spec in self.specs
            if spec.kind == kind
            and spec.active_at(tick)
            and (port is None or spec.applies_to_port(port))
        ]

    def any_active(self, tick: int) -> bool:
        return any(spec.active_at(tick) for spec in self.specs)

    def quiet_after(self) -> Optional[int]:
        """First iteration after which every window has closed.

        Returns ``None`` when some spec is unbounded (never quiet).
        """
        horizon = 0
        for spec in self.specs:
            last = spec.last_tick()
            if last is None:
                return None
            horizon = max(horizon, last + 1)
        return horizon

    def __repr__(self) -> str:
        return "<FaultSchedule %d spec(s), seed=%d>" % (len(self.specs), self.seed)
