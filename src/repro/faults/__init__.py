"""Fault injection and graceful degradation (``repro.faults``).

PacketMill's evaluation assumes a healthy testbed: the NIC always has a
frame ready and the mempool never runs dry.  Real 100-Gbps pipelines see
mbuf exhaustion, link flaps, corrupted frames, and backpressure -- and
surface them as *counters* (``rx_nombuf``, ``imissed``, ...), not
exceptions.  This package brings those failure modes to the simulator:

- :mod:`repro.faults.schedule` -- declarative, seed-driven fault plans.
- :mod:`repro.faults.injector` -- the deterministic injector the NIC,
  PMD, and driver consult.
- :mod:`repro.faults.watchdog` -- stalled-pipeline detection/recovery.
- :mod:`repro.faults.audit` -- end-of-run leak and conservation checks.

Wiring is done by :class:`repro.core.packetmill.PacketMill` via its
``faults=`` argument; with no schedule (or an empty one) every hook stays
``None`` and the data path is bit-identical to the fault-free simulator.
"""

from repro.faults.audit import (
    MempoolLeakError,
    QosConservationError,
    assert_no_leak,
    assert_qos_conserved,
    check_conservation,
    mempool_audit,
    qos_audit,
)
from repro.faults.injector import FaultInjector
from repro.faults.schedule import (
    ALL_KINDS,
    CORRUPT,
    CQE_STALL,
    LINK_FLAP,
    MBUF_EXHAUSTION,
    RATE_DIP,
    RX_UNDERRUN,
    TRUNCATE,
    TX_BACKPRESSURE,
    FaultSchedule,
    FaultSpec,
)
from repro.faults.watchdog import Watchdog

__all__ = [
    "ALL_KINDS",
    "CORRUPT",
    "CQE_STALL",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "LINK_FLAP",
    "MBUF_EXHAUSTION",
    "MempoolLeakError",
    "QosConservationError",
    "RATE_DIP",
    "RX_UNDERRUN",
    "TRUNCATE",
    "TX_BACKPRESSURE",
    "Watchdog",
    "assert_no_leak",
    "assert_qos_conserved",
    "check_conservation",
    "mempool_audit",
    "qos_audit",
]
