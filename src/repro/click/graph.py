"""Processing graph: instantiate and wire elements from a parsed config."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.click.config.ast import ConfigAst
from repro.click.config.lexer import ConfigError
from repro.click.element import Element, ElementRegistry


class ProcessingGraph:
    """The instantiated element graph of one network function."""

    def __init__(self, ast: ConfigAst):
        self.ast = ast
        self.elements: Dict[str, Element] = {}
        for name, decl in ast.declarations.items():
            self.elements[name] = ElementRegistry.create(decl)
        for conn in ast.connections:
            src = self.elements[conn.src]
            dst = self.elements[conn.dst]
            if conn.src_port >= src.n_outputs:
                raise ConfigError(
                    "element %r has no output port %d" % (conn.src, conn.src_port),
                    conn.line,
                )
            if conn.dst_port >= dst.n_inputs:
                raise ConfigError(
                    "element %r has no input port %d" % (conn.dst, conn.dst_port),
                    conn.line,
                )
            src.connect(conn.src_port, dst, conn.dst_port)

    @classmethod
    def from_text(cls, text: str) -> "ProcessingGraph":
        from repro.click.config import parse_config

        return cls(parse_config(text))

    def element(self, name: str) -> Element:
        return self.elements[name]

    def unconnected_inputs(self) -> List[Tuple[str, int]]:
        """(element, port) pairs for required input ports nothing feeds.

        Every declared input port of an element is required: an element
        whose input is never wired can only receive packets by accident
        (it would silently act as a spurious source).  Returned in
        deterministic declaration order.
        """
        wired: Dict[str, set] = {}
        for conn in self.ast.connections:
            wired.setdefault(conn.dst, set()).add(conn.dst_port)
        missing = []
        for name, element in self.elements.items():
            ports = wired.get(name, set())
            for port in range(element.n_inputs):
                if port not in ports:
                    missing.append((name, port))
        return missing

    def check_required_inputs(self) -> None:
        """Raise :class:`ConfigError` naming every unconnected input port.

        Called at build time (:class:`repro.core.packetmill.PacketMill`)
        so a half-wired configuration fails before it runs, not when the
        first packet happens to reach the gap.
        """
        missing = self.unconnected_inputs()
        if missing:
            raise ConfigError(
                "unconnected required input port(s): %s"
                % ", ".join(
                    "%s input [%d] (%s)"
                    % (name, port, self.elements[name].decl.class_name)
                    for name, port in missing
                ),
                min(self.elements[name].decl.line for name, _ in missing),
            )

    def by_class(self, class_name: str) -> List[Element]:
        return [
            e for e in self.elements.values() if e.decl.class_name == class_name
        ]

    def sources(self) -> List[Element]:
        """Elements that originate packets (no wired inputs, e.g. RX devices)."""
        has_input = {conn.dst for conn in self.ast.connections}
        return [
            element
            for name, element in self.elements.items()
            if name not in has_input
        ]

    def reachable_from(self, start: Element) -> List[Element]:
        """Elements reachable by following output ports (DFS preorder)."""
        seen = []
        seen_set = set()
        stack = [start]
        while stack:
            element = stack.pop()
            if element.name in seen_set:
                continue
            seen_set.add(element.name)
            seen.append(element)
            for target in reversed(element.targets):
                if target is not None:
                    stack.append(target[0])
        return seen

    def all_elements(self) -> List[Element]:
        """Every element, sources first, in deterministic order."""
        ordered = []
        seen = set()
        for source in self.sources():
            for element in self.reachable_from(source):
                if element.name not in seen:
                    seen.add(element.name)
                    ordered.append(element)
        for name in self.ast.declarations:
            if name not in seen:
                seen.add(name)
                ordered.append(self.elements[name])
        return ordered

    def __len__(self) -> int:
        return len(self.elements)
