"""Processing graph: instantiate and wire elements from a parsed config."""

from __future__ import annotations

from typing import Dict, List

from repro.click.config.ast import ConfigAst
from repro.click.config.lexer import ConfigError
from repro.click.element import Element, ElementRegistry


class ProcessingGraph:
    """The instantiated element graph of one network function."""

    def __init__(self, ast: ConfigAst):
        self.ast = ast
        self.elements: Dict[str, Element] = {}
        for name, decl in ast.declarations.items():
            self.elements[name] = ElementRegistry.create(decl)
        for conn in ast.connections:
            src = self.elements[conn.src]
            dst = self.elements[conn.dst]
            if conn.src_port >= src.n_outputs:
                raise ConfigError(
                    "element %r has no output port %d" % (conn.src, conn.src_port),
                    conn.line,
                )
            if conn.dst_port >= dst.n_inputs:
                raise ConfigError(
                    "element %r has no input port %d" % (conn.dst, conn.dst_port),
                    conn.line,
                )
            src.connect(conn.src_port, dst, conn.dst_port)

    @classmethod
    def from_text(cls, text: str) -> "ProcessingGraph":
        from repro.click.config import parse_config

        return cls(parse_config(text))

    def element(self, name: str) -> Element:
        return self.elements[name]

    def by_class(self, class_name: str) -> List[Element]:
        return [
            e for e in self.elements.values() if e.decl.class_name == class_name
        ]

    def sources(self) -> List[Element]:
        """Elements that originate packets (no wired inputs, e.g. RX devices)."""
        has_input = {conn.dst for conn in self.ast.connections}
        return [
            element
            for name, element in self.elements.items()
            if name not in has_input
        ]

    def reachable_from(self, start: Element) -> List[Element]:
        """Elements reachable by following output ports (DFS preorder)."""
        seen = []
        seen_set = set()
        stack = [start]
        while stack:
            element = stack.pop()
            if element.name in seen_set:
                continue
            seen_set.add(element.name)
            seen.append(element)
            for target in reversed(element.targets):
                if target is not None:
                    stack.append(target[0])
        return seen

    def all_elements(self) -> List[Element]:
        """Every element, sources first, in deterministic order."""
        ordered = []
        seen = set()
        for source in self.sources():
            for element in self.reachable_from(source):
                if element.name not in seen:
                    seen.add(element.name)
                    ordered.append(element)
        for name in self.ast.declarations:
            if name not in seen:
                seen.add(name)
                ordered.append(self.elements[name])
        return ordered

    def __len__(self) -> int:
        return len(self.elements)
