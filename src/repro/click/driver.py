"""Run-to-completion driver: the FastClick main loop.

One iteration receives a burst from each RX device, pushes it through the
processing graph (splitting sub-batches at classifiers, exactly like
FastClick's batch push), and transmits whatever reaches the TX devices.

Costs are charged from three sources per element visit:

1. the *dispatch policy* -- how the next element is reached: virtual call
   through a heap-resident dynamic graph (Vanilla), direct call
   (click-devirtualize), or fully inlined straight-line code over a
   static graph (PacketMill);
2. the element's lowered per-packet IR program; and
3. the PMD programs inside rx_burst/tx_burst.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.click.element import Element
from repro.click.graph import ProcessingGraph
from repro.compiler.lower import ExecProgram
from repro.compiler.runtime import Bindings, execute
from repro.dpdk.mempool import MempoolEmptyError

DISPATCH_VIRTUAL = "virtual"
DISPATCH_DIRECT = "direct"
DISPATCH_INLINE = "inline"

#: Indirect-call misprediction odds per batch hop in a dynamic graph.
VIRTUAL_CALL_MISS = 0.45


@dataclass(frozen=True)
class DispatchPolicy:
    """How control transfers between elements (per batch, per element)."""

    mode: str = DISPATCH_VIRTUAL
    static_segment: bool = False

    def charge(self, cpu, element: Element, params) -> None:
        if self.mode == DISPATCH_INLINE:
            # Straight-line code: the "dispatch" is just falling through.
            cpu.charge_compute(1)
            return
        loads = params.dispatch_loads_per_element
        if self.mode == DISPATCH_DIRECT:
            loads -= 1  # no vtable pointer load
        if self.static_segment:
            # Element descriptors packed in the static segment: the cache
            # model keeps these few lines warm by itself.
            base = element.state_region.base if element.state_region else 0
            for i in range(loads):
                cpu.mem_access(base + 8 * i, 8, instructions=1.0)
        else:
            for _ in range(loads):
                cpu.dispatch_access(instructions=1.0)
        if self.mode == DISPATCH_VIRTUAL:
            cpu.charge_compute(8)
            cpu.charge_branch_miss(VIRTUAL_CALL_MISS)
        else:
            cpu.charge_compute(4)


@dataclass
class RunStats:
    """Functional outcome of one measurement run.

    Beyond the healthy-path totals, a run carries the degraded-path
    ledger: hardware-level drops mirrored from the NICs (``rx_nombuf``,
    ``imissed``, ``rx_errors``, ``tx_full``), element error-boundary
    incidents, and watchdog recoveries.  All of these stay zero on a
    fault-free run.
    """

    batches: int = 0
    rx_packets: int = 0
    tx_packets: int = 0
    tx_bytes: int = 0
    drops: int = 0
    drops_by_element: Dict[str, int] = field(default_factory=dict)
    # -- hardware drop counters (delta since the last stats reset) ---------
    rx_nombuf: int = 0
    imissed: int = 0
    rx_errors: int = 0
    tx_full: int = 0
    hw_counters: Dict[str, int] = field(default_factory=dict)
    # -- software degradation counters -------------------------------------
    error_batches: int = 0
    errors_by_element: Dict[str, int] = field(default_factory=dict)
    watchdog_resets: int = 0
    clone_alloc_failures: int = 0

    def record_drop(self, element_name: str, count: int = 1) -> None:
        self.drops += count
        self.drops_by_element[element_name] = (
            self.drops_by_element.get(element_name, 0) + count
        )

    def record_element_error(self, element_name: str) -> None:
        self.error_batches += 1
        self.errors_by_element[element_name] = (
            self.errors_by_element.get(element_name, 0) + 1
        )

    @property
    def dropped_total(self) -> int:
        """Every packet lost after delivery: pipeline kills + RX errors."""
        return self.drops + self.rx_errors

    @property
    def fault_degraded(self) -> bool:
        """Whether any degraded-path counter fired during this run."""
        return bool(
            self.rx_nombuf or self.imissed or self.rx_errors or self.tx_full
            or self.error_batches or self.watchdog_resets
        )


class RouterDriver:
    """Executes a compiled processing graph on one core."""

    def __init__(
        self,
        graph: ProcessingGraph,
        cpu,
        params,
        exec_programs: Dict[str, ExecProgram],
        dispatch: DispatchPolicy,
        pmds: Dict[int, "MlxPmd"],  # noqa: F821 - forward ref to avoid cycle
        burst: int = 32,
        injector=None,
        watchdog=None,
    ):
        self.graph = graph
        self.cpu = cpu
        self.params = params
        self.exec_programs = exec_programs
        self.dispatch = dispatch
        self.pmds = pmds
        self.burst = burst
        self.injector = injector
        self.watchdog = watchdog
        self.stats = RunStats()
        self._hw_base: Dict[str, int] = {}
        self.rx_elements: List[Element] = []
        self.queue_elements: List[Element] = [
            e for e in graph.all_elements()
            if getattr(e, "buffers_packets", False) and hasattr(e, "drain")
        ]
        for element in graph.by_class("FromDPDKDevice"):
            port = element.param("port")
            if port not in pmds:
                raise ValueError("no PMD bound for RX port %d" % port)
            element.pmd = pmds[port]
            self.rx_elements.append(element)
        for element in graph.by_class("ToDPDKDevice"):
            port = element.param("port")
            if port not in pmds:
                raise ValueError("no PMD bound for TX port %d" % port)
            element.pmd = pmds[port]
        if not self.rx_elements:
            raise ValueError("configuration has no FromDPDKDevice")
        # All PMDs of one build share the metadata model; dropped packets
        # hand their buffers back to it (Click's Packet::kill()).
        self._model = next(iter(pmds.values())).model
        # Any rx_nombuf hits during initial ring fill predate measurement.
        self._hw_base = self.hw_counters()

    # -- execution -----------------------------------------------------------------

    def _kill(self, element_name: str, packets) -> None:
        """Drop packets, releasing their DPDK buffers back to the model."""
        for pkt in packets:
            if pkt.mbuf is not None:
                self._model.release(pkt.mbuf, self.cpu)
                pkt.mbuf = None
        self.stats.record_drop(element_name, len(packets))

    def _quarantine(self, element: Element, packets) -> None:
        """Error boundary: a raising element forfeits its batch, not the run.

        The batch's buffers are released (counted as drops at this
        element), the incident is recorded, and the main loop continues.
        """
        self.stats.record_element_error(element.name)
        self._kill(element.name, packets)

    def _clone_packet(self, element: Element, pkt):
        """Duplicate a packet into a fresh app-allocated buffer (Tee)."""
        clone = pkt.clone()
        ref = self._model.allocate(self.cpu)
        clone.mbuf = ref
        # The copy itself: one streaming write over the clone's data room.
        self.cpu.mem_access(ref.data_addr, max(64, len(pkt)), write=True,
                            instructions=len(pkt) / 16.0)
        if hasattr(element, "cloned"):
            element.cloned += 1
        return clone

    def _safe_clone(self, element: Element, pkt):
        """Clone, degrading to "no clone" when the pool is exhausted."""
        try:
            return self._clone_packet(element, pkt)
        except MempoolEmptyError:
            self.stats.clone_alloc_failures += 1
            return None

    def _charge_element(self, element: Element, batch: List) -> None:
        self.dispatch.charge(self.cpu, element, self.params)
        program = self.exec_programs[element.name]
        state = element.state_region.base if element.state_region else 0
        cpu = self.cpu
        for pkt in batch:
            ref = pkt.mbuf
            execute(
                cpu,
                program,
                Bindings(
                    packet_meta=ref.meta_addr if ref else 0,
                    packet_mbuf=ref.mbuf_addr if ref else 0,
                    descriptor=ref.cqe_addr if ref else 0,
                    data=ref.data_addr if ref else 0,
                    state=state,
                ),
            )

    def _push_batch(self, element: Element, batch: List, tx_queues) -> None:
        """Recursively push a batch through the graph from ``element``."""
        while True:
            try:
                self._charge_element(element, batch)
            except Exception:
                self._quarantine(element, batch)
                return
            if element.decl.class_name == "ToDPDKDevice":
                tx_queues.setdefault(element.name, (element, []))[1].extend(batch)
                return
            out: Dict[int, List] = {}
            clones = getattr(element, "clones_packets", False)
            failed_at = None
            for i, pkt in enumerate(batch):
                try:
                    port = element.process(pkt)
                except Exception:
                    failed_at = i
                    break
                if port is None:
                    self._kill(element.name, (pkt,))
                    continue
                if port == -1:  # held by a buffering element (Queue)
                    continue
                out.setdefault(port, []).append(pkt)
                if clones:
                    for extra_port in range(1, element.n_outputs):
                        clone = self._safe_clone(element, pkt)
                        if clone is not None:
                            out.setdefault(extra_port, []).append(clone)
            if failed_at is not None:
                # Quarantine the batch: the unprocessed remainder plus
                # whatever this element had already routed.
                leftovers = list(batch[failed_at:])
                for sub_batch in out.values():
                    leftovers.extend(sub_batch)
                self._quarantine(element, leftovers)
                return
            if not out:
                return
            # Fast path: single output port, continue iteratively.
            if len(out) == 1:
                ((port, batch),) = out.items()
                target = element.target(port)
                if target is None:
                    self._kill(element.name, batch)
                    return
                element = target[0]
                continue
            for port, sub_batch in out.items():
                target = element.target(port)
                if target is None:
                    self._kill(element.name, sub_batch)
                    continue
                self._push_batch(target[0], sub_batch, tx_queues)
            return

    def run_batches(self, n_batches: int) -> RunStats:
        """Run the main loop for ``n_batches`` iterations.

        A finite trace ends the run early but cleanly: once every RX
        source is exhausted and the pipeline has drained, remaining
        iterations are skipped and the stats stay intact.
        """
        for _ in range(n_batches):
            self.step()
            if self.at_eof():
                self.quiesce()
                break
        self._sync_hw_stats()
        return self.stats

    def step(self) -> int:
        """One main-loop iteration; returns packets received."""
        if self.injector is not None:
            self.injector.begin_iteration()
        received = 0
        transmitted = 0
        for rx in self.rx_elements:
            batch = rx.pmd.rx_burst(rx.param("burst"))
            if not batch:
                continue
            received += len(batch)
            self.stats.rx_packets += len(batch)
            tx_queues: Dict[str, tuple] = {}
            target = rx.target(0)
            try:
                self._charge_element(rx, batch)
            except Exception:
                self._quarantine(rx, batch)
                continue
            if target is None:
                self._kill(rx.name, batch)
            else:
                self._push_batch(target[0], batch, tx_queues)
            self._drain_queues(tx_queues)
            for element, pkts in tx_queues.values():
                sent = element.pmd.tx_burst(pkts)
                transmitted += sent
                self.stats.tx_packets += sent
                self.stats.tx_bytes += sum(len(p) for p in pkts[:sent])
                if sent < len(pkts):  # TX ring full: unsent packets die
                    self._kill(element.name, pkts[sent:])
        self.stats.batches += 1
        if self.watchdog is not None:
            if self.watchdog.observe(received > 0 or transmitted > 0):
                self._watchdog_recover()
        return received

    # -- degraded-path support ---------------------------------------------------

    def _watchdog_recover(self) -> None:
        """Reset a stalled pipeline: reap TX, replenish RX on every PMD."""
        for pmd in self._unique_pmds():
            pmd.recover()
        self.stats.watchdog_resets += 1

    def _unique_pmds(self):
        seen: List = []
        for pmd in self.pmds.values():
            if pmd not in seen:
                seen.append(pmd)
        return seen

    def _nics(self):
        seen: List = []
        for pmd in self._unique_pmds():
            if pmd.nic not in seen:
                seen.append(pmd.nic)
        return seen

    def at_eof(self) -> bool:
        """All finite RX traces drained and no packets parked in queues."""
        return (
            all(rx.pmd.nic.trace_exhausted for rx in self.rx_elements)
            and self.in_flight_packets() == 0
        )

    def quiesce(self) -> None:
        """Release every buffer still parked on a TX ring (end of run)."""
        for pmd in self._unique_pmds():
            pmd.drain_tx()

    def in_flight_packets(self) -> int:
        """Packets held inside the pipeline (Queue elements).

        Unreaped TX-ring buffers are *not* in flight: those packets were
        already counted as transmitted when the NIC accepted them.
        """
        return sum(
            queue.occupancy for queue in self.queue_elements
            if hasattr(queue, "occupancy")
        )

    def hw_counters(self) -> Dict[str, int]:
        """Aggregate NIC drop/error counters across this core's ports."""
        total: Dict[str, int] = {}
        for nic in self._nics():
            for name, value in nic.counters.snapshot().items():
                total[name] = total.get(name, 0) + value
        return total

    def _sync_hw_stats(self) -> None:
        """Mirror the NIC counters into RunStats as a delta since reset."""
        delta = {
            name: value - self._hw_base.get(name, 0)
            for name, value in self.hw_counters().items()
        }
        stats = self.stats
        stats.rx_nombuf = delta.get("rx_nombuf", 0)
        stats.imissed = delta.get("imissed", 0)
        stats.rx_errors = delta.get("rx_errors", 0)
        stats.tx_full = delta.get("tx_full", 0)
        stats.hw_counters = delta

    def _drain_queues(self, tx_queues) -> None:
        """Drain buffering elements at the end of the iteration.

        Chained queues may refill each other, so iterate to a fixed point
        (bounded -- queue cycles cannot make progress forever within one
        iteration's packet population).
        """
        for _ in range(8):
            moved = False
            for queue in self.queue_elements:
                batch = queue.drain(self.burst)
                if not batch:
                    continue
                moved = True
                target = queue.target(0)
                if target is None:
                    self._kill(queue.name, batch)
                else:
                    self._push_batch(target[0], batch, tx_queues)
            if not moved:
                return

    def reset_stats(self) -> None:
        self.stats = RunStats()
        self._hw_base = self.hw_counters()
