"""Run-to-completion driver: the FastClick main loop.

One iteration receives a burst from each RX device, pushes it through the
processing graph (splitting sub-batches at classifiers, exactly like
FastClick's batch push), and transmits whatever reaches the TX devices.

Costs are charged from three sources per element visit:

1. the *dispatch policy* -- how the next element is reached: virtual call
   through a heap-resident dynamic graph (Vanilla), direct call
   (click-devirtualize), or fully inlined straight-line code over a
   static graph (PacketMill);
2. the element's lowered per-packet IR program; and
3. the PMD programs inside rx_burst/tx_burst.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.click.element import Element
from repro.click.graph import ProcessingGraph
from repro.compiler import codegen as _codegen
from repro.compiler.lower import ExecProgram
from repro.compiler.runtime import (
    ExecutionTier,
    TierSelection,
    as_policy,
    execute_bases,
    execute_interpreted,
    select_tier,
)
from repro.telemetry import Telemetry
from repro.telemetry.attribution import DRIVER_BUCKET
from repro.telemetry.registry import CounterRegistry

DISPATCH_VIRTUAL = "virtual"
DISPATCH_DIRECT = "direct"
DISPATCH_INLINE = "inline"

#: Indirect-call misprediction odds per batch hop in a dynamic graph.
VIRTUAL_CALL_MISS = 0.45

#: Route-cache miss sentinel (``None`` is a legal route: "drop").
_NO_ROUTE = object()


@dataclass(frozen=True)
class DispatchPolicy:
    """How control transfers between elements (per batch, per element)."""

    mode: str = DISPATCH_VIRTUAL
    static_segment: bool = False

    def charge(self, cpu, element: Element, params) -> None:
        if self.mode == DISPATCH_INLINE:
            # Straight-line code: the "dispatch" is just falling through.
            cpu.charge_compute(1)
            return
        loads = params.dispatch_loads_per_element
        if self.mode == DISPATCH_DIRECT:
            loads -= 1  # no vtable pointer load
        if self.static_segment:
            # Element descriptors packed in the static segment: the cache
            # model keeps these few lines warm by itself.
            base = element.state_region.base if element.state_region else 0
            for i in range(loads):
                cpu.mem_access(base + 8 * i, 8, instructions=1.0)
        else:
            for _ in range(loads):
                cpu.dispatch_access(instructions=1.0)
        if self.mode == DISPATCH_VIRTUAL:
            cpu.charge_compute(8)
            cpu.charge_branch_miss(VIRTUAL_CALL_MISS)
        else:
            cpu.charge_compute(4)


#: Every run-level scalar, in the old dataclass field order.
RUN_SCALARS = (
    "batches", "rx_packets", "tx_packets", "tx_bytes", "drops",
    # -- hardware drop counters (delta since the last stats reset) ---------
    "rx_nombuf", "imissed", "rx_errors", "tx_full",
    # -- software degradation counters -------------------------------------
    "error_batches", "watchdog_resets", "clone_alloc_failures",
)


class RunStats:
    """Functional outcome of one measurement run.

    Beyond the healthy-path totals, a run carries the degraded-path
    ledger: hardware-level drops mirrored from the NICs (``rx_nombuf``,
    ``imissed``, ``rx_errors``, ``tx_full``), element error-boundary
    incidents, and watchdog recoveries.  All of these stay zero on a
    fault-free run.

    A view over a :class:`repro.telemetry.registry.CounterRegistry`:
    scalars live under ``driver.*`` and the per-element breakdowns under
    ``element.<name>.drops`` / ``element.<name>.errors``, so handler
    globs, window samples, and exports read the same cells this object
    does.  Attribute access is unchanged, including keyword construction
    (``RunStats(rx_packets=100, tx_packets=100)``); constructed bare, it
    owns a private registry and behaves exactly like the old dataclass.
    """

    __slots__ = ("registry", "_h", "_element_drops", "_element_errors",
                 "_hw_names")

    def __init__(self, registry: Optional[CounterRegistry] = None, **initial):
        self._bind(registry if registry is not None else CounterRegistry())
        for name, value in initial.items():
            setattr(self, name, value)

    def _bind(self, registry: CounterRegistry) -> None:
        self.registry = registry
        self._h = {
            name: registry.counter("driver." + name) for name in RUN_SCALARS
        }
        self._element_drops: Dict[str, object] = {}
        self._element_errors: Dict[str, object] = {}
        self._hw_names: List[str] = []

    def freeze(self) -> None:
        """Detach from shared storage, keeping the current values.

        Called by :meth:`RouterDriver.reset_stats` before the shared
        counters are zeroed for the next run, so references to this
        object keep reading the finished run's numbers -- the same
        semantics the old replace-the-dataclass reset had.
        """
        scalars = {name: self._h[name].value for name in RUN_SCALARS}
        drops = dict(self.drops_by_element)
        errors = dict(self.errors_by_element)
        hw = dict(self.hw_counters)
        self._bind(CounterRegistry())
        for name, value in scalars.items():
            self._h[name].value = value
        self.drops_by_element = drops
        self.errors_by_element = errors
        self.hw_counters = hw

    # -- recording -------------------------------------------------------------

    def _element_counter(self, cache, element_name: str, leaf: str):
        handle = cache.get(element_name)
        if handle is None:
            handle = cache[element_name] = self.registry.counter(
                "element.%s.%s" % (element_name, leaf)
            )
        return handle

    def record_drop(self, element_name: str, count: int = 1) -> None:
        self._h["drops"].value += count
        self._element_counter(
            self._element_drops, element_name, "drops"
        ).value += count

    def record_element_error(self, element_name: str) -> None:
        self._h["error_batches"].value += 1
        self._element_counter(
            self._element_errors, element_name, "errors"
        ).value += 1

    # -- per-element / hardware breakdowns --------------------------------------

    def _breakdown(self, leaf: str) -> Dict[str, int]:
        suffix = "." + leaf
        out = {}
        for name, value in self.registry.match("element.*" + suffix).items():
            if value:
                out[name[len("element."):-len(suffix)]] = value
        return out

    def _set_breakdown(self, leaf: str, cache, values: Dict[str, int]) -> None:
        for handle in cache.values():
            handle.value = 0
        for element_name, value in values.items():
            self._element_counter(cache, element_name, leaf).value = value

    @property
    def drops_by_element(self) -> Dict[str, int]:
        return self._breakdown("drops")

    @drops_by_element.setter
    def drops_by_element(self, values: Dict[str, int]) -> None:
        self._set_breakdown("drops", self._element_drops, values)

    @property
    def errors_by_element(self) -> Dict[str, int]:
        return self._breakdown("errors")

    @errors_by_element.setter
    def errors_by_element(self, values: Dict[str, int]) -> None:
        self._set_breakdown("errors", self._element_errors, values)

    @property
    def hw_counters(self) -> Dict[str, int]:
        """Aggregated NIC counter deltas (``driver.hw.*`` in the registry)."""
        return {
            name: self.registry.get("driver.hw." + name)
            for name in self._hw_names
        }

    @hw_counters.setter
    def hw_counters(self, values: Dict[str, int]) -> None:
        for name in self._hw_names:
            self.registry.counter("driver.hw." + name).value = 0
        self._hw_names = list(values)
        for name, value in values.items():
            self.registry.counter("driver.hw." + name).value = value

    # -- derived views -----------------------------------------------------------

    @property
    def dropped_total(self) -> int:
        """Every packet lost after delivery: pipeline kills + RX errors."""
        return self.drops + self.rx_errors

    @property
    def fault_degraded(self) -> bool:
        """Whether any degraded-path counter fired during this run."""
        return bool(
            self.rx_nombuf or self.imissed or self.rx_errors or self.tx_full
            or self.error_batches or self.watchdog_resets
        )

    def snapshot(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            name: self._h[name].value for name in RUN_SCALARS
        }
        out["drops_by_element"] = self.drops_by_element
        out["errors_by_element"] = self.errors_by_element
        out["hw_counters"] = self.hw_counters
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, RunStats):
            return NotImplemented
        return self.snapshot() == other.snapshot()

    def __repr__(self) -> str:
        nonzero = {
            name: value for name, value in self.snapshot().items() if value
        }
        return "RunStats(%s)" % ", ".join("%s=%r" % kv for kv in nonzero.items())


def _run_scalar_property(name: str) -> property:
    def fget(self):
        return self._h[name].value

    def fset(self, value):
        self._h[name].value = value

    return property(fget, fset, doc="Run scalar %r (registry-backed)." % name)


for _name in RUN_SCALARS:
    setattr(RunStats, _name, _run_scalar_property(_name))
del _name


class RouterDriver:
    """Executes a compiled processing graph on one core."""

    def __init__(
        self,
        graph: ProcessingGraph,
        cpu,
        params,
        exec_programs: Dict[str, ExecProgram],
        dispatch: DispatchPolicy,
        pmds: Dict[int, "MlxPmd"],  # noqa: F821 - forward ref to avoid cycle
        burst: int = 32,
        injector=None,
        watchdog=None,
        telemetry: Optional[Telemetry] = None,
        fastpath: Optional[bool] = None,
        qos_ports: Optional[Dict[int, "QosPort"]] = None,  # noqa: F821
        tier=None,
        codegen: Optional[Dict[str, "_codegen.CompiledProgram"]] = None,
        codegen_verify=None,
        layout_registry=None,
    ):
        self.graph = graph
        self.cpu = cpu
        self.params = params
        self.exec_programs = exec_programs
        self.dispatch = dispatch
        self.pmds = pmds
        self.burst = burst
        self.injector = injector
        self.watchdog = watchdog
        # The telemetry bundle: always a registry (counter storage), plus
        # the optional recorders.  Hot-path guards below are None checks,
        # exactly like the fault injector's.
        if telemetry is None:
            telemetry = Telemetry()
        self.telemetry = telemetry
        self.registry = telemetry.registry
        self.attribution = telemetry.attribution
        self.sampler = telemetry.sampler
        self.spans = telemetry.spans
        self.stats = RunStats(self.registry)
        # Execution tier + fast-path guards, resolved in ONE place
        # (select_tier).  The route-memo fast path memoizes the routing
        # decision of pure classification elements by class signature;
        # charges are never replayed, so the simulated run is
        # bit-identical.  Both it and the generated-code tier self-disable
        # (fall back) when the run is instrumented: faults/watchdog demote
        # codegen to the compiled tier, and telemetry additionally parks
        # the route memo, where packets must stay individually observable
        # end to end.  PacketMill passes a pre-resolved TierSelection;
        # standalone constructions resolve policy/env here.
        if isinstance(tier, TierSelection):
            selection = tier
        else:
            policy = as_policy(tier)
            if fastpath is not None and policy.route_memo is None:
                policy = replace(policy, route_memo=bool(fastpath))
            selection = select_tier(
                policy,
                faults=injector is not None,
                watchdog=watchdog is not None,
                telemetry=telemetry.enabled,
            )
        self.tier_selection = selection
        self.tier = selection.tier
        self.fastpath = selection.route_memo
        _codegen.record_tier(selection.tier.value)
        if selection.demoted:
            _codegen.record_fallback()
        self._interpret = selection.tier is ExecutionTier.INTERPRETER
        self._codegen_verify = codegen_verify
        self._check_codegen = selection.check
        # element name -> generated batch kernel, False once compilation
        # failed (that element stays on the compiled tier).
        self._batch_fns: Optional[Dict[str, object]] = None
        if selection.tier is ExecutionTier.CODEGEN:
            self._batch_fns = {}
            if codegen:
                for name, compiled in codegen.items():
                    self._batch_fns[name] = compiled.batch
        self._layout_registry = layout_registry
        if self.fastpath:
            # The fast path trusts pure_process annotations to skip
            # process() calls; machine-check every claim against the
            # element's own IR before engaging (an unsound claim is a
            # correctness bug, so the build fails rather than degrading).
            from repro.analyze.purity import assert_pure

            for element in graph.all_elements():
                if getattr(element, "pure_process", False):
                    assert_pure(element)
        self._route_cache: Dict[str, Dict] = {}
        self._hw_base: Dict[str, int] = {}
        self.rx_elements: List[Element] = []
        self.queue_elements: List[Element] = [
            e for e in graph.all_elements()
            if getattr(e, "buffers_packets", False) and hasattr(e, "drain")
        ]
        # Per-port QoS buffer accounting (ingress admission + PFC); empty
        # when QoS is unconfigured, in which case nothing below touches it.
        self.qos_ports = dict(qos_ports) if qos_ports else {}
        # Control elements (PFCPause) get one tick() per iteration -- the
        # occupancy watch that asserts/deasserts pause.  The list is empty
        # in every non-QoS build.
        self.tick_elements: List[Element] = [
            e for e in graph.all_elements() if hasattr(e, "tick")
        ]
        for element in graph.by_class("FromDPDKDevice"):
            port = element.param("port")
            if port not in pmds:
                raise ValueError("no PMD bound for RX port %d" % port)
            element.pmd = pmds[port]
            self.rx_elements.append(element)
        for element in graph.by_class("ToDPDKDevice"):
            port = element.param("port")
            if port not in pmds:
                raise ValueError("no PMD bound for TX port %d" % port)
            element.pmd = pmds[port]
        if not self.rx_elements:
            raise ValueError("configuration has no FromDPDKDevice")
        # All PMDs of one build share the metadata model; dropped packets
        # hand their buffers back to it (Click's Packet::kill()).
        self._model = next(iter(pmds.values())).model
        # Every element reads its registry scope through the same path.
        for element in graph.all_elements():
            element.bind_telemetry(self.registry.scope("element." + element.name))
        if self.attribution is not None:
            self.attribution.bind(cpu)
        if self.spans is not None:
            self.spans.bind_clock(cpu.elapsed_ns)
            for pmd in self._unique_pmds():
                pmd.spans = self.spans
        if self.sampler is not None:
            self.sampler.restart(cpu.elapsed_ns())
        # Any rx_nombuf hits during initial ring fill predate measurement.
        self._hw_base = self.hw_counters()

    # -- execution -----------------------------------------------------------------

    def _kill(self, element_name: str, packets) -> None:
        """Drop packets, releasing their DPDK buffers back to the model.

        The buffer-release cost is attributed to the element that dropped
        the packets -- Click's ``Packet::kill()`` runs in the caller.
        """
        attribution = self.attribution
        if attribution is not None:
            attribution.sync(DRIVER_BUCKET)
        for pkt in packets:
            if pkt.mbuf is not None:
                self._model.release(pkt.mbuf, self.cpu)
                pkt.mbuf = None
            ticket = pkt.qos_ticket
            if ticket is not None:
                # A killed frame leaves the system; release its ingress
                # buffer charge (headroom-first reclaim).
                pkt.qos_ticket = None
                ticket[0].drain(ticket[1])
        self.stats.record_drop(element_name, len(packets))
        if attribution is not None:
            attribution.sync("element." + element_name)

    def _quarantine(self, element: Element, packets) -> None:
        """Error boundary: a raising element forfeits its batch, not the run.

        The batch's buffers are released (counted as drops at this
        element), the incident is recorded, and the main loop continues.
        """
        self.stats.record_element_error(element.name)
        self._kill(element.name, packets)

    def _clone_packet(self, element: Element, pkt, ref=None):
        """Duplicate a packet into a fresh app-allocated buffer (Tee)."""
        if ref is None:  # direct callers; the hot path passes try_allocate's
            ref = self._model.allocate(self.cpu)
        clone = pkt.clone()
        clone.mbuf = ref
        # The copy itself: one streaming write over the clone's data room.
        self.cpu.mem_access(ref.data_addr, max(64, len(pkt)), write=True,
                            instructions=len(pkt) / 16.0)
        if hasattr(element, "cloned"):
            element.cloned += 1
        return clone

    def _safe_clone(self, element: Element, pkt):
        """Clone, degrading to "no clone" when the pool is exhausted.

        Exhaustion surfaces as ``try_allocate() is None`` -- the unified
        drop-counter contract -- so the hot path needs no try/except.
        """
        attribution = self.attribution
        if attribution is not None:
            attribution.sync(DRIVER_BUCKET)
        try:
            ref = self._model.try_allocate(self.cpu)
            if ref is None:
                self.stats.clone_alloc_failures += 1
                return None
            return self._clone_packet(element, pkt, ref)
        finally:
            if attribution is not None:
                attribution.sync("element." + element.name)

    def _batch_kernel(self, name: str, program: ExecProgram):
        """The generated batch kernel for one element, compiled lazily.

        PacketMill pre-compiles (and IR-verifies) every element at build
        time; this path covers directly constructed drivers.  A compile
        failure parks the element on the compiled tier for good and
        counts one fallback.
        """
        try:
            compiled = _codegen.compile_program(
                program, verify=self._codegen_verify, check=self._check_codegen
            )
        except _codegen.CodegenError:
            _codegen.record_fallback()
            self._batch_fns[name] = False
            return False
        fn = compiled.batch
        self._batch_fns[name] = fn
        return fn

    def _charge_element(self, element: Element, batch: List) -> None:
        attribution = self.attribution
        if attribution is not None:
            attribution.sync(DRIVER_BUCKET)
        try:
            self.dispatch.charge(self.cpu, element, self.params)
            program = self.exec_programs[element.name]
            state = element.state_region.base if element.state_region else 0
            cpu = self.cpu
            batch_fns = self._batch_fns
            if batch_fns is not None:
                fn = batch_fns.get(element.name)
                if fn is None:
                    fn = self._batch_kernel(element.name, program)
                if fn is not False:
                    # Generated-code tier: one call charges the batch.
                    fn(cpu, batch, state)
                    return
            if self._interpret:
                for pkt in batch:
                    ref = pkt.mbuf
                    if ref is not None:
                        execute_interpreted(cpu, program, ref.meta_addr,
                                            ref.mbuf_addr, ref.cqe_addr,
                                            ref.data_addr, state)
                    else:
                        execute_interpreted(cpu, program, 0, 0, 0, 0, state)
                return
            for pkt in batch:
                ref = pkt.mbuf
                if ref is not None:
                    execute_bases(cpu, program, ref.meta_addr, ref.mbuf_addr,
                                  ref.cqe_addr, ref.data_addr, state)
                else:
                    execute_bases(cpu, program, 0, 0, 0, 0, state)
        finally:
            # Attribute even a partial (raising) charge to the element --
            # the marks must tile the run for the totals to conserve.
            if attribution is not None:
                attribution.sync("element." + element.name)

    def _push_batch(self, element: Element, batch: List, tx_queues) -> None:
        """Recursively push a batch through the graph from ``element``.

        When spans are recorded, each element visited opens a span that
        stays open while the batch continues downstream, so the recorded
        stacks nest along the actual pipeline path
        (``iteration;input;rt;output``).
        """
        spans = self.spans
        pushed = 0
        try:
            while True:
                if spans is not None:
                    spans.push(element.name)
                    pushed += 1
                try:
                    self._charge_element(element, batch)
                except Exception:
                    self._quarantine(element, batch)
                    return
                if element.decl.class_name == "ToDPDKDevice":
                    tx_queues.setdefault(element.name, (element, []))[1].extend(batch)
                    return
                out: Dict[int, List] = {}
                clones = getattr(element, "clones_packets", False)
                routes = None
                if self.fastpath and getattr(element, "pure_process", False):
                    routes = self._route_cache.get(element.name)
                    if routes is None:
                        routes = self._route_cache[element.name] = {}
                failed_at = None
                for i, pkt in enumerate(batch):
                    try:
                        if routes is None:
                            port = element.process(pkt)
                        else:
                            signature = element.route_signature(pkt)
                            port = routes.get(signature, _NO_ROUTE)
                            if port is _NO_ROUTE:
                                port = element.process(pkt)
                                routes[signature] = port
                    except Exception:
                        failed_at = i
                        break
                    if port is None:
                        self._kill(element.name, (pkt,))
                        continue
                    if port == -1:  # held by a buffering element (Queue)
                        continue
                    out.setdefault(port, []).append(pkt)
                    if clones:
                        for extra_port in range(1, element.n_outputs):
                            clone = self._safe_clone(element, pkt)
                            if clone is not None:
                                out.setdefault(extra_port, []).append(clone)
                if failed_at is not None:
                    # Quarantine the batch: the unprocessed remainder plus
                    # whatever this element had already routed.
                    leftovers = list(batch[failed_at:])
                    for sub_batch in out.values():
                        leftovers.extend(sub_batch)
                    self._quarantine(element, leftovers)
                    return
                if not out:
                    return
                # Fast path: single output port, continue iteratively.
                if len(out) == 1:
                    ((port, batch),) = out.items()
                    target = element.target(port)
                    if target is None:
                        self._kill(element.name, batch)
                        return
                    element = target[0]
                    continue
                for port, sub_batch in out.items():
                    target = element.target(port)
                    if target is None:
                        self._kill(element.name, sub_batch)
                        continue
                    self._push_batch(target[0], sub_batch, tx_queues)
                return
        finally:
            if spans is not None:
                spans.pop_n(pushed)

    def run_batches(self, n_batches: int) -> RunStats:
        """Run the main loop for ``n_batches`` iterations.

        A finite trace ends the run early but cleanly: once every RX
        source is exhausted and the pipeline has drained, remaining
        iterations are skipped and the stats stay intact.
        """
        for _ in range(n_batches):
            self.step()
            if self.at_eof():
                self.quiesce()
                break
        if self.attribution is not None:
            self.attribution.sync(DRIVER_BUCKET)
        if self.sampler is not None:
            self.sampler.flush(self.cpu.elapsed_ns())
        self._sync_hw_stats()
        return self.stats

    def step(self) -> int:
        """One main-loop iteration; returns packets received."""
        if self.injector is not None:
            self.injector.begin_iteration()
        for element in self.tick_elements:
            # PFC watch: pause state settles before this iteration's RX.
            element.tick()
        attribution = self.attribution
        spans = self.spans
        if spans is not None:
            spans.push("iteration")
        received = 0
        transmitted = 0
        for rx in self.rx_elements:
            if attribution is not None:
                attribution.sync(DRIVER_BUCKET)
            if spans is not None:
                spans.push("pmd.rx")
            batch = rx.pmd.rx_burst(rx.param("burst"))
            if spans is not None:
                spans.pop()
            if attribution is not None:
                attribution.sync("pmd.rx")
            if not batch:
                continue
            received += len(batch)
            self.stats.rx_packets += len(batch)
            tx_queues: Dict[str, tuple] = {}
            target = rx.target(0)
            if spans is not None:
                spans.push(rx.name)
            try:
                try:
                    self._charge_element(rx, batch)
                except Exception:
                    self._quarantine(rx, batch)
                    continue
                if target is None:
                    self._kill(rx.name, batch)
                else:
                    self._push_batch(target[0], batch, tx_queues)
            finally:
                if spans is not None:
                    spans.pop()
            self._drain_queues(tx_queues)
            for element, pkts in tx_queues.values():
                if attribution is not None:
                    attribution.sync(DRIVER_BUCKET)
                if spans is not None:
                    spans.push("pmd.tx")
                sent = element.pmd.tx_burst(pkts)
                if spans is not None:
                    spans.pop()
                if attribution is not None:
                    attribution.sync("pmd.tx")
                transmitted += sent
                self.stats.tx_packets += sent
                self.stats.tx_bytes += sum(len(p) for p in pkts[:sent])
                if sent < len(pkts):  # TX ring full: unsent packets die
                    self._kill(element.name, pkts[sent:])
        if received == 0 and self.queue_elements and self.in_flight_packets():
            # Sources idle -- exhausted, or pause-throttled by PFC -- but
            # packets remain parked in queues.  Service them anyway: this
            # is what lets occupancy fall below XON while the source is
            # paused (the backpressure loop needs drain progress to ever
            # deassert) and lets finite runs reach EOF.
            tx_queues = {}
            self._drain_queues(tx_queues)
            for element, pkts in tx_queues.values():
                if attribution is not None:
                    attribution.sync(DRIVER_BUCKET)
                if spans is not None:
                    spans.push("pmd.tx")
                sent = element.pmd.tx_burst(pkts)
                if spans is not None:
                    spans.pop()
                if attribution is not None:
                    attribution.sync("pmd.tx")
                transmitted += sent
                self.stats.tx_packets += sent
                self.stats.tx_bytes += sum(len(p) for p in pkts[:sent])
                if sent < len(pkts):  # TX ring full: unsent packets die
                    self._kill(element.name, pkts[sent:])
        self.stats.batches += 1
        if self.watchdog is not None:
            if self.watchdog.observe(received > 0 or transmitted > 0):
                self._watchdog_recover()
        if spans is not None:
            spans.pop()
        if self.sampler is not None:
            self.sampler.observe(self.cpu.elapsed_ns())
        return received

    # -- degraded-path support ---------------------------------------------------

    def _watchdog_recover(self) -> None:
        """Reset a stalled pipeline: reap TX, replenish RX on every PMD."""
        for pmd in self._unique_pmds():
            pmd.recover()
        self.stats.watchdog_resets += 1

    def _unique_pmds(self):
        seen: List = []
        for pmd in self.pmds.values():
            if pmd not in seen:
                seen.append(pmd)
        return seen

    def _nics(self):
        seen: List = []
        for pmd in self._unique_pmds():
            if pmd.nic not in seen:
                seen.append(pmd.nic)
        return seen

    def at_eof(self) -> bool:
        """All finite RX traces drained and no packets parked in queues."""
        return (
            all(rx.pmd.nic.trace_exhausted for rx in self.rx_elements)
            and self.in_flight_packets() == 0
        )

    def quiesce(self) -> None:
        """Release every buffer still parked on a TX ring (end of run)."""
        for pmd in self._unique_pmds():
            pmd.drain_tx()

    def in_flight_packets(self) -> int:
        """Packets held inside the pipeline (Queue elements).

        Unreaped TX-ring buffers are *not* in flight: those packets were
        already counted as transmitted when the NIC accepted them.
        """
        return sum(
            queue.occupancy for queue in self.queue_elements
            if hasattr(queue, "occupancy")
        )

    def hw_counters(self) -> Dict[str, int]:
        """Aggregate NIC drop/error counters across this core's ports."""
        total: Dict[str, int] = {}
        for nic in self._nics():
            for name, value in nic.counters.snapshot().items():
                total[name] = total.get(name, 0) + value
        return total

    def _sync_hw_stats(self) -> None:
        """Mirror the NIC counters into RunStats as a delta since reset."""
        delta = {
            name: value - self._hw_base.get(name, 0)
            for name, value in self.hw_counters().items()
        }
        stats = self.stats
        stats.rx_nombuf = delta.get("rx_nombuf", 0)
        stats.imissed = delta.get("imissed", 0)
        stats.rx_errors = delta.get("rx_errors", 0)
        stats.tx_full = delta.get("tx_full", 0)
        stats.hw_counters = delta

    def _drain_queues(self, tx_queues) -> None:
        """Drain buffering elements at the end of the iteration.

        Chained queues may refill each other, so iterate to a fixed point
        (bounded -- queue cycles cannot make progress forever within one
        iteration's packet population).  Rate-limited queues reset their
        per-iteration service budget through ``begin_drain`` first, so the
        fixed-point rounds cannot exceed the configured rate.
        """
        for queue in self.queue_elements:
            begin = getattr(queue, "begin_drain", None)
            if begin is not None:
                begin()
        for _ in range(8):
            moved = False
            for queue in self.queue_elements:
                batch = queue.drain(self.burst)
                if not batch:
                    continue
                moved = True
                target = queue.target(0)
                if target is None:
                    self._kill(queue.name, batch)
                else:
                    self._push_batch(target[0], batch, tx_queues)
            if not moved:
                return

    def reset_stats(self) -> None:
        """Zero the run counters, detaching the previous stats object.

        The old :class:`RunStats` is frozen (it keeps the finished run's
        values, as the replace-the-dataclass reset used to guarantee),
        then the shared driver/element/PMD counters are zeroed and a
        fresh view is bound over them.  NIC counters stay cumulative, as
        on real hardware; the delta base moves instead.
        """
        self.stats.freeze()
        self.registry.reset("driver.")
        self.registry.reset("element.")
        self.registry.reset("pmd.")
        self.stats = RunStats(self.registry)
        if self.attribution is not None:
            self.attribution.rebase()
        if self.sampler is not None:
            self.sampler.restart(self.cpu.elapsed_ns())
        if self.spans is not None:
            self.spans.reset()
        self._hw_base = self.hw_counters()
