"""Configuration-level tools from the Click optimization toolkit family."""

from repro.click.tools.devirtualize import (
    DevirtualizedSource,
    ResolvedCall,
    analyze,
    devirtualize_config,
)
from repro.click.tools.flatten import flatten_config
from repro.click.tools.undead import UndeadReport, remove_dead_elements

__all__ = [
    "DevirtualizedSource",
    "ResolvedCall",
    "UndeadReport",
    "analyze",
    "devirtualize_config",
    "flatten_config",
    "remove_dead_elements",
]
