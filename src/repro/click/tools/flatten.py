"""click-flatten: normalize a configuration to canonical flat form.

Resolves inline/anonymous elements into explicit declarations and writes
every connection as ``src[p] -> [q]dst;`` -- the canonical form the other
toolkit passes consume, and a stable representation for diffing configs.
"""

from __future__ import annotations

from repro.click.config import parse_config


def flatten_config(config_text: str) -> str:
    """Return the canonical flat form of a configuration."""
    ast = parse_config(config_text)
    lines = []
    for name, decl in ast.declarations.items():
        config = "(%s)" % decl.config if decl.config else ""
        lines.append("%s :: %s%s;" % (name, decl.class_name, config))
    for conn in ast.connections:
        lines.append(
            "%s[%d] -> [%d]%s;" % (conn.src, conn.src_port, conn.dst_port, conn.dst)
        )
    return "\n".join(lines)
