"""click-undead: remove elements that can never process a packet.

Part of Kohler et al.'s Click optimization toolkit (§2.1): a config-to-
config pass that deletes *dead* elements -- ones unreachable from any
packet source -- and the connections touching them.  PacketMill's static
graph benefits directly: dead elements would otherwise be embedded into
the specialized binary.

Reachability is forward from source elements (elements with no inputs
that can emit packets, i.e. anything but pure sinks).  Elements that are
declared but never wired, or wired only downstream of other dead
elements, are removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.click.config import parse_config
from repro.click.config.ast import ConfigAst

#: Classes that originate packets (graph entry points).
SOURCE_CLASSES = frozenset({"FromDPDKDevice"})


@dataclass
class UndeadReport:
    """Result of the dead-element elimination."""

    original: ConfigAst
    live: Set[str] = field(default_factory=set)
    removed: List[str] = field(default_factory=list)

    @property
    def n_removed(self) -> int:
        return len(self.removed)

    def config_text(self) -> str:
        """The cleaned configuration."""
        lines = []
        for name, decl in self.original.declarations.items():
            if name not in self.live:
                continue
            config = "(%s)" % decl.config if decl.config else ""
            lines.append("%s :: %s%s;" % (name, decl.class_name, config))
        for conn in self.original.connections:
            if conn.src in self.live and conn.dst in self.live:
                lines.append(
                    "%s[%d] -> [%d]%s;"
                    % (conn.src, conn.src_port, conn.dst_port, conn.dst)
                )
        return "\n".join(lines)


def remove_dead_elements(config_text: str) -> UndeadReport:
    """Run click-undead over a configuration."""
    ast = parse_config(config_text)
    report = UndeadReport(original=ast)
    # Forward reachability from every source element.
    sources = [
        name
        for name, decl in ast.declarations.items()
        if decl.class_name in SOURCE_CLASSES
    ]
    frontier = list(sources)
    live: Set[str] = set()
    while frontier:
        name = frontier.pop()
        if name in live:
            continue
        live.add(name)
        for _, dst, _ in ast.outputs_of(name):
            if dst not in live:
                frontier.append(dst)
    report.live = live
    report.removed = sorted(set(ast.declarations) - live)
    return report
