"""The Click configuration language: lexer, parser, and AST."""

from repro.click.config.ast import ConfigAst, Connection, Declaration
from repro.click.config.lexer import ConfigError, Token, tokenize
from repro.click.config.parser import parse_config

__all__ = [
    "ConfigAst",
    "ConfigError",
    "Connection",
    "Declaration",
    "Token",
    "parse_config",
    "tokenize",
]
