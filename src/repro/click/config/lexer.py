"""Tokenizer for the Click configuration language subset we support.

Handles identifiers, ``::`` declarations, ``->`` connections, bracketed
port numbers, parenthesized (nestable) configuration strings, ``//`` and
``/* */`` comments, and ``;`` statement separators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


class ConfigError(ValueError):
    """Syntax or semantic error in a Click configuration."""

    def __init__(self, message: str, line: int = 0):
        super().__init__("line %d: %s" % (line, message) if line else message)
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str  # IDENT | DCOLON | ARROW | LBRACKET | RBRACKET | SEMI | CONFIG | NUMBER
    value: str
    line: int


_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_@")
_IDENT_CONT = _IDENT_START | set("0123456789/")


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
        elif ch in " \t\r":
            i += 1
        elif text.startswith("//", i):
            end = text.find("\n", i)
            i = n if end < 0 else end
        elif text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise ConfigError("unterminated block comment", line)
            line += text.count("\n", i, end)
            i = end + 2
        elif text.startswith("::", i):
            tokens.append(Token("DCOLON", "::", line))
            i += 2
        elif text.startswith("->", i):
            tokens.append(Token("ARROW", "->", line))
            i += 2
        elif ch == ";":
            tokens.append(Token("SEMI", ";", line))
            i += 1
        elif ch == "[":
            tokens.append(Token("LBRACKET", "[", line))
            i += 1
        elif ch == "]":
            tokens.append(Token("RBRACKET", "]", line))
            i += 1
        elif ch == "(":
            depth = 1
            j = i + 1
            while j < n and depth:
                if text[j] == "(":
                    depth += 1
                elif text[j] == ")":
                    depth -= 1
                elif text[j] == "\n":
                    line += 1
                j += 1
            if depth:
                raise ConfigError("unbalanced parentheses", line)
            tokens.append(Token("CONFIG", text[i + 1 : j - 1].strip(), line))
            i = j
        elif ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(Token("NUMBER", text[i:j], line))
            i = j
        elif ch in _IDENT_START:
            j = i
            while j < n and text[j] in _IDENT_CONT:
                j += 1
            tokens.append(Token("IDENT", text[i:j], line))
            i = j
        else:
            raise ConfigError("unexpected character %r" % ch, line)
    return tokens
