"""Parser for the Click configuration language subset.

Grammar (statements separated by ``;``):

    statement   := declaration | chain
    declaration := IDENT "::" IDENT [CONFIG]
    chain       := endpoint ("->" endpoint)+
    endpoint    := ["[" NUMBER "]"] element ["[" NUMBER "]"]
    element     := IDENT [CONFIG]          -- reference or inline declaration

Inline elements in chains (``FromDPDKDevice(0) -> EtherMirror -> ...``) are
given generated names, exactly like Click's anonymous elements.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.click.config.ast import ConfigAst, Connection, Declaration
from repro.click.config.lexer import ConfigError, Token, tokenize


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        self.ast = ConfigAst()
        self._anon_counter = 0

    def _peek(self, offset: int = 0) -> Optional[Token]:
        index = self.pos + offset
        return self.tokens[index] if index < len(self.tokens) else None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise ConfigError("unexpected end of configuration")
        self.pos += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._next()
        if token.kind != kind:
            raise ConfigError("expected %s, got %r" % (kind, token.value), token.line)
        return token

    def parse(self) -> ConfigAst:
        while self._peek() is not None:
            if self._peek().kind == "SEMI":
                self._next()
                continue
            self._statement()
        return self.ast

    def _statement(self) -> None:
        # Declaration: IDENT :: IDENT [CONFIG]
        if (
            self._peek().kind == "IDENT"
            and self._peek(1) is not None
            and self._peek(1).kind == "DCOLON"
        ):
            name_tok = self._next()
            self._next()  # ::
            class_tok = self._expect("IDENT")
            config = ""
            if self._peek() is not None and self._peek().kind == "CONFIG":
                config = self._next().value
            self._declare(name_tok.value, class_tok.value, config, name_tok.line)
            # A declaration may be the head of a chain: x :: C -> y
            if self._peek() is not None and self._peek().kind == "ARROW":
                self._chain_from(name_tok.value, 0, name_tok.line)
            return
        self._chain()

    def _declare(self, name: str, class_name: str, config: str, line: int) -> None:
        if name in self.ast.declarations:
            raise ConfigError("element %r declared twice" % name, line)
        self.ast.declarations[name] = Declaration(name, class_name, config, line)

    def _endpoint(self) -> Tuple[str, int, int, int]:
        """Parse one endpoint; returns (name, in_port, out_port, line)."""
        in_port = 0
        token = self._peek()
        if token is None:
            raise ConfigError("expected element")
        line = token.line
        if token.kind == "LBRACKET":
            self._next()
            in_port = int(self._expect("NUMBER").value)
            self._expect("RBRACKET")
        name_tok = self._expect("IDENT")
        name = name_tok.value
        if self._peek() is not None and self._peek().kind == "DCOLON":
            # In-chain declaration: "... -> name :: Class(CONFIG) -> ...".
            self._next()
            class_tok = self._expect("IDENT")
            config = ""
            if self._peek() is not None and self._peek().kind == "CONFIG":
                config = self._next().value
            self._declare(name, class_tok.value, config, name_tok.line)
        elif self._peek() is not None and self._peek().kind == "CONFIG":
            config = self._next().value
            # Inline element: IDENT(CONFIG) declares an anonymous instance
            # unless the identifier is already a declared element name.
            if name in self.ast.declarations:
                raise ConfigError(
                    "element %r already declared; cannot re-configure inline" % name,
                    name_tok.line,
                )
            anon = "%s@%d" % (name, self._anon_counter)
            self._anon_counter += 1
            self._declare(anon, name, config, name_tok.line)
            name = anon
        elif name not in self.ast.declarations:
            # Bare class name used inline (e.g. "-> EtherMirror ->").
            if name[0].isupper():
                anon = "%s@%d" % (name, self._anon_counter)
                self._anon_counter += 1
                self._declare(anon, name, "", name_tok.line)
                name = anon
            else:
                raise ConfigError("undeclared element %r" % name, name_tok.line)
        out_port = 0
        if self._peek() is not None and self._peek().kind == "LBRACKET":
            self._next()
            out_port = int(self._expect("NUMBER").value)
            self._expect("RBRACKET")
        return name, in_port, out_port, line

    def _chain(self) -> None:
        name, _, out_port, line = self._endpoint()
        self._chain_from(name, out_port, line)

    def _chain_from(self, src: str, src_port: int, line: int) -> None:
        token = self._peek()
        if token is None or token.kind != "ARROW":
            raise ConfigError("expected '->' after %r" % src, line)
        while self._peek() is not None and self._peek().kind == "ARROW":
            self._next()
            dst, dst_in, dst_out, dst_line = self._endpoint()
            self.ast.connections.append(
                Connection(src=src, dst=dst, src_port=src_port, dst_port=dst_in,
                           line=dst_line)
            )
            src, src_port = dst, dst_out


def parse_config(text: str) -> ConfigAst:
    """Parse a Click configuration into an AST."""
    ast = _Parser(tokenize(text)).parse()
    _validate(ast)
    return ast


def _validate(ast: ConfigAst) -> None:
    for conn in ast.connections:
        for name in (conn.src, conn.dst):
            if name not in ast.declarations:
                raise ConfigError("connection references undeclared element %r" % name,
                                  conn.line)
    # No two connections may leave the same output port (push fan-out
    # requires an explicit Tee in Click).
    seen = set()
    for conn in ast.connections:
        key = (conn.src, conn.src_port)
        if key in seen:
            raise ConfigError(
                "output port %d of %r connected twice" % (conn.src_port, conn.src),
                conn.line,
            )
        seen.add(key)
