"""AST for parsed Click configurations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class Declaration:
    """``name :: ClassName(config)``."""

    name: str
    class_name: str
    config: str = ""
    line: int = 0

    def config_args(self) -> List[str]:
        """Split the configuration string on top-level commas."""
        if not self.config.strip():
            return []
        args = []
        depth = 0
        current = []
        for ch in self.config:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            if ch == "," and depth == 0:
                args.append("".join(current).strip())
                current = []
            else:
                current.append(ch)
        args.append("".join(current).strip())
        return args

    def keyword_args(self) -> Dict[str, str]:
        """Interpret ``KEY value`` arguments (Click keyword style)."""
        out = {}
        for arg in self.config_args():
            parts = arg.split(None, 1)
            if len(parts) == 2 and parts[0].isupper():
                out[parts[0]] = parts[1]
        return out

    def positional_args(self) -> List[str]:
        """Arguments that are not ``KEY value`` pairs."""
        out = []
        for arg in self.config_args():
            parts = arg.split(None, 1)
            if not (len(parts) == 2 and parts[0].isupper()):
                out.append(arg)
        return out


@dataclass(frozen=True)
class Connection:
    """``from [from_port] -> [to_port] to``."""

    src: str
    dst: str
    src_port: int = 0
    dst_port: int = 0
    line: int = 0


@dataclass
class ConfigAst:
    """A whole parsed configuration."""

    declarations: Dict[str, Declaration] = field(default_factory=dict)
    connections: List[Connection] = field(default_factory=list)

    def declaration(self, name: str) -> Declaration:
        return self.declarations[name]

    def outputs_of(self, name: str) -> List[Tuple[int, str, int]]:
        """(src_port, dst, dst_port) triples leaving ``name``."""
        return [
            (c.src_port, c.dst, c.dst_port)
            for c in self.connections
            if c.src == name
        ]

    def inputs_of(self, name: str) -> List[Tuple[str, int, int]]:
        """(src, src_port, dst_port) triples entering ``name``."""
        return [
            (c.src, c.src_port, c.dst_port)
            for c in self.connections
            if c.dst == name
        ]
