"""ControlSocket: Click's text control protocol over the handler broker.

Real Click deployments expose a TCP "ControlSocket" speaking a simple
line protocol (READ/WRITE/LLRPC...).  This implements the protocol's
core verbs against a built graph, transport-agnostically: feed it
command lines, get response strings with the standard status codes.

Protocol (subset, matching Click's):

    READ element.handler      -> 200 + DATA <n> + payload
    WRITE element.handler v   -> 200 Write handler ... OK
    CHECKREAD / CHECKWRITE    -> 200 if allowed, 501 otherwise
    LIST                      -> element count + names
    HANDLERS element          -> handler list
    QUIT                      -> connection close

Status codes: 200 OK, 500 syntax error, 501 no such handler/element.
"""

from __future__ import annotations

from typing import List, Optional

from repro.click.graph import ProcessingGraph
from repro.click.handlers import HandlerBroker, HandlerError

PROTOCOL_BANNER = "Click::ControlSocket/1.3"


class ControlSocketSession:
    """One protocol session (the transport is whoever calls ``handle``)."""

    def __init__(self, graph: ProcessingGraph):
        self.graph = graph
        self.broker = HandlerBroker(graph)
        self.closed = False

    def banner(self) -> str:
        return PROTOCOL_BANNER

    # -- protocol ---------------------------------------------------------------

    def handle(self, line: str) -> str:
        """Process one command line; returns the full response text."""
        if self.closed:
            return "500 connection closed"
        parts = line.strip().split(None, 1)
        if not parts:
            return "500 empty command"
        verb = parts[0].upper()
        rest = parts[1] if len(parts) > 1 else ""
        handler = getattr(self, "_cmd_%s" % verb.lower(), None)
        if handler is None:
            return "500 unknown command %r" % verb
        return handler(rest)

    def handle_script(self, lines: List[str]) -> List[str]:
        return [self.handle(line) for line in lines]

    # -- verbs -------------------------------------------------------------------

    def _cmd_read(self, arg: str) -> str:
        if not arg:
            return "500 READ needs element.handler"
        try:
            data = self.broker.read(arg)
        except HandlerError as exc:
            return "501 %s" % exc.args[0]
        return "200 Read handler '%s' OK\nDATA %d\n%s" % (arg, len(data), data)

    def _cmd_write(self, arg: str) -> str:
        if not arg:
            return "500 WRITE needs element.handler [value]"
        parts = arg.split(None, 1)
        path = parts[0]
        value = parts[1] if len(parts) > 1 else ""
        try:
            self.broker.write(path, value)
        except HandlerError as exc:
            return "501 %s" % exc.args[0]
        return "200 Write handler '%s' OK" % path

    def _cmd_checkread(self, arg: str) -> str:
        try:
            self.broker.read(arg)
            return "200 Read handler '%s' OK" % arg
        except HandlerError as exc:
            return "501 %s" % exc.args[0]

    def _cmd_checkwrite(self, arg: str) -> str:
        element_handler = arg.strip()
        try:
            element, handler = self.broker._split(element_handler)
        except HandlerError as exc:
            return "501 %s" % exc.args[0]
        if not handler.writable:
            return "501 handler '%s' not writable" % element_handler
        return "200 Write handler '%s' OK" % element_handler

    def _cmd_list(self, arg: str) -> str:
        names = sorted(self.graph.elements)
        return "200 Element list\nDATA %d\n%s" % (len(names), "\n".join(names))

    def _cmd_handlers(self, arg: str) -> str:
        if not arg:
            return "500 HANDLERS needs an element name"
        try:
            handlers = self.broker.list_handlers(arg.strip())
        except KeyError:
            return "501 no element named %r" % arg.strip()
        return "200 Handler list\nDATA %d\n%s" % (len(handlers), "\n".join(handlers))

    def _cmd_quit(self, arg: str) -> str:
        self.closed = True
        return "200 Goodbye!"


def parse_read_response(response: str) -> Optional[str]:
    """Extract the payload of a successful READ response, else None."""
    lines = response.splitlines()
    if not lines or not lines[0].startswith("200"):
        return None
    if len(lines) < 2 or not lines[1].startswith("DATA "):
        return None
    return "\n".join(lines[2:])
