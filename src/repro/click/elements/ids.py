"""IDS elements: structural validation of transport headers.

The paper's IDS configuration "checks the correctness of TCP, UDP, and
ICMP headers, except for the checksum that can be verified in hardware"
(Appendix A.3).
"""

from __future__ import annotations

from repro.click.element import Element, register
from repro.compiler.ir import BranchHint, Compute, DataAccess, Program
from repro.net.protocols import IP_PROTO_ICMP, IP_PROTO_TCP, IP_PROTO_UDP


class _CheckHeaderBase(Element):
    """Shared machinery: validate, count, drop to port 1 when bad."""

    n_outputs = 2  # 1 = invalid (usually unconnected -> drop)
    proto = None

    def configure(self, args, kwargs):
        self.checked = 0
        self.bad = 0

    def _valid(self, pkt) -> bool:
        raise NotImplementedError

    def process(self, pkt):
        self.checked += 1
        if pkt.ip().proto != self.proto:
            return 0  # not ours; pass through untouched
        if not self._valid(pkt):
            self.bad += 1
            return 1
        return 0

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [
                DataAccess(23, 1),   # protocol
                DataAccess(34, 13),  # transport header fields
                Compute(74, note="header-structure-check"),
                BranchHint(0.02, note="bad-header"),
            ],
        )


@register
class CheckTCPHeader(_CheckHeaderBase):
    """Validate TCP data offset and header bounds."""

    class_name = "CheckTCPHeader"
    proto = IP_PROTO_TCP

    def _valid(self, pkt) -> bool:
        available = pkt.transport_available()
        if available < 20:
            return False
        return pkt.tcp().verify_structure(available)


@register
class CheckUDPHeader(_CheckHeaderBase):
    """Validate the UDP length field against the remaining bytes."""

    class_name = "CheckUDPHeader"
    proto = IP_PROTO_UDP

    def _valid(self, pkt) -> bool:
        available = pkt.transport_available()
        if available < 8:
            return False
        return pkt.udp().verify_structure(available)


@register
class CheckICMPHeader(_CheckHeaderBase):
    """Validate the ICMP type and header bounds."""

    class_name = "CheckICMPHeader"
    proto = IP_PROTO_ICMP

    def _valid(self, pkt) -> bool:
        available = pkt.transport_available()
        if available < 8:
            return False
        return pkt.icmp().verify_structure(available)
