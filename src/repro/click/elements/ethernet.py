"""Ethernet-layer elements."""

from __future__ import annotations

from repro.click.element import Element, ElementConfigError, register
from repro.compiler.ir import Compute, DataAccess, Program
from repro.compiler.passes.transforms import FOLDABLE_NOTE
from repro.net.addresses import MacAddress
from repro.net.protocols import ETHERTYPE_IP
from repro.net.protocols.ether import EtherHeader


@register
class EtherMirror(Element):
    """Swap source and destination MAC addresses (the simple forwarder)."""

    class_name = "EtherMirror"

    def process(self, pkt):
        pkt.ether().swap_addresses()
        return 0

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [DataAccess(0, 12, write=True), Compute(10, note="mac-swap")],
        )


@register
class EtherRewrite(Element):
    """Overwrite both MAC addresses with configured constants."""

    class_name = "EtherRewrite"

    def configure(self, args, kwargs):
        src = kwargs.get("SRC", args[0] if len(args) > 0 else None)
        dst = kwargs.get("DST", args[1] if len(args) > 1 else None)
        if src is None or dst is None:
            raise ElementConfigError("EtherRewrite needs SRC and DST MACs")
        self.declare_param("src", MacAddress(src), size=8)
        self.declare_param("dst", MacAddress(dst), size=8)

    def process(self, pkt):
        ether = pkt.ether()
        ether.src = self.param("src")
        ether.dst = self.param("dst")
        return 0

    def const_writes(self):
        """Both MAC fields leave as configured constants (dst at bytes
        0-5, src at 6-11 -- wire order)."""
        dst = int(self.param("dst")).to_bytes(6, "big")
        src = int(self.param("src")).to_bytes(6, "big")
        data = {i: b for i, b in enumerate(dst)}
        data.update({6 + i: b for i, b in enumerate(src)})
        return {"data": data}

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [
                self.param_read_op("src"),
                self.param_read_op("dst"),
                DataAccess(0, 12, write=True),
                Compute(8, note=FOLDABLE_NOTE),
            ],
        )


@register
class EtherEncap(Element):
    """Prepend a fresh Ethernet header (constant type/src/dst)."""

    class_name = "EtherEncap"

    def configure(self, args, kwargs):
        if len(args) < 3:
            raise ElementConfigError("EtherEncap needs ETHERTYPE, SRC, DST")
        ethertype = int(args[0], 16)  # Click writes ethertypes in hex
        self.declare_param("ethertype", ethertype or ETHERTYPE_IP, size=2)
        self.declare_param("src", MacAddress(args[1]), size=8)
        self.declare_param("dst", MacAddress(args[2]), size=8)

    def process(self, pkt):
        pkt.push(EtherHeader.LENGTH)
        header = EtherHeader(pkt.buffer, pkt.headroom)
        header.dst = self.param("dst")
        header.src = self.param("src")
        header.ethertype = self.param("ethertype")
        if pkt.mac_header_offset is None:
            pkt.mac_header_offset = 0
        return 0

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [
                self.param_read_op("ethertype"),
                self.param_read_op("src"),
                self.param_read_op("dst"),
                DataAccess(0, 14, write=True),
                Compute(12, note=FOLDABLE_NOTE),
            ],
        )
