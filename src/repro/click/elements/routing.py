"""IPv4 longest-prefix-match routing via an 8-bit-stride radix trie.

This is the router configuration's lookup element.  The trie is a real
data structure (inserted from the configured routes, queried per packet);
its memory footprint feeds the cost model so bigger tables genuinely cost
more cache.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.click.element import Element, ElementConfigError, register
from repro.compiler.ir import (
    BranchHint,
    Compute,
    DataAccess,
    FieldAccess,
    Program,
    RandomAccess,
)
from repro.net.addresses import IPv4Address

STRIDE = 8
FANOUT = 1 << STRIDE


class _TrieNode:
    __slots__ = ("children", "value", "value_len")

    def __init__(self):
        self.children: List[Optional[_TrieNode]] = [None] * FANOUT
        self.value: Optional[Tuple[Optional[IPv4Address], int]] = None
        self.value_len = -1


class RadixTrie:
    """8-bit-stride LPM trie mapping prefixes to (gateway, port)."""

    NODE_BYTES = FANOUT * 8 + 16  # child pointer array + leaf payload

    def __init__(self):
        self.root = _TrieNode()
        self.n_nodes = 1
        self.n_routes = 0

    def insert(self, prefix: IPv4Address, prefix_len: int,
               gateway: Optional[IPv4Address], port: int) -> None:
        if not 0 <= prefix_len <= 32:
            raise ValueError("bad prefix length %d" % prefix_len)
        node = self.root
        depth = 0
        remaining = prefix_len
        value = (gateway, port)
        addr = prefix.value
        while remaining > STRIDE:
            byte = (addr >> (24 - depth * 8)) & 0xFF
            if node.children[byte] is None:
                node.children[byte] = _TrieNode()
                self.n_nodes += 1
            node = node.children[byte]
            depth += 1
            remaining -= STRIDE
        # Prefix expansion within the final stride.
        byte = (addr >> (24 - depth * 8)) & 0xFF if remaining else 0
        span = 1 << (STRIDE - remaining)
        base = byte & ~(span - 1) if remaining else 0
        for i in range(base, base + span if remaining else FANOUT):
            child = node.children[i]
            if child is None:
                child = _TrieNode()
                node.children[i] = child
                self.n_nodes += 1
            if prefix_len >= child.value_len:
                child.value = value
                child.value_len = prefix_len
        if prefix_len == 0:
            if prefix_len >= node.value_len:
                node.value = value
                node.value_len = prefix_len
        self.n_routes += 1

    def lookup(self, addr: IPv4Address) -> Optional[Tuple[Optional[IPv4Address], int]]:
        """Longest-prefix match; returns (gateway, port) or None."""
        node = self.root
        best = self.root.value
        value = addr.value
        for depth in range(4):
            byte = (value >> (24 - depth * 8)) & 0xFF
            node = node.children[byte]
            if node is None:
                break
            if node.value is not None:
                best = node.value
        return best

    def footprint_bytes(self) -> int:
        return self.n_nodes * self.NODE_BYTES

    def expected_depth(self) -> int:
        """Typical lookup depth (levels actually populated)."""
        depth = 0
        node = self.root
        while depth < 4 and any(c is not None for c in node.children):
            node = next(c for c in node.children if c is not None)
            depth += 1
        return max(1, depth)


@register
class RadixIPLookup(Element):
    """LPM route lookup; route syntax: ``prefix/len [gateway] port``.

    The matched port selects the output; the gateway (or the destination
    itself for directly-connected routes) is stored in the packet's
    ``dst_ip_anno`` for the downstream ARP/encap stage -- exactly Click's
    annotation discipline (§2.2).
    """

    class_name = "RadixIPLookup"

    def configure(self, args, kwargs):
        if not args:
            raise ElementConfigError("RadixIPLookup needs at least one route")
        self.trie = RadixTrie()
        max_port = 0
        for arg in args:
            parts = arg.split()
            if len(parts) not in (2, 3):
                raise ElementConfigError("bad route %r" % arg)
            prefix_s, rest = parts[0], parts[1:]
            if "/" in prefix_s:
                base_s, len_s = prefix_s.split("/")
                prefix, prefix_len = IPv4Address(base_s), int(len_s)
            else:
                prefix, prefix_len = IPv4Address(prefix_s), 32
            gateway = IPv4Address(rest[0]) if len(rest) == 2 else None
            port = int(rest[-1])
            self.trie.insert(prefix, prefix_len, gateway, port)
            max_port = max(max_port, port)
        self.n_outputs = max_port + 1
        self.declare_param("n_routes", self.trie.n_routes, size=4)
        self.misses = 0

    def process(self, pkt):
        dst = pkt.ip().dst
        result = self.trie.lookup(dst)
        if result is None:
            self.misses += 1
            return None
        gateway, port = result
        next_hop = gateway if gateway is not None else dst
        pkt.set_anno_u32(4, next_hop.value)  # ANNO_DST_IP
        return port

    def ir_program(self) -> Program:
        depth = self.trie.expected_depth()
        return Program(
            self.name,
            [
                DataAccess(30, 4),  # destination IP
                RandomAccess(self.trie.footprint_bytes(), count=depth),
                Compute(8 + 6 * depth, note="trie-walk"),
                FieldAccess("Packet", "dst_ip_anno", write=True),
                BranchHint(0.03, note="route-dispatch"),
            ],
        )
