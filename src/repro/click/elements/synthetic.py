"""WorkPackage: the paper's synthetic memory/compute microbenchmark element.

``WorkPackage(S <MB>, N <accesses>, W <numbers>)`` performs, per packet,
``N`` uniformly random accesses into a static ``S``-MB array and generates
``W`` pseudo-random numbers (Appendix A.4).  ``S`` scales memory
intensiveness, ``W`` compute intensiveness, ``N`` the accesses-per-packet
multiplier of Figs. 7 and 9.
"""

from __future__ import annotations

from repro.click.element import Element, register
from repro.compiler.ir import Compute, Program, RandomAccess

MB = 1024 * 1024

#: Instructions one xorshift-style PRNG step costs.
PRNG_INSTRUCTIONS = 9


@register
class WorkPackage(Element):
    class_name = "WorkPackage"

    def configure(self, args, kwargs):
        self.declare_param("s_mb", float(kwargs.get("S", 1)), size=4)
        self.declare_param("n_accesses", int(kwargs.get("N", 1)), size=4)
        self.declare_param("w_numbers", int(kwargs.get("W", 1)), size=4)
        self._prng_state = 88172645463325252
        self.processed = 0

    @property
    def footprint_bytes(self) -> int:
        return int(self.param("s_mb") * MB)

    def _xorshift(self) -> int:
        x = self._prng_state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self._prng_state = x
        return x

    def process(self, pkt):
        # Functional side: really run the PRNG the element is defined by;
        # the memory accesses' cost is charged via the IR program.
        for _ in range(self.param("w_numbers")):
            self._xorshift()
        self.processed += 1
        return 0

    def ir_program(self) -> Program:
        ops = []
        footprint = self.footprint_bytes
        n = self.param("n_accesses")
        w = self.param("w_numbers")
        if footprint > 0 and n > 0:
            ops.append(RandomAccess(footprint, count=n))
        if w > 0:
            ops.append(Compute(w * PRNG_INSTRUCTIONS, note="prng"))
        ops.append(Compute(4, note="bookkeeping"))
        return Program(self.name, ops)
