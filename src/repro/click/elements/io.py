"""DPDK I/O elements: the bridge between the graph and the PMD.

Both elements expose the bound port's drop/error counters through the
handler broker (``input.rx_nombuf``, ``input.imissed``, ``output.tx_full``,
and the full ``xstats`` dump) -- see :mod:`repro.click.handlers` and
:mod:`repro.faults` for the degraded paths that feed them.
"""

from __future__ import annotations

from repro.click.element import Element, register
from repro.compiler.ir import BranchHint, Compute, Program
from repro.compiler.passes.transforms import FOLDABLE_NOTE


@register
class FromDPDKDevice(Element):
    """Receives bursts of packets from a DPDK port.

    ``PORT``, ``N_QUEUES``, and ``BURST`` are the constant parameters the
    paper's Listing 3 embeds; the driver binds the element to the port's
    PMD at build time.
    """

    class_name = "FromDPDKDevice"
    n_inputs = 0

    def configure(self, args, kwargs):
        port = int(kwargs.get("PORT", args[0] if args else 0))
        self.declare_param("port", port)
        self.declare_param("n_queues", int(kwargs.get("N_QUEUES", 1)))
        self.declare_param("burst", int(kwargs.get("BURST", 32)))
        self.pmd = None  # bound at build time

    def xstats(self):
        """Element telemetry plus the bound port's drop/error counters."""
        out = super().xstats()
        if self.pmd is not None:
            out.update(self.pmd.nic.counters.snapshot())
        return out

    def process(self, pkt):
        return 0

    def ir_program(self) -> Program:
        # App-side RX loop body: bounds checks and batch list linking; the
        # driver-side conversion is the PMD's program.
        return Program(
            self.name,
            [
                self.param_read_op("burst"),
                self.param_read_op("port"),
                Compute(26, note=FOLDABLE_NOTE),
                Compute(64, note="batch-assembly"),
                BranchHint(0.02, note="ring-empty-check"),
            ],
        )


@register
class ToDPDKDevice(Element):
    """Queues packets for transmission on a DPDK port."""

    class_name = "ToDPDKDevice"
    n_outputs = 0

    def configure(self, args, kwargs):
        port = int(kwargs.get("PORT", args[0] if args else 0))
        self.declare_param("port", port)
        self.declare_param("burst", int(kwargs.get("BURST", 32)))
        self.pmd = None  # bound at build time

    def xstats(self):
        """Element telemetry plus the bound port's drop/error counters."""
        out = super().xstats()
        if self.pmd is not None:
            out.update(self.pmd.nic.counters.snapshot())
        return out

    def process(self, pkt):
        return 0  # the driver intercepts packets entering this element

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [
                self.param_read_op("burst"),
                self.param_read_op("port"),
                Compute(20, note=FOLDABLE_NOTE),
                Compute(48, note="batch-teardown"),
                BranchHint(0.02, note="ring-full-check"),
            ],
        )
