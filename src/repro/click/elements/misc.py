"""Miscellaneous elements: Discard, Paint, ARPResponder."""

from __future__ import annotations

from repro.click.element import Element, ElementConfigError, register
from repro.compiler.ir import Compute, DataAccess, FieldAccess, Program
from repro.net.addresses import IPv4Address, MacAddress
from repro.net.packet import ANNO_PAINT
from repro.net.protocols.arp import ArpHeader
from repro.net.protocols.ether import EtherHeader


@register
class Discard(Element):
    """Swallow every packet."""

    class_name = "Discard"
    n_outputs = 0

    def configure(self, args, kwargs):
        self.discarded = 0

    def process(self, pkt):
        self.discarded += 1
        return None

    def ir_program(self) -> Program:
        return Program(self.name, [Compute(2, note="discard")])


@register
class Paint(Element):
    """Stamp the paint annotation with a configured color."""

    class_name = "Paint"

    def configure(self, args, kwargs):
        if not args:
            raise ElementConfigError("Paint needs a color")
        self.declare_param("color", int(args[0]), size=1)

    def process(self, pkt):
        pkt.set_anno_u8(ANNO_PAINT, self.param("color"))
        return 0

    def const_writes(self):
        """Every packet leaves with ``paint_anno`` pinned to the color --
        the constant a downstream PaintSwitch dispatches on."""
        return {"meta": {"paint_anno": int(self.param("color"))}}

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [
                self.param_read_op("color"),
                FieldAccess("Packet", "paint_anno", write=True),
                Compute(2, note="paint"),
            ],
        )


@register
class ARPResponder(Element):
    """Answer ARP requests for a configured IP with a configured MAC.

    Configuration: ``ARPResponder(10.0.0.1 02:00:00:00:00:02)``.
    """

    class_name = "ARPResponder"

    def configure(self, args, kwargs):
        if not args:
            raise ElementConfigError("ARPResponder needs 'IP MAC'")
        parts = args[0].split()
        if len(parts) != 2:
            raise ElementConfigError("ARPResponder entry must be 'IP MAC'")
        self.declare_param("ip", IPv4Address(parts[0]), size=4)
        self.declare_param("mac", MacAddress(parts[1]), size=8)
        self.replies = 0

    def process(self, pkt):
        arp = pkt.arp()
        if not arp.is_valid() or arp.op != ArpHeader.OP_REQUEST:
            return None
        if arp.target_ip != self.param("ip"):
            return None
        requester_mac = arp.sender_mac
        requester_ip = arp.sender_ip
        arp.op = ArpHeader.OP_REPLY
        arp.target_mac = requester_mac
        arp.target_ip = requester_ip
        arp.sender_mac = self.param("mac")
        arp.sender_ip = self.param("ip")
        ether = EtherHeader(pkt.buffer, pkt.headroom)
        ether.dst = requester_mac
        ether.src = self.param("mac")
        self.replies += 1
        return 0

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [
                self.param_read_op("ip"),
                self.param_read_op("mac"),
                DataAccess(14, 28, write=True),
                DataAccess(0, 12, write=True),
                Compute(24, note="arp-reply"),
            ],
        )
