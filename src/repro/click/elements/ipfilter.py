"""IPFilter: Click's packet-filter element with its expression language.

Each configuration argument is ``ACTION EXPR`` where ACTION is an output
port number, ``allow`` (port 0), or ``deny``/``drop`` (discard), and EXPR
is a boolean combination of primitives::

    IPFilter(allow tcp && dst port 80, deny src net 10.0.0.0/8, allow all)

Supported primitives: ``ip``/``tcp``/``udp``/``icmp``, ``all``/``none``,
``[src|dst] host A.B.C.D``, ``[src|dst] net A.B.C.D/len``,
``[src|dst] port N``; operators ``&&``/``and``, ``||``/``or``, ``!``/
``not``, and parentheses.  The first matching rule decides; a packet
matching no rule is dropped (Click's semantics).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.click.element import Element, ElementConfigError, register
from repro.compiler.ir import BranchHint, Compute, DataAccess, Program
from repro.compiler.passes.transforms import FOLDABLE_NOTE
from repro.net.addresses import IPv4Address
from repro.net.protocols import IP_PROTO_ICMP, IP_PROTO_TCP, IP_PROTO_UDP

Predicate = Callable[[object], bool]

_PROTOS = {"tcp": IP_PROTO_TCP, "udp": IP_PROTO_UDP, "icmp": IP_PROTO_ICMP}


def _tokenize(expr: str) -> List[str]:
    out = []
    for raw in expr.replace("(", " ( ").replace(")", " ) ").split():
        if raw == "&&":
            out.append("and")
        elif raw == "||":
            out.append("or")
        elif raw == "!":
            out.append("not")
        else:
            out.append(raw)
    return out


class _ExprParser:
    """Recursive-descent parser producing a Predicate closure."""

    def __init__(self, tokens: List[str]):
        self.tokens = tokens
        self.pos = 0

    def _peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise ElementConfigError("unexpected end of filter expression")
        self.pos += 1
        return token

    def parse(self) -> Predicate:
        predicate = self._or()
        if self._peek() is not None:
            raise ElementConfigError("trailing tokens in filter: %r" % self._peek())
        return predicate

    def _or(self) -> Predicate:
        left = self._and()
        while self._peek() == "or":
            self._next()
            right = self._and()
            left = (lambda a, b: lambda pkt: a(pkt) or b(pkt))(left, right)
        return left

    def _and(self) -> Predicate:
        left = self._not()
        while self._peek() == "and":
            self._next()
            right = self._not()
            left = (lambda a, b: lambda pkt: a(pkt) and b(pkt))(left, right)
        return left

    def _not(self) -> Predicate:
        if self._peek() == "not":
            self._next()
            inner = self._not()
            return lambda pkt: not inner(pkt)
        return self._primitive()

    def _primitive(self) -> Predicate:
        token = self._next()
        if token == "(":
            inner = self._or()
            if self._next() != ")":
                raise ElementConfigError("missing ')' in filter expression")
            return inner
        if token == "all":
            return lambda pkt: True
        if token == "none":
            return lambda pkt: False
        if token == "ip":
            return lambda pkt: True  # IPFilter only sees IP packets
        if token in _PROTOS:
            proto = _PROTOS[token]
            return lambda pkt: pkt.ip().proto == proto
        if token in ("src", "dst"):
            direction = token
            kind = self._next()
            return self._directional(direction, kind)
        if token in ("host", "net", "port"):
            # Undirected: matches either direction.
            src = self._directional("src", token, consume=True)
            self._rewind_value(token)
            dst = self._directional("dst", token, consume=True)
            return lambda pkt: src(pkt) or dst(pkt)
        raise ElementConfigError("unknown filter primitive %r" % token)

    # -- directional primitives ------------------------------------------------

    _last_value_tokens: int = 0

    def _rewind_value(self, kind: str) -> None:
        self.pos -= self._last_value_tokens

    def _directional(self, direction: str, kind: str, consume: bool = True) -> Predicate:
        if kind == "host":
            addr = IPv4Address(self._next())
            self._last_value_tokens = 1
            if direction == "src":
                return lambda pkt: pkt.ip().src == addr
            return lambda pkt: pkt.ip().dst == addr
        if kind == "net":
            spec = self._next()
            self._last_value_tokens = 1
            try:
                base_s, len_s = spec.split("/")
                base, prefix_len = IPv4Address(base_s), int(len_s)
            except ValueError:
                raise ElementConfigError("bad net spec %r" % spec) from None
            if direction == "src":
                return lambda pkt: pkt.ip().src.in_prefix(base, prefix_len)
            return lambda pkt: pkt.ip().dst.in_prefix(base, prefix_len)
        if kind == "port":
            value = self._next()
            self._last_value_tokens = 1
            if not value.isdigit():
                raise ElementConfigError("bad port %r" % value)
            port = int(value)

            def match(pkt, direction=direction, port=port):
                proto = pkt.ip().proto
                if proto == IP_PROTO_TCP:
                    l4 = pkt.tcp()
                elif proto == IP_PROTO_UDP:
                    l4 = pkt.udp()
                else:
                    return False
                return (l4.src_port if direction == "src" else l4.dst_port) == port

            return match
        raise ElementConfigError("unknown qualifier %r after %r" % (kind, direction))


def parse_filter_expression(expr: str) -> Predicate:
    """Compile one filter expression into a predicate."""
    tokens = _tokenize(expr)
    if not tokens:
        raise ElementConfigError("empty filter expression")
    return _ExprParser(tokens).parse()


@register
class IPFilter(Element):
    """First-match packet filter over the expression language above."""

    class_name = "IPFilter"

    def configure(self, args, kwargs):
        if not args:
            raise ElementConfigError("IPFilter needs at least one rule")
        self.rules: List[Tuple[Optional[int], Predicate, str]] = []
        max_port = 0
        for arg in args:
            parts = arg.split(None, 1)
            if len(parts) != 2:
                raise ElementConfigError("rule needs 'ACTION EXPR': %r" % arg)
            action_s, expr = parts
            action: Optional[int]
            if action_s == "allow":
                action = 0
            elif action_s in ("deny", "drop"):
                action = None
            elif action_s.isdigit():
                action = int(action_s)
            else:
                raise ElementConfigError("unknown action %r" % action_s)
            if action is not None:
                max_port = max(max_port, action)
            self.rules.append((action, parse_filter_expression(expr), arg))
            self.declare_param("rule%d" % (len(self.rules) - 1), arg, size=8)
        self.n_outputs = max_port + 1
        self.matched = [0] * len(self.rules)
        self.unmatched = 0

    def process(self, pkt):
        for index, (action, predicate, _) in enumerate(self.rules):
            if predicate(pkt):
                self.matched[index] += 1
                return action
        self.unmatched += 1
        return None

    def ir_program(self) -> Program:
        # The compiled filter is a decision tree over header bytes; with
        # constant embedding it becomes straight-line compares (Click's
        # IPFilter actually JITs a classification program).
        ops = [
            DataAccess(23, 1),   # protocol
            DataAccess(26, 8),   # addresses
            DataAccess(34, 4),   # ports
        ]
        for i in range(len(self.rules)):
            ops.append(self.param_read_op("rule%d" % i))
        ops.append(Compute(7 * len(self.rules), note=FOLDABLE_NOTE))
        ops.append(BranchHint(0.07, note="rule-dispatch"))
        return Program(self.name, ops)
