"""Packet classifiers (byte-pattern and IP-protocol based)."""

from __future__ import annotations

from typing import List, Tuple

from repro.click.element import Element, ElementConfigError, register
from repro.compiler.ir import BranchHint, Compute, DataAccess, Program
from repro.compiler.passes.transforms import FOLDABLE_NOTE
from repro.net.protocols import IP_PROTO_ICMP, IP_PROTO_TCP, IP_PROTO_UDP


@register
class Classifier(Element):
    """Click's byte-pattern classifier.

    Each positional argument is one output's pattern: space-separated
    ``offset/hexbytes`` terms that must all match, or ``-`` for the
    catch-all.  Example (the standard router front-end)::

        Classifier(12/0800, 12/0806 20/0001, -)
    """

    class_name = "Classifier"

    #: process() only reads packet bytes -- eligible for the driver's
    #: packet-class fast path (route memoized by signature).
    pure_process = True

    def configure(self, args, kwargs):
        if not args:
            raise ElementConfigError("Classifier needs at least one pattern")
        self.patterns: List[List[Tuple[int, bytes]]] = []
        for arg in args:
            if arg == "-":
                self.patterns.append([])
                continue
            terms = []
            for term in arg.split():
                try:
                    offset_s, value_s = term.split("/")
                    terms.append((int(offset_s), bytes.fromhex(value_s)))
                except ValueError:
                    raise ElementConfigError("bad classifier term %r" % term) from None
            self.patterns.append(terms)
        self.n_outputs = len(self.patterns)
        # The byte span the patterns inspect: packets identical over it
        # are one class and classify identically.
        offsets = [o for terms in self.patterns for o, v in terms]
        ends = [o + len(v) for terms in self.patterns for o, v in terms]
        self._sig_lo = min(offsets) if offsets else 0
        self._sig_hi = max(ends) if ends else 0
        for i in range(self.n_outputs):
            self.declare_param("pattern%d" % i, args[i])

    def process(self, pkt):
        data = pkt.data()
        for port, terms in enumerate(self.patterns):
            matched = True
            for offset, value in terms:
                if bytes(data[offset : offset + len(value)]) != value:
                    matched = False
                    break
            if matched:
                return port
        return None

    def route_signature(self, pkt):
        """The inspected bytes; equal signatures classify identically."""
        return bytes(pkt.data()[self._sig_lo:self._sig_hi])

    def shadowed_outputs(self) -> List[Tuple[int, int]]:
        """(shadower, shadowed) pattern pairs where the earlier pattern
        matches every packet the later one matches, making the later
        output port unreachable.

        Pattern ``i`` shadows pattern ``j > i`` when every byte ``i``
        constrains, ``j`` constrains to the same value (so matching ``j``
        implies matching ``i`` first); the catch-all ``-`` constrains
        nothing and therefore shadows everything after it.
        """
        byte_maps: List[dict] = []
        for terms in self.patterns:
            bytes_of: dict = {}
            for offset, value in terms:
                for k, byte in enumerate(value):
                    bytes_of[offset + k] = byte
            byte_maps.append(bytes_of)
        shadowed = []
        for j in range(1, len(byte_maps)):
            for i in range(j):
                if byte_maps[i].items() <= byte_maps[j].items():
                    shadowed.append((i, j))
                    break
        return shadowed

    def dispatch_predicates(self):
        """Per-port match conditions for the constprop pass: the exact
        byte equalities of each pattern (``-`` is the catch-all)."""
        preds = []
        for terms in self.patterns:
            if not terms:
                preds.append(None)
                continue
            bytes_of = {}
            for offset, value in terms:
                for k, byte in enumerate(value):
                    bytes_of[offset + k] = byte
            preds.append({"data": bytes_of})
        return preds

    def ir_program(self) -> Program:
        # Constant embedding compiles the pattern table into immediate
        # compares (what click-fastclassifier does), removing the loads.
        return self._ir_for_ports(tuple(range(self.n_outputs)), full=True)

    def specialized_ir(self, live_ports) -> Program:
        """The classifier reduced to the ports constprop proved live:
        dead arms contribute no compare work, no pattern load, and -- when
        the dispatch collapses to one arm -- no branch at all."""
        return self._ir_for_ports(tuple(live_ports), full=False)

    def _ir_for_ports(self, ports, full: bool) -> Program:
        # The data read keeps the *original* width (specialization may
        # only drop ops, never resize them -- ProgramFacts deltas must be
        # subsequences); it disappears entirely only when every live
        # pattern is the catch-all, i.e. nothing is compared any more.
        ops = []
        width = 0
        for terms in self.patterns:
            for offset, value in terms:
                width = max(width, offset + len(value))
        if full or any(self.patterns[port] for port in ports):
            ops.append(DataAccess(12, max(2, width - 12) if width > 12 else 2))
        for port in ports:
            ops.append(self.param_read_op("pattern%d" % port))
        if ports:
            ops.append(Compute(5 * len(ports), note=FOLDABLE_NOTE))
        if full or len(ports) > 1:
            ops.append(BranchHint(0.08, note="pattern-dispatch"))
        return Program(self.name, ops)


@register
class IPClassifier(Element):
    """Protocol-based classifier: patterns among tcp | udp | icmp | ip | -."""

    class_name = "IPClassifier"

    #: Reads only the IPv4 protocol byte; fast-path eligible.
    pure_process = True

    _PROTOS = {"tcp": IP_PROTO_TCP, "udp": IP_PROTO_UDP, "icmp": IP_PROTO_ICMP}

    def configure(self, args, kwargs):
        if not args:
            raise ElementConfigError("IPClassifier needs at least one pattern")
        self.rules = []
        for arg in args:
            pattern = arg.strip().lower()
            if pattern == "-" or pattern == "ip":
                self.rules.append(None)
            elif pattern in self._PROTOS:
                self.rules.append(self._PROTOS[pattern])
            else:
                raise ElementConfigError("unsupported IPClassifier pattern %r" % arg)
        self.n_outputs = len(self.rules)
        for i, arg in enumerate(args):
            self.declare_param("rule%d" % i, arg, size=4)

    def process(self, pkt):
        proto = pkt.ip().proto
        for port, rule in enumerate(self.rules):
            if rule is None or proto == rule:
                return port
        return None

    def route_signature(self, pkt):
        """The protocol byte fully determines the routing decision."""
        return pkt.ip().proto

    def shadowed_outputs(self) -> List[Tuple[int, int]]:
        """(shadower, shadowed) rule pairs: a catch-all (``-``/``ip``)
        shadows every later rule, and a repeated protocol shadows its
        duplicates."""
        shadowed = []
        for j in range(1, len(self.rules)):
            for i in range(j):
                if self.rules[i] is None or self.rules[i] == self.rules[j]:
                    shadowed.append((i, j))
                    break
        return shadowed

    def dispatch_predicates(self):
        """Per-port conditions: equality on the IPv4 protocol byte, or the
        catch-all for ``-``/``ip`` rules."""
        return [
            None if rule is None else {"data": {23: rule}}
            for rule in self.rules
        ]

    def ir_program(self) -> Program:
        return self._ir_for_ports(tuple(range(self.n_outputs)), full=True)

    def specialized_ir(self, live_ports) -> Program:
        """The dispatch reduced to the live ports (see Classifier)."""
        return self._ir_for_ports(tuple(live_ports), full=False)

    def _ir_for_ports(self, ports, full: bool) -> Program:
        ops = []
        if full or any(self.rules[port] is not None for port in ports):
            ops.append(DataAccess(23, 1))  # the IPv4 protocol byte
        for port in ports:
            ops.append(self.param_read_op("rule%d" % port))
        if ports:
            ops.append(Compute(6 * len(ports), note=FOLDABLE_NOTE))
        if full or len(ports) > 1:
            ops.append(BranchHint(0.06, note="proto-dispatch"))
        return Program(self.name, ops)
