"""QoS elements: PFC pause generation, rated queues, priority routing.

The graph-side half of :mod:`repro.qos`:

- :class:`PFCPause` is the pause element of 802.1Qbb: a control element
  (no packet ports) bound at build time to its port's
  :class:`~repro.qos.port.QosPort`.  Once per driver iteration it polls
  pool occupancy and asserts/deasserts per-priority pause, which the NIC
  reports to the trace source -- backpressure instead of silent drops.
  Its presence in a config is what "PFC on" means; the same config
  without it is the lossy baseline.
- :class:`RatedQueue` is a Queue with a bounded per-iteration service
  rate.  The plain Queue fully drains every iteration, so occupancy can
  never build; a rated queue is the congestion point that makes
  oversubscription and incast observable.
- :class:`PrioritySwitch` routes by 802.1p priority (the PCP bits of the
  VLAN TCI) and :class:`LengthSwitch` by frame length; both are pure
  routing elements under the machine-checked ``pure_process`` contract.
"""

from __future__ import annotations

from repro.click.element import Element, register
from repro.click.elements.flow import Queue
from repro.compiler.ir import BranchHint, Compute, FieldAccess, Program
from repro.qos.config import PCP_MASK, PCP_SHIFT


@register
class PFCPause(Element):
    """Watch a port's QoS pool occupancy; assert per-priority pause.

    ``PORT`` names the NIC port whose :class:`~repro.qos.port.QosPort`
    this element watches; ``PRIORITIES`` (optional, ``/``-separated)
    restricts pause generation to a subset of the port's lossless
    priorities (default: every priority with a buffer profile).  The
    build fails if the port has no QoS pool bound -- a pause element
    watching an unbound pool is exactly the misconfiguration the
    ``repro.analyze`` QoS lints flag statically.
    """

    class_name = "PFCPause"
    n_inputs = 0
    n_outputs = 0

    def configure(self, args, kwargs):
        port = int(kwargs.get("PORT", args[0] if args else 0))
        self.declare_param("port", port)
        raw = kwargs.get("PRIORITIES")
        self.priorities = (
            None if raw is None
            else tuple(int(p) for p in str(raw).split("/"))
        )
        self._pool = None

    def bind_pool(self, qos_port) -> None:
        """Build-time binding to the watched port's buffer accounting."""
        self._pool = qos_port
        qos_port.enable_pfc(self.priorities)

    def tick(self) -> None:
        """One occupancy poll (the driver calls this once per iteration)."""
        if self._pool is not None:
            self._pool.poll_pause()

    def xstats(self):
        out = super().xstats()
        if self._pool is not None:
            for prio in sorted(self._pool.pfc_priorities):
                out["prio%d_paused" % prio] = int(self._pool.is_paused(prio))
        return out

    def process(self, pkt):
        return None  # control element: never on the data path

    def ir_program(self) -> Program:
        # The pause watch runs per iteration, not per packet; the program
        # exists so the verifier/lowering treat the element uniformly.
        return Program(
            self.name,
            [
                self.param_read_op("port"),
                Compute(4, note="pfc-watch"),
            ],
        )


@register
class RatedQueue(Queue):
    """A Queue whose drain is limited to ``RATE`` packets per iteration.

    The service-capacity model for congestion scenarios: arrivals beyond
    the rate accumulate as occupancy, which is what the PFC thresholds
    and the shared-pool spill react to.  The budget is reset by the
    driver through :meth:`begin_drain` once per iteration, so the
    drain loop's fixed-point rounds cannot exceed it.
    """

    class_name = "RatedQueue"

    def configure(self, args, kwargs):
        super().configure(args, kwargs)
        rate = int(kwargs.get("RATE", args[1] if len(args) > 1 else 16))
        if rate < 1:
            raise ValueError("rated queue needs a positive rate")
        self.declare_param("rate", rate, size=4)
        self._budget = rate

    def begin_drain(self) -> None:
        """Reset this iteration's service budget (driver hook)."""
        self._budget = self.param("rate")

    def drain(self, max_packets: int):
        allowed = min(max_packets, self._budget)
        out = super().drain(allowed)
        self._budget -= len(out)
        return out


@register
class PrioritySwitch(Element):
    """Route packets by 802.1p priority (PCP bits of the VLAN TCI).

    One output per priority; packets whose priority has no output are
    dropped (counted at this element), mirroring PaintSwitch.  Pure
    routing: the route is a function of the VLAN annotation alone.
    """

    class_name = "PrioritySwitch"
    pure_process = True

    def configure(self, args, kwargs):
        self.n_outputs = int(kwargs.get("N", args[0] if args else 2))

    def process(self, pkt):
        prio = (pkt.vlan_tci >> PCP_SHIFT) & PCP_MASK
        if prio >= self.n_outputs:
            return None
        return prio

    def route_signature(self, pkt):
        """The PCP bits fully determine the route."""
        return (pkt.vlan_tci >> PCP_SHIFT) & PCP_MASK

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [
                FieldAccess("Packet", "vlan_anno"),
                Compute(4, note="pcp-extract"),
                BranchHint(0.10, note="priority-dispatch"),
            ],
        )


@register
class LengthSwitch(Element):
    """Split short frames (output 0) from long ones (output 1).

    ``THRESHOLD`` is the largest length routed to output 0.  Pure
    routing by the length metadata field -- the elephant/mouse split of
    QoS pipelines.
    """

    class_name = "LengthSwitch"
    pure_process = True
    n_outputs = 2

    def configure(self, args, kwargs):
        threshold = int(kwargs.get("THRESHOLD", args[0] if args else 128))
        if threshold < 1:
            raise ValueError("length threshold must be positive")
        self.declare_param("threshold", threshold, size=4)
        self._threshold = threshold

    def process(self, pkt):
        return 0 if pkt.length <= self._threshold else 1

    def route_signature(self, pkt):
        """Which side of the threshold the frame falls on."""
        return pkt.length <= self._threshold

    def dispatch_predicates(self):
        """Interval conditions on the ``length`` field: a proven upstream
        range (an MTU clamp, a minimum frame size) can decide the split."""
        return [
            {"range": {"length": (0, self._threshold)}},
            {"range": {"length": (self._threshold + 1, 1 << 30)}},
        ]

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [
                self.param_read_op("threshold"),
                FieldAccess("Packet", "length"),
                Compute(3, note="compare"),
                BranchHint(0.5, note="length-split"),
            ],
        )

    def specialized_ir(self, live_ports) -> Program:
        if len(live_ports) == 1:
            return Program(self.name, [Compute(1, note="constant-route")])
        return self.ir_program()
