"""Flow-control and utility elements: Queue, PaintSwitch, Print, SetIPChecksum.

``Queue`` matters beyond completeness: buffering packets is exactly the
capability the paper says TinyNF's driver model forecloses ("it prevents
buffering of packets, such as switching packets between cores, reordering
packets, and stream processing") and X-Change preserves.  A configuration
containing a Queue therefore builds with every metadata model *except*
TinyNF (see :mod:`repro.dpdk.tinynf`).
"""

from __future__ import annotations

from collections import deque

from repro.click.element import Element, register
from repro.compiler.ir import BranchHint, Compute, FieldAccess, Program, StateAccess
from repro.net.packet import ANNO_PAINT


@register
class Queue(Element):
    """A bounded FIFO that decouples its input from its output.

    Packets are absorbed on push and drained by the driver at the end of
    each main-loop iteration (FastClick's full-push Queue).  Overflow is
    drop-tail.
    """

    class_name = "Queue"
    #: Marks elements that hold packets across iterations (TinyNF cannot).
    buffers_packets = True

    def configure(self, args, kwargs):
        capacity = int(kwargs.get("CAPACITY", args[0] if args else 1024))
        if capacity < 1:
            raise ValueError("queue capacity must be positive")
        self.declare_param("capacity", capacity, size=4)
        self._fifo = deque()
        self.enqueued = 0
        self.overflows = 0

    def process(self, pkt):
        if len(self._fifo) >= self.param("capacity"):
            self.overflows += 1
            return None  # drop-tail: the driver kills the packet
        self._fifo.append(pkt)
        self.enqueued += 1
        return -1  # sentinel: held, not forwarded (driver understands)

    def drain(self, max_packets: int):
        """Pop up to ``max_packets`` in FIFO order."""
        out = []
        while self._fifo and len(out) < max_packets:
            out.append(self._fifo.popleft())
        return out

    @property
    def occupancy(self) -> int:
        return len(self._fifo)

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [
                self.param_read_op("capacity"),
                StateAccess(0, 16, write=True),   # head/tail indices
                FieldAccess("Packet", "next", write=True),  # FIFO linkage
                Compute(8, note="enqueue"),
                BranchHint(0.02, note="queue-full"),
            ],
        )


@register
class PaintSwitch(Element):
    """Route packets by their paint annotation (one output per color).

    Pure routing: ``process`` only reads the paint byte, so the driver's
    packet-class fast path may memoize the route by that byte (the
    machine-checked ``pure_process`` contract).
    """

    class_name = "PaintSwitch"
    pure_process = True

    def configure(self, args, kwargs):
        self.n_outputs = int(kwargs.get("N", args[0] if args else 2))

    def process(self, pkt):
        color = pkt.anno_u8(ANNO_PAINT)
        if color >= self.n_outputs:
            return None
        return color

    def route_signature(self, pkt):
        """The paint byte fully determines the route."""
        return pkt.anno_u8(ANNO_PAINT)

    def dispatch_predicates(self):
        """Port ``i`` fires exactly when ``paint_anno == i`` -- so an
        upstream ``Paint(c)`` decides the whole dispatch statically."""
        return [{"meta": {"paint_anno": i}} for i in range(self.n_outputs)]

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [
                FieldAccess("Packet", "paint_anno"),
                Compute(4, note="switch"),
                BranchHint(0.10, note="color-dispatch"),
            ],
        )

    def specialized_ir(self, live_ports) -> Program:
        if len(live_ports) == 1:
            # The route is a build-time constant: no anno load, no branch.
            return Program(self.name, [Compute(1, note="constant-route")])
        return self.ir_program()


@register
class Print(Element):
    """Log a label and basic packet facts (a debug tap)."""

    class_name = "Print"

    def configure(self, args, kwargs):
        self.label = args[0] if args else "Print"
        self.max_prints = int(kwargs.get("MAXPRINTS", 0))  # 0 = unlimited log
        self.lines = []

    def process(self, pkt):
        if not self.max_prints or len(self.lines) < self.max_prints:
            self.lines.append("%s: %d bytes, port %d" % (self.label, len(pkt), pkt.port))
        return 0

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [FieldAccess("Packet", "length"), Compute(20, note="format-log")],
        )


@register
class SetIPChecksum(Element):
    """Recompute the IPv4 header checksum from scratch."""

    class_name = "SetIPChecksum"

    def configure(self, args, kwargs):
        self.fixed = 0

    def process(self, pkt):
        pkt.ip().recompute_checksum()
        self.fixed += 1
        return 0

    def ir_program(self) -> Program:
        from repro.compiler.ir import DataAccess

        return Program(
            self.name,
            [
                DataAccess(14, 20),
                DataAccess(24, 2, write=True),
                Compute(32, note="full-checksum"),
            ],
        )
