"""Counting elements."""

from __future__ import annotations

from repro.click.element import Element, register
from repro.compiler.ir import Compute, Program, StateAccess


@register
class Counter(Element):
    """Count packets and bytes passing through."""

    class_name = "Counter"

    def configure(self, args, kwargs):
        self.packets = 0
        self.bytes = 0

    def process(self, pkt):
        self.packets += 1
        self.bytes += len(pkt)
        return 0

    def reset(self):
        self.packets = 0
        self.bytes = 0

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [
                StateAccess(0, 8, write=True),
                StateAccess(8, 8, write=True),
                Compute(4, note="count"),
            ],
        )


@register
class AverageCounter(Element):
    """Track packet count, byte count, and mean packet size."""

    class_name = "AverageCounter"

    def configure(self, args, kwargs):
        self.packets = 0
        self.bytes = 0

    def process(self, pkt):
        self.packets += 1
        self.bytes += len(pkt)
        return 0

    def average_length(self) -> float:
        return self.bytes / self.packets if self.packets else 0.0

    def reset(self):
        self.packets = 0
        self.bytes = 0

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [
                StateAccess(0, 16, write=True),
                Compute(6, note="running-average"),
            ],
        )
