"""A 2-choice, 4-slot-bucket cuckoo hash table (DPDK ``rte_hash`` style).

The NAT configuration is stateful and, like the paper's, keeps its flow
mappings in a cuckoo hash table: two candidate buckets per key, four
slots per bucket, displacement on insertion.  The table's byte footprint
feeds the cost model (more flows -> more cache pressure).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

BUCKET_SLOTS = 4
MAX_DISPLACEMENTS = 64
SLOT_BYTES = 16  # key signature + value per slot


class CuckooFullError(RuntimeError):
    """Insertion failed after the displacement budget (table too full)."""


class CuckooHashTable:
    """Open-addressed cuckoo hash with two buckets of four slots per key."""

    def __init__(self, n_buckets: int = 16384):
        if n_buckets < 2 or n_buckets & (n_buckets - 1):
            raise ValueError("bucket count must be a power of two >= 2")
        self.n_buckets = n_buckets
        self._keys: List[List[Optional[Any]]] = [
            [None] * BUCKET_SLOTS for _ in range(n_buckets)
        ]
        self._values: List[List[Any]] = [
            [None] * BUCKET_SLOTS for _ in range(n_buckets)
        ]
        self.entries = 0

    # -- hashing -------------------------------------------------------------

    def _hash1(self, key) -> int:
        return hash(key) & (self.n_buckets - 1)

    def _hash2(self, key) -> int:
        h = hash(key)
        h ^= (h >> 17) | 0x5BD1
        return (h * 0x27D4EB2F) % self.n_buckets

    def _alt_bucket(self, key, bucket: int) -> int:
        h1 = self._hash1(key)
        return self._hash2(key) if bucket == h1 else h1

    # -- operations ------------------------------------------------------------

    def lookup(self, key) -> Optional[Any]:
        """Return the value for ``key`` or None.  At most two buckets read."""
        for bucket in (self._hash1(key), self._hash2(key)):
            slots = self._keys[bucket]
            for i in range(BUCKET_SLOTS):
                if slots[i] == key:
                    return self._values[bucket][i]
        return None

    def __contains__(self, key) -> bool:
        return self.lookup(key) is not None

    def insert(self, key, value) -> None:
        """Insert or update; displaces entries cuckoo-style when full."""
        # Update in place if present.
        for bucket in (self._hash1(key), self._hash2(key)):
            slots = self._keys[bucket]
            for i in range(BUCKET_SLOTS):
                if slots[i] == key:
                    self._values[bucket][i] = value
                    return
        bucket = self._hash1(key)
        for attempt in range(MAX_DISPLACEMENTS):
            slots = self._keys[bucket]
            for i in range(BUCKET_SLOTS):
                if slots[i] is None:
                    slots[i] = key
                    self._values[bucket][i] = value
                    self.entries += 1
                    return
            # Bucket full: displace one occupant to its alternate bucket
            # and retry there.  The victim slot rotates with the kick
            # depth -- always evicting slot 0 lets a chain cycle between
            # the same two buckets and strands reachable capacity.
            victim = attempt % BUCKET_SLOTS
            victim_key = slots[victim]
            victim_value = self._values[bucket][victim]
            slots[victim] = key
            self._values[bucket][victim] = value
            key, value = victim_key, victim_value
            bucket = self._alt_bucket(key, bucket)
        raise CuckooFullError("cuckoo displacement budget exhausted")

    def delete(self, key) -> bool:
        for bucket in (self._hash1(key), self._hash2(key)):
            slots = self._keys[bucket]
            for i in range(BUCKET_SLOTS):
                if slots[i] == key:
                    slots[i] = None
                    self._values[bucket][i] = None
                    self.entries -= 1
                    return True
        return False

    def items(self) -> Iterator[Tuple[Any, Any]]:
        for bucket in range(self.n_buckets):
            for i in range(BUCKET_SLOTS):
                if self._keys[bucket][i] is not None:
                    yield self._keys[bucket][i], self._values[bucket][i]

    @property
    def capacity(self) -> int:
        return self.n_buckets * BUCKET_SLOTS

    def load_factor(self) -> float:
        return self.entries / self.capacity

    def footprint_bytes(self) -> int:
        return self.n_buckets * BUCKET_SLOTS * SLOT_BYTES
