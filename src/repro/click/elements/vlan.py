"""802.1Q VLAN encapsulation/decapsulation."""

from __future__ import annotations

from repro.click.element import Element, register
from repro.compiler.ir import Compute, DataAccess, FieldAccess, Program
from repro.compiler.passes.transforms import FOLDABLE_NOTE
from repro.net.packet import ANNO_VLAN_TCI
from repro.net.protocols import ETHERTYPE_VLAN
from repro.net.protocols.vlan import VlanHeader


@register
class VLANEncap(Element):
    """Insert an 802.1Q tag after the Ethernet addresses.

    With ``VLAN_TCI 0`` (or no argument) the tag is taken from the
    packet's VLAN annotation -- the flow the paper describes, where the
    IDS supplement "eventually encapsulates the packet in a VLAN header".
    """

    class_name = "VLANEncap"

    def configure(self, args, kwargs):
        tci = int(kwargs.get("VLAN_TCI", args[0] if args else 0))
        self.declare_param("vlan_tci", tci, size=2)
        self.encapsulated = 0

    def process(self, pkt):
        tci = self.param("vlan_tci") or pkt.anno_u16(ANNO_VLAN_TCI) or pkt.vlan_tci
        pkt.push(VlanHeader.LENGTH)
        buf = pkt.buffer
        base = pkt.headroom
        # Move the MAC addresses to the new front, then splice the tag in.
        buf[base : base + 12] = buf[base + 4 : base + 16]
        inner_type = bytes(buf[base + 16 : base + 18])
        buf[base + 12 : base + 14] = ETHERTYPE_VLAN.to_bytes(2, "big")
        buf[base + 14 : base + 16] = (tci & 0xFFFF).to_bytes(2, "big")
        buf[base + 16 : base + 18] = inner_type
        # The Ethernet header now starts at the new front again.
        pkt.mac_header_offset = 0
        self.encapsulated += 1
        return 0

    def const_writes(self):
        """With a fixed non-zero TCI the spliced tag bytes are constants
        (TPID 0x8100 at 12-13, the TCI at 14-15).  A zero TCI falls back
        to the per-packet annotation, so nothing is constant."""
        tci = int(self.param("vlan_tci")) & 0xFFFF
        if not tci:
            return {}
        return {"data": {12: 0x81, 13: 0x00, 14: tci >> 8, 15: tci & 0xFF}}

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [
                self.param_read_op("vlan_tci"),
                FieldAccess("Packet", "vlan_anno"),
                FieldAccess("Packet", "data_ptr", write=True),
                FieldAccess("Packet", "length", write=True),
                DataAccess(0, 18, write=True),
                Compute(22, note=FOLDABLE_NOTE),
                Compute(34, note="tag-splice"),
            ],
        )


@register
class VLANDecap(Element):
    """Strip an 802.1Q tag, stashing the TCI in the VLAN annotation."""

    class_name = "VLANDecap"

    def configure(self, args, kwargs):
        self.decapsulated = 0

    def process(self, pkt):
        base = pkt.headroom
        buf = pkt.buffer
        ethertype = int.from_bytes(buf[base + 12 : base + 14], "big")
        if ethertype != ETHERTYPE_VLAN:
            return 0
        tci = int.from_bytes(buf[base + 14 : base + 16], "big")
        pkt.set_anno_u16(ANNO_VLAN_TCI, tci)
        # Remove the tag: shift MACs forward 4 bytes, then pull.
        buf[base + 4 : base + 16] = buf[base : base + 12]
        pkt.pull(VlanHeader.LENGTH)
        pkt.mac_header_offset = 0
        self.decapsulated += 1
        return 0

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [
                DataAccess(12, 4),
                FieldAccess("Packet", "vlan_anno", write=True),
                FieldAccess("Packet", "data_ptr", write=True),
                DataAccess(0, 12, write=True),
                Compute(14, note="untag"),
            ],
        )
