"""ICMPError: turn an offending packet into the matching ICMP error.

The standard Click router wires ``DecIPTTL``'s expired output through
``ICMPError(router-ip, timeexceeded)`` back out the interface; this
element implements that RFC 792 behaviour: the error datagram carries
the original IP header plus its first 8 payload bytes, is sourced from
the router's address, and is addressed to the offender's source.

The transformation happens in place (the offending packet's buffer is
reused), matching the common fast-path implementation.
"""

from __future__ import annotations

from repro.click.element import Element, ElementConfigError, register
from repro.compiler.ir import Compute, DataAccess, FieldAccess, Program
from repro.net.addresses import IPv4Address, MacAddress
from repro.net.protocols import ETHERTYPE_IP, IP_PROTO_ICMP
from repro.net.protocols.ether import EtherHeader
from repro.net.protocols.icmp import IcmpHeader
from repro.net.protocols.ip4 import Ipv4Header

_TYPE_NAMES = {
    "timeexceeded": IcmpHeader.TIME_EXCEEDED,
    "unreachable": IcmpHeader.DEST_UNREACHABLE,
}

#: RFC 792: the error quotes the offending IP header + 8 payload bytes.
QUOTED_BYTES = 8


@register
class ICMPError(Element):
    """Generate an ICMP error for each incoming (offending) packet."""

    class_name = "ICMPError"

    def configure(self, args, kwargs):
        if len(args) == 1:  # Click also allows space-separated form
            args = args[0].split()
        if len(args) < 2:
            raise ElementConfigError("ICMPError needs 'SRC-IP TYPE [CODE]'")
        self.declare_param("src_ip", IPv4Address(args[0]), size=4)
        type_arg = args[1].strip().lower()
        if type_arg in _TYPE_NAMES:
            icmp_type = _TYPE_NAMES[type_arg]
        elif type_arg.isdigit():
            icmp_type = int(type_arg)
        else:
            raise ElementConfigError("unknown ICMP type %r" % args[1])
        self.declare_param("icmp_type", icmp_type, size=1)
        self.declare_param("code", int(args[2]) if len(args) > 2 else 0, size=1)
        self.errors_sent = 0

    def process(self, pkt):
        if pkt.network_header_offset is None:
            return None  # not an IP packet; nothing to complain about
        offender = pkt.ip()
        if offender.proto == IP_PROTO_ICMP:
            return None  # never answer ICMP with ICMP (RFC 1122)
        original_src = offender.src
        quoted_len = offender.header_len + QUOTED_BYTES
        quoted = bytes(
            pkt.buffer[
                pkt.headroom + pkt.network_header_offset :
                pkt.headroom + pkt.network_header_offset + quoted_len
            ]
        )
        ether = pkt.ether()
        src_mac, dst_mac = MacAddress(ether.dst), MacAddress(ether.src)

        icmp = IcmpHeader.build(
            self.param("icmp_type"), code=self.param("code"), payload=quoted
        )
        ip = Ipv4Header.build(
            self.param("src_ip"), original_src, IP_PROTO_ICMP,
            len(icmp) + len(quoted), ttl=64,
        )
        frame = EtherHeader.build(dst_mac, src_mac, ETHERTYPE_IP) + ip + icmp + quoted
        if len(frame) < 64:
            frame += bytes(64 - len(frame))

        # Rewrite the offending packet's buffer in place.
        pkt.buffer[pkt.headroom : pkt.headroom + len(frame)] = frame
        pkt.length = len(frame)
        pkt.mac_header_offset = 0
        pkt.network_header_offset = EtherHeader.LENGTH
        pkt.transport_header_offset = EtherHeader.LENGTH + Ipv4Header.LENGTH
        self.errors_sent += 1
        return 0

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [
                self.param_read_op("src_ip"),
                self.param_read_op("icmp_type"),
                DataAccess(0, 70, write=True),   # rebuild ether+ip+icmp+quote
                FieldAccess("Packet", "length", write=True),
                FieldAccess("Packet", "network_header", write=True),
                Compute(90, note="icmp-error-build"),
            ],
        )
