"""Tee: duplicate each packet to every output.

Cloning needs fresh buffers, which is exactly what TinyNF-style static
driver models cannot provide -- Tee is therefore marked as a buffering
element too (clones outlive the slot's in-order lifecycle).  The driver
performs the duplication so clones get buffers from the metadata model's
``allocate()`` (Click's ``Packet::clone`` + ``uniqueify``).
"""

from __future__ import annotations

from repro.click.element import Element, ElementConfigError, register
from repro.compiler.ir import Compute, DataAccess, FieldAccess, Program


@register
class Tee(Element):
    """Copy each input packet to all ``n`` outputs."""

    class_name = "Tee"
    #: The driver duplicates packets for elements with this marker.
    clones_packets = True
    #: Clones escape the RX slot lifecycle: TinyNF cannot run this.
    buffers_packets = True

    def configure(self, args, kwargs):
        n = int(args[0]) if args else 2
        if n < 1:
            raise ElementConfigError("Tee needs at least one output")
        self.n_outputs = n
        self.cloned = 0

    def process(self, pkt):
        return 0  # the original continues on port 0; the driver clones

    def ir_program(self) -> Program:
        # Per-packet cost of one clone: header copy + refcount/metadata.
        return Program(
            self.name,
            [
                DataAccess(0, 64),
                FieldAccess("Packet", "buffer"),
                FieldAccess("Packet", "use_count", write=True),
                Compute(24 * max(1, self.n_outputs - 1), note="clone"),
            ],
        )
