"""IPv4-layer elements."""

from __future__ import annotations

from repro.click.element import Element, register
from repro.compiler.ir import BranchHint, Compute, DataAccess, FieldAccess, Program
from repro.net.protocols.ether import EtherHeader
from repro.net.protocols.ip4 import Ipv4Header


@register
class CheckIPHeader(Element):
    """Validate the IPv4 header (version, lengths, checksum) and mark it.

    Invalid packets are dropped (Click sends them to output 1 if wired;
    we model the common drop case).
    """

    class_name = "CheckIPHeader"
    n_outputs = 2  # 1 = bad packets, usually left unconnected (drop)

    def configure(self, args, kwargs):
        offset = int(kwargs.get("OFFSET", args[0] if args else EtherHeader.LENGTH))
        self.declare_param("offset", offset, size=4)
        self.checked = 0
        self.bad = 0

    def process(self, pkt):
        offset = self.param("offset")
        pkt.mac_header_offset = 0
        pkt.network_header_offset = offset
        self.checked += 1
        if pkt.length < offset + Ipv4Header.LENGTH:
            self.bad += 1
            return 1
        ip = pkt.ip()
        if not ip.verify():
            self.bad += 1
            return 1
        pkt.transport_header_offset = offset + ip.header_len
        return 0

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [
                self.param_read_op("offset"),
                DataAccess(self.param("offset"), 20),  # whole IPv4 header
                Compute(30, note="checksum-verify"),
                FieldAccess("Packet", "network_header", write=True),
                FieldAccess("Packet", "transport_header", write=True),
                BranchHint(0.01, note="bad-header"),
            ],
        )


@register
class DecIPTTL(Element):
    """Decrement TTL with the incremental checksum fix; drop expired."""

    class_name = "DecIPTTL"
    n_outputs = 2  # 1 = expired (ICMP time-exceeded in a full router)

    def configure(self, args, kwargs):
        self.expired = 0

    def process(self, pkt):
        ip = pkt.ip()
        if ip.ttl <= 1:
            self.expired += 1
            return 1
        ip.decrement_ttl()
        return 0

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [
                DataAccess(22, 2, write=True),  # TTL + proto word
                DataAccess(24, 2, write=True),  # checksum
                Compute(12, note="incremental-checksum"),
                BranchHint(0.01, note="ttl-expired"),
            ],
        )


@register
class Strip(Element):
    """Remove ``n`` bytes from the front of the packet."""

    class_name = "Strip"

    def configure(self, args, kwargs):
        self.declare_param("n", int(args[0]) if args else EtherHeader.LENGTH, size=4)

    def process(self, pkt):
        pkt.pull(self.param("n"))
        return 0

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [
                self.param_read_op("n"),
                FieldAccess("Packet", "data_ptr", write=True),
                FieldAccess("Packet", "length", write=True),
                Compute(4, note="pointer-adjust"),
            ],
        )


@register
class Unstrip(Element):
    """Put ``n`` bytes back at the front of the packet."""

    class_name = "Unstrip"

    def configure(self, args, kwargs):
        self.declare_param("n", int(args[0]) if args else EtherHeader.LENGTH, size=4)

    def process(self, pkt):
        pkt.push(self.param("n"))
        return 0

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [
                self.param_read_op("n"),
                FieldAccess("Packet", "data_ptr", write=True),
                FieldAccess("Packet", "length", write=True),
                Compute(4, note="pointer-adjust"),
            ],
        )


@register
class MarkIPHeader(Element):
    """Set the network/transport header offsets without validation."""

    class_name = "MarkIPHeader"

    def configure(self, args, kwargs):
        offset = int(kwargs.get("OFFSET", args[0] if args else EtherHeader.LENGTH))
        self.declare_param("offset", offset, size=4)

    def process(self, pkt):
        offset = self.param("offset")
        pkt.mac_header_offset = 0
        pkt.network_header_offset = offset
        pkt.transport_header_offset = offset + pkt.ip().header_len
        return 0

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [
                self.param_read_op("offset"),
                DataAccess(14, 1),  # IHL byte
                FieldAccess("Packet", "network_header", write=True),
                FieldAccess("Packet", "transport_header", write=True),
                Compute(5, note="mark"),
            ],
        )
