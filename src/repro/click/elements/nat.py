"""Stateful NAPT (the paper's NAT configuration, Appendix A.3).

``IPRewriter`` rewrites the source address (and port) of outgoing packets
to a configured public address, allocating a fresh public port per flow
and remembering forward and reverse mappings in a cuckoo hash table --
"the NAT configuration is stateful and it uses the DPDK Cuckoo hash
table, resulting in more lookups and higher memory usage".
"""

from __future__ import annotations

from repro.click.element import Element, ElementConfigError, register
from repro.click.elements.cuckoo import CuckooHashTable
from repro.compiler.ir import (
    BranchHint,
    Compute,
    DataAccess,
    Program,
    RandomAccess,
)
from repro.net.addresses import IPv4Address
from repro.net.protocols import IP_PROTO_TCP, IP_PROTO_UDP

FIRST_NAT_PORT = 10000
LAST_NAT_PORT = 60000


@register
class IPRewriter(Element):
    """Source NAPT toward a configured public IP."""

    class_name = "IPRewriter"

    def configure(self, args, kwargs):
        public = kwargs.get("SRCIP", args[0] if args else None)
        if public is None:
            raise ElementConfigError("IPRewriter needs the public SRCIP")
        self.declare_param("public_ip", IPv4Address(public), size=4)
        buckets = int(kwargs.get("CAPACITY", 16384))
        self.table = CuckooHashTable(n_buckets=buckets)
        self._next_port = FIRST_NAT_PORT
        self.new_flows = 0
        self.rewrites = 0

    def _allocate_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        if self._next_port > LAST_NAT_PORT:
            self._next_port = FIRST_NAT_PORT
        return port

    def process(self, pkt):
        ip = pkt.ip()
        proto = ip.proto
        if proto not in (IP_PROTO_TCP, IP_PROTO_UDP):
            return 0  # pass non-TCP/UDP unchanged (no port to translate)
        l4 = pkt.tcp() if proto == IP_PROTO_TCP else pkt.udp()
        key = (int(ip.src), int(ip.dst), proto, l4.src_port, l4.dst_port)
        mapping = self.table.lookup(key)
        if mapping is None:
            public_port = self._allocate_port()
            mapping = (int(self.param("public_ip")), public_port)
            self.table.insert(key, mapping)
            # Reverse mapping so return traffic can be translated back.
            reverse_key = (int(ip.dst), mapping[0], proto, l4.dst_port, public_port)
            self.table.insert(reverse_key, (key[0], key[3]))
            self.new_flows += 1
        new_ip, new_port = mapping
        old_src_words = (int(ip.src) >> 16, int(ip.src) & 0xFFFF)
        ip.src = IPv4Address(new_ip)  # incremental IP checksum fix inside
        if proto == IP_PROTO_TCP:
            new_words = (new_ip >> 16, new_ip & 0xFFFF)
            l4.adjust_checksum_for_address(old_src_words, new_words)
        l4.src_port = new_port  # incremental L4 checksum fix inside
        self.rewrites += 1
        return 0

    def ir_program(self) -> Program:
        # The stateful NAPT hot path is heavy: 5-tuple extraction and
        # hashing, a cuckoo lookup (two buckets, up to eight key
        # compares), conntrack bookkeeping/expiry, both header rewrites,
        # and the incremental IP+L4 checksum fixes -- "more lookups and
        # higher memory usage" (Appendix A.3).
        return Program(
            self.name,
            [
                DataAccess(23, 1),              # protocol
                DataAccess(26, 8),              # source/dest IPs
                DataAccess(34, 4, write=True),  # ports
                DataAccess(24, 2, write=True),  # IP checksum
                DataAccess(50, 2, write=True),  # L4 checksum
                RandomAccess(self.table.footprint_bytes(), count=2),  # 2 buckets
                # Entry + expiry stamp: the table mutation that makes the
                # NAT flow-keyed stateful (the sharding lints key on it).
                RandomAccess(self.table.footprint_bytes(), count=2, write=True),
                Compute(96, note="tuple-hash"),
                Compute(208, note="cuckoo-key-compares"),
                Compute(130, note="rewrite+checksum"),
                Compute(86, note="conntrack-bookkeeping"),
                BranchHint(0.06, note="new-flow"),
                BranchHint(0.08, note="bucket-probe"),
            ],
        )
