"""Element library.  Importing this package registers every element class."""

from repro.click.elements import (  # noqa: F401
    classifier,
    counter,
    ethernet,
    flow,
    icmp_error,
    ids,
    io,
    ipfilter,
    ip,
    misc,
    nat,
    qos,
    routing,
    synthetic,
    tee,
    vlan,
)

from repro.click.elements.classifier import Classifier, IPClassifier
from repro.click.elements.counter import AverageCounter, Counter
from repro.click.elements.ethernet import EtherEncap, EtherMirror, EtherRewrite
from repro.click.elements.flow import PaintSwitch, Print, Queue, SetIPChecksum
from repro.click.elements.icmp_error import ICMPError
from repro.click.elements.tee import Tee
from repro.click.elements.ids import CheckICMPHeader, CheckTCPHeader, CheckUDPHeader
from repro.click.elements.ipfilter import IPFilter
from repro.click.elements.io import FromDPDKDevice, ToDPDKDevice
from repro.click.elements.ip import CheckIPHeader, DecIPTTL, MarkIPHeader, Strip, Unstrip
from repro.click.elements.misc import ARPResponder, Discard, Paint
from repro.click.elements.nat import IPRewriter
from repro.click.elements.qos import LengthSwitch, PFCPause, PrioritySwitch, RatedQueue
from repro.click.elements.routing import RadixIPLookup
from repro.click.elements.synthetic import WorkPackage
from repro.click.elements.vlan import VLANDecap, VLANEncap

__all__ = [
    "ARPResponder",
    "AverageCounter",
    "CheckICMPHeader",
    "CheckIPHeader",
    "CheckTCPHeader",
    "CheckUDPHeader",
    "Classifier",
    "Counter",
    "DecIPTTL",
    "Discard",
    "EtherEncap",
    "EtherMirror",
    "EtherRewrite",
    "FromDPDKDevice",
    "ICMPError",
    "IPClassifier",
    "IPFilter",
    "IPRewriter",
    "LengthSwitch",
    "MarkIPHeader",
    "PFCPause",
    "Paint",
    "PaintSwitch",
    "Print",
    "PrioritySwitch",
    "Queue",
    "RatedQueue",
    "SetIPChecksum",
    "RadixIPLookup",
    "Strip",
    "Tee",
    "ToDPDKDevice",
    "Unstrip",
    "VLANDecap",
    "VLANEncap",
    "WorkPackage",
]
