"""The modular packet-processing framework (FastClick analogue).

A network function is declared in the Click configuration language
(:mod:`repro.click.config`), parsed into a processing graph of elements
(:mod:`repro.click.graph`), and run to completion by the driver
(:mod:`repro.click.driver`), which executes each element both
*functionally* (packets really get parsed, rewritten, looked up) and
*microarchitecturally* (the element's compiled IR program is charged to
the hardware model).
"""

from repro.click.config import ConfigError, parse_config
from repro.click.element import Element, ElementRegistry
from repro.click.graph import ProcessingGraph
from repro.click.driver import RouterDriver

# Importing the element library registers every element class.
from repro.click import elements as _elements  # noqa: F401

__all__ = [
    "ConfigError",
    "Element",
    "ElementRegistry",
    "ProcessingGraph",
    "RouterDriver",
    "parse_config",
]
