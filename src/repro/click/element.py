"""Element base class and the element class registry.

An element contributes three things:

1. **Functional behaviour** -- :meth:`Element.process` really transforms
   the packet (swap MACs, decrement TTL, rewrite the 5-tuple, ...) and
   picks an output port.
2. **A per-packet IR program** -- :meth:`Element.ir_program` declares the
   memory/compute profile of that work so the compiler passes and the
   hardware model can price it.
3. **Mutable state** -- :attr:`Element.state_size` bytes, allocated on the
   heap for a dynamic graph or packed into the static segment when
   PacketMill embeds the graph (the paper's static-graph optimization).

Configuration parameters are declared with :meth:`Element.declare_param`,
which both parses the Click argument and assigns it a state offset so
``ParamRead`` IR ops know what they load.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple, Type

from repro.click.config.ast import Declaration
from repro.compiler.ir import Compute, ParamRead, Program


class ElementConfigError(ValueError):
    """Bad element configuration string."""


class Element(abc.ABC):
    """Base class for all processing elements."""

    class_name: str = "Element"
    #: Default port counts; elements may override in configure().
    n_inputs: int = 1
    n_outputs: int = 1
    #: Bytes of mutable state (beyond declared parameters).
    base_state_size: int = 64

    def __init__(self, name: str, decl: Optional[Declaration] = None):
        self.name = name
        self.decl = decl or Declaration(name, self.class_name)
        # targets[port] = (element, dst_port) wired by the graph builder.
        self.targets: List[Optional[Tuple["Element", int]]] = []
        self.state_region = None  # assigned at build time
        self._params: Dict[str, object] = {}
        self._param_offsets: Dict[str, int] = {}
        self._next_param_offset = 0
        self.drops = 0
        # CounterScope over element.<name>.* when built with telemetry.
        self.telemetry_scope = None
        self.configure(self.decl.positional_args(), self.decl.keyword_args())
        if len(self.targets) < self.n_outputs:
            self.targets.extend([None] * (self.n_outputs - len(self.targets)))

    # -- configuration ---------------------------------------------------------

    def configure(self, args: List[str], kwargs: Dict[str, str]) -> None:
        """Parse configuration arguments.  Override in subclasses."""

    def declare_param(self, name: str, value, size: int = 8):
        """Record a configuration parameter and give it a state offset."""
        self._params[name] = value
        self._param_offsets[name] = self._next_param_offset
        self._next_param_offset += size
        return value

    def param(self, name: str):
        return self._params[name]

    def param_read_op(self, name: str) -> ParamRead:
        """The IR load for one declared parameter."""
        return ParamRead(name, offset=self._param_offsets[name])

    @property
    def state_size(self) -> int:
        return self.base_state_size + self._next_param_offset

    # -- graph wiring -------------------------------------------------------------

    def connect(self, port: int, target: "Element", target_port: int = 0) -> None:
        while len(self.targets) <= port:
            self.targets.append(None)
        self.targets[port] = (target, target_port)

    def target(self, port: int) -> Optional[Tuple["Element", int]]:
        if port < len(self.targets):
            return self.targets[port]
        return None

    # -- behaviour ------------------------------------------------------------------

    def process(self, pkt) -> Optional[int]:
        """Process one packet; return the output port, or None to drop."""
        return 0

    def ir_program(self) -> Program:
        """Per-packet cost profile.  Subclasses should extend this."""
        return Program(self.name, [Compute(6, note="element-prologue")])

    # -- introspection ---------------------------------------------------------------

    def bind_telemetry(self, scope) -> None:
        """Attach this element's registry scope (``element.<name>.*``)."""
        self.telemetry_scope = scope

    def xstats(self) -> Dict[str, object]:
        """Extended statistics, uniform across every element class.

        The base implementation exposes whatever the registry holds for
        this element -- drops, error batches, attributed cycles and cache
        events -- under their scope-local names.  I/O elements extend it
        with their port's hardware counters.  Unbound (no telemetry, or a
        hand-built element), it returns ``{}``.
        """
        if self.telemetry_scope is None:
            return {}
        return self.telemetry_scope.snapshot()

    def __repr__(self) -> str:
        return "%s(%s)" % (type(self).__name__, self.name)


class ElementRegistry:
    """Maps Click class names to Python element classes."""

    _classes: Dict[str, Type[Element]] = {}

    @classmethod
    def register(cls, element_cls: Type[Element]) -> Type[Element]:
        """Class decorator: register under the element's ``class_name``."""
        name = element_cls.class_name
        if name in cls._classes and cls._classes[name] is not element_cls:
            raise ValueError("element class %r registered twice" % name)
        cls._classes[name] = element_cls
        return element_cls

    @classmethod
    def create(cls, decl: Declaration) -> Element:
        try:
            element_cls = cls._classes[decl.class_name]
        except KeyError:
            raise ElementConfigError(
                "unknown element class %r" % decl.class_name
            ) from None
        return element_cls(decl.name, decl)

    @classmethod
    def known_classes(cls) -> List[str]:
        return sorted(cls._classes)


register = ElementRegistry.register
