"""Click's handler mechanism: named read/write hooks on live elements.

Every Click element exposes *handlers* -- ``counter.count``,
``queue.length``, ``rt.lookup`` -- that operators read and write at run
time (via ControlSocket in real deployments).  This module provides the
registry and a :class:`HandlerBroker` that resolves ``element.handler``
paths on a built graph, which the examples and tests use to inspect
running network functions.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.click.graph import ProcessingGraph
from repro.telemetry.registry import is_glob


class HandlerError(KeyError):
    """Unknown element or handler, or wrong access direction."""


def _format_xstats(snap: Dict[str, object]) -> str:
    """Render an xstats mapping one ``name: value`` per line.

    An empty mapping reads ``(unbound)`` -- the element has neither a
    telemetry scope nor (for I/O elements) a bound port.
    """
    if not snap:
        return "(unbound)"
    lines = []
    for name in sorted(snap):
        value = snap[name]
        if isinstance(value, float) and not value.is_integer():
            lines.append("%s: %.1f" % (name, value))
        else:
            lines.append("%s: %d" % (name, value))
    return "\n".join(lines)


@dataclass(frozen=True)
class Handler:
    """One named hook on an element class."""

    name: str
    read: Optional[Callable] = None   # (element) -> str
    write: Optional[Callable] = None  # (element, value_str) -> None

    @property
    def readable(self) -> bool:
        return self.read is not None

    @property
    def writable(self) -> bool:
        return self.write is not None


def _common_handlers(element) -> Dict[str, Handler]:
    handlers = {
        "class": Handler("class", read=lambda e: e.decl.class_name),
        "name": Handler("name", read=lambda e: e.name),
        "config": Handler("config", read=lambda e: e.decl.config),
        "ports": Handler(
            "ports",
            read=lambda e: "%d inputs, %d outputs" % (e.n_inputs, e.n_outputs),
        ),
        # Uniform across every element class: whatever the telemetry
        # registry holds for this element (drops, errors, attributed
        # cycles and cache events), plus -- on I/O elements -- the bound
        # port's hardware counters.  See Element.xstats().
        "xstats": Handler("xstats", read=lambda e: _format_xstats(e.xstats())),
    }
    return handlers


def _class_handlers(element) -> Dict[str, Handler]:
    """Per-class handlers, mirroring the real elements' handler sets."""
    cls = element.decl.class_name
    handlers: Dict[str, Handler] = {}

    def add(name, read=None, write=None):
        handlers[name] = Handler(name, read=read, write=write)

    if cls in ("Counter", "AverageCounter"):
        add("count", read=lambda e: str(e.packets))
        add("byte_count", read=lambda e: str(e.bytes))
        add("reset", write=lambda e, v: e.reset())
        if cls == "AverageCounter":
            add("average_length", read=lambda e: "%.1f" % e.average_length())
    elif cls in ("Queue", "RatedQueue"):
        add("length", read=lambda e: str(e.occupancy))
        add("capacity", read=lambda e: str(e.param("capacity")))
        add("drops", read=lambda e: str(e.overflows))
        if cls == "RatedQueue":
            add("rate", read=lambda e: str(e.param("rate")))
    elif cls == "PFCPause":
        add("port", read=lambda e: str(e.param("port")))
        add("paused", read=lambda e: "" if e._pool is None else "/".join(
            str(p) for p in sorted(e._pool.paused_priorities())))
    elif cls == "Discard":
        add("count", read=lambda e: str(e.discarded))
    elif cls in ("CheckIPHeader", "CheckTCPHeader", "CheckUDPHeader", "CheckICMPHeader"):
        add("count", read=lambda e: str(e.checked))
        add("bad", read=lambda e: str(e.bad))
    elif cls == "DecIPTTL":
        add("expired", read=lambda e: str(e.expired))
    elif cls == "IPRewriter":
        add("mappings", read=lambda e: str(e.table.entries))
        add("new_flows", read=lambda e: str(e.new_flows))
        add("rewrites", read=lambda e: str(e.rewrites))
    elif cls == "RadixIPLookup":
        add("nroutes", read=lambda e: str(e.trie.n_routes))
        add("misses", read=lambda e: str(e.misses))
        add(
            "lookup",
            read=None,
            write=None,
        )
    elif cls == "VLANEncap":
        add("count", read=lambda e: str(e.encapsulated))
        add("vlan_tci", read=lambda e: str(e.param("vlan_tci")))
    elif cls == "ARPResponder":
        add("replies", read=lambda e: str(e.replies))
    elif cls == "WorkPackage":
        add("processed", read=lambda e: str(e.processed))
        add("footprint", read=lambda e: str(e.footprint_bytes))
    elif cls == "Print":
        add("lines", read=lambda e: "\n".join(e.lines))
    elif cls in ("FromDPDKDevice", "ToDPDKDevice"):
        # Named shortcuts into rte_eth_stats on the bound port (the full
        # dump is the uniform xstats handler every element now has).  The
        # PMD is attached at build time; before that these read as zeros.
        def _nic_counter(e, name):
            return str(e.xstats().get(name, 0))

        if cls == "FromDPDKDevice":
            add("rx_nombuf", read=lambda e: _nic_counter(e, "rx_nombuf"))
            add("imissed", read=lambda e: _nic_counter(e, "imissed"))
            add("rx_errors", read=lambda e: _nic_counter(e, "rx_errors"))
        else:
            add("tx_full", read=lambda e: _nic_counter(e, "tx_full"))
    handlers = {k: v for k, v in handlers.items() if v.readable or v.writable}
    return handlers


#: Virtual handler prefix exposing the process-wide execution caches
#: (build/trace/codegen/point memoization) alongside the per-element
#: handlers.
EXEC_CACHE_PREFIX = "exec.cache."

#: Virtual handler prefix for the generated-code execution tier's
#: process-wide counters (compiles, memo hits, self-checks, fallbacks).
EXEC_CODEGEN_PREFIX = "exec.codegen."


def _exec_cache_counters() -> Dict[str, int]:
    from repro.exec import cache as exec_cache

    return exec_cache.stats()


def _exec_codegen_counters() -> Dict[str, int]:
    from repro.compiler import codegen

    return codegen.stats()


#: The virtual (process-wide) namespaces served by every broker:
#: prefix -> snapshot provider.
VIRTUAL_NAMESPACES = (
    (EXEC_CACHE_PREFIX, _exec_cache_counters),
    (EXEC_CODEGEN_PREFIX, _exec_codegen_counters),
)


class HandlerBroker:
    """Resolve and call ``element.handler`` paths on a live graph."""

    def __init__(self, graph: ProcessingGraph):
        self.graph = graph

    def _split(self, path: str):
        if "." not in path:
            raise HandlerError("handler path must be 'element.handler': %r" % path)
        element_name, handler_name = path.rsplit(".", 1)
        try:
            element = self.graph.element(element_name)
        except KeyError:
            raise HandlerError("no element named %r" % element_name) from None
        handlers = self._handlers_of(element)
        try:
            handler = handlers[handler_name]
        except KeyError:
            raise HandlerError(
                "element %r (%s) has no handler %r; available: %s"
                % (element_name, element.decl.class_name, handler_name,
                   ", ".join(sorted(handlers)))
            ) from None
        return element, handler

    def _handlers_of(self, element) -> Dict[str, Handler]:
        handlers = dict(_common_handlers(element))
        handlers.update(_class_handlers(element))
        return handlers

    def read(self, path: str) -> str:
        """Read one handler -- or every handler matching a glob.

        ``broker.read("*.count")`` returns the matching readable
        handlers as ``element.handler: value`` lines, in element order.
        """
        if is_glob(path):
            matches = self.read_many(path)
            if not matches:
                raise HandlerError("no readable handler matches %r" % path)
            return "\n".join(
                "%s: %s" % (full, value) for full, value in matches.items()
            )
        for prefix, snapshot in VIRTUAL_NAMESPACES:
            if path.startswith(prefix):
                counters = snapshot()
                name = path[len(prefix):]
                if name not in counters:
                    raise HandlerError(
                        "no %s counter %r; available: %s"
                        % (prefix.rstrip("."), name,
                           ", ".join(sorted(counters)))
                    )
                return str(counters[name])
        element, handler = self._split(path)
        if not handler.readable:
            raise HandlerError("handler %r is not readable" % path)
        return handler.read(element)

    def read_many(self, pattern: str) -> Dict[str, str]:
        """Glob read: ``{element.handler: value}`` for readable matches."""
        out: Dict[str, str] = {}
        for prefix, snapshot in VIRTUAL_NAMESPACES:
            counters = snapshot()
            for cname in sorted(counters):
                full = prefix + cname
                if fnmatchcase(full, pattern):
                    out[full] = str(counters[cname])
        for name in sorted(self.graph.elements):
            element = self.graph.elements[name]
            for hname, handler in sorted(self._handlers_of(element).items()):
                full = "%s.%s" % (name, hname)
                if handler.readable and fnmatchcase(full, pattern):
                    out[full] = handler.read(element)
        return out

    def write(self, path: str, value: str = "") -> None:
        element, handler = self._split(path)
        if not handler.writable:
            raise HandlerError("handler %r is not writable" % path)
        handler.write(element, value)

    def list_handlers(self, element_name: str):
        return sorted(self._handlers_of(self.graph.element(element_name)))

    def dump(self) -> str:
        """A flatconfig-style dump of every element's readable handlers.

        Multi-line values (the xstats blocks) are left to explicit reads
        to keep the dump one entry per line.
        """
        lines = []
        for name in sorted(self.graph.elements):
            element = self.graph.elements[name]
            lines.append("%s :: %s" % (name, element.decl.class_name))
            handlers = self._handlers_of(element)
            for hname in sorted(handlers):
                handler = handlers[hname]
                if (handler.readable
                        and hname not in ("class", "name", "config", "xstats")):
                    lines.append("  %s: %s" % (hname, handler.read(element)))
        return "\n".join(lines)
