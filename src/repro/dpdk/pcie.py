"""PCIe 3.0 x16 bandwidth model.

Frames cross PCIe once per direction (RX DMA in, TX DMA out), split into
256-byte TLPs with per-TLP header overhead, plus one descriptor write per
packet.  This is the standard model from Neugebauer et al. (SIGCOMM'18),
which the paper cites for its observation that pps falls past ~800-B
frames because PCIe -- not the 100-Gbps MAC -- becomes the bottleneck.
"""

from __future__ import annotations

TLP_PAYLOAD = 256
TLP_OVERHEAD = 26  # TLP header + DLLP share + framing
DESCRIPTOR_BYTES = 64


class PcieModel:
    """Per-direction PCIe capacity for a forwarding workload."""

    def __init__(self, params):
        self.params = params

    def bytes_on_wire(self, frame_len: int) -> float:
        """PCIe bytes one frame consumes in one direction."""
        import math

        tlps = math.ceil(frame_len / TLP_PAYLOAD)
        return frame_len + tlps * TLP_OVERHEAD + DESCRIPTOR_BYTES

    def pps_limit(self, frame_len: int) -> float:
        """Max packets/s one direction of the link can DMA."""
        per_packet_bits = self.bytes_on_wire(frame_len) * 8
        bw_pps = self.params.pcie_gbps * 1e9 / per_packet_bits
        # Small packets additionally bound by per-packet doorbell/DMA setup.
        latency_pps = 1e9 / self.params.pcie_per_packet_ns
        return min(bw_pps, latency_pps)

    def goodput_gbps(self, frame_len: int) -> float:
        """Max achievable goodput through PCIe at this frame size."""
        return self.pps_limit(frame_len) * frame_len * 8 / 1e9
