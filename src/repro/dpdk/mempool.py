"""DPDK mempool: pre-allocated mbufs with a LIFO per-lcore cache.

Every mbuf owns ``RTE_MBUF_SIZE`` metadata bytes, a headroom, and a data
room, allocated contiguously from the hugepage DMA region.  ``get``/``put``
follow DPDK's per-lcore cache discipline (LIFO), which is what keeps the
most recently freed mbuf's metadata warm -- and what X-Change bypasses
entirely by exchanging buffers instead of allocating them.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dpdk.mbuf import MBUF_DATA_ROOM, MBUF_HEADROOM, RTE_MBUF_SIZE, BufferRef
from repro.hw.layout import AddressSpace


class MempoolEmptyError(RuntimeError):
    """Raised when the pool has no free mbufs (allocation failure)."""


class Mempool:
    """A pool of ``n`` fixed-size mbufs carved out of the DMA region."""

    def __init__(
        self,
        space: AddressSpace,
        n: int = 8192,
        data_room: int = MBUF_DATA_ROOM,
        headroom: int = MBUF_HEADROOM,
        name: str = "mbuf_pool",
    ):
        if n < 1:
            raise ValueError("mempool needs at least one mbuf")
        self.n = n
        self.data_room = data_room
        self.headroom = headroom
        self.elt_size = RTE_MBUF_SIZE + headroom + data_room
        self.region = space.alloc_dma(name, n * self.elt_size)
        # The pool's own bookkeeping (ring of pointers) also lives in memory;
        # the PMD touches its head line on every get/put.
        self.freelist_region = space.alloc_dma(name + "_ring", n * 8 + 64)
        self._free: List[int] = list(range(n - 1, -1, -1))  # LIFO: index 0 on top
        self.gets = 0
        self.puts = 0
        # Failed allocation attempts (the drop-counter path callers use
        # instead of catching MempoolEmptyError on the hot path).
        self.empty_gets = 0

    def mbuf_addr(self, index: int) -> int:
        if not 0 <= index < self.n:
            raise IndexError("mbuf index %d out of range" % index)
        return self.region.base + index * self.elt_size

    def data_addr(self, index: int) -> int:
        """Address of the default data offset (after the headroom)."""
        return self.mbuf_addr(index) + RTE_MBUF_SIZE + self.headroom

    def buffer_ref(self, index: int) -> BufferRef:
        return BufferRef(
            index=index,
            mbuf_addr=self.mbuf_addr(index),
            data_addr=self.data_addr(index),
            meta_addr=self.mbuf_addr(index),
        )

    def freelist_head_addr(self) -> int:
        return self.freelist_region.base

    @property
    def available(self) -> int:
        return len(self._free)

    @property
    def in_flight(self) -> int:
        """Buffers currently out of the pool (the leak-invariant ledger:
        ``gets == puts + in_flight`` must hold at all times)."""
        return self.n - len(self._free)

    def try_get(self, cpu=None) -> Optional[BufferRef]:
        """Pop one mbuf, or return None when the pool is empty.

        The hot-path allocation contract: exhaustion degrades through
        counters (``empty_gets`` here, ``rx_nombuf``/drop ledgers at the
        callers), never through an exception on the data path.
        """
        if not self._free:
            self.empty_gets += 1
            return None
        index = self._free.pop()
        self.gets += 1
        if cpu is not None:
            cpu.mem_access(self.freelist_head_addr(), 8, write=True, instructions=0.0)
        return self.buffer_ref(index)

    def get(self, cpu=None) -> BufferRef:
        """Pop one mbuf; charges the freelist head access when ``cpu`` given.

        Control-path variant of :meth:`try_get`: raises
        :class:`MempoolEmptyError` on exhaustion.
        """
        ref = self.try_get(cpu)
        if ref is None:
            raise MempoolEmptyError("mempool exhausted")
        return ref

    def put(self, ref: BufferRef, cpu=None) -> None:
        """Return an mbuf to the LIFO cache."""
        if not 0 <= ref.index < self.n:
            raise IndexError("mbuf index %d out of range" % ref.index)
        if len(self._free) >= self.n:
            raise RuntimeError("double free: pool already full")
        self._free.append(ref.index)
        self.puts += 1
        if cpu is not None:
            cpu.mem_access(self.freelist_head_addr(), 8, write=True, instructions=0.0)

    def bulk_get(self, count: int, cpu=None) -> Optional[List[BufferRef]]:
        """Get ``count`` mbufs or none at all (DPDK bulk semantics).

        A refused bulk counts one ``empty_gets`` event, so bulk and
        single-buffer callers share the same degradation ledger.
        """
        if len(self._free) < count:
            self.empty_gets += 1
            return None
        return [self.get(cpu) for _ in range(count)]
