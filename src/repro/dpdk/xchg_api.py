"""The X-Change API: conversion functions between driver and application.

X-Change replaces the PMD's direct ``rte_mbuf`` stores with calls to
``xchg_set_*`` conversion functions (the paper's Listing 1).  DPDK ships a
*standard implementation* that writes into the ``rte_mbuf`` -- full
backward compatibility -- while an application may link its own
implementation that writes straight into its metadata struct (Listing 2).

:class:`ConversionSet` captures one such implementation: which struct and
field each conversion function targets.  :func:`standard_dpdk_conversions`
is the compatibility set; :func:`fastclick_conversions` is FastClick's
custom set used by PacketMill.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Driver-side metadata items the MLX5 RX path produces, in CQE order.
RX_METADATA_ITEMS = (
    "buffer", "data_ptr", "length", "flags", "vlan_tci", "rss_hash", "timestamp",
)

#: Items the TX path consumes.
TX_METADATA_ITEMS = ("data_ptr", "length", "flags")


@dataclass(frozen=True)
class ConversionSet:
    """One implementation of the xchg_* conversion functions.

    ``targets`` maps each metadata item to the (struct, field) the
    conversion writes/reads, e.g. ``"vlan_tci" -> ("Packet", "vlan_anno")``.
    """

    name: str
    targets: Dict[str, Tuple[str, str]]

    def target_of(self, item: str) -> Tuple[str, str]:
        try:
            return self.targets[item]
        except KeyError:
            raise KeyError(
                "conversion set %r does not define xchg handling for %r"
                % (self.name, item)
            ) from None

    def setter_name(self, item: str) -> str:
        return "xchg_set_%s" % item

    def getter_name(self, item: str) -> str:
        return "xchg_get_%s" % item

    def struct_names(self) -> set:
        return {struct for struct, _ in self.targets.values()}


def standard_dpdk_conversions() -> ConversionSet:
    """The backward-compatible implementation DPDK compiles by default:
    every conversion resolves to the generic ``rte_mbuf`` field."""
    return ConversionSet(
        name="standard-dpdk",
        targets={
            "buffer": ("rte_mbuf", "buf_addr"),
            "data_ptr": ("rte_mbuf", "data_off"),
            "length": ("rte_mbuf", "data_len"),
            "flags": ("rte_mbuf", "ol_flags"),
            "vlan_tci": ("rte_mbuf", "vlan_tci"),
            "rss_hash": ("rte_mbuf", "rss_hash"),
            "timestamp": ("rte_mbuf", "timestamp"),
        },
    )


def fastclick_conversions() -> ConversionSet:
    """FastClick's custom implementation: conversions write directly into
    the application's ``Packet`` struct, bypassing ``rte_mbuf`` entirely."""
    return ConversionSet(
        name="fastclick",
        targets={
            "buffer": ("Packet", "buffer"),
            "data_ptr": ("Packet", "data_ptr"),
            "length": ("Packet", "length"),
            "flags": ("Packet", "flags"),
            "vlan_tci": ("Packet", "vlan_anno"),
            "rss_hash": ("Packet", "rss_anno"),
            "timestamp": ("Packet", "timestamp"),
        },
    )


def minimal_conversions() -> ConversionSet:
    """The l2fwd-xchg sample application's set: metadata reduced to just
    the buffer address and packet length (paper §4.6)."""
    return ConversionSet(
        name="l2fwd-xchg",
        targets={
            "buffer": ("Packet", "buffer"),
            "length": ("Packet", "length"),
        },
    )
