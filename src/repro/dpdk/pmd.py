"""The MLX5-class poll-mode driver.

``rx_burst``/``tx_burst`` mirror DPDK's PMD entry points: poll the
completion queue, run the metadata model's per-packet conversion program,
and keep the RX ring replenished / the TX ring reaped.  All driver-side
work is charged through the lowered IR programs, so enabling LTO (which
inlines X-Change's conversion calls) changes the driver's cost exactly as
recompiling DPDK with ``-flto`` does.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.compiler import codegen as _codegen
from repro.compiler.lower import ExecProgram, lower
from repro.compiler.passes import inline_calls, profile_guided, vectorize
from repro.compiler.runtime import (
    ExecutionTier,
    TierSelection,
    execute_bases,
    execute_interpreted,
    select_tier,
)
from repro.compiler.structlayout import LayoutRegistry
from repro.dpdk.metadata import MetadataModel
from repro.dpdk.nic import Nic
from repro.net.packet import Packet

#: Instructions per rx_burst/tx_burst invocation (poll loop, ring indexes).
BURST_OVERHEAD_INSTRUCTIONS = 26.0
#: Posted-write doorbell cost per TX burst (MMIO over PCIe).
DOORBELL_NS = 30.0
#: TX ring occupancy beyond which completed buffers are reaped.
TX_FREE_THRESHOLD = 32


class MlxPmd:
    """One port's poll-mode driver bound to a CPU core."""

    def __init__(
        self,
        nic: Nic,
        model: MetadataModel,
        cpu,
        registry: LayoutRegistry,
        lto: bool = False,
        vectorized: bool = False,
        pgo: bool = False,
        tier=None,
        codegen_verify=None,
    ):
        self.nic = nic
        self.model = model
        self.cpu = cpu
        self.lto = lto
        self.vectorized = vectorized
        rx_ir = model.rx_program()
        tx_ir = model.tx_program()
        if lto:
            rx_ir = inline_calls(rx_ir)
            tx_ir = inline_calls(tx_ir)
        if vectorized:
            rx_ir = vectorize(rx_ir)
            tx_ir = vectorize(tx_ir)
        if pgo:
            rx_ir = profile_guided(rx_ir)
            tx_ir = profile_guided(tx_ir)
        self.rx_exec: ExecProgram = lower(rx_ir, registry)
        self.tx_exec: ExecProgram = lower(tx_ir, registry)
        # Execution tier: PacketMill passes its resolved TierSelection so
        # PMDs and driver always agree; standalone PMDs resolve from the
        # policy/environment, demoting codegen if a fault injector is
        # already bound to the NIC.
        if isinstance(tier, TierSelection):
            selection = tier
        else:
            selection = select_tier(
                tier, faults=getattr(nic, "faults", None) is not None
            )
        self.tier = selection.tier
        self._interpret = selection.tier is ExecutionTier.INTERPRETER
        # Generated scalar kernels for the RX/TX conversion programs; a
        # compile failure falls back to the compiled op-tuple tier.
        self._rx_fn = self._tx_fn = None
        if selection.tier is ExecutionTier.CODEGEN:
            try:
                self._rx_fn = _codegen.compile_program(
                    self.rx_exec, verify=codegen_verify,
                    check=selection.check,
                ).scalar
                self._tx_fn = _codegen.compile_program(
                    self.tx_exec, verify=codegen_verify,
                    check=selection.check,
                ).scalar
            except _codegen.CodegenError:
                _codegen.record_fallback()
                self._rx_fn = self._tx_fn = None
        # Optional repro.telemetry.SpanRecorder; when bound, rx_burst
        # brackets its DMA and conversion stages as nested spans.
        self.spans = None
        self._fill_rx_ring()

    def _fill_rx_ring(self) -> None:
        self._replenish_rx(cpu=None)

    def _replenish_rx(self, cpu) -> None:
        """Top the RX ring back up; allocation failure is an rx_nombuf drop.

        Real mlx5 keeps posting until the ring is full or ``rte_mbuf_raw_alloc``
        fails, in which case it bumps ``rx_nombuf`` and retries next poll --
        the run degrades instead of aborting.
        """
        while not self.nic.rx_ring.is_full():
            buf = self.model.try_rx_buffer(cpu)
            if buf is None:
                self.nic.counters.rx_nombuf += 1
                return
            self.nic.post_rx(buf)

    # -- RX ---------------------------------------------------------------------

    def rx_burst(self, max_burst: int) -> List[Packet]:
        """Receive up to ``max_burst`` packets, charging the driver path."""
        self.cpu.charge_compute(BURST_OVERHEAD_INSTRUCTIONS)
        spans = self.spans
        if spans is not None:
            spans.push("dma")
        delivered = self.nic.deliver(max_burst)
        if spans is not None:
            spans.pop()
            spans.push("convert")
        out: List[Packet] = []
        rx_fn = self._rx_fn
        interpret = self._interpret
        for ref, pkt in delivered:
            if pkt.rx_error is not None:
                # Hardware offload validation: damaged frames are flagged
                # in the CQE and discarded here as counted drops, the
                # buffer going straight back to the pool.
                counters = self.nic.counters
                counters.rx_errors += 1
                if pkt.rx_error == "truncated":
                    counters.rx_truncated += 1
                else:
                    counters.rx_corrupt += 1
                self.model.release(ref, self.cpu)
                ticket = pkt.qos_ticket
                if ticket is not None:
                    # The discarded frame leaves the system here; release
                    # its ingress buffer charge.
                    pkt.qos_ticket = None
                    ticket[0].drain(ticket[1])
                continue
            ref = self.model.on_rx(ref, self.cpu)
            # The MLX5 RX loop prefetches the CQE, the metadata struct,
            # and the packet's first lines before converting/processing.
            self.cpu.prefetch(ref.cqe_addr, 64)
            if ref.mbuf_addr:
                self.cpu.prefetch(ref.mbuf_addr, 128)
            self.cpu.prefetch(ref.meta_addr, 128)
            self.cpu.prefetch(ref.data_addr, 128)
            if rx_fn is not None:
                rx_fn(self.cpu, ref.meta_addr, ref.mbuf_addr, ref.cqe_addr,
                      ref.data_addr, 0)
            elif interpret:
                execute_interpreted(self.cpu, self.rx_exec, ref.meta_addr,
                                    ref.mbuf_addr, ref.cqe_addr,
                                    ref.data_addr, 0)
            else:
                execute_bases(self.cpu, self.rx_exec, ref.meta_addr,
                              ref.mbuf_addr, ref.cqe_addr, ref.data_addr, 0)
            pkt.mbuf = ref
            out.append(pkt)
        if spans is not None:
            spans.pop()
        # Replenish the RX ring with as many buffers as were consumed
        # (topping up any deficit a previous allocation failure left).
        self._replenish_rx(self.cpu)
        return out

    # -- TX -----------------------------------------------------------------------

    def tx_burst(self, packets: List[Packet]) -> int:
        """Transmit a batch; returns the number of packets sent."""
        if not packets:
            return 0
        self.cpu.charge_compute(BURST_OVERHEAD_INSTRUCTIONS)
        injector = self.nic.faults
        blocked = injector is not None and injector.tx_blocked(self.nic.port)
        tx_fn = self._tx_fn
        interpret = self._interpret
        sent = 0
        for pkt in packets:
            ref = pkt.mbuf
            if ref is None:
                raise ValueError("packet has no attached DPDK buffer")
            if blocked or self.nic.tx_ring.is_full():
                # TX backpressure: refuse the rest of the burst as counted
                # drops and let the driver loop kill the unsent packets.
                self.nic.counters.tx_full += len(packets) - sent
                break
            wqe_addr = self.nic.transmit(ref, len(pkt))
            if tx_fn is not None:
                tx_fn(self.cpu, ref.meta_addr, ref.mbuf_addr, wqe_addr,
                      ref.data_addr, 0)
            elif interpret:
                execute_interpreted(self.cpu, self.tx_exec, ref.meta_addr,
                                    ref.mbuf_addr, wqe_addr, ref.data_addr, 0)
            else:
                execute_bases(self.cpu, self.tx_exec, ref.meta_addr,
                              ref.mbuf_addr, wqe_addr, ref.data_addr, 0)
            ticket = pkt.qos_ticket
            if ticket is not None:
                # Transmitted: the frame leaves the ingress buffer.
                pkt.qos_ticket = None
                ticket[0].drain(ticket[1])
            sent += 1
        self.cpu.charge_ns(DOORBELL_NS)
        for ref in self.nic.reap_tx(TX_FREE_THRESHOLD):
            self.model.release(ref, self.cpu)
        return sent

    def drain_tx(self) -> None:
        """Release every in-flight TX buffer (end of run)."""
        for ref in self.nic.reap_tx(0):
            self.model.release(ref, self.cpu)

    def recover(self) -> None:
        """Watchdog recovery: reap all TX completions, refill the RX ring.

        This is the reset a stalled pipeline needs after a fault window
        closes -- buffers stuck on the TX ring go back to the pool, and
        the RX ring is topped up so polling can make progress again.
        """
        self.drain_tx()
        self._replenish_rx(self.cpu)


def build_pmd(
    nic: Nic,
    model: MetadataModel,
    cpu,
    space,
    params,
    lto: bool = False,
    registry: Optional[LayoutRegistry] = None,
) -> Tuple[MlxPmd, LayoutRegistry]:
    """Wire a model + NIC + core into a ready PMD.

    Returns the PMD and the layout registry used (shared with the element
    compiler so reordering passes see the same layouts).
    """
    if registry is None:
        registry = LayoutRegistry()
    model.setup(space, params)
    model.register_layouts(registry)
    pmd = MlxPmd(nic, model, cpu, registry, lto=lto)
    return pmd, registry
