"""The NIC hardware model (ConnectX-5 class).

The NIC side of packet I/O is free for the CPU but not for the memory
system: received frames and their completion-queue entries are DMA-written
through DDIO into the LLC, and transmitted frames are DMA-read out of it.
Under saturation the NIC always has a frame ready for every posted RX
buffer, which is how the throughput experiments drive the device under
test; open-loop arrival timing for the latency experiments is layered on
top by :mod:`repro.perf.loadlatency`.

Degraded operation is modelled the way real hardware reports it -- as
counters, not exceptions (:class:`NicCounters`, mirroring DPDK's
``rte_eth_stats``/xstats).  When a :class:`repro.faults.FaultInjector` is
attached (``nic.faults``), arriving frames can be withheld (link flaps,
CQE stalls, underruns), damaged in place (truncation, corruption), or
lost for want of a posted descriptor (``imissed``).  Without an injector
the delivery path is byte-identical to the fault-free model.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Tuple

from repro.dpdk.mbuf import CQE_SIZE, TX_WQE_SIZE, BufferRef
from repro.dpdk.ring import DescriptorRing
from repro.net.packet import Packet


@dataclass
class NicCounters:
    """Drop/error accounting, mirroring DPDK's port stats and xstats."""

    rx_nombuf: int = 0        # RX replenish failed: mempool empty
    imissed: int = 0          # frame arrived with no posted descriptor
    rx_errors: int = 0        # damaged frames discarded by the PMD
    rx_truncated: int = 0     # ... of which runt/short frames
    rx_corrupt: int = 0       # ... of which checksum failures
    tx_full: int = 0          # packets refused because the TX path was full
    link_down_polls: int = 0  # polls answered while the link was down
    cqe_stalls: int = 0       # polls answered while completions stalled
    rx_underruns: int = 0     # polls that found no frame ready

    def snapshot(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def add(self, other: "NicCounters") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)


class Nic:
    """One port of the simulated NIC, driven by a trace source."""

    def __init__(self, params, mem, space, trace, name: str = "nic0", port: int = 0):
        self.params = params
        self.mem = mem
        self.trace = trace
        self.name = name
        self.port = port
        self.rx_ring = DescriptorRing(space, params.rx_ring_size, 16, name + "_rxwq")
        self.cq = DescriptorRing(space, params.rx_ring_size, CQE_SIZE, name + "_cq")
        self.tx_ring = DescriptorRing(space, params.tx_ring_size, TX_WQE_SIZE, name + "_txwq")
        self._cq_index = 0
        self.rx_delivered = 0
        self.tx_sent = 0
        self.tx_bytes = 0
        self.counters = NicCounters()
        self.faults = None  # optional repro.faults.FaultInjector
        self.trace_exhausted = False

    # -- RX side --------------------------------------------------------------

    def post_rx(self, ref: BufferRef) -> None:
        """PMD posts an empty buffer for the NIC to fill."""
        self.rx_ring.push(ref)

    @property
    def rx_posted(self) -> int:
        return self.rx_ring.count

    def deliver(self, max_n: int) -> List[Tuple[BufferRef, Packet]]:
        """Hardware receive: DMA up to ``max_n`` frames into posted buffers.

        Each delivery DMA-writes the frame into the buffer's data room and
        a CQE into the completion queue (both via DDIO), then hands
        (buffer, packet) to the PMD.  A finite trace ends deliveries
        cleanly (``trace_exhausted``); an attached fault injector may
        shrink the budget, damage frames, or -- when the RX ring has run
        dry under it -- count the frames that kept arriving as ``imissed``
        drops, exactly as a saturating source would produce on real
        hardware.
        """
        injector = self.faults
        budget = max_n
        if injector is not None:
            budget = injector.rx_budget(self, max_n)
        out = []
        for _ in range(budget):
            if self.rx_ring.is_empty():
                if injector is not None:
                    # Saturated source: frames keep arriving; with no
                    # posted descriptor the hardware drops them.
                    self.counters.imissed += budget - len(out)
                break
            _, ref = self.rx_ring.pop()
            try:
                pkt = self.trace.next_packet()
            except StopIteration:
                # Finite trace drained: re-post the unfilled buffer and
                # end deliveries cleanly with stats intact.
                self.trace_exhausted = True
                self.rx_ring.push(ref)
                break
            pkt.port = self.port
            if injector is not None:
                injector.mutate_frame(pkt, self.port)
            self.mem.dma_write(ref.data_addr, len(pkt))
            cqe_addr = self.cq.slot_addr(self._cq_index)
            self._cq_index += 1
            self.mem.dma_write(cqe_addr, CQE_SIZE)
            ref.cqe_addr = cqe_addr
            self.rx_delivered += 1
            out.append((ref, pkt))
        return out

    # -- TX side ----------------------------------------------------------------

    def transmit(self, ref: BufferRef, frame_len: int) -> int:
        """Hardware transmit: DMA-read the frame; returns the WQE slot addr."""
        slot = self.tx_ring.push(ref)
        self.mem.dma_read(ref.data_addr, frame_len)
        self.tx_sent += 1
        self.tx_bytes += frame_len
        return self.tx_ring.slot_addr(slot)

    def reap_tx(self, threshold: int) -> List[BufferRef]:
        """Return buffers whose transmission completed (ring past threshold)."""
        done = []
        while self.tx_ring.count > threshold:
            _, ref = self.tx_ring.pop()
            done.append(ref)
        return done
