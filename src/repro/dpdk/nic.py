"""The NIC hardware model (ConnectX-5 class).

The NIC side of packet I/O is free for the CPU but not for the memory
system: received frames and their completion-queue entries are DMA-written
through DDIO into the LLC, and transmitted frames are DMA-read out of it.
Under saturation the NIC always has a frame ready for every posted RX
buffer, which is how the throughput experiments drive the device under
test; open-loop arrival timing for the latency experiments is layered on
top by :mod:`repro.perf.loadlatency`.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.dpdk.mbuf import CQE_SIZE, TX_WQE_SIZE, BufferRef
from repro.dpdk.ring import DescriptorRing
from repro.net.packet import Packet


class Nic:
    """One port of the simulated NIC, driven by a trace source."""

    def __init__(self, params, mem, space, trace, name: str = "nic0"):
        self.params = params
        self.mem = mem
        self.trace = trace
        self.name = name
        self.rx_ring = DescriptorRing(space, params.rx_ring_size, 16, name + "_rxwq")
        self.cq = DescriptorRing(space, params.rx_ring_size, CQE_SIZE, name + "_cq")
        self.tx_ring = DescriptorRing(space, params.tx_ring_size, TX_WQE_SIZE, name + "_txwq")
        self._cq_index = 0
        self.rx_delivered = 0
        self.tx_sent = 0
        self.tx_bytes = 0

    # -- RX side --------------------------------------------------------------

    def post_rx(self, ref: BufferRef) -> None:
        """PMD posts an empty buffer for the NIC to fill."""
        self.rx_ring.push(ref)

    @property
    def rx_posted(self) -> int:
        return self.rx_ring.count

    def deliver(self, max_n: int) -> List[Tuple[BufferRef, Packet]]:
        """Hardware receive: DMA up to ``max_n`` frames into posted buffers.

        Each delivery DMA-writes the frame into the buffer's data room and
        a CQE into the completion queue (both via DDIO), then hands
        (buffer, packet) to the PMD.
        """
        out = []
        for _ in range(max_n):
            if self.rx_ring.is_empty():
                break
            _, ref = self.rx_ring.pop()
            pkt = self.trace.next_packet()
            pkt.port = 0
            self.mem.dma_write(ref.data_addr, len(pkt))
            cqe_addr = self.cq.slot_addr(self._cq_index)
            self._cq_index += 1
            self.mem.dma_write(cqe_addr, CQE_SIZE)
            ref.cqe_addr = cqe_addr
            self.rx_delivered += 1
            out.append((ref, pkt))
        return out

    # -- TX side ----------------------------------------------------------------

    def transmit(self, ref: BufferRef, frame_len: int) -> int:
        """Hardware transmit: DMA-read the frame; returns the WQE slot addr."""
        slot = self.tx_ring.push(ref)
        self.mem.dma_read(ref.data_addr, frame_len)
        self.tx_sent += 1
        self.tx_bytes += frame_len
        return self.tx_ring.slot_addr(slot)

    def reap_tx(self, threshold: int) -> List[BufferRef]:
        """Return buffers whose transmission completed (ring past threshold)."""
        done = []
        while self.tx_ring.count > threshold:
            _, ref = self.tx_ring.pop()
            done.append(ref)
        return done
