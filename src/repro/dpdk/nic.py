"""The NIC hardware model (ConnectX-5 class).

The NIC side of packet I/O is free for the CPU but not for the memory
system: received frames and their completion-queue entries are DMA-written
through DDIO into the LLC, and transmitted frames are DMA-read out of it.
Under saturation the NIC always has a frame ready for every posted RX
buffer, which is how the throughput experiments drive the device under
test; open-loop arrival timing for the latency experiments is layered on
top by :mod:`repro.perf.loadlatency`.

Degraded operation is modelled the way real hardware reports it -- as
counters, not exceptions (:class:`NicCounters`, mirroring DPDK's
``rte_eth_stats``/xstats).  When a :class:`repro.faults.FaultInjector` is
attached (``nic.faults``), arriving frames can be withheld (link flaps,
CQE stalls, underruns), damaged in place (truncation, corruption), or
lost for want of a posted descriptor (``imissed``).  Without an injector
the delivery path is byte-identical to the fault-free model.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.dpdk.mbuf import CQE_SIZE, TX_WQE_SIZE, BufferRef
from repro.dpdk.ring import DescriptorRing
from repro.net.packet import Packet
from repro.net.rss import IndirectionTable, RssConfig, ToeplitzKey, parse_flow, toeplitz_v4
from repro.telemetry.registry import CounterRegistry

#: Every xstat the port exposes, in DPDK display order.
NIC_FIELDS = (
    "rx_nombuf",        # RX replenish failed: mempool empty
    "imissed",          # frame arrived with no posted descriptor
    "rx_errors",        # damaged frames discarded by the PMD
    "rx_truncated",     # ... of which runt/short frames
    "rx_corrupt",       # ... of which checksum failures
    "tx_full",          # packets refused because the TX path was full
    "link_down_polls",  # polls answered while the link was down
    "cqe_stalls",       # polls answered while completions stalled
    "rx_underruns",     # polls that found no frame ready
)


class NicCounters:
    """Drop/error accounting, mirroring DPDK's port stats and xstats.

    A view over one registry scope, like
    :class:`repro.hw.counters.PerfCounters`: pass a shared ``registry``
    (and a ``nic.<port>`` style ``prefix``) to make the port's xstats
    first-class telemetry names; constructed bare it owns private
    storage, preserving the old dataclass behaviour.
    """

    FIELDS = NIC_FIELDS

    __slots__ = ("registry", "prefix", "_handles")

    def __init__(self, registry: Optional[CounterRegistry] = None,
                 prefix: str = "", **initial):
        self.registry = registry if registry is not None else CounterRegistry()
        if prefix and not prefix.endswith("."):
            prefix += "."
        self.prefix = prefix
        self._handles = {
            name: self.registry.counter(prefix + name) for name in NIC_FIELDS
        }
        for name, value in initial.items():
            if name not in NIC_FIELDS:
                raise TypeError("unexpected counter %r" % name)
            self._handles[name].value = value

    def snapshot(self) -> Dict[str, int]:
        return {name: self._handles[name].value for name in NIC_FIELDS}

    def add(self, other: "NicCounters") -> None:
        for name in NIC_FIELDS:
            self._handles[name].value += getattr(other, name)

    def reset(self) -> None:
        for name in NIC_FIELDS:
            self._handles[name].value = 0

    def __eq__(self, other) -> bool:
        if not isinstance(other, NicCounters):
            return NotImplemented
        return self.snapshot() == other.snapshot()

    def __repr__(self) -> str:
        nonzero = {
            name: value for name, value in self.snapshot().items() if value
        }
        return "NicCounters(%s)" % ", ".join(
            "%s=%r" % kv for kv in nonzero.items()
        )


def _xstat_property(name: str) -> property:
    def fget(self):
        return self._handles[name].value

    def fset(self, value):
        self._handles[name].value = value

    return property(fget, fset, doc="Port xstat %r (registry-backed)." % name)


for _name in NIC_FIELDS:
    setattr(NicCounters, _name, _xstat_property(_name))
del _name


class Nic:
    """One port of the simulated NIC, driven by a trace source."""

    def __init__(self, params, mem, space, trace, name: str = "nic0", port: int = 0,
                 registry: Optional[CounterRegistry] = None):
        self.params = params
        self.mem = mem
        self.trace = trace
        self.name = name
        self.port = port
        self.rx_ring = DescriptorRing(space, params.rx_ring_size, 16, name + "_rxwq")
        self.cq = DescriptorRing(space, params.rx_ring_size, CQE_SIZE, name + "_cq")
        self.tx_ring = DescriptorRing(space, params.tx_ring_size, TX_WQE_SIZE, name + "_txwq")
        self._cq_index = 0
        self.rx_delivered = 0
        self.tx_sent = 0
        self.tx_bytes = 0
        # With a shared registry the port's xstats live under nic.<port>.;
        # bare construction keeps them private, as before.
        self.counters = NicCounters(registry, "nic.%d" % port if registry else "")
        self.faults = None  # optional repro.faults.FaultInjector
        self.qos = None  # optional repro.qos.QosPort (ingress admission + PFC)
        self.trace_exhausted = False

    # -- RX side --------------------------------------------------------------

    def post_rx(self, ref: BufferRef) -> None:
        """PMD posts an empty buffer for the NIC to fill."""
        self.rx_ring.push(ref)

    @property
    def rx_posted(self) -> int:
        return self.rx_ring.count

    def deliver(self, max_n: int) -> List[Tuple[BufferRef, Packet]]:
        """Hardware receive: DMA up to ``max_n`` frames into posted buffers.

        Each delivery DMA-writes the frame into the buffer's data room and
        a CQE into the completion queue (both via DDIO), then hands
        (buffer, packet) to the PMD.  A finite trace ends deliveries
        cleanly (``trace_exhausted``); an attached fault injector may
        shrink the budget, damage frames, or -- when the RX ring has run
        dry under it -- count the frames that kept arriving as ``imissed``
        drops, exactly as a saturating source would produce on real
        hardware.
        """
        injector = self.faults
        budget = max_n
        if injector is not None:
            budget = injector.rx_budget(self, max_n)
        if self.qos is not None:
            return self._deliver_qos(budget, injector)
        out = []
        for _ in range(budget):
            if self.rx_ring.is_empty():
                if injector is not None:
                    # Saturated source: frames keep arriving; with no
                    # posted descriptor the hardware drops them.
                    self.counters.imissed += budget - len(out)
                break
            _, ref = self.rx_ring.pop()
            try:
                pkt = self.trace.next_packet()
            except StopIteration:
                # Finite trace drained: re-post the unfilled buffer and
                # end deliveries cleanly with stats intact.
                self.trace_exhausted = True
                self.rx_ring.push(ref)
                break
            if pkt is None:
                # Source has nothing for this queue right now (a sharded
                # ingest round spent its budget on other queues' frames).
                self.rx_ring.push(ref)
                break
            pkt.port = self.port
            if injector is not None:
                injector.mutate_frame(pkt, self.port)
            self.mem.dma_write(ref.data_addr, len(pkt))
            cqe_addr = self.cq.slot_addr(self._cq_index)
            self._cq_index += 1
            self.mem.dma_write(cqe_addr, CQE_SIZE)
            ref.cqe_addr = cqe_addr
            self.rx_delivered += 1
            out.append((ref, pkt))
        return out

    def _deliver_qos(self, budget: int, injector) -> List[Tuple[BufferRef, Packet]]:
        """Receive with ingress admission and PFC-aware source pacing.

        The QoS path differs from the plain loop in two ways: the trace
        is polled through its paced protocol (``begin_poll`` +
        ``poll_packet(paused)``, so paused priorities stop *offering*
        frames), and every arriving frame passes the MMU's admission
        check before it is DMA'd.  A refused frame never consumes the
        descriptor or enters the pipeline -- it is counted in the port's
        ``qos.*`` drop ledger, the buffer-level analogue of a priority
        drop xstat.
        """
        qos = self.qos
        trace = self.trace
        begin = getattr(trace, "begin_poll", None)
        if begin is not None:
            begin()
        poll = getattr(trace, "poll_packet", None)
        paused = qos.paused_priorities()
        out: List[Tuple[BufferRef, Packet]] = []
        for _ in range(budget):
            if self.rx_ring.is_empty():
                if injector is not None:
                    self.counters.imissed += budget - len(out)
                break
            _, ref = self.rx_ring.pop()
            try:
                pkt = poll(paused) if poll is not None else trace.next_packet()
            except StopIteration:
                self.trace_exhausted = True
                self.rx_ring.push(ref)
                break
            if pkt is None:
                # Source idle (or every backlogged priority paused) for
                # the rest of this poll round.
                self.rx_ring.push(ref)
                break
            pkt.port = self.port
            if not qos.admit(pkt):
                # Ingress buffer refused the frame: counted in the
                # qos.* ledger, descriptor left posted for the next one.
                self.rx_ring.push(ref)
                continue
            if injector is not None:
                injector.mutate_frame(pkt, self.port)
            self.mem.dma_write(ref.data_addr, len(pkt))
            cqe_addr = self.cq.slot_addr(self._cq_index)
            self._cq_index += 1
            self.mem.dma_write(cqe_addr, CQE_SIZE)
            ref.cqe_addr = cqe_addr
            self.rx_delivered += 1
            out.append((ref, pkt))
        return out

    # -- TX side ----------------------------------------------------------------

    def transmit(self, ref: BufferRef, frame_len: int) -> int:
        """Hardware transmit: DMA-read the frame; returns the WQE slot addr."""
        slot = self.tx_ring.push(ref)
        self.mem.dma_read(ref.data_addr, frame_len)
        self.tx_sent += 1
        self.tx_bytes += frame_len
        return self.tx_ring.slot_addr(slot)

    def reap_tx(self, threshold: int) -> List[BufferRef]:
        """Return buffers whose transmission completed (ring past threshold)."""
        done = []
        while self.tx_ring.count > threshold:
            _, ref = self.tx_ring.pop()
            done.append(ref)
        return done


class QueueTrace:
    """The trace-protocol view one RX queue has of a multi-queue port.

    Each per-core :class:`Nic` replica is constructed with one of these
    as its ``trace``: ``next_packet`` pulls from the owning
    :class:`MultiQueueNic`'s shared arrival stream, receiving only frames
    RSS steered to this queue.  ``None`` means "nothing for you this
    round" (the ingest budget went to other queues); ``StopIteration``
    means the shared trace is exhausted *and* this queue's backlog is
    drained -- the same clean-EOF signal :class:`FiniteTrace` produces.
    """

    __slots__ = ("port", "queue_id")

    def __init__(self, port: "MultiQueueNic", queue_id: int):
        self.port = port
        self.queue_id = queue_id

    def next_packet(self, timestamp: float = 0.0) -> Optional[Packet]:
        return self.port.pull(self.queue_id)

    def mean_frame_length(self) -> float:
        return self.port.trace.mean_frame_length()

    @property
    def flows(self):
        return self.port.trace.flows

    @property
    def backlog(self) -> int:
        return len(self.port.backlogs[self.queue_id])


class MultiQueueNic:
    """One physical port fanned out over N RX queues by RSS.

    Hardware RSS is a stage *in front of* the per-queue machinery: the
    port receives one arrival stream, Toeplitz-hashes each frame's
    5-tuple, and steers it through the indirection table to an RX queue.
    Here each RX/TX queue pair is a full :class:`Nic` instance (rings,
    xstats, fault injector, QoS) owned by one core's replica -- exactly
    DPDK's model, where ``rte_eth_rx_burst(port, queue)`` addresses a
    (port, queue) pair and xstats exist per queue.

    Steering is *pull-driven* to stay deterministic under round-robin
    core stepping: when queue ``q`` polls and its staging backlog is
    empty, the port ingests up to ``ingest_budget`` arrivals from the
    shared trace, appending each to its steered queue's backlog, until a
    frame for ``q`` shows up or the budget ends.  A backlog past
    ``backlog_cap`` (an overloaded queue under elephant flows) drops the
    frame and counts it -- ``imissed`` on the owning queue's xstats plus
    ``q<N>.dropped`` in the port's RSS ledger -- so conservation audits
    can close the books: ``ingested == sum(steered) + sum(dropped)``.

    Adaptive steering hooks (driven by :mod:`repro.net.steering`):

    - ``q<N>.occupancy`` gauges in the RSS ledger track each staging
      backlog live, so the control plane can watch imbalance build;
    - :meth:`enable_bucket_stats` adds per-RETA-entry accounting
      (``bucket<i>`` counters; their sum always equals ``ingested``);
    - :meth:`retarget_bucket` rewrites one RETA entry mid-run and
      reports how many frames of that bucket were staged on the old
      queue (they drain there -- exactly what hardware does on a RETA
      update -- which is the reordering exposure the cost model prices);
    - :meth:`enable_dispatch` sprays one saturating bucket's frames
      round-robin across every queue (RSS++-style software dispatch).

    None of these change a single counter until a steering policy turns
    them on: the default path stays bit-identical to static RSS.
    """

    def __init__(self, trace, n_queues: int, config: Optional[RssConfig] = None,
                 port: int = 0, name: str = "port0", burst: int = 32):
        if n_queues < 1:
            raise ValueError("need at least one RX queue")
        self.trace = trace
        self.n_queues = n_queues
        self.config = config or RssConfig()
        self.port = port
        self.name = name
        self.key = ToeplitzKey(self.config.key)
        self.table = IndirectionTable(n_queues, self.config.table_size)
        self.backlog_cap = self.config.backlog_cap
        self.ingest_budget = (self.config.ingest_budget
                              or max(64, 4 * burst * n_queues))
        self.backlogs: List[Deque[Packet]] = [deque() for _ in range(n_queues)]
        #: queue id -> per-core Nic replica (bound by the sharded builder).
        self.queues: List[Optional[Nic]] = [None] * n_queues
        self.exhausted = False
        # The port's RSS ledger; the sharded runtime mounts it at
        # ``rss.<port>.`` in the merged registry.
        self.registry = CounterRegistry()
        self._ingested = self.registry.counter("ingested")
        self._steered = [self.registry.counter("q%d.steered" % q)
                         for q in range(n_queues)]
        self._dropped = [self.registry.counter("q%d.dropped" % q)
                         for q in range(n_queues)]
        # Live staging-backlog depth per queue (rss.<port>.q<i>.occupancy
        # in the merged registry) -- the signal the steering loop and the
        # control plane watch while imbalance builds.
        self._occupancy = [self.registry.gauge("q%d.occupancy" % q)
                           for q in range(n_queues)]
        # Adaptive-steering state: inert (and costing nothing) until a
        # SteeringPolicy enables it.
        self._bucket_handles: Optional[List] = None
        self._reta_moves = None
        self._migration_drains = None
        self._dispatched = None
        #: RETA bucket -> round-robin cursor for software-dispatch mode.
        self.dispatch_buckets: Dict[int, int] = {}

    def queue_trace(self, queue_id: int) -> QueueTrace:
        if not 0 <= queue_id < self.n_queues:
            raise ValueError("queue %d out of range" % queue_id)
        return QueueTrace(self, queue_id)

    def bind_queue(self, queue_id: int, nic: Nic) -> None:
        """Associate the per-core ``Nic`` that services ``queue_id``."""
        self.queues[queue_id] = nic

    def steer(self, pkt: Packet) -> int:
        """RSS: hash the frame's 5-tuple, index the indirection table.

        With bucket stats enabled the frame is also charged to its RETA
        bucket; a bucket in software-dispatch mode overrides the table
        and sprays round-robin across every queue.
        """
        h = pkt.rss_hash
        if not h:
            tup = parse_flow(memoryview(pkt.buffer)[pkt.headroom:])
            h = toeplitz_v4(*tup, key=self.config.key) if tup else 0
            pkt.rss_hash = h
        entries = self.table.entries
        bucket = h % len(entries)
        if self._bucket_handles is not None:
            self._bucket_handles[bucket].value += 1
        if self.dispatch_buckets:
            cursor = self.dispatch_buckets.get(bucket)
            if cursor is not None:
                self.dispatch_buckets[bucket] = cursor + 1
                self._dispatched.value += 1
                return cursor % self.n_queues
        return entries[bucket]

    def pull(self, queue_id: int) -> Optional[Packet]:
        """One frame for ``queue_id``, ingesting shared arrivals as needed."""
        backlog = self.backlogs[queue_id]
        if backlog:
            pkt = backlog.popleft()
            self._occupancy[queue_id].value = len(backlog)
            return pkt
        if self.exhausted:
            raise StopIteration("port trace exhausted")
        trace = self.trace
        for _ in range(self.ingest_budget):
            try:
                pkt = trace.next_packet()
            except StopIteration:
                self.exhausted = True
                break
            self._ingested.value += 1
            q = self.steer(pkt)
            dest = self.backlogs[q]
            if len(dest) >= self.backlog_cap:
                # Overloaded queue: hardware would run out of descriptors
                # and count imissed on that queue.
                self._dropped[q].value += 1
                nic = self.queues[q]
                if nic is not None:
                    nic.counters.imissed += 1
                continue
            dest.append(pkt)
            self._steered[q].value += 1
            self._occupancy[q].value = len(dest)
            if q == queue_id:
                pkt = backlog.popleft()
                self._occupancy[queue_id].value = len(backlog)
                return pkt
        if backlog:
            pkt = backlog.popleft()
            self._occupancy[queue_id].value = len(backlog)
            return pkt
        if self.exhausted:
            raise StopIteration("port trace exhausted")
        return None

    # -- adaptive steering -----------------------------------------------------

    def enable_bucket_stats(self) -> None:
        """Start per-RETA-entry accounting (``bucket<i>`` counters).

        Idempotent.  Also creates the migration counters the rebalancer
        charges (``reta_moves``, ``migration_drains``, ``dispatched``),
        so none of these names exist -- and nothing is counted -- until
        a steering policy is attached.
        """
        if self._bucket_handles is not None:
            return
        self._bucket_handles = [
            self.registry.counter("bucket%d" % i)
            for i in range(len(self.table.entries))
        ]
        self._reta_moves = self.registry.counter("reta_moves")
        self._migration_drains = self.registry.counter("migration_drains")
        self._dispatched = self.registry.counter("dispatched")

    @property
    def bucket_stats_enabled(self) -> bool:
        return self._bucket_handles is not None

    def bucket_counts(self) -> Optional[List[int]]:
        """Lifetime packets per RETA bucket (``None`` until enabled)."""
        if self._bucket_handles is None:
            return None
        return [handle.value for handle in self._bucket_handles]

    def staged_in_bucket(self, index: int) -> int:
        """Frames of RETA bucket ``index`` staged on its current queue."""
        size = len(self.table.entries)
        index %= size
        queue = self.table.entries[index]
        return sum(1 for pkt in self.backlogs[queue]
                   if pkt.rss_hash % size == index)

    def retarget_bucket(self, index: int, queue: int) -> int:
        """Move one RETA entry to ``queue`` mid-run.

        Frames of the bucket already staged on the old queue stay there
        and drain in order -- exactly what hardware does on a RETA
        update (the conservation books keep closing because ``steered``
        was charged at append time).  Returns how many such frames were
        in flight: the migration's reordering exposure, counted in
        ``migration_drains``.
        """
        size = len(self.table.entries)
        index %= size
        old = self.table.entries[index]
        if old == queue:
            return 0
        staged = sum(1 for pkt in self.backlogs[old]
                     if pkt.rss_hash % size == index)
        self.table.retarget(index, queue)
        if self._reta_moves is not None:
            self._reta_moves.value += 1
            self._migration_drains.value += staged
        return staged

    def enable_dispatch(self, bucket: int) -> None:
        """Spray ``bucket``'s frames round-robin across every queue.

        The RSS++-style escape hatch for an elephant flow whose bucket
        alone saturates a core: packet-level dispatch trades that flow's
        ordering guarantee for balance.  Dispatched frames are counted
        in the port's ``dispatched`` ledger.
        """
        self.enable_bucket_stats()
        self.dispatch_buckets.setdefault(bucket % len(self.table.entries), 0)

    def retire_dispatch(self, bucket: int) -> None:
        """Return ``bucket`` to ordinary indirection-table steering."""
        self.dispatch_buckets.pop(bucket % len(self.table.entries), None)

    # -- accounting ----------------------------------------------------------

    @property
    def ingested(self) -> int:
        return self._ingested.value

    def steered(self, queue_id: Optional[int] = None) -> int:
        if queue_id is not None:
            return self._steered[queue_id].value
        return sum(c.value for c in self._steered)

    def dropped(self, queue_id: Optional[int] = None) -> int:
        if queue_id is not None:
            return self._dropped[queue_id].value
        return sum(c.value for c in self._dropped)

    def backlog_depths(self) -> List[int]:
        return [len(b) for b in self.backlogs]

    def drained(self) -> bool:
        """Trace exhausted and every staging backlog empty."""
        return self.exhausted and not any(self.backlogs)
