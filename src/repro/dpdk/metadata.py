"""The three metadata-management models of the paper's §2.2/§3.1.

Every model answers the same three questions:

1. *Which buffers get posted to the NIC?*  (mbufs from a mempool, or
   app-provided buffers for X-Change.)
2. *What does the driver execute per received/transmitted packet?*
   (expressed as IR programs over the CQE / rte_mbuf / Packet structs, so
   LTO inlining and field reordering apply to them like to any code.)
3. *Where does the application-visible metadata struct live?*  (its own
   pool for Copying, inside the mbuf for Overlaying, in a small recycled
   set of app buffers for X-Change.)

The app-visible struct is always registered under the layout name
``"Packet"``, so element IR is model-agnostic.
"""

from __future__ import annotations

import abc
from typing import List, Optional

from repro.compiler.ir import Compute, DirectCall, FieldAccess, PoolOp, Program
from repro.compiler.structlayout import Field, LayoutRegistry, StructLayout
from repro.dpdk.mbuf import (
    MBUF_DATA_ROOM,
    BufferRef,
    build_cqe_layout,
    build_mbuf_layout,
    build_tx_descriptor_layout,
)
from repro.dpdk.mempool import Mempool
from repro.dpdk.xchg_api import (
    RX_METADATA_ITEMS,
    TX_METADATA_ITEMS,
    ConversionSet,
    fastclick_conversions,
)

#: rte_mbuf fields the MLX5 PMD fills on RX (from the CQE).
MBUF_RX_FIELDS = (
    "data_off", "pkt_len", "data_len", "rss_hash",
    "vlan_tci", "ol_flags", "packet_type", "port",
)

#: CQE fields the PMD parses per completion.
CQE_RX_FIELDS = ("op_own", "byte_cnt", "rx_hash_result", "hdr_type_etc", "vlan_info")

#: Canonical app-metadata fields every model's "Packet" layout must expose.
PACKET_COMMON_FIELDS = (
    "buffer", "data_ptr", "length", "flags", "packet_type", "timestamp",
    "mac_header", "network_header", "transport_header",
    "aggregate_anno", "paint_anno", "vlan_anno", "rss_anno", "dst_ip_anno",
)

#: Fields the RX conversion writes into the app struct.
PACKET_RX_WRITES = ("buffer", "data_ptr", "length", "flags", "vlan_anno", "rss_anno", "timestamp")

#: Fields the TX path reads from the app struct.
PACKET_TX_READS = ("data_ptr", "length", "flags")

TX_DESCRIPTOR_WRITES = ("ctrl_opcode", "dseg_byte_count", "dseg_addr")


def _cqe_read_ops() -> List:
    ops = [FieldAccess("cqe", f, target="descriptor") for f in CQE_RX_FIELDS]
    ops.append(Compute(42, note="cqe-parse"))
    return ops


def _mbuf_write_ops() -> List:
    return [
        FieldAccess("rte_mbuf", f, write=True, target="packet_mbuf")
        for f in MBUF_RX_FIELDS
    ]


def _tx_descriptor_ops() -> List:
    ops = [
        FieldAccess("tx_descriptor", f, write=True, target="descriptor")
        for f in TX_DESCRIPTOR_WRITES
    ]
    ops.append(Compute(34, note="wqe-build"))
    return ops


class MetadataModel(abc.ABC):
    """Strategy object for one metadata-management model."""

    name: str = "abstract"
    reorder_allowed: bool = False
    #: Whether the model permits elements that hold packets across
    #: iterations (Queues, reordering) -- TinyNF does not.
    supports_buffering: bool = True

    def __init__(self):
        self.mempool: Optional[Mempool] = None

    # -- lifecycle ------------------------------------------------------------

    @abc.abstractmethod
    def setup(self, space, params) -> None:
        """Allocate pools/regions in the given address space."""

    @abc.abstractmethod
    def register_layouts(self, registry: LayoutRegistry) -> None:
        """Register driver structs and the app-visible "Packet" layout."""

    # -- buffer management -----------------------------------------------------

    @abc.abstractmethod
    def rx_buffer(self, cpu) -> BufferRef:
        """Produce one empty buffer to post to the NIC RX ring."""

    def try_rx_buffer(self, cpu) -> Optional[BufferRef]:
        """Like :meth:`rx_buffer`, but None on exhaustion (hot-path
        contract: callers degrade through ``rx_nombuf``, no try/except).

        Models whose buffer source cannot fail (X-Change recycles a
        fixed region) inherit this and never return None.
        """
        return self.rx_buffer(cpu)

    def on_rx(self, ref: BufferRef, cpu) -> BufferRef:
        """Finalize the app-visible metadata address after DMA completion."""
        return ref

    @abc.abstractmethod
    def release(self, ref: BufferRef, cpu) -> None:
        """Return a buffer whose transmission completed."""

    def allocate(self, cpu) -> BufferRef:
        """Produce a buffer for an app-originated packet (Tee clones,
        ICMP errors, generators) -- Click's Packet::make() path."""
        return self.on_rx(self.rx_buffer(cpu), cpu)

    def try_allocate(self, cpu) -> Optional[BufferRef]:
        """Like :meth:`allocate`, but None on exhaustion (clone callers
        count ``clone_alloc_failures`` instead of catching)."""
        ref = self.try_rx_buffer(cpu)
        return None if ref is None else self.on_rx(ref, cpu)

    # -- driver code (IR) ----------------------------------------------------------

    @abc.abstractmethod
    def rx_program(self) -> Program:
        """Per-packet RX metadata path (descriptor -> app metadata)."""

    @abc.abstractmethod
    def tx_program(self) -> Program:
        """Per-packet TX metadata path (app metadata -> descriptor)."""

    def _register_driver_layouts(self, registry: LayoutRegistry) -> None:
        registry.register(build_mbuf_layout())
        registry.register(build_cqe_layout())
        registry.register(build_tx_descriptor_layout())


def build_fastclick_packet_layout() -> StructLayout:
    """FastClick's ``Packet`` class in source order (Copying / X-Change).

    Mirrors ``include/click/packet.hh``: buffer bookkeeping first, header
    pointers and timestamp in the middle, the 48-byte annotation area at
    the end -- which is precisely why the hot RX fields (length, RSS/VLAN
    annotations) span all three cache lines until the reordering pass
    packs them together.
    """
    return StructLayout(
        "Packet",
        [
            # -- cache line 0: buffer bookkeeping ---------------------------
            Field("use_count", 4),
            Field("buffer", 8),
            Field("head", 8),
            Field("data_ptr", 8),
            Field("length", 4),
            Field("buffer_len", 4),
            Field("buffer_destructor", 8),
            Field("destructor_argument", 8),
            Field("next", 8),
            # -- cache line 1: headers, timestamp, flags ---------------------
            Field("prev", 8, align=64),
            Field("timestamp", 8),
            Field("mac_header", 8),
            Field("network_header", 8),
            Field("transport_header", 8),
            Field("device", 8),
            Field("packet_type", 4),
            Field("flags", 4),
            # -- cache line 2: the 48-B annotation area ----------------------
            Field("aggregate_anno", 4, align=64),
            Field("paint_anno", 1),
            Field("vlan_anno", 2),
            Field("rss_anno", 4),
            Field("dst_ip_anno", 4),
            Field("anno_rest", 33),
        ],
        min_size=192,
    )


#: How the overlay cast renames rte_mbuf fields into the app's "Packet"
#: view: an mbuf write by the PMD *is* a write of the aliased Packet
#: field.  The dataflow analysis uses this to credit the conversion's
#: mbuf stores as metadata definitions under the Overlaying model.
OVERLAY_MBUF_ALIAS = {
    "buf_addr": "buffer",
    "ol_flags": "flags",
    "data_len": "length",
    "vlan_tci": "vlan_anno",
    "rss_hash": "rss_anno",
}


def build_overlay_packet_layout() -> StructLayout:
    """The Overlaying model's "Packet": cast over the rte_mbuf, with the
    annotation area appended after the 128-byte mbuf struct (BESS-style)."""
    mbuf = build_mbuf_layout()
    alias = OVERLAY_MBUF_ALIAS
    fields = []
    for f in mbuf.fields:
        fields.append(Field(alias.get(f.name, f.name), f.size, f.align))
    # Annotations + FastClick extras live after the mbuf (offset >= 128).
    fields.extend(
        [
            Field("data_ptr", 8, align=64),
            Field("mac_header", 8),
            Field("network_header", 8),
            Field("transport_header", 8),
            Field("aggregate_anno", 4),
            Field("paint_anno", 1),
            Field("dst_ip_anno", 4, align=4),
            Field("anno_rest", 33),
        ]
    )
    return StructLayout("Packet", fields, min_size=256)


class CopyingModel(MetadataModel):
    """FastClick's default: copy driver metadata into a separate Packet pool.

    Two conversions per packet: CQE -> rte_mbuf (driver), then rte_mbuf ->
    Packet (application), plus mempool get/put for the mbuf and pool
    bookkeeping for the Packet object.
    """

    name = "copying"
    reorder_allowed = True

    def __init__(self, pool_objects: int = 4096):
        super().__init__()
        self.pool_objects = pool_objects
        self._packet_layout = build_fastclick_packet_layout()
        self._obj_region = None
        self._free_objs: List[int] = []
        self._obj_index_of = {}

    def setup(self, space, params) -> None:
        self.mempool = Mempool(space, n=params.rx_ring_size * 2 + 512)
        self._obj_region = space.alloc_heap(
            "click_packet_pool", self.pool_objects * self._packet_layout.size
        )
        # LIFO free stack, top = most recently freed (warmest).
        self._free_objs = list(range(self.pool_objects - 1, -1, -1))

    def register_layouts(self, registry: LayoutRegistry) -> None:
        self._register_driver_layouts(registry)
        registry.register(self._packet_layout)

    def rx_buffer(self, cpu) -> BufferRef:
        return self.mempool.get(cpu)

    def try_rx_buffer(self, cpu) -> Optional[BufferRef]:
        return self.mempool.try_get(cpu)

    def on_rx(self, ref: BufferRef, cpu) -> BufferRef:
        obj = self._free_objs.pop()
        meta = self._obj_region.base + obj * self._packet_layout.size
        out = ref.with_meta(meta)
        self._obj_index_of[meta] = obj
        return out

    def release(self, ref: BufferRef, cpu) -> None:
        self.mempool.put(ref, cpu)
        obj = self._obj_index_of.pop(ref.meta_addr, None)
        if obj is not None:
            self._free_objs.append(obj)

    def rx_program(self) -> Program:
        ops = list(_cqe_read_ops())
        ops.extend(_mbuf_write_ops())
        ops.append(PoolOp("get"))          # replenish mbuf for the RX ring
        ops.append(PoolOp("get", instructions=30.0))  # Click packet-pool pop
        # Application-side conversion: rte_mbuf -> Packet (the second copy).
        for f in ("buf_addr", "pkt_len", "data_len", "rss_hash", "vlan_tci", "ol_flags"):
            ops.append(FieldAccess("rte_mbuf", f, target="packet_mbuf"))
        for f in PACKET_RX_WRITES:
            ops.append(FieldAccess("Packet", f, write=True, target="packet_meta"))
        ops.append(Compute(85, note="copy-convert"))
        ops.append(Compute(52, note="rx-descriptor-maintenance"))
        return Program("pmd_rx_copying", ops)

    def tx_program(self) -> Program:
        ops = [FieldAccess("Packet", f, target="packet_meta") for f in PACKET_TX_READS]
        # Write back into the mbuf the PMD actually transmits from.
        for f in ("data_len", "pkt_len", "ol_flags"):
            ops.append(FieldAccess("rte_mbuf", f, write=True, target="packet_mbuf"))
        ops.extend(_tx_descriptor_ops())
        ops.append(PoolOp("put"))                      # mbuf free (deferred)
        ops.append(PoolOp("put", instructions=26.0))   # Packet object free
        ops.append(Compute(40, note="tx-housekeeping"))
        return Program("pmd_tx_copying", ops)


class OverlayingModel(MetadataModel):
    """BESS/FastClick-Light style: cast the mbuf, append annotations.

    One conversion (CQE -> rte_mbuf); the application reads driver fields
    in place and keeps its annotations in the bytes after the mbuf struct.
    """

    name = "overlaying"
    reorder_allowed = False  # layout is pinned to the rte_mbuf ABI
    #: The overlay cast makes the PMD's mbuf stores visible as Packet
    #: fields -- the dataflow analysis folds these into the RX defs.
    mbuf_alias = OVERLAY_MBUF_ALIAS

    def __init__(self):
        super().__init__()
        self._packet_layout = build_overlay_packet_layout()

    def setup(self, space, params) -> None:
        self.mempool = Mempool(space, n=params.rx_ring_size * 2 + 512)

    def register_layouts(self, registry: LayoutRegistry) -> None:
        self._register_driver_layouts(registry)
        registry.register(self._packet_layout)

    def rx_buffer(self, cpu) -> BufferRef:
        return self.mempool.get(cpu)  # meta_addr == mbuf_addr already

    def try_rx_buffer(self, cpu) -> Optional[BufferRef]:
        return self.mempool.try_get(cpu)

    def release(self, ref: BufferRef, cpu) -> None:
        self.mempool.put(ref, cpu)

    def rx_program(self) -> Program:
        ops = list(_cqe_read_ops())
        ops.extend(_mbuf_write_ops())
        ops.append(PoolOp("get"))  # replenish mbuf
        # Cast + annotation initialization (no copy).
        ops.append(FieldAccess("Packet", "data_ptr", write=True, target="packet_meta"))
        ops.append(FieldAccess("Packet", "mac_header", write=True, target="packet_meta"))
        ops.append(Compute(45, note="cast-init"))
        ops.append(Compute(52, note="rx-descriptor-maintenance"))
        return Program("pmd_rx_overlaying", ops)

    def tx_program(self) -> Program:
        ops = [FieldAccess("Packet", f, target="packet_meta") for f in PACKET_TX_READS]
        ops.extend(_tx_descriptor_ops())
        ops.append(PoolOp("put"))
        ops.append(Compute(40, note="tx-housekeeping"))
        return Program("pmd_tx_overlaying", ops)


class XChangeModel(MetadataModel):
    """The paper's contribution: the PMD writes app metadata directly.

    Conversion functions (``xchg_set_*``) replace raw mbuf stores; with LTO
    they inline to plain stores into the application's own Packet struct.
    Only ~`meta_buffers` metadata structs exist (RX burst + queue slack),
    so their cache lines stay warm, and buffers are *exchanged* with the
    driver instead of cycling through a mempool.
    """

    name = "xchange"
    reorder_allowed = False  # evaluated separately in the paper (§4.1 note)

    def __init__(self, conversions: Optional[ConversionSet] = None,
                 meta_buffers: int = 64):
        super().__init__()
        self.conversions = conversions or fastclick_conversions()
        self.meta_buffers = meta_buffers
        self._packet_layout = build_fastclick_packet_layout()
        self._meta_region = None
        self._data_region = None
        self._next_meta = 0
        self._next_data = 0
        self._n_data = 0

    APP_TX_BUFFERS = 256

    def setup(self, space, params) -> None:
        self._meta_region = space.alloc_heap(
            "xchg_meta", self.meta_buffers * self._packet_layout.size
        )
        self._n_data = params.rx_ring_size + params.tx_ring_size
        self._data_region = space.alloc_dma("xchg_data", self._n_data * MBUF_DATA_ROOM)
        self._app_region = space.alloc_dma(
            "xchg_app_tx", self.APP_TX_BUFFERS * MBUF_DATA_ROOM
        )
        self._next_app = 0

    def allocate(self, cpu) -> BufferRef:
        index = self._next_app
        self._next_app = (self._next_app + 1) % self.APP_TX_BUFFERS
        ref = BufferRef(
            index=self._n_data + index,
            mbuf_addr=0,
            data_addr=self._app_region.base + index * MBUF_DATA_ROOM,
        )
        return self.on_rx(ref, cpu)

    def try_allocate(self, cpu) -> BufferRef:
        # App TX buffers are a recycled region: allocation cannot fail.
        return self.allocate(cpu)

    def register_layouts(self, registry: LayoutRegistry) -> None:
        self._register_driver_layouts(registry)
        registry.register(self._packet_layout)

    def rx_buffer(self, cpu) -> BufferRef:
        index = self._next_data
        self._next_data = (self._next_data + 1) % self._n_data
        return BufferRef(
            index=index,
            mbuf_addr=0,  # no rte_mbuf involved
            data_addr=self._data_region.base + index * MBUF_DATA_ROOM,
        )

    def on_rx(self, ref: BufferRef, cpu) -> BufferRef:
        meta_index = self._next_meta
        self._next_meta = (self._next_meta + 1) % self.meta_buffers
        out = ref.with_meta(
            self._meta_region.base + meta_index * self._packet_layout.size
        )
        out.cqe_addr = ref.cqe_addr
        return out

    def release(self, ref: BufferRef, cpu) -> None:
        # Exchange semantics: the buffer simply becomes available again;
        # no freelist is touched (rx_buffer cycles the same region).
        return None

    def _conversion_target(self, item: str):
        """(struct, field, binding-target) for one conversion function."""
        struct, field = self.conversions.target_of(item)
        binding = "packet_meta" if struct == "Packet" else "packet_mbuf"
        return struct, field, binding

    def rx_program(self) -> Program:
        ops = list(_cqe_read_ops())
        # One conversion call per metadata item; LTO inlines these.
        for item in RX_METADATA_ITEMS:
            if item not in self.conversions.targets:
                continue  # minimal conversion sets skip items entirely
            struct, field, binding = self._conversion_target(item)
            ops.append(DirectCall(self.conversions.setter_name(item),
                                  overhead_instructions=3.0))
            ops.append(FieldAccess(struct, field, write=True, target=binding))
        ops.append(Compute(26, note="buffer-exchange"))
        ops.append(Compute(46, note="rx-descriptor-maintenance"))
        return Program("pmd_rx_xchange", ops)

    def tx_program(self) -> Program:
        ops = []
        for item in TX_METADATA_ITEMS:
            if item not in self.conversions.targets:
                continue
            struct, field, binding = self._conversion_target(item)
            ops.append(DirectCall(self.conversions.getter_name(item),
                                  overhead_instructions=3.0))
            ops.append(FieldAccess(struct, field, target=binding))
        ops.extend(_tx_descriptor_ops())
        ops.append(Compute(4, note="buffer-exchange"))
        ops.append(Compute(30, note="tx-housekeeping"))
        return Program("pmd_tx_xchange", ops)


def make_model(name: str) -> MetadataModel:
    """Factory by model name ("copying" | "overlaying" | "xchange" | "tinynf")."""
    from repro.dpdk.tinynf import TinyNfModel  # local: avoids an import cycle

    models = {
        "copying": CopyingModel,
        "overlaying": OverlayingModel,
        "xchange": XChangeModel,
        "tinynf": TinyNfModel,
    }
    try:
        return models[name]()
    except KeyError:
        raise ValueError("unknown metadata model %r (expected one of %s)"
                         % (name, ", ".join(sorted(models)))) from None
