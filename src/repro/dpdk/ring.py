"""Fixed-size descriptor rings (RX completion queue, TX work queue)."""

from __future__ import annotations

from typing import List, Optional

from repro.hw.layout import AddressSpace


class DescriptorRing:
    """A circular ring of fixed-size descriptor slots in DMA memory.

    The ring only tracks occupancy and slot addresses; the *contents* of
    descriptors are modelled by the IR programs that read/write them.
    """

    def __init__(self, space: AddressSpace, size: int, slot_size: int, name: str):
        if size < 1 or size & (size - 1):
            raise ValueError("ring size must be a positive power of two")
        self.size = size
        self.slot_size = slot_size
        self.region = space.alloc_dma(name, size * slot_size)
        self._entries: List[Optional[object]] = [None] * size
        self.head = 0  # consumer index
        self.tail = 0  # producer index
        self.count = 0

    def slot_addr(self, index: int) -> int:
        return self.region.base + (index % self.size) * self.slot_size

    @property
    def free_slots(self) -> int:
        return self.size - self.count

    def is_empty(self) -> bool:
        return self.count == 0

    def is_full(self) -> bool:
        return self.count == self.size

    def push(self, entry) -> int:
        """Produce one entry; returns the slot index used."""
        if self.is_full():
            raise OverflowError("ring full")
        index = self.tail % self.size
        self._entries[index] = entry
        self.tail += 1
        self.count += 1
        return index

    def pop(self):
        """Consume the oldest entry; returns (slot_index, entry)."""
        if self.is_empty():
            raise IndexError("ring empty")
        index = self.head % self.size
        entry = self._entries[index]
        self._entries[index] = None
        self.head += 1
        self.count -= 1
        return index, entry

    def peek(self):
        if self.is_empty():
            raise IndexError("ring empty")
        return self._entries[self.head % self.size]
