"""TinyNF's driver model (Pirelli & Candea, OSDI'20), for the §3.1 contrast.

TinyNF removes dynamic packet metadata entirely: buffers are statically
bound to ring slots, processed in place, and transmitted in order.  That
makes the driver even leaner than X-Change -- but, as the paper notes, it
"prevents buffering of packets, such as switching packets between cores,
reordering packets, and stream processing".  We reproduce both sides: the
lean cost profile *and* the restriction (building a configuration that
contains a buffering element under TinyNF fails).
"""

from __future__ import annotations

from repro.compiler.ir import Compute, FieldAccess, Program
from repro.dpdk.metadata import XChangeModel, _cqe_read_ops, _tx_descriptor_ops
from repro.dpdk.xchg_api import minimal_conversions


class BufferingNotSupportedError(RuntimeError):
    """A TinyNF build contains an element that holds packets."""


class TinyNfModel(XChangeModel):
    """Static per-slot buffers, minimal metadata, in-order processing."""

    name = "tinynf"
    reorder_allowed = False
    supports_buffering = False

    def __init__(self):
        super().__init__(conversions=minimal_conversions(), meta_buffers=64)

    def rx_program(self) -> Program:
        ops = list(_cqe_read_ops())
        # No allocation, no exchange: just stamp length and address into
        # the slot's static metadata.
        for item in ("buffer", "length"):
            struct, field, binding = self._conversion_target(item)
            ops.append(FieldAccess(struct, field, write=True, target=binding))
        ops.append(Compute(30, note="rx-descriptor-maintenance"))
        return Program("pmd_rx_tinynf", ops)

    def tx_program(self) -> Program:
        ops = []
        for item in ("buffer", "length"):
            struct, field, binding = self._conversion_target(item)
            ops.append(FieldAccess(struct, field, target=binding))
        ops.extend(_tx_descriptor_ops())
        ops.append(Compute(18, note="tx-in-order"))
        return Program("pmd_tx_tinynf", ops)
