"""Userspace NIC substrate: mbufs, mempools, rings, PCIe, and the PMD.

This package stands in for DPDK v20.02 plus a Mellanox ConnectX-5 NIC.
The poll-mode driver (:mod:`repro.dpdk.pmd`) implements the three metadata
management paths the paper compares -- Copying, Overlaying, and X-Change --
as lowered IR programs executed against the hardware model, so LTO and
struct reordering affect them exactly as they affect element code.
"""

from repro.dpdk.mbuf import (
    MBUF_DATA_ROOM,
    MBUF_HEADROOM,
    RTE_MBUF_SIZE,
    BufferRef,
    build_cqe_layout,
    build_mbuf_layout,
    build_tx_descriptor_layout,
)
from repro.dpdk.mempool import Mempool
from repro.dpdk.metadata import (
    CopyingModel,
    MetadataModel,
    OverlayingModel,
    XChangeModel,
    make_model,
)
from repro.dpdk.nic import Nic
from repro.dpdk.pcie import PcieModel
from repro.dpdk.pmd import MlxPmd, build_pmd
from repro.dpdk.ring import DescriptorRing

__all__ = [
    "BufferRef",
    "CopyingModel",
    "DescriptorRing",
    "MetadataModel",
    "OverlayingModel",
    "XChangeModel",
    "build_pmd",
    "make_model",
    "MBUF_DATA_ROOM",
    "MBUF_HEADROOM",
    "Mempool",
    "MlxPmd",
    "Nic",
    "PcieModel",
    "RTE_MBUF_SIZE",
    "build_cqe_layout",
    "build_mbuf_layout",
    "build_tx_descriptor_layout",
]
