"""DPDK mbuf layouts and buffer references.

Each mbuf is laid out as in DPDK: a 128-byte (two cache line) ``rte_mbuf``
metadata struct, a fixed headroom, and the data room the NIC DMAs frames
into.  The ``rte_mbuf`` field list below follows DPDK v20.02's
``rte_mbuf_core.h`` closely enough that the struct spans exactly the same
lines: the hot RX fields sit in cache line 0, the TX/chaining fields in
cache line 1.

The MLX5 completion-queue entry (CQE) and TX WQE layouts model the
driver-owned descriptors the PMD converts to and from -- these are
hardware ABI and therefore off-limits to the reordering pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.structlayout import Field, StructLayout

RTE_MBUF_SIZE = 128
MBUF_HEADROOM = 128
MBUF_DATA_ROOM = 2048
CQE_SIZE = 64
TX_WQE_SIZE = 64


def build_mbuf_layout() -> StructLayout:
    """The generic ``rte_mbuf`` struct (two cache lines)."""
    return StructLayout(
        "rte_mbuf",
        [
            # -- cache line 0: RX-hot fields -------------------------------
            Field("buf_addr", 8),
            Field("buf_iova", 8),
            Field("data_off", 2),
            Field("refcnt", 2),
            Field("nb_segs", 2),
            Field("port", 2),
            Field("ol_flags", 8),
            Field("packet_type", 4),
            Field("pkt_len", 4),
            Field("data_len", 2),
            Field("vlan_tci", 2),
            Field("rss_hash", 4),
            Field("vlan_tci_outer", 2),
            Field("buf_len", 2),
            Field("timestamp", 8),
            # -- cache line 1: TX / chaining fields -------------------------
            Field("next", 8, align=64),
            Field("tx_offload", 8),
            Field("pool", 8),
            Field("shinfo", 8),
            Field("priv_size", 2),
            Field("timesync", 2),
            Field("dynfield1", 12),
        ],
        min_size=RTE_MBUF_SIZE,
    )


def build_cqe_layout() -> StructLayout:
    """MLX5 RX completion-queue entry (one cache line, hardware-owned)."""
    return StructLayout(
        "cqe",
        [
            Field("packet_info", 4),
            Field("rx_hash_result", 4),
            Field("hdr_type_etc", 2),
            Field("vlan_info", 2),
            Field("lro_fields", 8),
            Field("flow_table_metadata", 4),
            Field("byte_cnt", 4),
            Field("timestamp", 8),
            Field("wqe_counter", 2),
            Field("validity", 1),
            Field("op_own", 1),
        ],
        min_size=CQE_SIZE,
    )


def build_tx_descriptor_layout() -> StructLayout:
    """MLX5 TX work-queue entry (hardware-owned)."""
    return StructLayout(
        "tx_descriptor",
        [
            Field("ctrl_opcode", 4),
            Field("ctrl_qpn_ds", 4),
            Field("ctrl_flags", 4),
            Field("ctrl_imm", 4),
            Field("eseg_checksum", 4),
            Field("eseg_mss_inline", 4),
            Field("dseg_byte_count", 4),
            Field("dseg_lkey", 4),
            Field("dseg_addr", 8),
        ],
        min_size=TX_WQE_SIZE,
    )


@dataclass
class BufferRef:
    """The concrete addresses backing one in-flight packet.

    ``meta_addr`` is where the *application-visible* metadata struct lives:
    inside the mbuf for Overlaying, in the app's Packet pool for Copying,
    in the app-provided X-Change buffer for X-Change.
    """

    index: int
    mbuf_addr: int
    data_addr: int
    meta_addr: int = 0
    cqe_addr: int = 0

    def with_meta(self, meta_addr: int) -> "BufferRef":
        return BufferRef(
            index=self.index,
            mbuf_addr=self.mbuf_addr,
            data_addr=self.data_addr,
            meta_addr=meta_addr,
            cqe_addr=self.cqe_addr,
        )
