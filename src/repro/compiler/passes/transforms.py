"""Per-program IR transformations (devirtualization, constants, inlining)."""

from __future__ import annotations

from repro.compiler.ir import (
    BranchHint,
    Compute,
    DirectCall,
    ParamRead,
    Program,
    VirtualCall,
)

DEAD_NOTE = "dead-if-constant"
FOLDABLE_NOTE = "foldable"
FOLDED_NOTE = "folded"

#: Fraction of a foldable compute op that constant propagation + loop
#: unrolling eliminates (branch tests on parameters, loop bookkeeping).
FOLD_FACTOR = 0.35


def devirtualize(program: Program) -> Program:
    """Replace virtual calls with direct calls (click-devirtualize).

    The indirect-branch misprediction risk disappears and the call gets
    cheaper, but the call itself remains -- matching the paper's remark
    that click-devirtualize "only defines the type of the function pointer
    rather than the actual object reference".
    """
    ops = []
    for op in program.ops:
        if isinstance(op, VirtualCall):
            ops.append(DirectCall(callee=op.callee))
        else:
            ops.append(op)
    return program.replaced(ops)


def embed_constants(program: Program) -> Program:
    """Embed configuration parameters as immediates.

    ``ParamRead`` ops vanish entirely (no load, no address arithmetic);
    compute marked *foldable* shrinks by :data:`FOLD_FACTOR` because the
    compiler can now constant-fold parameter tests and unroll loops with
    known trip counts; compute marked *dead-if-constant* is removed.
    """
    ops = []
    for op in program.ops:
        if isinstance(op, ParamRead):
            continue
        if isinstance(op, Compute):
            if op.note == DEAD_NOTE:
                continue
            if op.note == FOLDABLE_NOTE:
                # Re-noting keeps the pass idempotent: already-folded
                # compute cannot fold again.
                ops.append(
                    Compute(op.instructions * (1.0 - FOLD_FACTOR), note=FOLDED_NOTE)
                )
                continue
        ops.append(op)
    return program.replaced(ops)


def inline_calls(program: Program) -> Program:
    """Inline every remaining call (static graph + LTO whole-program view).

    Virtual calls are devirtualized first -- statically declaring the
    elements and their connections makes the concrete callee known -- then
    every call disappears along with its overhead.
    """
    ops = [
        op
        for op in program.ops
        if not isinstance(op, (DirectCall, VirtualCall))
    ]
    return program.replaced(ops)


def eliminate_dead_code(program: Program) -> Program:
    """Drop compute that the configured parameters make unreachable."""
    ops = [
        op
        for op in program.ops
        if not (isinstance(op, Compute) and op.note == DEAD_NOTE)
    ]
    return program.replaced(ops)


#: Fraction of scalar driver compute that SIMD batching retires per lane.
VECTOR_FACTOR = 0.6


def vectorize(program: Program, factor: float = VECTOR_FACTOR) -> Program:
    """Model the vectorized (SSE/AVX) PMD: batch descriptor parsing.

    The vectorized MLX5/ixgbe RX paths process four descriptors per SIMD
    step, shrinking the per-packet instruction count of the conversion
    loop.  Memory traffic is unchanged -- the same fields still get
    written -- which is why the paper argues a vectorized X-Change would
    keep its advantages (§4.6).
    """
    if not 0 < factor <= 1:
        raise ValueError("vector factor must be in (0, 1]")
    ops = []
    for op in program.ops:
        if isinstance(op, Compute):
            ops.append(Compute(op.instructions * factor, note=op.note))
        else:
            ops.append(op)
    return program.replaced(ops)


#: PGO's effect on the branches it has profiles for (BOLT/Propeller-class
#: layout: sub-ten-percent speedups on large apps, per the paper's §1).
PGO_BRANCH_FACTOR = 0.5
PGO_LAYOUT_FACTOR = 0.96


def profile_guided(program: Program) -> Program:
    """Apply profile-guided optimization to a *defined* workload's program.

    Basic-block reordering and branch-hinting halve the residual
    misprediction rates and trim front-end waste a few percent.  The
    paper's §5 caveat applies: this models the best case of a stable
    per-core workload (Metron-style traffic classes); varying workloads
    would see less.
    """
    ops = []
    for op in program.ops:
        if isinstance(op, BranchHint):
            ops.append(BranchHint(op.miss_rate * PGO_BRANCH_FACTOR, note=op.note))
        elif isinstance(op, VirtualCall):
            ops.append(
                VirtualCall(op.callee, miss_rate=op.miss_rate * PGO_BRANCH_FACTOR,
                            overhead_instructions=op.overhead_instructions)
            )
        elif isinstance(op, Compute):
            ops.append(Compute(op.instructions * PGO_LAYOUT_FACTOR, note=op.note))
        else:
            ops.append(op)
    return program.replaced(ops)
