"""PacketMill's optimization passes over the mini-IR.

Each pass is a pure function ``Program -> Program`` (or, for whole-program
passes, operates on all programs plus the layout registry), mirroring the
paper's §3.2 pipeline:

- :func:`devirtualize` -- click-devirtualize: indirect calls become direct.
- :func:`embed_constants` -- constant embedding: per-packet parameter loads
  fold into immediates; dependent dead code disappears.
- :func:`inline_calls` -- static graph / LTO: direct calls inline away.
- :func:`eliminate_dead_code` -- drop compute marked as unreachable for the
  configured element parameters.
- :func:`reorder_metadata` -- the custom LLVM-LTO pass: sort the metadata
  struct's fields by whole-program access count.
"""

from repro.compiler.passes.transforms import (
    devirtualize,
    eliminate_dead_code,
    embed_constants,
    inline_calls,
    profile_guided,
    vectorize,
)
from repro.compiler.passes.reorder import reorder_metadata

__all__ = [
    "devirtualize",
    "eliminate_dead_code",
    "embed_constants",
    "inline_calls",
    "profile_guided",
    "reorder_metadata",
    "vectorize",
]
