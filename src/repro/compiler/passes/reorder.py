"""The metadata struct-field reordering pass (the paper's LLVM-LTO pass).

Operating on the whole program (all elements' IR at once, as LTO sees it),
the pass counts references to each field of the target metadata struct,
produces a layout sorted by descending access count, and swaps it into the
registry so that lowering resolves every ``getelementptr``-equivalent
against the new offsets.

Like the paper's prototype, it refuses to reorder structs whose layout is
shared with hardware or with code outside the visible program: only the
application-owned metadata struct (FastClick's ``Packet``) is safe, and
only under the Copying model, where the struct does not overlay DPDK's
``rte_mbuf``.
"""

from __future__ import annotations

from typing import Iterable

from repro.compiler.ir import Program, merge_access_counts
from repro.compiler.structlayout import LayoutRegistry, StructLayout

#: Structs whose layout is an ABI with hardware or with non-visible code.
HARDWARE_OWNED = frozenset({"rte_mbuf", "cqe", "tx_descriptor", "rx_descriptor"})


class ReorderError(ValueError):
    """Raised when reordering a struct would break correctness."""


def reorder_metadata(
    programs: Iterable[Program],
    registry: LayoutRegistry,
    struct: str = "Packet",
) -> StructLayout:
    """Reorder ``struct``'s fields by whole-program access count.

    Mutates ``registry`` (the active layout is replaced) and returns the
    new layout.  Raises :class:`ReorderError` for hardware-owned structs.
    """
    if struct in HARDWARE_OWNED:
        raise ReorderError(
            "struct %r exchanges data with hardware; reordering would break "
            "the DMA descriptor format" % struct
        )
    counts = merge_access_counts(list(programs), struct)
    layout = registry.get(struct)
    new_layout = layout.reordered(counts)
    registry.replace(struct, new_layout)
    return new_layout
