"""Lowering: resolve IR programs into compact executable cost programs.

After the passes run, each element's :class:`~repro.compiler.ir.Program`
is lowered against the *active* struct layouts into an
:class:`ExecProgram`: a flat bundle of per-packet instruction counts,
expected branch misses, and concrete memory operations (region tag +
offset + size).  The run-time driver executes ExecPrograms against the
hardware model without any further symbol resolution -- the moral
equivalent of machine code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.compiler.ir import (
    BranchHint,
    Compute,
    DataAccess,
    DirectCall,
    FieldAccess,
    ParamRead,
    PoolOp,
    Program,
    RandomAccess,
    StateAccess,
    VirtualCall,
)
from repro.compiler.structlayout import LayoutRegistry

# Memory-op target tags, resolved to base addresses at execution time.
TARGET_PACKET_META = "packet_meta"
TARGET_PACKET_MBUF = "packet_mbuf"
TARGET_DESCRIPTOR = "descriptor"
TARGET_STATE = "state"
TARGET_DATA = "data"

VALID_TARGETS = frozenset(
    {TARGET_PACKET_META, TARGET_PACKET_MBUF, TARGET_DESCRIPTOR, TARGET_STATE, TARGET_DATA}
)


@dataclass(frozen=True)
class MemOp:
    """One resolved per-packet memory access."""

    target: str
    offset: int
    size: int
    write: bool = False


@dataclass
class ExecProgram:
    """The lowered per-packet cost program of one element."""

    name: str
    instructions: float = 0.0
    branch_miss_expect: float = 0.0
    virtual_calls: int = 0
    mem_ops: List[MemOp] = field(default_factory=list)
    random_ops: List[Tuple[int, int]] = field(default_factory=list)  # (footprint, count)
    pool_gets: int = 0
    pool_puts: int = 0

    def memory_footprint_lines(self, target: str, line_size: int = 64) -> int:
        """Distinct lines this program touches in one target region."""
        lines = set()
        for op in self.mem_ops:
            if op.target != target:
                continue
            lines.update(
                range(op.offset // line_size, (op.offset + op.size - 1) // line_size + 1)
            )
        return len(lines)


def lower(program: Program, registry: LayoutRegistry) -> ExecProgram:
    """Resolve one IR program against the active layouts."""
    out = ExecProgram(name=program.name)
    for op in program.ops:
        if isinstance(op, Compute):
            out.instructions += op.instructions
        elif isinstance(op, FieldAccess):
            if op.target not in VALID_TARGETS:
                raise ValueError("unknown access target %r" % op.target)
            offset, size = registry.resolve(op.struct, op.fieldname)
            out.mem_ops.append(MemOp(op.target, offset, size, op.write))
            out.instructions += 1
        elif isinstance(op, DataAccess):
            out.mem_ops.append(MemOp(TARGET_DATA, op.offset, op.size, op.write))
            out.instructions += 1
        elif isinstance(op, StateAccess):
            out.mem_ops.append(MemOp(TARGET_STATE, op.offset, op.size, op.write))
            out.instructions += 1
        elif isinstance(op, ParamRead):
            out.mem_ops.append(MemOp(TARGET_STATE, op.offset, op.size, False))
            out.instructions += 1 + op.folded_instructions
        elif isinstance(op, VirtualCall):
            out.branch_miss_expect += op.miss_rate
            out.instructions += op.overhead_instructions
            out.virtual_calls += 1
        elif isinstance(op, DirectCall):
            out.instructions += op.overhead_instructions
        elif isinstance(op, BranchHint):
            out.branch_miss_expect += op.miss_rate
            out.instructions += 1
        elif isinstance(op, RandomAccess):
            out.random_ops.append((op.footprint, op.count))
            out.instructions += 2 * op.count  # address generation
        elif isinstance(op, PoolOp):
            out.instructions += op.instructions
            if op.kind == "get":
                out.pool_gets += 1
            elif op.kind == "put":
                out.pool_puts += 1
            else:
                raise ValueError("unknown pool op kind %r" % op.kind)
        else:
            raise TypeError("cannot lower op %r" % (op,))
    return out
