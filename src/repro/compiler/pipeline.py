"""Pass manager: ordered, observable application of the IR passes.

LLVM's pass-manager discipline, miniaturized: passes run in a declared
order, each application is recorded (op/instruction deltas), and the
whole pipeline can be rendered as a report -- which is how the examples
and tests show *what the mill actually did* to each element.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.compiler.ir import Compute, Program
from repro.compiler.passes import (
    devirtualize,
    eliminate_dead_code,
    embed_constants,
    inline_calls,
    profile_guided,
    vectorize,
)

PassFn = Callable[[Program], Program]


def _instruction_count(program: Program) -> float:
    total = 0.0
    for op in program.ops:
        if isinstance(op, Compute):
            total += op.instructions
    return total


@dataclass(frozen=True)
class PassRecord:
    """One pass applied to one program."""

    pass_name: str
    program_name: str
    ops_before: int
    ops_after: int
    compute_before: float
    compute_after: float

    @property
    def removed_ops(self) -> int:
        return self.ops_before - self.ops_after

    @property
    def changed(self) -> bool:
        return (
            self.removed_ops != 0 or self.compute_before != self.compute_after
        )


@dataclass
class PassManager:
    """Apply a named pass sequence, recording every application."""

    passes: List[Tuple[str, PassFn]] = field(default_factory=list)
    records: List[PassRecord] = field(default_factory=list)
    #: Debug-mode hook called as ``verifier(program, pass_name)`` after
    #: every pass application; :func:`repro.analyze.attach_verifier`
    #: installs the IR verifier here so the pass that introduced a
    #: violation is named at the point it ran.
    verifier: Optional[Callable[[Program, str], None]] = None

    def add(self, name: str, fn: PassFn) -> "PassManager":
        self.passes.append((name, fn))
        return self

    def run(self, program: Program) -> Program:
        for name, fn in self.passes:
            before_ops = len(program)
            before_compute = _instruction_count(program)
            program = fn(program)
            if self.verifier is not None:
                self.verifier(program, name)
            self.records.append(
                PassRecord(
                    pass_name=name,
                    program_name=program.name,
                    ops_before=before_ops,
                    ops_after=len(program),
                    compute_before=before_compute,
                    compute_after=_instruction_count(program),
                )
            )
        return program

    def run_all(self, programs: Sequence[Program]) -> List[Program]:
        return [self.run(program) for program in programs]

    # -- reporting ----------------------------------------------------------------

    def report(self, only_changed: bool = True) -> str:
        lines = ["pass pipeline: " + " -> ".join(name for name, _ in self.passes)]
        for record in self.records:
            if only_changed and not record.changed:
                continue
            lines.append(
                "  %-18s %-22s ops %d -> %d, compute %.0f -> %.0f"
                % (record.pass_name, record.program_name,
                   record.ops_before, record.ops_after,
                   record.compute_before, record.compute_after)
            )
        return "\n".join(lines)

    def total_removed_ops(self) -> int:
        return sum(record.removed_ops for record in self.records)

    @classmethod
    def from_options(cls, options, driver_code: bool = False) -> "PassManager":
        """The pipeline PacketMill runs for the given build options.

        ``driver_code`` selects the PMD-side pipeline, which additionally
        vectorizes (SIMD batch conversion applies to driver loops, not to
        element code).
        """
        manager = cls()
        if options.devirtualize or options.static_graph:
            manager.add("devirtualize", devirtualize)
        if options.constant_embedding:
            manager.add("embed-constants", embed_constants)
            manager.add("dead-code", eliminate_dead_code)
        if options.static_graph or options.lto:
            manager.add("inline", inline_calls)
        if driver_code and getattr(options, "vectorized_pmd", False):
            manager.add("vectorize", vectorize)
        if getattr(options, "pgo", False):
            manager.add("pgo", profile_guided)
        return manager
