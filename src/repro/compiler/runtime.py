"""Execution of lowered cost programs against the hardware model.

:func:`execute` charges one packet's worth of an :class:`ExecProgram` to a
:class:`~repro.hw.cpu.CpuCore`: issue bandwidth for the instruction count,
expected branch-miss penalties, and one cache-hierarchy access per memory
op, with the op's target tag resolved to a concrete base address through
the supplied :class:`Bindings`.

Because ``execute`` runs once per packet per element, the per-op work is
specialized: each program's memory ops are flattened once into a tuple of
``(target_index, offset, size, write)`` rows (cached on the program), so
the per-packet loop does tuple unpacking and an index into the base-address
tuple instead of dataclass attribute lookups and string compares.  The
sequence and arguments of the ``cpu`` charge calls are unchanged, so the
specialization is bit-exact.

This module is also home to the **execution-tier API**.  The runtime has
grown three bit-identical ways of charging a program:

- :data:`ExecutionTier.INTERPRETER` -- walk the lowered ``MemOp``
  dataclasses per packet (:func:`execute_interpreted`), the pre-PR4
  reference semantics;
- :data:`ExecutionTier.COMPILED` -- the cached op-tuple loop
  (:func:`execute_bases`), the default;
- :data:`ExecutionTier.CODEGEN` -- per-program generated Python
  (:mod:`repro.compiler.codegen`), constants and offsets baked into
  specialized source.

:func:`select_tier` is the one place tier and fast-path guard decisions
are made: callers describe their instrumentation (faults, watchdog,
telemetry) and get back a :class:`TierSelection` with the effective tier
and whether the route-memoization fast path may engage.  ``REPRO_TIER``
picks the requested tier per process; ``REPRO_ROUTE_MEMO`` governs the
fast path (``REPRO_FASTPATH`` remains a deprecated alias).
"""

from __future__ import annotations

import enum
import os
import warnings
from dataclasses import dataclass
from typing import Optional, Union

from repro.compiler.lower import (
    TARGET_DATA,
    TARGET_DESCRIPTOR,
    TARGET_PACKET_MBUF,
    TARGET_PACKET_META,
    TARGET_STATE,
    ExecProgram,
)

#: Target tag -> index into the (meta, mbuf, descriptor, data, state) tuple.
TARGET_INDEX = {
    TARGET_PACKET_META: 0,
    TARGET_PACKET_MBUF: 1,
    TARGET_DESCRIPTOR: 2,
    TARGET_DATA: 3,
    TARGET_STATE: 4,
}


@dataclass
class Bindings:
    """Base addresses the per-packet program's targets resolve to."""

    packet_meta: int = 0
    packet_mbuf: int = 0
    descriptor: int = 0
    data: int = 0
    state: int = 0

    def base_of(self, target: str) -> int:
        if target == TARGET_PACKET_META:
            return self.packet_meta
        if target == TARGET_PACKET_MBUF:
            return self.packet_mbuf
        if target == TARGET_DESCRIPTOR:
            return self.descriptor
        if target == TARGET_DATA:
            return self.data
        if target == TARGET_STATE:
            return self.state
        raise ValueError("unknown target %r" % target)


def compiled_ops(program: ExecProgram):
    """The program's memory ops as ``(target_index, offset, size, write)``
    rows, computed once and cached on the program object."""
    try:
        return program._compiled_ops
    except AttributeError:
        ops = tuple(
            (TARGET_INDEX[op.target], op.offset, op.size, op.write)
            for op in program.mem_ops
        )
        program._compiled_ops = ops
        return ops


def execute_bases(cpu, program: ExecProgram, meta: int, mbuf: int,
                  descriptor: int, data: int, state: int) -> None:
    """Charge one packet's execution with the base addresses unpacked.

    The fast entry point for the driver and PMD hot loops: no Bindings
    object is materialized.  Identical charge sequence to :func:`execute`.
    """
    cpu.charge_compute(program.instructions)
    if program.branch_miss_expect:
        cpu.charge_branch_miss(program.branch_miss_expect)
    try:
        ops = program._compiled_ops
    except AttributeError:
        ops = compiled_ops(program)
    if ops:
        bases = (meta, mbuf, descriptor, data, state)
        mem_access = cpu.mem_access
        for target, offset, size, write in ops:
            mem_access(bases[target] + offset, size, write, 0.0)
    if program.random_ops:
        random_access = cpu.random_access
        for footprint, count in program.random_ops:
            for _ in range(count):
                random_access(footprint, 0.0)


def execute(cpu, program: ExecProgram, bindings: Bindings) -> None:
    """Charge one packet's execution of ``program`` to ``cpu``.

    Instruction counts for memory/pool ops were already folded into
    ``program.instructions`` during lowering, so the accesses themselves
    charge latency only.
    """
    execute_bases(
        cpu,
        program,
        bindings.packet_meta,
        bindings.packet_mbuf,
        bindings.descriptor,
        bindings.data,
        bindings.state,
    )


def execute_interpreted(cpu, program: ExecProgram, meta: int, mbuf: int,
                        descriptor: int, data: int, state: int) -> None:
    """The reference interpreter: walk the lowered ops per packet.

    Resolves every :class:`~repro.compiler.lower.MemOp` through attribute
    access and a target-tag dict lookup on each packet -- the pre-PR4
    semantics the faster tiers must stay bit-identical to.
    """
    cpu.charge_compute(program.instructions)
    if program.branch_miss_expect:
        cpu.charge_branch_miss(program.branch_miss_expect)
    bases = (meta, mbuf, descriptor, data, state)
    for op in program.mem_ops:
        cpu.mem_access(bases[TARGET_INDEX[op.target]] + op.offset,
                       op.size, op.write, 0.0)
    for footprint, count in program.random_ops:
        for _ in range(count):
            cpu.random_access(footprint, 0.0)


# -- execution tiers -----------------------------------------------------------


class ExecutionTier(enum.Enum):
    """How lowered programs are charged to the hardware model."""

    INTERPRETER = "interpreter"
    COMPILED = "compiled"
    CODEGEN = "codegen"


#: Escalation order; falling back means moving left.
TIER_ORDER = (
    ExecutionTier.INTERPRETER,
    ExecutionTier.COMPILED,
    ExecutionTier.CODEGEN,
)

DEFAULT_TIER = ExecutionTier.COMPILED

_OFF_VALUES = ("0", "false", "off", "no")


def as_tier(value: Union[None, str, "ExecutionTier"]) -> Optional[ExecutionTier]:
    """Coerce a user-facing tier spelling to the enum (``None`` passes)."""
    if value is None or isinstance(value, ExecutionTier):
        return value
    try:
        return ExecutionTier(str(value).lower())
    except ValueError:
        raise ValueError(
            "unknown execution tier %r (expected %s)"
            % (value, "/".join(t.value for t in TIER_ORDER))
        ) from None


def tier_from_env() -> Optional[ExecutionTier]:
    """The process-wide requested tier (``REPRO_TIER``), if set."""
    raw = os.environ.get("REPRO_TIER", "").strip()
    if not raw:
        return None
    return as_tier(raw)


_fastpath_env_warned = False


def route_memo_from_env() -> bool:
    """Whether the packet-class route-memo fast path is requested.

    ``REPRO_ROUTE_MEMO`` is the current gate; ``REPRO_FASTPATH`` keeps
    working as a deprecated alias with a one-time warning.
    """
    value = os.environ.get("REPRO_ROUTE_MEMO")
    if value is not None:
        return value.lower() not in _OFF_VALUES
    legacy = os.environ.get("REPRO_FASTPATH")
    if legacy is not None:
        global _fastpath_env_warned
        if not _fastpath_env_warned:
            _fastpath_env_warned = True
            warnings.warn(
                "REPRO_FASTPATH is deprecated; use REPRO_ROUTE_MEMO or "
                "TierPolicy(route_memo=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        return legacy.lower() not in _OFF_VALUES
    return True


@dataclass(frozen=True)
class TierPolicy:
    """What the caller *wants*; ``None`` fields defer to the environment.

    - ``tier``: requested :class:`ExecutionTier` (``REPRO_TIER``,
      default :data:`DEFAULT_TIER`);
    - ``route_memo``: allow the pure-classifier route-memoization fast
      path (``REPRO_ROUTE_MEMO``, default on);
    - ``check``: replay generated kernels against the interpreter at
      compile time (``REPRO_TIER_CHECK``, default on).
    """

    tier: Union[None, str, ExecutionTier] = None
    route_memo: Optional[bool] = None
    check: Optional[bool] = None


@dataclass(frozen=True)
class TierSelection:
    """The effective execution decisions for one driver/PMD build."""

    tier: ExecutionTier
    route_memo: bool
    check: bool
    requested: ExecutionTier
    demoted: bool = False
    reason: str = ""


def as_policy(value) -> TierPolicy:
    """Coerce ``None`` / tier / spelling / policy to a :class:`TierPolicy`."""
    if value is None:
        return TierPolicy()
    if isinstance(value, TierPolicy):
        return value
    return TierPolicy(tier=as_tier(value))


def select_tier(
    policy: Union[None, str, ExecutionTier, TierPolicy] = None,
    *,
    faults: bool = False,
    watchdog: bool = False,
    telemetry: bool = False,
) -> TierSelection:
    """Resolve the effective tier and fast-path guards for one build.

    The single replacement for the scattered ``REPRO_FASTPATH`` checks:

    - the generated-code tier self-disables (falls back to the compiled
      tier) when fault injection or watchdog recovery is active, exactly
      like the PR 4 fast path -- instrumented runs keep the battle-tested
      interpreter loops;
    - the route-memo fast path additionally requires telemetry recorders
      to be off, because memoized routes skip per-packet ``process()``
      observation.
    """
    policy = as_policy(policy)
    requested = as_tier(policy.tier)
    if requested is None:
        requested = tier_from_env() or DEFAULT_TIER
    tier = requested
    demoted = False
    reason = ""
    if tier is ExecutionTier.CODEGEN and (faults or watchdog):
        tier = ExecutionTier.COMPILED
        demoted = True
        reason = "faults" if faults else "watchdog"
    route_memo = policy.route_memo
    if route_memo is None:
        route_memo = route_memo_from_env()
    route_memo = bool(route_memo and not (faults or watchdog or telemetry))
    check = policy.check
    if check is None:
        check = os.environ.get("REPRO_TIER_CHECK", "").lower() not in _OFF_VALUES
    return TierSelection(
        tier=tier,
        route_memo=route_memo,
        check=bool(check),
        requested=requested,
        demoted=demoted,
        reason=reason,
    )


__all__ = [
    "Bindings",
    "DEFAULT_TIER",
    "ExecutionTier",
    "TIER_ORDER",
    "TARGET_INDEX",
    "TierPolicy",
    "TierSelection",
    "as_policy",
    "as_tier",
    "compiled_ops",
    "execute",
    "execute_bases",
    "execute_interpreted",
    "route_memo_from_env",
    "select_tier",
    "tier_from_env",
]
