"""Execution of lowered cost programs against the hardware model.

:func:`execute` charges one packet's worth of an :class:`ExecProgram` to a
:class:`~repro.hw.cpu.CpuCore`: issue bandwidth for the instruction count,
expected branch-miss penalties, and one cache-hierarchy access per memory
op, with the op's target tag resolved to a concrete base address through
the supplied :class:`Bindings`.

Because ``execute`` runs once per packet per element, the per-op work is
specialized: each program's memory ops are flattened once into a tuple of
``(target_index, offset, size, write)`` rows (cached on the program), so
the per-packet loop does tuple unpacking and an index into the base-address
tuple instead of dataclass attribute lookups and string compares.  The
sequence and arguments of the ``cpu`` charge calls are unchanged, so the
specialization is bit-exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.lower import (
    TARGET_DATA,
    TARGET_DESCRIPTOR,
    TARGET_PACKET_MBUF,
    TARGET_PACKET_META,
    TARGET_STATE,
    ExecProgram,
)

#: Target tag -> index into the (meta, mbuf, descriptor, data, state) tuple.
TARGET_INDEX = {
    TARGET_PACKET_META: 0,
    TARGET_PACKET_MBUF: 1,
    TARGET_DESCRIPTOR: 2,
    TARGET_DATA: 3,
    TARGET_STATE: 4,
}


@dataclass
class Bindings:
    """Base addresses the per-packet program's targets resolve to."""

    packet_meta: int = 0
    packet_mbuf: int = 0
    descriptor: int = 0
    data: int = 0
    state: int = 0

    def base_of(self, target: str) -> int:
        if target == TARGET_PACKET_META:
            return self.packet_meta
        if target == TARGET_PACKET_MBUF:
            return self.packet_mbuf
        if target == TARGET_DESCRIPTOR:
            return self.descriptor
        if target == TARGET_DATA:
            return self.data
        if target == TARGET_STATE:
            return self.state
        raise ValueError("unknown target %r" % target)


def compiled_ops(program: ExecProgram):
    """The program's memory ops as ``(target_index, offset, size, write)``
    rows, computed once and cached on the program object."""
    try:
        return program._compiled_ops
    except AttributeError:
        ops = tuple(
            (TARGET_INDEX[op.target], op.offset, op.size, op.write)
            for op in program.mem_ops
        )
        program._compiled_ops = ops
        return ops


def execute_bases(cpu, program: ExecProgram, meta: int, mbuf: int,
                  descriptor: int, data: int, state: int) -> None:
    """Charge one packet's execution with the base addresses unpacked.

    The fast entry point for the driver and PMD hot loops: no Bindings
    object is materialized.  Identical charge sequence to :func:`execute`.
    """
    cpu.charge_compute(program.instructions)
    if program.branch_miss_expect:
        cpu.charge_branch_miss(program.branch_miss_expect)
    try:
        ops = program._compiled_ops
    except AttributeError:
        ops = compiled_ops(program)
    if ops:
        bases = (meta, mbuf, descriptor, data, state)
        mem_access = cpu.mem_access
        for target, offset, size, write in ops:
            mem_access(bases[target] + offset, size, write, 0.0)
    if program.random_ops:
        random_access = cpu.random_access
        for footprint, count in program.random_ops:
            for _ in range(count):
                random_access(footprint, 0.0)


def execute(cpu, program: ExecProgram, bindings: Bindings) -> None:
    """Charge one packet's execution of ``program`` to ``cpu``.

    Instruction counts for memory/pool ops were already folded into
    ``program.instructions`` during lowering, so the accesses themselves
    charge latency only.
    """
    execute_bases(
        cpu,
        program,
        bindings.packet_meta,
        bindings.packet_mbuf,
        bindings.descriptor,
        bindings.data,
        bindings.state,
    )
