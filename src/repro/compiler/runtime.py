"""Execution of lowered cost programs against the hardware model.

:func:`execute` charges one packet's worth of an :class:`ExecProgram` to a
:class:`~repro.hw.cpu.CpuCore`: issue bandwidth for the instruction count,
expected branch-miss penalties, and one cache-hierarchy access per memory
op, with the op's target tag resolved to a concrete base address through
the supplied :class:`Bindings`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.lower import (
    TARGET_DATA,
    TARGET_DESCRIPTOR,
    TARGET_PACKET_MBUF,
    TARGET_PACKET_META,
    TARGET_STATE,
    ExecProgram,
)


@dataclass
class Bindings:
    """Base addresses the per-packet program's targets resolve to."""

    packet_meta: int = 0
    packet_mbuf: int = 0
    descriptor: int = 0
    data: int = 0
    state: int = 0

    def base_of(self, target: str) -> int:
        if target == TARGET_PACKET_META:
            return self.packet_meta
        if target == TARGET_PACKET_MBUF:
            return self.packet_mbuf
        if target == TARGET_DESCRIPTOR:
            return self.descriptor
        if target == TARGET_DATA:
            return self.data
        if target == TARGET_STATE:
            return self.state
        raise ValueError("unknown target %r" % target)


def execute(cpu, program: ExecProgram, bindings: Bindings) -> None:
    """Charge one packet's execution of ``program`` to ``cpu``.

    Instruction counts for memory/pool ops were already folded into
    ``program.instructions`` during lowering, so the accesses themselves
    charge latency only.
    """
    cpu.charge_compute(program.instructions)
    if program.branch_miss_expect:
        cpu.charge_branch_miss(program.branch_miss_expect)
    for op in program.mem_ops:
        base = bindings.base_of(op.target)
        cpu.mem_access(base + op.offset, op.size, op.write, instructions=0.0)
    for footprint, count in program.random_ops:
        for _ in range(count):
            cpu.random_access(footprint, instructions=0.0)
