"""The mini-IR: per-packet operations an element or driver executes.

Every element contributes a straight-line :class:`Program` describing what
it does to *one* packet: which metadata fields it loads/stores, how many
packet-data bytes it reads, how much pure compute it burns, and which
calls/branches it makes.  The optimization passes transform these programs
(e.g. ``VirtualCall`` -> ``DirectCall`` -> inlined away) and the lowering
step resolves symbolic field references into concrete (region, offset)
memory operations against the active struct layouts.

The op vocabulary mirrors what PacketMill's LLVM pass sees: loads/stores
through ``getelementptr`` (FieldAccess), opaque compute, calls, and the
pool/alloc intrinsics of DPDK.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional


class Op:
    """Base class for IR operations (purely for isinstance grouping)."""

    __slots__ = ()


@dataclass(frozen=True)
class Compute(Op):
    """Opaque ALU work: ``instructions`` issued, no memory traffic."""

    instructions: float
    note: str = ""


@dataclass(frozen=True)
class FieldAccess(Op):
    """Load/store of one struct field, resolved via the layout registry.

    ``struct`` names a registered layout ("Packet", "rte_mbuf", "cqe", ...);
    the *instance* accessed is identified at run time by ``target``:

    - ``"packet_meta"``: the current packet's metadata buffer,
    - ``"packet_mbuf"``: the current packet's underlying rte_mbuf,
    - ``"descriptor"``: the current RX/TX descriptor slot.
    """

    struct: str
    fieldname: str
    write: bool = False
    target: str = "packet_meta"


@dataclass(frozen=True)
class DataAccess(Op):
    """Access to the packet's data buffer at a frame-relative offset."""

    offset: int
    size: int
    write: bool = False


@dataclass(frozen=True)
class StateAccess(Op):
    """Access to the element's own mutable state at a fixed offset."""

    offset: int
    size: int
    write: bool = False


@dataclass(frozen=True)
class ParamRead(Op):
    """Per-packet load of an element configuration parameter.

    Constant embedding replaces these with immediates, eliminating both the
    load and a little address arithmetic (``folded_instructions``).
    """

    param: str
    offset: int
    size: int = 8
    folded_instructions: float = 2.0


@dataclass(frozen=True)
class VirtualCall(Op):
    """Indirect call through a vtable/function pointer (graph traversal).

    Costs an indirect-branch misprediction with probability ``miss_rate``
    plus fixed call overhead.  Devirtualization turns it into
    :class:`DirectCall`.
    """

    callee: str
    miss_rate: float = 0.45
    overhead_instructions: float = 8.0


@dataclass(frozen=True)
class DirectCall(Op):
    """Direct call; LTO/static-graph inlining removes it entirely."""

    callee: str
    overhead_instructions: float = 4.0


@dataclass(frozen=True)
class BranchHint(Op):
    """A data-dependent branch with the given misprediction probability."""

    miss_rate: float
    note: str = ""


@dataclass(frozen=True)
class RandomAccess(Op):
    """Uniform random access into a large working set (WorkPackage).

    ``write`` distinguishes a mutable keyed table (a NAT's conntrack
    entries: inserts and timestamp stamps) from a read-only structure (a
    FIB trie, a static working set).  Lowering charges both identically;
    the flag exists for the sharding-safety lints, which must tell
    flow-keyed mutable state apart from shared read-only data.
    """

    footprint: int
    count: int = 1
    write: bool = False


@dataclass(frozen=True)
class PoolOp(Op):
    """DPDK mempool get/put: freelist pointer chase + bookkeeping."""

    kind: str  # "get" | "put"
    instructions: float = 60.0


class Program:
    """A named straight-line sequence of ops (one element's per-packet work)."""

    def __init__(self, name: str, ops: Optional[Iterable[Op]] = None):
        self.name = name
        self.ops: List[Op] = list(ops) if ops is not None else []

    def add(self, op: Op) -> "Program":
        self.ops.append(op)
        return self

    def extend(self, ops: Iterable[Op]) -> "Program":
        self.ops.extend(ops)
        return self

    def replaced(self, ops: Iterable[Op]) -> "Program":
        return Program(self.name, ops)

    def count(self, op_type) -> int:
        return sum(1 for op in self.ops if isinstance(op, op_type))

    def field_accesses(self, struct: Optional[str] = None) -> List[FieldAccess]:
        return [
            op
            for op in self.ops
            if isinstance(op, FieldAccess) and (struct is None or op.struct == struct)
        ]

    def access_counts(self, struct: str) -> dict:
        """Reference count per field of ``struct`` -- the reordering pass input."""
        counts: dict = {}
        for op in self.field_accesses(struct):
            counts[op.fieldname] = counts.get(op.fieldname, 0) + 1
        return counts

    def __iter__(self):
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:
        return "Program(%s, %d ops)" % (self.name, len(self.ops))


def merge_access_counts(programs: Iterable[Program], struct: str) -> dict:
    """Whole-program field reference counts, as LTO sees them."""
    totals: dict = {}
    for program in programs:
        for name, count in program.access_counts(struct).items():
            totals[name] = totals.get(name, 0) + count
    return totals


__all__ = [
    "BranchHint",
    "Compute",
    "DataAccess",
    "DirectCall",
    "FieldAccess",
    "Op",
    "ParamRead",
    "PoolOp",
    "Program",
    "RandomAccess",
    "StateAccess",
    "VirtualCall",
    "merge_access_counts",
]
