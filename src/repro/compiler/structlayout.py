"""Struct layouts: named fields with byte offsets and cache-line mapping.

C/C++ compilers may not reorder struct members (the paper's §3.2.2
"Challenges"), which is why PacketMill does it at the LLVM-IR level where
all references can be repaired.  Here a :class:`StructLayout` is the single
source of truth for where each metadata field lives; the reordering pass
produces a *new* layout sorted by access count and the lowering step
resolves every ``FieldAccess`` against whichever layout is active -- the
moral equivalent of rewriting every ``getelementptr``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class Field:
    """One struct member."""

    name: str
    size: int
    align: Optional[int] = None  # defaults to min(size, 8)

    @property
    def alignment(self) -> int:
        if self.align is not None:
            return self.align
        return min(self.size, 8) if self.size else 1


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)


class StructLayout:
    """An ordered set of fields with computed offsets (C layout rules)."""

    def __init__(self, name: str, fields: Iterable[Field], align: int = 64,
                 min_size: int = 0):
        self.name = name
        self.fields: List[Field] = list(fields)
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError("duplicate field names in %s" % name)
        self.align = align
        self._offsets: Dict[str, int] = {}
        offset = 0
        for f in self.fields:
            offset = _align_up(offset, f.alignment)
            self._offsets[f.name] = offset
            offset += f.size
        self.size = max(_align_up(offset, align), min_size)
        self._min_size = min_size

    def offset_of(self, field_name: str) -> int:
        try:
            return self._offsets[field_name]
        except KeyError:
            raise KeyError(
                "struct %s has no field %r" % (self.name, field_name)
            ) from None

    def field(self, field_name: str) -> Field:
        for f in self.fields:
            if f.name == field_name:
                return f
        raise KeyError("struct %s has no field %r" % (self.name, field_name))

    def has_field(self, field_name: str) -> bool:
        return field_name in self._offsets

    def cache_line_of(self, field_name: str, line_size: int = 64) -> int:
        return self.offset_of(field_name) // line_size

    def cache_lines(self, line_size: int = 64) -> int:
        """Total cache lines the struct spans."""
        return (self.size + line_size - 1) // line_size

    def lines_touched(self, field_names: Iterable[str], line_size: int = 64) -> int:
        """Distinct cache lines covered by accessing the given fields."""
        lines = set()
        for name in field_names:
            start = self.offset_of(name)
            end = start + self.field(name).size - 1
            lines.update(range(start // line_size, end // line_size + 1))
        return len(lines)

    def reordered(self, access_counts: Mapping[str, int],
                  name_suffix: str = "@reordered") -> "StructLayout":
        """The paper's LLVM pass: sort fields by descending access count.

        Unreferenced fields keep their relative order and sink to the end;
        ties preserve source order (stable sort), matching the pass that
        sorts on the *estimated* reference count only.
        """
        order = {f.name: i for i, f in enumerate(self.fields)}
        sorted_fields = sorted(
            self.fields,
            key=lambda f: (-access_counts.get(f.name, 0), order[f.name]),
        )
        return StructLayout(self.name + name_suffix, sorted_fields,
                            align=self.align, min_size=self._min_size)

    def __repr__(self) -> str:
        return "StructLayout(%s, %d fields, %dB)" % (self.name, len(self.fields), self.size)


class LayoutRegistry:
    """Maps struct names to their (possibly optimized) active layout."""

    def __init__(self):
        self._layouts: Dict[str, StructLayout] = {}

    def register(self, layout: StructLayout) -> StructLayout:
        self._layouts[layout.name] = layout
        return layout

    def get(self, name: str) -> StructLayout:
        try:
            return self._layouts[name]
        except KeyError:
            raise KeyError("no layout registered for struct %r" % name) from None

    def replace(self, name: str, layout: StructLayout) -> None:
        """Swap in an optimized layout under the original name."""
        if name not in self._layouts:
            raise KeyError("no layout registered for struct %r" % name)
        self._layouts[name] = layout

    def resolve(self, struct_name: str, field_name: str) -> Tuple[int, int]:
        """Return (offset, size) of a field in the active layout."""
        layout = self.get(struct_name)
        return layout.offset_of(field_name), layout.field(field_name).size

    def copy(self) -> "LayoutRegistry":
        dup = LayoutRegistry()
        dup._layouts = dict(self._layouts)
        return dup

    def names(self):
        return list(self._layouts)
