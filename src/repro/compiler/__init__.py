"""Toolchain substrate: struct layouts, the mini-IR, and optimization passes.

PacketMill's code optimizations are *program transformations*: they change
which instructions run per packet and which cache lines get touched.  This
package expresses the per-packet work of every element and driver as a
small IR (:mod:`repro.compiler.ir`), applies the paper's passes to it
(:mod:`repro.compiler.passes`), and lowers the result to a compact
executable cost program (:mod:`repro.compiler.lower`).

Struct layouts (:mod:`repro.compiler.structlayout`) give every metadata
field a byte offset, so the LTO field-reordering pass has its real effect:
hot fields migrate into the first cache line and fewer lines are loaded
per packet.

Execution happens through one of three bit-identical tiers behind the
:class:`~repro.compiler.runtime.ExecutionTier` API: the lowered-op
interpreter, the cached op-tuple loop, or per-program generated Python
(:mod:`repro.compiler.codegen`) with constants and offsets baked in --
the runtime analogue of the paper's source-code specialization.
"""

from repro.compiler.runtime import (
    DEFAULT_TIER,
    ExecutionTier,
    TierPolicy,
    TierSelection,
    select_tier,
)
from repro.compiler.ir import (
    BranchHint,
    Compute,
    DataAccess,
    DirectCall,
    FieldAccess,
    Op,
    ParamRead,
    PoolOp,
    Program,
    RandomAccess,
    StateAccess,
    VirtualCall,
)
from repro.compiler.structlayout import Field, LayoutRegistry, StructLayout

__all__ = [
    "BranchHint",
    "Compute",
    "DEFAULT_TIER",
    "DataAccess",
    "DirectCall",
    "ExecutionTier",
    "Field",
    "FieldAccess",
    "LayoutRegistry",
    "Op",
    "ParamRead",
    "PoolOp",
    "Program",
    "RandomAccess",
    "StateAccess",
    "StructLayout",
    "TierPolicy",
    "TierSelection",
    "VirtualCall",
    "select_tier",
]
