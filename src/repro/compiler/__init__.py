"""Toolchain substrate: struct layouts, the mini-IR, and optimization passes.

PacketMill's code optimizations are *program transformations*: they change
which instructions run per packet and which cache lines get touched.  This
package expresses the per-packet work of every element and driver as a
small IR (:mod:`repro.compiler.ir`), applies the paper's passes to it
(:mod:`repro.compiler.passes`), and lowers the result to a compact
executable cost program (:mod:`repro.compiler.lower`).

Struct layouts (:mod:`repro.compiler.structlayout`) give every metadata
field a byte offset, so the LTO field-reordering pass has its real effect:
hot fields migrate into the first cache line and fewer lines are loaded
per packet.
"""

from repro.compiler.ir import (
    BranchHint,
    Compute,
    DataAccess,
    DirectCall,
    FieldAccess,
    Op,
    ParamRead,
    PoolOp,
    Program,
    RandomAccess,
    StateAccess,
    VirtualCall,
)
from repro.compiler.structlayout import Field, LayoutRegistry, StructLayout

__all__ = [
    "BranchHint",
    "Compute",
    "DataAccess",
    "DirectCall",
    "Field",
    "FieldAccess",
    "LayoutRegistry",
    "Op",
    "ParamRead",
    "PoolOp",
    "Program",
    "RandomAccess",
    "StateAccess",
    "StructLayout",
    "VirtualCall",
]
