"""ProgramFacts: proven-dead work the execution tiers may skip.

The constant-propagation pass (:mod:`repro.analyze.constprop`) proves
facts about a configuration -- a classifier arm that can never match
under the byte values flowing into it, a switch whose route is decided
upstream -- and expresses the executable consequence as a
:class:`ProgramFacts` delta per element: charges the lowered
:class:`~repro.compiler.lower.ExecProgram` may drop without changing any
packet's bytes or route.

This module deliberately knows nothing about *how* the facts were
proven; it only knows how to

- compute the delta between an original and a specialized lowering
  (:func:`facts_between`), and
- replay it onto a program (:meth:`ProgramFacts.apply`), producing the
  pruned ExecProgram every tier then runs -- the interpreter stays the
  ground truth because all three tiers execute the *same* pruned
  program, and codegen's compile-time self-check replays generated
  kernels against the interpreter on exactly that program.

Layering: ``repro.compiler`` sits below ``repro.analyze``; the analyzer
imports this module, never the other way around.  The dataclass is
frozen and tuple-backed so build caches can key on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.compiler.lower import ExecProgram, MemOp


class FactsError(ValueError):
    """The facts delta does not match the program it is applied to."""


#: A mem op as a hashable row (target, offset, size, write).
MemRow = Tuple[str, int, int, bool]


def _rows(program: ExecProgram) -> Tuple[MemRow, ...]:
    return tuple(
        (op.target, op.offset, op.size, op.write) for op in program.mem_ops
    )


@dataclass(frozen=True)
class ProgramFacts:
    """The provably-dead slice of one element's lowered program.

    All fields are deltas to *subtract*; ``dead_mem_ops`` and
    ``dead_random_ops`` are removed as order-preserving subsequences
    (specialization only deletes operations, never reorders them).
    ``branches_eliminated`` counts the dispatch branches whose
    misprediction expectation was removed -- the headline number the
    telemetry counters report.
    """

    program: str
    dead_instructions: float = 0.0
    dead_branch_expect: float = 0.0
    dead_mem_ops: Tuple[MemRow, ...] = ()
    dead_random_ops: Tuple[Tuple[int, int], ...] = ()
    branches_eliminated: int = 0
    note: str = ""

    @property
    def is_empty(self) -> bool:
        return (
            not self.dead_instructions
            and not self.dead_branch_expect
            and not self.dead_mem_ops
            and not self.dead_random_ops
        )

    def apply(self, program: ExecProgram) -> ExecProgram:
        """The pruned program: ``program`` minus every dead charge.

        Raises :class:`FactsError` when the delta does not embed in the
        program (wrong program, stale facts) -- callers must treat that
        as "facts unusable", never silently run the original.
        """
        if program.name != self.program:
            raise FactsError(
                "facts for %r applied to program %r"
                % (self.program, program.name))
        mem_ops = list(program.mem_ops)
        for row in self.dead_mem_ops:
            target, offset, size, write = row
            for index, op in enumerate(mem_ops):
                if (op.target, op.offset, op.size, op.write) == row:
                    del mem_ops[index]
                    break
            else:
                raise FactsError(
                    "dead mem op %r not present in program %r"
                    % (row, program.name))
        random_ops = list(program.random_ops)
        for row in self.dead_random_ops:
            try:
                random_ops.remove(row)
            except ValueError:
                raise FactsError(
                    "dead random op %r not present in program %r"
                    % (row, program.name)) from None
        instructions = program.instructions - self.dead_instructions
        branch_expect = program.branch_miss_expect - self.dead_branch_expect
        if instructions < -1e-9 or branch_expect < -1e-9:
            raise FactsError(
                "facts remove more cost than program %r carries"
                % program.name)
        return ExecProgram(
            name=program.name,
            instructions=max(0.0, instructions),
            branch_miss_expect=max(0.0, branch_expect),
            virtual_calls=program.virtual_calls,
            mem_ops=mem_ops,
            random_ops=random_ops,
            pool_gets=program.pool_gets,
            pool_puts=program.pool_puts,
        )


def _subsequence_delta(original, specialized, label, name):
    """Rows of ``original`` not in ``specialized`` (which must embed)."""
    removed = []
    it = iter(original)
    for want in specialized:
        for row in it:
            if row == want:
                break
            removed.append(row)
        else:
            raise FactsError(
                "specialized %s of %r is not a subsequence of the "
                "original (row %r)" % (label, name, want))
    removed.extend(it)
    return tuple(removed)


def facts_between(
    original: ExecProgram,
    specialized: ExecProgram,
    branches_eliminated: int = 0,
    note: str = "",
) -> ProgramFacts:
    """The delta that turns ``original`` into ``specialized``.

    The specialized program must be a pure reduction: same pool behaviour,
    mem/random ops an order-preserving subsequence, costs no larger.
    ``branches_eliminated`` defaults to the count of whole-unit drops in
    the branch-miss expectation when not given explicitly.
    """
    if original.name != specialized.name:
        raise FactsError(
            "cannot diff %r against %r"
            % (original.name, specialized.name))
    if (specialized.pool_gets != original.pool_gets
            or specialized.pool_puts != original.pool_puts):
        raise FactsError(
            "specialization of %r changed pool behaviour" % original.name)
    dead_mem = _subsequence_delta(
        _rows(original), _rows(specialized), "mem ops", original.name)
    dead_random = _subsequence_delta(
        tuple(original.random_ops), tuple(specialized.random_ops),
        "random ops", original.name)
    dead_instructions = original.instructions - specialized.instructions
    dead_branch = original.branch_miss_expect - specialized.branch_miss_expect
    if dead_instructions < -1e-9 or dead_branch < -1e-9:
        raise FactsError(
            "specialization of %r increased cost" % original.name)
    return ProgramFacts(
        program=original.name,
        dead_instructions=max(0.0, dead_instructions),
        dead_branch_expect=max(0.0, dead_branch),
        dead_mem_ops=dead_mem,
        dead_random_ops=dead_random,
        branches_eliminated=branches_eliminated,
        note=note,
    )


def facts_signature(program_facts) -> tuple:
    """A hashable fingerprint of a ``{element: ProgramFacts}`` map.

    ``None`` (or an empty map) signs as ``None`` so facts-off builds key
    identically to pre-facts builds -- cache entries stay shared.
    """
    if not program_facts:
        return None
    return tuple(sorted(
        (name, facts) for name, facts in program_facts.items()
    ))


__all__ = [
    "FactsError",
    "ProgramFacts",
    "facts_between",
    "facts_signature",
]
