"""Trace-compilation of lowered programs into generated Python.

This is the third (and fastest) execution tier.  PR 4's
:func:`~repro.compiler.runtime.execute_bases` replaced per-packet
``Bindings`` dict walks with an interpreter over per-program op tuples;
this module goes the rest of the way and *compiles* each
:class:`~repro.compiler.lower.ExecProgram` into specialized Python
source -- the simulator's analogue of the paper's source-level code
specialization:

- **constant embedding**: instruction totals, branch-miss expectations,
  field offsets, access sizes, and random-walk footprints are baked into
  the source as literals;
- **devirtualization**: the per-op dispatch (tuple unpack + target-index
  lookup + ``cpu.mem_access`` method call) becomes a straight-line
  sequence of calls on a hoisted bound method;
- **dead-code elimination**: zero charges, never-taken branch paths, and
  unused base registers are simply not emitted.

Each program yields two functions via ``compile()``/``exec``:

- a **scalar** kernel ``fn(cpu, meta, mbuf, descriptor, data, state)``
  with the same contract as :func:`execute_bases` (the PMD burst loops
  call it once per packet), and
- a **batch** kernel ``fn(cpu, batch, state)`` that moves the per-packet
  loop *and* the mbuf base unpacking inside the generated code (the
  driver's ``_charge_element`` calls it once per batch) -- the
  batch-vectorized variant for element chains.

Both kernels charge the exact same sequence of costs as the interpreter
tiers; the inlined arithmetic reproduces :class:`~repro.hw.cpu.CpuCore`'s
own expressions term for term, so the simulated numbers are bit-identical.
A compile-time **self-check** (on by default, ``REPRO_TIER_CHECK=0`` to
skip) replays every freshly generated kernel and the interpreter against
shadow cores and refuses the artifact unless their states match exactly.

The caller may pass a ``verify`` hook (the PR 5 IR verifier, injected by
``repro.core`` so this layer stays below ``repro.analyze``); it runs
before every generation, and any failure surfaces as a
:class:`CodegenError` the execution tiers catch to fall back one tier.

Compile counters live in a module-level registry surfaced through
handler brokers as ``exec.codegen.*``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.compiler.lower import ExecProgram
from repro.compiler.runtime import TARGET_INDEX, execute_bases
from repro.telemetry.registry import CounterRegistry

#: Process-wide codegen statistics (``exec.codegen.*`` through brokers).
REGISTRY = CounterRegistry()

_COMPILES = REGISTRY.counter("compiles")
_COMPILE_NS = REGISTRY.counter("compile_ns")
_CACHE_HITS = REGISTRY.counter("memo_hits")
_SELFCHECKS = REGISTRY.counter("selfchecks")
_FALLBACKS = REGISTRY.counter("fallbacks")
_FACTS_APPLIED = REGISTRY.counter("facts_applied")
_FACTS_BRANCHES = REGISTRY.counter("facts_branches_eliminated")

#: Base-register names, indexed like the (meta, mbuf, descriptor, data,
#: state) tuple of :func:`execute_bases`.
_BASE_NAMES = ("meta", "mbuf", "descriptor", "data", "state")
#: Buffer-reference attribute providing each base (state is an argument).
_REF_ATTRS = ("meta_addr", "mbuf_addr", "cqe_addr", "data_addr")

#: Unroll random-access repetitions up to this count; loop beyond it.
_UNROLL_LIMIT = 8


class CodegenError(RuntimeError):
    """The program cannot be (or failed to be) trace-compiled."""


def record_fallback(count: int = 1) -> None:
    """Count one tier demotion (compile failure, faults, watchdog)."""
    _FALLBACKS.add(count)


def record_tier(tier_name: str) -> None:
    """Count one driver construction that settled on ``tier_name``."""
    REGISTRY.counter("tier_" + tier_name).add(1)


def stats() -> dict:
    """Flat ``{counter: value}`` snapshot of the codegen counters."""
    return REGISTRY.snapshot()


def reset_stats() -> None:
    REGISTRY.reset()


def _check_enabled(check: Optional[bool]) -> bool:
    if check is not None:
        return check
    return os.environ.get("REPRO_TIER_CHECK", "").lower() not in (
        "0", "false", "off", "no",
    )


# -- source emission -----------------------------------------------------------


def _emit_charges(program: ExecProgram, out: List[str], indent: str) -> None:
    """The per-packet charge sequence, mirroring ``execute_bases`` exactly.

    Inlined term for term from :class:`~repro.hw.cpu.CpuCore`:
    ``charge_compute`` is ``instructions += I; core_cycles += I / ipc``,
    ``charge_branch_miss`` is ``core_cycles += miss_cycles * B`` plus the
    rounded counter bump, and a zero-instruction ``mem_access`` reduces to
    the hierarchy access and its cycle/ns deposits.
    """
    pad = out.append
    if program.instructions:
        literal = repr(float(program.instructions))
        pad(indent + "cpu.instructions += " + literal)
        pad(indent + "cpu.core_cycles += %s / _ipc" % literal)
    if program.branch_miss_expect:
        miss = repr(float(program.branch_miss_expect))
        pad(indent + "cpu.core_cycles += _bmc * " + miss)
        rounded = round(program.branch_miss_expect)
        if rounded:
            pad(indent + "_bmiss.value += %d" % rounded)
    for target, offset, size, write in _compiled_rows(program):
        base = _BASE_NAMES[target]
        addr = base if offset == 0 else "%s + %d" % (base, offset)
        pad(indent + "_c, _n = _access(_cid, %s, %d, %s)" % (addr, size, write))
        pad(indent + "cpu.core_cycles += _c")
        pad(indent + "cpu.uncore_ns += _n")
    for footprint, count in program.random_ops:
        body_indent = indent
        if count > _UNROLL_LIMIT:
            pad(indent + "for _ in range(%d):" % count)
            body_indent = indent + "    "
            count = 1
        for _ in range(count):
            pad(body_indent + "_c, _n = _analytic(_cid, %d)" % footprint)
            pad(body_indent + "cpu.core_cycles += _c")
            pad(body_indent + "cpu.uncore_ns += _n")


def _compiled_rows(program: ExecProgram):
    return tuple(
        (TARGET_INDEX[op.target], op.offset, op.size, op.write)
        for op in program.mem_ops
    )


def _emit_hoists(program: ExecProgram, out: List[str], indent: str) -> None:
    """Bind every hot attribute once, before the charge sequence."""
    if program.instructions:
        out.append(indent + "_ipc = cpu.params.issue_ipc")
    if program.branch_miss_expect:
        out.append(indent + "_bmc = cpu.params.branch_miss_cycles")
        if round(program.branch_miss_expect):
            out.append(
                indent + "_bmiss = cpu.mem.counters[cpu.core_id]"
                ".handles.branch_misses"
            )
    if program.mem_ops or program.random_ops:
        out.append(indent + "_cid = cpu.core_id")
    if program.mem_ops:
        out.append(indent + "_access = cpu.mem.access")
    if program.random_ops:
        out.append(indent + "_analytic = cpu.mem.analytic_access")


def _used_bases(program: ExecProgram) -> List[int]:
    used = sorted({row[0] for row in _compiled_rows(program)})
    return [index for index in used if index < len(_REF_ATTRS)]


def generate_scalar_source(program: ExecProgram, name: str) -> str:
    """Specialized source for one per-packet execution of ``program``."""
    out = ["def %s(cpu, meta, mbuf, descriptor, data, state):" % name]
    _emit_hoists(program, out, "    ")
    _emit_charges(program, out, "    ")
    if len(out) == 1:
        out.append("    pass")
    return "\n".join(out) + "\n"


def generate_batch_source(program: ExecProgram, name: str) -> str:
    """Specialized source charging a whole batch of packets.

    The loop and the mbuf base unpacking live inside the generated code,
    so the driver makes one Python call per (element, batch) instead of
    one per packet.  Packets without an attached buffer resolve every
    packet-relative base to 0, exactly as ``_charge_element`` does.
    """
    out = ["def %s(cpu, batch, state):" % name]
    _emit_hoists(program, out, "    ")
    used = _used_bases(program)
    out.append("    for _pkt in batch:")
    if used:
        names = [_BASE_NAMES[index] for index in used]
        out.append("        _ref = _pkt.mbuf")
        out.append("        if _ref is None:")
        out.append("            %s = 0" % " = ".join(names))
        out.append("        else:")
        for index, base in zip(used, names):
            out.append("            %s = _ref.%s" % (base, _REF_ATTRS[index]))
    body: List[str] = []
    _emit_charges(program, body, "        ")
    if not body:
        body.append("        pass")
    out.extend(body)
    return "\n".join(out) + "\n"


def _exec_source(source: str, name: str) -> Callable:
    namespace: dict = {}
    code = compile(source, "<codegen:%s>" % name, "exec")
    exec(code, namespace)
    return namespace[name]


# -- compile-time self-check ---------------------------------------------------


class _ShadowParams:
    """Deliberately awkward constants so inlining bugs cannot cancel out."""

    issue_ipc = 3.0
    branch_miss_cycles = 13.0
    freq_ghz = 2.3


class _ShadowHandle:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0


class _ShadowHandles:
    __slots__ = ("branch_misses",)

    def __init__(self):
        self.branch_misses = _ShadowHandle()


class _ShadowCounters:
    __slots__ = ("handles",)

    def __init__(self):
        self.handles = _ShadowHandles()


class _ShadowMem:
    """Deterministic stand-in for the memory hierarchy.

    Returns address-dependent (cycles, ns) pairs so a wrong offset, size,
    write flag, or access order shows up as a state mismatch.
    """

    def __init__(self):
        self.counters = [_ShadowCounters()]

    def access(self, core_id, addr, size, write):
        h = (addr * 2654435761 + size * 97 + (13 if write else 0)) % 1009
        return h * 0.25, h * 0.125

    def analytic_access(self, core_id, footprint):
        return (footprint % 251) * 0.5, (footprint % 127) * 0.25


class _ShadowRef:
    __slots__ = ("meta_addr", "mbuf_addr", "cqe_addr", "data_addr")

    def __init__(self, meta, mbuf, cqe, data):
        self.meta_addr = meta
        self.mbuf_addr = mbuf
        self.cqe_addr = cqe
        self.data_addr = data


class _ShadowPacket:
    __slots__ = ("mbuf",)

    def __init__(self, mbuf):
        self.mbuf = mbuf


_SHADOW_BASES = (0x1040, 0x2080, 0x30C0, 0x4100, 0x5140)


def _shadow_cpu():
    from repro.hw.cpu import CpuCore

    return CpuCore(_ShadowParams(), _ShadowMem(), core_id=0)


def _shadow_state(cpu) -> tuple:
    return (
        cpu.instructions,
        cpu.core_cycles,
        cpu.uncore_ns,
        cpu.mem.counters[0].handles.branch_misses.value,
    )


def _selfcheck(program: ExecProgram, scalar: Callable, batch: Callable) -> None:
    """Replay generated vs. interpreted charges on shadow cores.

    Uses the *real* :class:`~repro.hw.cpu.CpuCore` arithmetic over a stub
    memory hierarchy, so any drift between the emitted source and the
    interpreter -- including float-identity assumptions -- fails the
    compile instead of skewing a measurement.
    """
    _SELFCHECKS.add(1)
    meta, mbuf, descriptor, data, state = _SHADOW_BASES
    reference = _shadow_cpu()
    execute_bases(reference, program, meta, mbuf, descriptor, data, state)
    generated = _shadow_cpu()
    scalar(generated, meta, mbuf, descriptor, data, state)
    if _shadow_state(reference) != _shadow_state(generated):
        raise CodegenError(
            "scalar kernel for %r diverges from the interpreter: %r != %r"
            % (program.name, _shadow_state(generated), _shadow_state(reference))
        )
    shadow_batch = [
        _ShadowPacket(_ShadowRef(meta, mbuf, descriptor, data)),
        _ShadowPacket(None),
        _ShadowPacket(_ShadowRef(meta + 192, mbuf + 64, descriptor + 32, data + 256)),
    ]
    reference = _shadow_cpu()
    for pkt in shadow_batch:
        ref = pkt.mbuf
        if ref is not None:
            execute_bases(reference, program, ref.meta_addr, ref.mbuf_addr,
                          ref.cqe_addr, ref.data_addr, state)
        else:
            execute_bases(reference, program, 0, 0, 0, 0, state)
    generated = _shadow_cpu()
    batch(generated, shadow_batch, state)
    if _shadow_state(reference) != _shadow_state(generated):
        raise CodegenError(
            "batch kernel for %r diverges from the interpreter: %r != %r"
            % (program.name, _shadow_state(generated), _shadow_state(reference))
        )


# -- compilation entry point ---------------------------------------------------


@dataclass(frozen=True)
class CompiledProgram:
    """One program's generated-code artifact (both kernels + sources)."""

    name: str
    scalar: Callable
    batch: Callable
    scalar_source: str
    batch_source: str


def _mangle(name: str) -> str:
    mangled = "".join(c if c.isalnum() else "_" for c in name)
    if not mangled or mangled[0].isdigit():
        mangled = "_" + mangled
    return "_gen_" + mangled


def compile_program(
    program: ExecProgram,
    verify: Optional[Callable[[ExecProgram], None]] = None,
    check: Optional[bool] = None,
    facts=None,
) -> CompiledProgram:
    """Generate, ``exec``, self-check, and memoize ``program``'s kernels.

    ``verify`` (when given) runs before generation -- the injected IR
    verifier; it must raise on a program that should not be compiled.
    Any failure, including a self-check mismatch, raises
    :class:`CodegenError`; callers demote to the compiled-tuples tier.

    ``facts`` (a :class:`~repro.compiler.facts.ProgramFacts`) dead-code
    eliminates the proven-dead slice before generation: the kernels are
    compiled -- and self-checked against the interpreter -- on the pruned
    program, so bit-identity with the other tiers holds exactly when
    those tiers execute the same pruned program.  Facts-on and facts-off
    artifacts memoize separately; a facts mismatch raises CodegenError
    (callers demote, never silently run the unpruned kernel).
    """
    if facts is not None and not facts.is_empty:
        from repro.compiler.facts import FactsError

        memo_map = program.__dict__.setdefault("_codegen_facts_memo", {})
        memo = memo_map.get(facts)
        if memo is not None:
            _CACHE_HITS.add(1)
            return memo
        try:
            pruned = facts.apply(program)
        except FactsError as exc:
            raise CodegenError(
                "facts do not apply to %r: %s" % (program.name, exc)
            ) from exc
        compiled = compile_program(pruned, verify=verify, check=check)
        memo_map[facts] = compiled
        _FACTS_APPLIED.add(1)
        _FACTS_BRANCHES.add(facts.branches_eliminated)
        return compiled
    memo = program.__dict__.get("_codegen_compiled")
    if memo is not None:
        _CACHE_HITS.add(1)
        return memo
    start = time.perf_counter_ns()
    if verify is not None:
        try:
            verify(program)
        except CodegenError:
            raise
        except Exception as exc:
            raise CodegenError(
                "IR verification refused codegen of %r: %s"
                % (program.name, exc)
            ) from exc
    name = _mangle(program.name)
    try:
        scalar_source = generate_scalar_source(program, name)
        batch_source = generate_batch_source(program, name)
        scalar = _exec_source(scalar_source, name)
        batch = _exec_source(batch_source, name)
    except CodegenError:
        raise
    except Exception as exc:
        raise CodegenError(
            "failed to generate code for %r: %s" % (program.name, exc)
        ) from exc
    if _check_enabled(check):
        _selfcheck(program, scalar, batch)
    compiled = CompiledProgram(
        name=program.name,
        scalar=scalar,
        batch=batch,
        scalar_source=scalar_source,
        batch_source=batch_source,
    )
    program._codegen_compiled = compiled
    _COMPILES.add(1)
    _COMPILE_NS.add(time.perf_counter_ns() - start)
    return compiled


__all__ = [
    "CodegenError",
    "CompiledProgram",
    "REGISTRY",
    "compile_program",
    "generate_batch_source",
    "generate_scalar_source",
    "record_fallback",
    "record_tier",
    "reset_stats",
    "stats",
]
