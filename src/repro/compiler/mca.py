"""Static per-packet cost estimation (the paper's llvm-mca future-work item).

Given a lowered :class:`~repro.compiler.lower.ExecProgram` and an assumed
cache-locality profile, estimate the per-packet cost *without executing
anything* -- the role ``llvm-mca`` plays in the paper's §5 list of future
directions ("llvm-mca for performance estimation").

The estimator mirrors the runtime cost model's arithmetic, so its error
against a measured run comes only from the locality assumption.  That
makes it useful for the same things mca is: comparing candidate
optimizations (e.g. did reordering reduce estimated metadata lines?)
before paying for a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from repro.compiler.lower import ExecProgram

#: Default steady-state locality assumption per access target: fraction of
#: accesses served by (l1, l2, llc); the DRAM share is the remainder.
DEFAULT_LOCALITY: Dict[str, tuple] = {
    "packet_meta": (0.90, 0.10, 0.00),
    "packet_mbuf": (0.30, 0.65, 0.05),
    "descriptor": (0.20, 0.20, 0.60),   # CQEs/WQEs arrive via DDIO
    "data": (0.55, 0.15, 0.30),         # prefetched frame bytes
    "state": (0.95, 0.05, 0.00),
}


@dataclass(frozen=True)
class CostEstimate:
    """Static estimate of one program's per-packet cost."""

    name: str
    instructions: float
    issue_cycles: float
    stall_cycles: float
    uncore_ns: float

    def cycles(self, freq_ghz: float) -> float:
        return self.issue_cycles + self.stall_cycles + self.uncore_ns * freq_ghz

    def ns(self, freq_ghz: float) -> float:
        return (self.issue_cycles + self.stall_cycles) / freq_ghz + self.uncore_ns

    def ipc(self, freq_ghz: float) -> float:
        total = self.cycles(freq_ghz)
        return self.instructions / total if total else 0.0


def estimate(program: ExecProgram, params,
             locality: Mapping[str, tuple] = None) -> CostEstimate:
    """Estimate one program's steady-state per-packet cost."""
    locality = dict(DEFAULT_LOCALITY, **(locality or {}))
    issue = program.instructions / params.issue_ipc
    stalls = program.branch_miss_expect * params.branch_miss_cycles
    uncore = 0.0
    for op in program.mem_ops:
        try:
            p_l1, p_l2, p_llc = locality[op.target]
        except KeyError:
            raise KeyError("no locality assumption for target %r" % op.target) from None
        p_dram = max(0.0, 1.0 - p_l1 - p_l2 - p_llc)
        lines = max(1, (op.size + params.cache_line - 1) // params.cache_line)
        stalls += lines * (p_l1 * params.l1_hit_cycles + p_l2 * params.l2_hit_cycles)
        uncore += lines * (
            p_llc * params.llc_hit_ns + p_dram * params.dram_ns
        ) / params.mlp
    for footprint, count in program.random_ops:
        p_l1 = min(1.0, (params.l1_size // 2) / footprint) if footprint else 1.0
        p_l2 = max(0.0, min(1.0, int(params.l2_size * 0.75) / footprint) - p_l1) if footprint else 0.0
        p_llc = max(0.0, min(1.0, (14 * 1024 * 1024) / footprint) - p_l1 - p_l2) if footprint else 0.0
        p_dram = max(0.0, 1.0 - p_l1 - p_l2 - p_llc)
        stalls += count * (p_l1 * params.l1_hit_cycles + p_l2 * params.l2_hit_cycles)
        uncore += count * (
            p_llc * params.llc_hit_ns + p_dram * params.dram_ns
        ) / params.random_access_mlp
    return CostEstimate(
        name=program.name,
        instructions=program.instructions,
        issue_cycles=issue,
        stall_cycles=stalls,
        uncore_ns=uncore,
    )


def estimate_pipeline(programs: Iterable[ExecProgram], params,
                      locality: Mapping[str, tuple] = None) -> CostEstimate:
    """Aggregate estimate for a whole pipeline (sum of element programs)."""
    totals = CostEstimate("pipeline", 0.0, 0.0, 0.0, 0.0)
    instructions = issue = stalls = uncore = 0.0
    for program in programs:
        part = estimate(program, params, locality)
        instructions += part.instructions
        issue += part.issue_cycles
        stalls += part.stall_cycles
        uncore += part.uncore_ns
    return CostEstimate("pipeline", instructions, issue, stalls, uncore)


def compare(before: CostEstimate, after: CostEstimate, freq_ghz: float) -> str:
    """A small mca-style report of an optimization's estimated effect."""
    b, a = before.ns(freq_ghz), after.ns(freq_ghz)
    delta = (b - a) / b * 100 if b else 0.0
    return (
        "estimated per-packet cost @%.1f GHz: %.1f ns -> %.1f ns (%.1f%%)\n"
        "  instructions: %.0f -> %.0f\n"
        "  uncore ns:    %.1f -> %.1f"
        % (freq_ghz, b, a, delta,
           before.instructions, after.instructions,
           before.uncore_ns, after.uncore_ns)
    )
