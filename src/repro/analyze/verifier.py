"""The IR verifier: every program must be executable against the layouts.

PacketMill's optimizations rewrite per-packet IR programs and struct
layouts; a bug in any pass produces programs that *look* plausible but
resolve to garbage at lowering time (unknown fields, out-of-frame data
offsets, leaked pool buffers).  The verifier checks the structural
invariants LLVM's own verifier would: every :class:`FieldAccess` resolves
against the active :class:`LayoutRegistry`, every :class:`DataAccess`
stays inside the packet frame, probabilities are probabilities, costs are
non-negative, and mempool get/put pair up.

Run modes:

- :func:`verify_program` / :func:`verify_exec_program` -- one program,
  returns findings;
- :func:`attach_verifier` -- hook a :class:`~repro.compiler.pipeline.PassManager`
  so every pass application is re-verified and the *pass that introduced*
  a violation is named (debug mode, the acceptance bar for pass authors).
"""

from __future__ import annotations

from typing import List, Optional

from repro.analyze.findings import ERROR, NOTE, AnalysisError, Finding
from repro.compiler.ir import (
    BranchHint,
    Compute,
    DataAccess,
    DirectCall,
    FieldAccess,
    Op,
    ParamRead,
    PoolOp,
    Program,
    RandomAccess,
    StateAccess,
    VirtualCall,
)
from repro.compiler.lower import (
    TARGET_DATA,
    TARGET_DESCRIPTOR,
    TARGET_PACKET_MBUF,
    TARGET_PACKET_META,
    TARGET_STATE,
    VALID_TARGETS,
    ExecProgram,
)
from repro.compiler.structlayout import LayoutRegistry
from repro.dpdk.mbuf import MBUF_DATA_ROOM


class VerifierError(AnalysisError):
    """Error-severity IR violations, raised by the fail-hard entry points."""


def _finding(rule: str, program: str, message: str, location: str = "",
             severity: str = ERROR) -> Finding:
    return Finding(rule, severity, program, message, location)


def verify_program(
    program: Program,
    registry: LayoutRegistry,
    frame_bytes: int = MBUF_DATA_ROOM,
    state_size: Optional[int] = None,
    pool_balance: str = ERROR,
    location: str = "",
) -> List[Finding]:
    """Check one IR program against the active layouts.

    ``pool_balance`` sets the severity of an unbalanced get/put count
    within this program: per-packet element code must balance (ERROR),
    while a PMD RX program legitimately nets +1 against its TX twin --
    pass NOTE there and use :func:`verify_pool_pair` for the pair.
    """
    findings: List[Finding] = []
    name = program.name
    gets = puts = 0
    for index, op in enumerate(program.ops):
        where = location or ("op %d" % index)
        if isinstance(op, FieldAccess):
            if op.target not in VALID_TARGETS:
                findings.append(_finding(
                    "ir-bad-target", name,
                    "field access %s.%s binds unknown target %r"
                    % (op.struct, op.fieldname, op.target), where))
            try:
                layout = registry.get(op.struct)
            except KeyError:
                findings.append(_finding(
                    "ir-unknown-struct", name,
                    "field access references unregistered struct %r"
                    % op.struct, where))
                continue
            if not layout.has_field(op.fieldname):
                findings.append(_finding(
                    "ir-unknown-field", name,
                    "struct %r has no field %r (layout %s)"
                    % (op.struct, op.fieldname, layout.name), where))
        elif isinstance(op, DataAccess):
            if op.size < 1:
                findings.append(_finding(
                    "ir-bad-size", name,
                    "data access of %d bytes" % op.size, where))
            elif op.offset < 0 or op.offset + op.size > frame_bytes:
                findings.append(_finding(
                    "ir-data-bounds", name,
                    "data access [%d, %d) outside the %d-byte frame"
                    % (op.offset, op.offset + op.size, frame_bytes), where))
        elif isinstance(op, StateAccess):
            if op.size < 1:
                findings.append(_finding(
                    "ir-bad-size", name,
                    "state access of %d bytes" % op.size, where))
            elif op.offset < 0 or (
                state_size is not None and op.offset + op.size > state_size
            ):
                findings.append(_finding(
                    "ir-state-bounds", name,
                    "state access [%d, %d) outside the %s-byte state"
                    % (op.offset, op.offset + op.size, state_size), where))
        elif isinstance(op, ParamRead):
            if op.offset < 0 or op.size < 1 or op.folded_instructions < 0:
                findings.append(_finding(
                    "ir-bad-param", name,
                    "parameter read %r has offset %d, size %d, folded %r"
                    % (op.param, op.offset, op.size, op.folded_instructions),
                    where))
        elif isinstance(op, (BranchHint, VirtualCall)):
            if not 0.0 <= op.miss_rate <= 1.0:
                findings.append(_finding(
                    "ir-bad-probability", name,
                    "miss rate %r is not a probability" % op.miss_rate, where))
            if isinstance(op, VirtualCall) and op.overhead_instructions < 0:
                findings.append(_finding(
                    "ir-negative-cost", name,
                    "virtual call %r has negative overhead" % op.callee, where))
        elif isinstance(op, DirectCall):
            if op.overhead_instructions < 0:
                findings.append(_finding(
                    "ir-negative-cost", name,
                    "direct call %r has negative overhead" % op.callee, where))
        elif isinstance(op, Compute):
            if op.instructions < 0:
                findings.append(_finding(
                    "ir-negative-cost", name,
                    "compute of %r instructions" % op.instructions, where))
        elif isinstance(op, RandomAccess):
            if op.footprint < 1 or op.count < 1:
                findings.append(_finding(
                    "ir-bad-size", name,
                    "random access footprint %d x%d" % (op.footprint, op.count),
                    where))
        elif isinstance(op, PoolOp):
            if op.kind == "get":
                gets += 1
            elif op.kind == "put":
                puts += 1
            else:
                findings.append(_finding(
                    "ir-bad-poolop", name,
                    "unknown pool op kind %r" % op.kind, where))
            if op.instructions < 0:
                findings.append(_finding(
                    "ir-negative-cost", name,
                    "pool op with negative cost", where))
        elif isinstance(op, Op):
            findings.append(_finding(
                "ir-unknown-op", name,
                "op %r has no lowering rule" % type(op).__name__, where))
        else:
            findings.append(_finding(
                "ir-unknown-op", name,
                "non-Op object %r in program" % (op,), where))
    if gets != puts:
        findings.append(_finding(
            "ir-pool-balance", name,
            "pool gets (%d) and puts (%d) do not balance" % (gets, puts),
            location, severity=pool_balance))
    return findings


def verify_pool_pair(rx_program: Program, tx_program: Program) -> List[Finding]:
    """Buffer conservation across one PMD's RX/TX pair.

    Every buffer the RX path takes from a pool must be returned by the TX
    path (drops are released by the driver through the model, outside the
    per-packet programs, symmetrically for both paths).
    """
    def _net(program: Program) -> int:
        net = 0
        for op in program.ops:
            if isinstance(op, PoolOp):
                net += 1 if op.kind == "get" else -1
        return net

    net = _net(rx_program) + _net(tx_program)
    if net != 0:
        return [_finding(
            "ir-pool-balance",
            "%s+%s" % (rx_program.name, tx_program.name),
            "RX/TX pair leaks %+d pool buffer(s) per packet" % net)]
    return []


#: Region-size resolvers for lowered memory ops; ``data`` is the frame.
_EXEC_REGION_STRUCTS = {
    TARGET_PACKET_META: ("Packet",),
    TARGET_PACKET_MBUF: ("rte_mbuf",),
    TARGET_DESCRIPTOR: ("cqe", "tx_descriptor"),
}


def verify_exec_program(
    program: ExecProgram,
    registry: LayoutRegistry,
    frame_bytes: int = MBUF_DATA_ROOM,
    state_size: Optional[int] = None,
    location: str = "",
) -> List[Finding]:
    """Check one lowered program: every MemOp must land inside its region."""
    findings: List[Finding] = []
    name = program.name
    for index, op in enumerate(program.mem_ops):
        where = location or ("mem op %d" % index)
        if op.size < 1 or op.offset < 0:
            findings.append(_finding(
                "exec-bad-memop", name,
                "memory op %s[%d:%d] is malformed"
                % (op.target, op.offset, op.offset + op.size), where))
            continue
        if op.target == TARGET_DATA:
            bound = frame_bytes
        elif op.target == TARGET_STATE:
            bound = state_size  # None: unknown per-element size, skip
        elif op.target in _EXEC_REGION_STRUCTS:
            bound = 0
            for struct in _EXEC_REGION_STRUCTS[op.target]:
                try:
                    bound = max(bound, registry.get(struct).size)
                except KeyError:
                    findings.append(_finding(
                        "ir-unknown-struct", name,
                        "lowered %s access but struct %r is unregistered"
                        % (op.target, struct), where))
            if bound == 0:
                continue
        else:
            findings.append(_finding(
                "ir-bad-target", name,
                "lowered memory op targets unknown region %r" % op.target,
                where))
            continue
        if bound is not None and op.offset + op.size > bound:
            findings.append(_finding(
                "exec-memop-bounds", name,
                "%s access [%d, %d) outside the %d-byte region"
                % (op.target, op.offset, op.offset + op.size, bound), where))
    if program.instructions < 0 or program.branch_miss_expect < 0:
        findings.append(_finding(
            "ir-negative-cost", name,
            "lowered program has negative cost totals", location))
    for footprint, count in program.random_ops:
        if footprint < 1 or count < 1:
            findings.append(_finding(
                "ir-bad-size", name,
                "lowered random access footprint %d x%d" % (footprint, count),
                location))
    return findings


def assert_verified(program: Program, registry: LayoutRegistry, **kwargs) -> None:
    """Fail-hard wrapper: raise :class:`VerifierError` on any error finding."""
    findings = [
        f for f in verify_program(program, registry, **kwargs)
        if f.severity == ERROR
    ]
    if findings:
        raise VerifierError(
            "IR verification of %r failed:\n%s"
            % (program.name, "\n".join("  " + f.format() for f in findings)),
            findings,
        )


def attach_verifier(
    pass_manager,
    registry: LayoutRegistry,
    frame_bytes: int = MBUF_DATA_ROOM,
    collect=None,
) -> None:
    """Verify after every pass application (the pipeline's debug mode).

    The hook names the offending pass in the raised error, so a pass bug
    is caught at the application that introduced it rather than at
    lowering or -- worse -- as a silently wrong cost model.  With
    ``collect`` (a callable taking a findings list) violations are
    accumulated instead of raised.
    """

    def _verify(program: Program, pass_name: str) -> None:
        findings = [
            f for f in verify_program(
                program, registry, frame_bytes=frame_bytes,
                pool_balance=NOTE, location="after pass %r" % pass_name,
            )
            if f.severity == ERROR
        ]
        if not findings:
            return
        if collect is not None:
            collect(findings)
            return
        raise VerifierError(
            "pass %r broke program %r:\n%s"
            % (pass_name, program.name,
               "\n".join("  " + f.format() for f in findings)),
            findings,
        )

    pass_manager.verifier = _verify
