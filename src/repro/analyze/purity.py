"""The purity checker: ``pure_process`` claims, machine-checked from IR.

The driver's packet-class fast path (PR 4) memoizes the routing decision
of elements that claim ``pure_process = True`` -- skipping their Python
``process()`` for packets whose inspected bytes were seen before.  That
is only sound if the element really is a pure classifier:

- **no state writes** -- a ``StateAccess(write=True)`` in the IR means
  ``process()`` mutates element state (counters, tables) that a skipped
  call would silently miss;
- **no randomized work** -- ``RandomAccess`` marks data-dependent walks
  over mutable working sets (flow tables, tries with updates); their
  outcome can change between identical packets;
- **no buffer management** -- a ``PoolOp`` allocates or frees per packet,
  a side effect the fast path would elide;
- **no packet writes** -- a ``DataAccess``/``FieldAccess`` with
  ``write=True`` means ``process()`` mutates the packet or its metadata;
  the fast path forwards the packet *unprocessed*, so the mutation would
  silently vanish for memoized routes;
- **deterministic routing** -- the element must define
  ``route_signature()`` so "same signature, same route" is well defined.

The checks run from the element's *declared IR*, the same program the
cost model executes -- so an element whose annotation contradicts its own
profile is rejected before the fast path ever engages (previously the
annotation was trusted unchecked).
"""

from __future__ import annotations

from typing import List

from repro.analyze.findings import ERROR, AnalysisError, Finding
from repro.compiler.ir import (
    DataAccess,
    FieldAccess,
    PoolOp,
    RandomAccess,
    StateAccess,
)


class PurityError(AnalysisError):
    """An element's ``pure_process`` annotation is unsound."""


def check_purity(element) -> List[Finding]:
    """Findings for one element *claiming* purity (empty = claim holds).

    Call unconditionally; elements that do not claim ``pure_process``
    trivially pass.
    """
    if not getattr(element, "pure_process", False):
        return []
    findings: List[Finding] = []
    name = element.name
    location = "element class %s" % element.decl.class_name
    program = element.ir_program()
    for index, op in enumerate(program.ops):
        where = "%s, op %d" % (location, index)
        if isinstance(op, StateAccess) and op.write:
            findings.append(Finding(
                "purity-state-write", ERROR, name,
                "pure_process element writes %d byte(s) of element state"
                % op.size, where))
        elif isinstance(op, RandomAccess):
            findings.append(Finding(
                "purity-random-access", ERROR, name,
                "pure_process element walks a %d-byte mutable working set"
                % op.footprint, where))
        elif isinstance(op, PoolOp):
            findings.append(Finding(
                "purity-pool-op", ERROR, name,
                "pure_process element performs a pool %s per packet"
                % op.kind, where))
        elif isinstance(op, DataAccess) and op.write:
            findings.append(Finding(
                "purity-packet-write", ERROR, name,
                "pure_process element writes %d packet byte(s) at offset "
                "%d; the fast path skips process(), losing the write"
                % (op.size, op.offset), where))
        elif isinstance(op, FieldAccess) and op.write:
            findings.append(Finding(
                "purity-packet-write", ERROR, name,
                "pure_process element writes metadata field %s.%s; the "
                "fast path skips process(), losing the write"
                % (op.struct, op.fieldname), where))
    if not callable(getattr(element, "route_signature", None)):
        findings.append(Finding(
            "purity-no-signature", ERROR, name,
            "pure_process element defines no route_signature()", location))
    return findings


def assert_pure(element) -> None:
    """Fail hard when a ``pure_process`` claim is unsound.

    The driver calls this for every fast-path candidate at construction
    time: an impure element with a purity annotation is a correctness bug
    (memoized routes would diverge from real execution), not a tuning
    knob, so the build refuses to run rather than refusing the cache.
    """
    findings = check_purity(element)
    if findings:
        raise PurityError(
            "element %r claims pure_process but is not pure:\n%s"
            % (element.name, "\n".join("  " + f.format() for f in findings)),
            findings,
        )


def check_graph_purity(graph) -> List[Finding]:
    """Purity findings for every annotated element of a graph."""
    findings: List[Finding] = []
    for element in graph.all_elements():
        findings.extend(check_purity(element))
    return findings
