"""``python -m repro.analyze``: the static-analysis command line.

Analyze one configuration (a file path or a shipped configuration name)
or every shipped configuration (``--shipped``), under a named build
variant, and exit non-zero when findings reach the ``--fail-on``
threshold -- which is how the CI analyze-smoke job gates the tree.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

from repro.analyze.api import analyze_config
from repro.analyze.findings import ERROR, NOTE, SEVERITIES, severity_rank


def shipped_configs() -> Dict[str, str]:
    """Every configuration the repo ships, by name (the evaluation NFs)."""
    from repro.core import nfs

    return {
        "forwarder": nfs.forwarder(),
        "forwarder-two-nics": nfs.forwarder_two_nics(),
        "router": nfs.router(),
        "router-icmp": nfs.router(icmp_errors=True),
        "guarded-router": nfs.guarded_router(),
        "ids-router": nfs.ids_router(),
        "nat-router": nfs.nat_router(),
        "workpackage": nfs.workpackage_forwarder(1.0, 2, 25),
        "qos-forwarder": nfs.qos_forwarder(pfc=False),
        "qos-forwarder-pfc": nfs.qos_forwarder(pfc=True),
        # Multicore deployments of the same configs: the *text* is
        # identical, what changes is the RunProfile they analyze under
        # (see shipped_runtime_pairings) -- n_cores, RSS steering,
        # dispatch spray.  This is what the sharding lints target.
        "forwarder-sharded": nfs.forwarder(),
        "nat-sharded": nfs.nat_router(),
        "forwarder-steered": nfs.forwarder(),
        "nat-steered": nfs.nat_router(),
    }


def shipped_runtime_pairings() -> Dict[str, object]:
    """The RunProfile each shipped configuration is meant to run under.

    Configurations absent from this map analyze single-core with no RSS
    (profile ``None``); the sharded/steered entries carry the replica
    count and steering policy the sharding-safety lints key on.
    ``nat-steered`` deliberately runs steering *without* dispatch spray:
    a stateful NAT under bucket migration warns, but only dispatch makes
    it an error (``shard-stateful-dispatch``).
    """
    from repro.core.profile import RunProfile
    from repro.net.rss import RssConfig
    from repro.net.steering import SteeringPolicy

    return {
        "forwarder-sharded": RunProfile(n_cores=4),
        "nat-sharded": RunProfile(n_cores=4),
        "forwarder-steered": RunProfile(
            n_cores=4,
            rss=RssConfig(steering=SteeringPolicy(dispatch=True)),
        ),
        "nat-steered": RunProfile(
            n_cores=4,
            rss=RssConfig(steering=SteeringPolicy()),
        ),
    }


def shipped_qos_pairings() -> Dict[str, object]:
    """The QosConfig each shipped configuration is meant to run under.

    Configurations absent from this map analyze with ``qos=None``; the
    ones listed here contain QoS elements, so analyzing them unpaired
    would (correctly) flag ``qos-pause-unbound``.
    """
    from repro.qos import default_qos

    return {
        "qos-forwarder": default_qos(),
        "qos-forwarder-pfc": default_qos(),
    }


def _options_catalog() -> Dict[str, object]:
    from repro.core.options import BuildOptions, MetadataModel

    return {
        "vanilla": BuildOptions.vanilla(),
        "devirtualize": BuildOptions.devirtualized(),
        "constant": BuildOptions.constant(),
        "static": BuildOptions.static(),
        "all-code-opts": BuildOptions.all_code_opts(),
        "lto-reorder": BuildOptions.lto_reorder(),
        "packetmill": BuildOptions.packetmill(),
        "copying": BuildOptions.metadata(MetadataModel.COPYING),
        "overlaying": BuildOptions.metadata(MetadataModel.OVERLAYING),
        "xchange": BuildOptions.metadata(MetadataModel.XCHANGE),
        "tinynf": BuildOptions.metadata(MetadataModel.TINYNF),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Statically analyze PacketMill Click configurations.",
    )
    parser.add_argument(
        "config", nargs="*",
        help="configuration file path, or a shipped configuration name "
             "(%s)" % ", ".join(sorted(shipped_configs())))
    parser.add_argument(
        "--shipped", action="store_true",
        help="analyze every shipped configuration")
    parser.add_argument(
        "--options", default="packetmill", metavar="VARIANT",
        help="build variant to analyze under (default: packetmill; "
             "one of %s)" % ", ".join(sorted(_options_catalog())))
    parser.add_argument(
        "--qos", metavar="NAME",
        help="analyze under a shipped QoS buffer config (one of %s); "
             "shipped QoS configurations pair automatically"
             % ", ".join(sorted(_qos_catalog())))
    parser.add_argument(
        "--json", action="store_true", help="emit one JSON report per config")
    parser.add_argument(
        "--sarif", action="store_true",
        help="emit one combined SARIF 2.1.0 log covering every analyzed "
             "config (for CI annotation); suppresses text/JSON output")
    parser.add_argument(
        "--cores", type=int, default=None, metavar="N",
        help="analyze as an N-replica sharded deployment (overrides the "
             "shipped runtime pairing; enables the sharding lints)")
    parser.add_argument(
        "--steering", action="store_true",
        help="with --cores: analyze under an adaptive-steering policy")
    parser.add_argument(
        "--dispatch", action="store_true",
        help="with --steering: the policy sprays flows per-dispatch "
             "(what shard-stateful-dispatch fires on)")
    parser.add_argument(
        "--min-severity", default=NOTE, choices=SEVERITIES,
        help="lowest severity shown in text output (default: note)")
    parser.add_argument(
        "--fail-on", default=ERROR, choices=SEVERITIES,
        help="exit non-zero when any finding reaches this severity "
             "(default: error)")
    return parser


def _qos_catalog() -> Dict[str, object]:
    from repro.qos import shipped_qos_configs

    return shipped_qos_configs()


def _load(name_or_path: str) -> tuple:
    """(subject, config text) for a shipped name or a file path."""
    shipped = shipped_configs()
    if name_or_path in shipped:
        return name_or_path, shipped[name_or_path]
    try:
        with open(name_or_path) as handle:
            return name_or_path, handle.read()
    except OSError as exc:
        raise SystemExit(
            "error: %r is neither a shipped configuration (%s) nor a "
            "readable file: %s"
            % (name_or_path, ", ".join(sorted(shipped)), exc))


def main(argv: List[str] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    catalog = _options_catalog()
    if args.options not in catalog:
        parser.error(
            "unknown --options %r (expected one of %s)"
            % (args.options, ", ".join(sorted(catalog))))
    options = catalog[args.options]
    if args.shipped:
        targets = list(shipped_configs().items())
    elif args.config:
        targets = [_load(item) for item in args.config]
    else:
        parser.error("give a configuration (file or shipped name) or --shipped")

    qos_override = None
    if args.qos is not None:
        qos_catalog = _qos_catalog()
        if args.qos not in qos_catalog:
            parser.error(
                "unknown --qos %r (expected one of %s)"
                % (args.qos, ", ".join(sorted(qos_catalog))))
        qos_override = qos_catalog[args.qos]
    pairings = shipped_qos_pairings()

    profile_override = None
    if args.cores is not None or args.steering or args.dispatch:
        profile_override = _profile_from_flags(
            args.cores, args.steering, args.dispatch)
    runtime_pairings = shipped_runtime_pairings()

    threshold = severity_rank(args.fail_on)
    failed = False
    sarif_runs = []
    for index, (subject, text) in enumerate(targets):
        qos = qos_override if qos_override is not None else pairings.get(subject)
        profile = (profile_override if profile_override is not None
                   else runtime_pairings.get(subject))
        report = analyze_config(
            text, options, subject=subject, qos=qos, profile=profile)
        if args.sarif:
            sarif_runs.append(report.to_sarif_run())
        elif args.json:
            print(report.to_json())
        else:
            if index:
                print()
            print(report.to_text(min_severity=args.min_severity))
        if any(severity_rank(f.severity) >= threshold for f in report.findings):
            failed = True
    if args.sarif:
        import json

        from repro.analyze.findings import sarif_log

        print(json.dumps(sarif_log(sarif_runs), indent=2, sort_keys=True))
    return 1 if failed else 0


def _profile_from_flags(cores, steering, dispatch):
    """A RunProfile from the --cores/--steering/--dispatch overrides."""
    from repro.core.profile import RunProfile
    from repro.net.rss import RssConfig
    from repro.net.steering import SteeringPolicy

    rss = None
    if steering or dispatch:
        rss = RssConfig(steering=SteeringPolicy(dispatch=dispatch))
    return RunProfile(n_cores=cores if cores is not None else 1, rss=rss)


if __name__ == "__main__":
    sys.exit(main())
