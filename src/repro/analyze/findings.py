"""The finding model: rules, severities, and the analysis report.

Every check in :mod:`repro.analyze` reports through the same vocabulary:
a :class:`Finding` names the rule that fired, its severity, the subject
(element, program, struct, or field) and an explanation; an
:class:`AnalysisReport` aggregates findings across all passes, renders
them as text or JSON, mirrors the counts into a telemetry registry under
``analyze.*``, and decides whether the configuration is sound.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Iterable, List, Optional

#: Severity levels, weakest to strongest.
NOTE = "note"
WARNING = "warning"
ERROR = "error"

SEVERITIES = (NOTE, WARNING, ERROR)
_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


def severity_rank(severity: str) -> int:
    """Numeric rank for threshold comparisons (note=0 < warning < error)."""
    try:
        return _SEVERITY_RANK[severity]
    except KeyError:
        raise ValueError(
            "unknown severity %r (expected one of %s)"
            % (severity, ", ".join(SEVERITIES))
        ) from None


#: SARIF version the reports emit; the schema URI CI annotators expect.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def sarif_log(runs: List[Dict]) -> Dict:
    """Wrap SARIF ``run`` objects into a complete log document."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": list(runs),
    }


class AnalysisError(RuntimeError):
    """A check found error-severity problems and was asked to fail hard."""

    def __init__(self, message: str, findings: Optional[List["Finding"]] = None):
        super().__init__(message)
        self.findings = findings or []


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule.

    ``rule`` is the stable kebab-case identifier documented in
    docs/ANALYZE.md; ``subject`` names what the finding is about (an
    element, a program, a struct field); ``location`` is a human-readable
    source location when one is known (config line, pass name).
    """

    rule: str
    severity: str
    subject: str
    message: str
    location: str = ""

    def __post_init__(self):
        severity_rank(self.severity)  # reject unknown severities early

    def format(self) -> str:
        where = " (%s)" % self.location if self.location else ""
        return "%-7s %-26s %s: %s%s" % (
            self.severity, self.rule, self.subject, self.message, where
        )

    def to_dict(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "subject": self.subject,
            "message": self.message,
            "location": self.location,
        }


@dataclass
class AnalysisReport:
    """All findings of one analysis run, plus the rendering/accounting."""

    findings: List[Finding] = dataclass_field(default_factory=list)
    #: What was analyzed (config name, build label) -- cosmetic.
    subject: str = ""
    #: Pass counters beyond findings (facts proven, dead ports, state
    #: classes); mirrored into telemetry as ``analyze.<key>``.
    metrics: Dict[str, float] = dataclass_field(default_factory=dict)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    # -- filtering ---------------------------------------------------------------

    def by_severity(self, severity: str) -> List[Finding]:
        return [f for f in self.findings if f.severity == severity]

    def by_rule(self, rule: str) -> List[Finding]:
        return [f for f in self.findings if f.rule == rule]

    def at_least(self, severity: str) -> List[Finding]:
        """Findings at or above the given severity."""
        floor = severity_rank(severity)
        return [
            f for f in self.findings if severity_rank(f.severity) >= floor
        ]

    @property
    def errors(self) -> List[Finding]:
        return self.by_severity(ERROR)

    @property
    def warnings(self) -> List[Finding]:
        return self.by_severity(WARNING)

    @property
    def notes(self) -> List[Finding]:
        return self.by_severity(NOTE)

    @property
    def ok(self) -> bool:
        """Sound: no error-severity findings."""
        return not self.errors

    def counts(self) -> Dict[str, int]:
        out = {severity: 0 for severity in SEVERITIES}
        for finding in self.findings:
            out[finding.severity] += 1
        return out

    # -- accounting ----------------------------------------------------------------

    def record(self, registry) -> None:
        """Mirror the finding counts into a telemetry registry.

        Lives under ``analyze.*``: total, one counter per severity, and
        one per rule id (``analyze.rule.<rule-id>``), so experiment
        snapshots carry the static-analysis outcome next to the run
        counters.
        """
        registry.counter("analyze.findings").add(len(self.findings))
        for severity, count in self.counts().items():
            registry.counter("analyze." + severity).add(count)
        for finding in self.findings:
            registry.counter("analyze.rule." + finding.rule).add(1)
        for key in sorted(self.metrics):
            registry.counter("analyze." + key).add(self.metrics[key])

    def raise_on_errors(self) -> None:
        errors = self.errors
        if errors:
            raise AnalysisError(
                "analysis found %d error(s):\n%s"
                % (len(errors), "\n".join("  " + f.format() for f in errors)),
                errors,
            )

    # -- rendering ------------------------------------------------------------------

    def to_text(self, min_severity: str = NOTE) -> str:
        shown = sorted(
            self.at_least(min_severity),
            key=lambda f: (-severity_rank(f.severity), f.rule, f.subject),
        )
        lines = []
        if self.subject:
            lines.append("analysis of %s" % self.subject)
        lines.extend(f.format() for f in shown)
        counts = self.counts()
        lines.append(
            "%d finding(s): %d error, %d warning, %d note"
            % (len(self.findings), counts[ERROR], counts[WARNING], counts[NOTE])
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "subject": self.subject,
                "counts": self.counts(),
                "ok": self.ok,
                "findings": [f.to_dict() for f in self.findings],
                "metrics": self.metrics,
            },
            indent=2,
            sort_keys=True,
        )

    def to_sarif_run(self) -> Dict:
        """This report as one SARIF ``run`` object (SARIF 2.1.0).

        Severities map onto SARIF levels directly (note/warning/error);
        the subject and location travel as a logical location plus a
        property bag, since our findings point at graph elements rather
        than files.
        """
        rules = sorted({f.rule for f in self.findings})
        rule_index = {rule: i for i, rule in enumerate(rules)}
        results = []
        for finding in self.findings:
            result = {
                "ruleId": finding.rule,
                "ruleIndex": rule_index[finding.rule],
                "level": finding.severity,
                "message": {"text": finding.message},
                "locations": [{
                    "logicalLocations": [{
                        "name": finding.subject,
                        "fullyQualifiedName": "%s::%s" % (
                            self.subject or "<config>", finding.subject),
                    }],
                }],
                "properties": {"subject": finding.subject},
            }
            if finding.location:
                result["properties"]["location"] = finding.location
            results.append(result)
        return {
            "tool": {
                "driver": {
                    "name": "repro.analyze",
                    "rules": [{"id": rule} for rule in rules],
                },
            },
            "properties": {
                "subject": self.subject,
                "counts": self.counts(),
                "metrics": self.metrics,
            },
            "results": results,
        }

    def to_sarif(self) -> str:
        """A complete single-run SARIF 2.1.0 log, as JSON text."""
        return json.dumps(
            sarif_log([self.to_sarif_run()]), indent=2, sort_keys=True)

    def __len__(self) -> int:
        return len(self.findings)

    def __repr__(self) -> str:
        counts = self.counts()
        return "AnalysisReport(%d errors, %d warnings, %d notes)" % (
            counts[ERROR], counts[WARNING], counts[NOTE]
        )
