"""Graph and rule lints over an instantiated :class:`ProcessingGraph`.

Structural problems a configuration can carry without ever raising at
build time: elements no packet can reach, output ports that silently
drop, classifier rule sets with unreachable outputs, and input ports
nothing feeds.  Each lint is one function returning findings; the
:data:`GRAPH_LINTS` tuple is the pass roster :func:`lint_graph` runs.
"""

from __future__ import annotations

from typing import List

from repro.analyze.findings import ERROR, NOTE, WARNING, Finding
from repro.analyze.dataflow import RX_CLASSES


def _location(element) -> str:
    line = getattr(element.decl, "line", 0)
    where = "element class %s" % element.decl.class_name
    return "%s, line %d" % (where, line) if line else where


def lint_sources(graph) -> List[Finding]:
    """A packet-processing graph needs at least one RX device."""
    if any(
        e.decl.class_name in RX_CLASSES for e in graph.all_elements()
    ):
        return []
    return [Finding(
        "graph-no-source", ERROR, "<graph>",
        "configuration has no %s; no packet can ever enter the graph"
        % "/".join(RX_CLASSES))]


def lint_unreachable(graph) -> List[Finding]:
    """Elements no source can reach do cold work: dead configuration."""
    reachable = set()
    for source in graph.sources():
        reachable.update(e.name for e in graph.reachable_from(source))
    return [
        Finding(
            "graph-unreachable", WARNING, element.name,
            "not reachable from any source; the element never sees a packet",
            _location(element))
        for name, element in graph.elements.items()
        if name not in reachable
    ]


def lint_unconnected_inputs(graph) -> List[Finding]:
    """Required input ports nothing feeds (also a build-time error)."""
    return [
        Finding(
            "graph-unconnected-input", ERROR, name,
            "input port [%d] is not connected; packets can never arrive"
            % port,
            _location(graph.element(name)))
        for name, port in graph.unconnected_inputs()
    ]


def lint_dangling_outputs(graph) -> List[Finding]:
    """Output ports with no target: the driver kills what lands there.

    Deliberate in many configurations (CheckIPHeader's bad-packet port is
    conventionally left open as a drop), so this is a note, not an error.
    """
    findings = []
    for element in graph.all_elements():
        for port in range(element.n_outputs):
            if element.target(port) is None:
                findings.append(Finding(
                    "graph-dangling-output", NOTE, element.name,
                    "output port [%d] is unconnected; packets routed "
                    "there are dropped" % port,
                    _location(element)))
    return findings


def lint_shadowed_rules(graph) -> List[Finding]:
    """Classifier rule sets where an earlier pattern makes a later one
    unreachable -- the later output port can never fire, which is a bug
    in the rule set, not a style issue."""
    findings = []
    for element in graph.all_elements():
        shadowed_outputs = getattr(element, "shadowed_outputs", None)
        if shadowed_outputs is None:
            continue
        for shadower, shadowed in shadowed_outputs():
            findings.append(Finding(
                "classifier-shadowed-rule", ERROR, element.name,
                "rule %d is fully shadowed by earlier rule %d; output "
                "port [%d] is unreachable" % (shadowed, shadower, shadowed),
                _location(element)))
    return findings


GRAPH_LINTS = (
    lint_sources,
    lint_unconnected_inputs,
    lint_unreachable,
    lint_dangling_outputs,
    lint_shadowed_rules,
)


def lint_graph(graph) -> List[Finding]:
    """Run every graph lint, in roster order."""
    findings: List[Finding] = []
    for lint in GRAPH_LINTS:
        findings.extend(lint(graph))
    return findings
