"""Whole-configuration analysis: every check, one report.

:func:`analyze_config` runs the complete static-analysis stack over one
Click configuration under one set of build options, mirroring the build
pipeline stage by stage without executing a packet:

1. parse the configuration into a :class:`ProcessingGraph` (parse errors
   become findings, not tracebacks);
2. graph lints (sources, reachability, ports, shadowed rules);
3. purity checks for every ``pure_process`` annotation;
4. IR verification of each element program, re-verified after every
   compiler pass the options enable (so a pass bug names its pass);
5. metadata reordering cross-check, when the options request the pass;
6. lowering + verification of every lowered program;
7. PMD RX/TX program verification and pool-balance pairing;
8. path-sensitive constant propagation per output port
   (``constant-branch``, ``redundant-check``);
9. the X-Change metadata dataflow analysis (use-before-init, dead
   stores, dead fields) under the options' metadata model, with the
   constprop dead edges excluded from the successor relation;
10. the sharding-safety lints, when a :class:`~repro.core.profile.RunProfile`
    says how the config will be replicated (``n_cores``, RSS steering).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analyze.constprop import ConstProp
from repro.analyze.dataflow import MetadataDataflow, crosscheck_reorder
from repro.analyze.findings import ERROR, NOTE, AnalysisReport, Finding
from repro.analyze.lints import lint_graph
from repro.analyze.sharding import lint_sharding, sharding_stats
from repro.analyze.purity import check_graph_purity
from repro.analyze.verifier import (
    attach_verifier,
    verify_exec_program,
    verify_pool_pair,
    verify_program,
)
from repro.compiler.ir import Program
from repro.compiler.structlayout import LayoutRegistry, StructLayout


def analyze_config(
    config: str,
    options=None,
    registry=None,
    subject: str = "<config>",
    qos=None,
    profile=None,
) -> AnalysisReport:
    """Statically analyze one configuration; never raises on bad input.

    ``options`` is a :class:`~repro.core.options.BuildOptions` (defaults
    to the full PacketMill build); ``registry`` is an optional telemetry
    :class:`~repro.telemetry.registry.CounterRegistry` that receives the
    finding counts under ``analyze.*``; ``qos`` is the
    :class:`~repro.qos.config.QosConfig` the configuration will run
    under, enabling the QoS buffer-profile lints (a config containing
    QoS elements but analyzed without one is itself a finding);
    ``profile`` is the :class:`~repro.core.profile.RunProfile` the config
    will run under -- its ``n_cores``/``rss`` drive the sharding-safety
    lints (analyzing a sharded deployment without it misses them).
    """
    from repro.click.element import ElementConfigError
    from repro.click.config.lexer import ConfigError
    from repro.click.graph import ProcessingGraph
    from repro.core.options import BuildOptions

    options = options or BuildOptions.packetmill()
    report = AnalysisReport(subject=subject)
    try:
        graph = ProcessingGraph.from_text(config)
    except (ConfigError, ElementConfigError, ValueError) as exc:
        report.add(Finding(
            "config-parse-error", ERROR, subject, str(exc),
            "line %d" % exc.line if getattr(exc, "line", 0) else ""))
        if registry is not None:
            report.record(registry)
        return report
    analyze_graph(graph, options, report, qos=qos, profile=profile)
    if registry is not None:
        report.record(registry)
    return report


def analyze_graph(graph, options, report: Optional[AnalysisReport] = None,
                  qos=None, profile=None) -> AnalysisReport:
    """Analyze an already-instantiated graph under the given options."""
    from repro.analyze.qos import lint_qos
    from repro.compiler.pipeline import PassManager
    from repro.compiler.lower import lower

    if report is None:
        report = AnalysisReport()

    # -- structure and annotations --------------------------------------------
    report.extend(lint_graph(graph))
    report.extend(check_graph_purity(graph))
    report.extend(lint_qos(graph, qos))

    # -- layouts under the options' metadata model ------------------------------
    model = _make_model(options)
    registry = LayoutRegistry()
    model.register_layouts(registry)
    base_packet: StructLayout = registry.get("Packet")
    if not model.supports_buffering:
        for element in graph.all_elements():
            if getattr(element, "buffers_packets", False):
                report.add(Finding(
                    "model-cannot-buffer", ERROR, element.name,
                    "metadata model %r cannot buffer packets, but this "
                    "element holds them across iterations" % model.name))

    # -- element IR, verified through the pass pipeline --------------------------
    elements = graph.all_elements()
    pass_manager = PassManager.from_options(options)
    attach_verifier(
        pass_manager, registry,
        collect=lambda findings: report.extend(findings),
    )
    element_ir: Dict[str, Program] = {}
    for element in elements:
        program = element.ir_program()
        report.extend(verify_program(
            program, registry, state_size=element.state_size,
            location="element class %s" % element.decl.class_name,
        ))
        element_ir[element.name] = pass_manager.run(program)

    # -- PMD driver programs -------------------------------------------------------
    rx_program = model.rx_program()
    tx_program = model.tx_program()
    for program in (rx_program, tx_program):
        report.extend(verify_program(
            program, registry, pool_balance=NOTE, location="PMD program",
        ))
    report.extend(verify_pool_pair(rx_program, tx_program))

    # -- path-sensitive constant propagation ---------------------------------------
    constprop = ConstProp(graph)
    report.extend(constprop.findings())
    report.metrics.update(constprop.stats)

    # -- metadata dataflow (dead edges excluded) -----------------------------------
    dataflow = MetadataDataflow(
        graph, element_ir, rx_program, tx_program,
        mbuf_alias=getattr(model, "mbuf_alias", None),
        constprop=constprop,
    )
    report.extend(dataflow.findings())

    # -- sharding safety under the run profile ------------------------------------
    report.metrics.update(sharding_stats(graph))
    if profile is not None:
        report.extend(lint_sharding(
            graph,
            n_cores=getattr(profile, "n_cores", 1),
            rss=getattr(profile, "rss", None),
        ))

    # -- the reordering pass's actual layout decision ------------------------------
    if options.reorder_metadata:
        from repro.compiler.passes import reorder_metadata

        whole_program = list(element_ir.values()) + [rx_program, tx_program]
        actual = reorder_metadata(whole_program, registry, struct="Packet")
        report.extend(crosscheck_reorder(dataflow, base_packet))
        expected = base_packet.reordered(
            _whole_program_counts(whole_program)
        )
        if [f.name for f in expected.fields] != [f.name for f in actual.fields]:
            report.add(Finding(
                "reorder-mismatch", ERROR, "Packet",
                "the reordering pass produced a field order that differs "
                "from the whole-program access counts"))

    # -- lowering against the (possibly reordered) active layouts ------------------
    for element in elements:
        try:
            exec_program = lower(element_ir[element.name], registry)
        except (KeyError, TypeError, ValueError) as exc:
            report.add(Finding(
                "exec-lowering-failed", ERROR, element.name, str(exc)))
            continue
        report.extend(verify_exec_program(
            exec_program, registry, state_size=max(64, element.state_size),
        ))
    for program in (rx_program, tx_program):
        try:
            exec_program = lower(program, registry)
        except (KeyError, TypeError, ValueError) as exc:
            report.add(Finding(
                "exec-lowering-failed", ERROR, program.name, str(exc)))
            continue
        report.extend(verify_exec_program(exec_program, registry))
    return report


def _make_model(options):
    """The metadata model the options select (mirrors the build path)."""
    from repro.core.options import MetadataModel
    from repro.dpdk.metadata import CopyingModel, OverlayingModel, XChangeModel
    from repro.dpdk.tinynf import TinyNfModel
    from repro.dpdk.xchg_api import fastclick_conversions

    model = options.metadata_model
    if model is MetadataModel.COPYING:
        return CopyingModel()
    if model is MetadataModel.OVERLAYING:
        return OverlayingModel()
    if model is MetadataModel.TINYNF:
        return TinyNfModel()
    return XChangeModel(conversions=fastclick_conversions())


def _whole_program_counts(programs):
    from repro.compiler.ir import merge_access_counts

    return merge_access_counts(programs, "Packet")
