"""QoS lints: inconsistent buffer profiles and unbound pause elements.

The runtime side of :mod:`repro.qos` degrades through counters and never
raises on the data path -- which makes *misconfiguration* the dangerous
failure mode: a pause element watching a port with no buffer pool, a
headroom quota the shared pool can never honour, or XOFF thresholds the
buckets can never reach all fail silently at run time (pause never
asserts, headroom never absorbs).  These lints catch each of them
statically, from the config and the graph alone:

- ``qos-pause-unbound`` (error) -- a :class:`PFCPause` element watches a
  port no :class:`~repro.qos.config.QosConfig` covers (or none exists);
- ``qos-headroom-exceeds-pool`` (error) -- a profile's headroom quota
  exceeds the shared headroom pool, so the excess is unallocatable;
- ``qos-priority-no-pool`` -- a pause priority (error) or a
  PrioritySwitch output (warning) names a priority with no buffer
  profile: its frames are dropped unpooled at admission;
- ``qos-xon-above-xoff`` (error) -- pause would deassert above the
  level that asserted it, oscillating every iteration;
- ``qos-xoff-unreachable`` (warning) -- XOFF lies above the occupancy
  the reserved+shared buckets can reach, so pause can never assert;
- ``qos-shared-exceeds-pool`` (warning) -- a per-priority shared quota
  larger than the shared pool itself (the pool cap governs; the quota
  is misleading).
"""

from __future__ import annotations

from typing import List, Optional

from repro.analyze.findings import ERROR, WARNING, Finding


def lint_qos_config(qos) -> List[Finding]:
    """Config-only checks: every profile's quotas against the pools."""
    findings: List[Finding] = []
    for prio, profile in sorted(qos.profiles.items()):
        subject = "prio%d" % prio
        if profile.headroom > qos.headroom_size:
            findings.append(Finding(
                "qos-headroom-exceeds-pool", ERROR, subject,
                "headroom quota %d exceeds the shared headroom pool (%d "
                "cells): the excess can never be allocated"
                % (profile.headroom, qos.headroom_size)))
        if profile.shared_max > qos.shared_size:
            findings.append(Finding(
                "qos-shared-exceeds-pool", WARNING, subject,
                "shared quota %d exceeds the shared pool (%d cells); the "
                "pool cap governs and the quota is misleading"
                % (profile.shared_max, qos.shared_size)))
        xoff = profile.effective_xoff
        xon = profile.effective_xon
        if xon > xoff:
            findings.append(Finding(
                "qos-xon-above-xoff", ERROR, subject,
                "XON threshold %d above XOFF %d: pause would deassert at "
                "a higher occupancy than asserted it" % (xon, xoff)))
        reachable = profile.reserved + min(profile.shared_max, qos.shared_size)
        if xoff > reachable:
            findings.append(Finding(
                "qos-xoff-unreachable", WARNING, subject,
                "XOFF threshold %d above the %d cells reachable without "
                "headroom: pause can never assert" % (xoff, reachable)))
    return findings


def lint_qos(graph, qos=None) -> List[Finding]:
    """Graph-aware checks: QoS elements against the (optional) config.

    With ``qos=None`` the only possible finding is a pause element that
    exists with nothing to watch; a graph without QoS elements produces
    no findings, keeping pre-QoS analyses bit-identical.
    """
    findings: List[Finding] = []
    pause_elements = graph.by_class("PFCPause")
    if qos is None:
        for element in pause_elements:
            findings.append(Finding(
                "qos-pause-unbound", ERROR, element.name,
                "pause element watches port %d but no QoS buffer pools "
                "are configured (pass qos= to the build/analysis)"
                % element.param("port")))
        return findings
    findings.extend(lint_qos_config(qos))
    covered: Optional[frozenset] = (
        frozenset(qos.ports) if qos.ports else None  # None = every port
    )
    for element in pause_elements:
        port = element.param("port")
        if covered is not None and port not in covered:
            findings.append(Finding(
                "qos-pause-unbound", ERROR, element.name,
                "pause element watches port %d, which the QoS config "
                "does not cover (ports: %s)"
                % (port, ", ".join(str(p) for p in sorted(covered)))))
        for prio in element.priorities or ():
            if prio not in qos.profiles:
                findings.append(Finding(
                    "qos-priority-no-pool", ERROR, element.name,
                    "pause priority %d has no buffer profile: pause can "
                    "never assert for it" % prio))
    for element in graph.by_class("PrioritySwitch"):
        for prio in range(element.n_outputs):
            if prio not in qos.profiles:
                findings.append(Finding(
                    "qos-priority-no-pool", WARNING, element.name,
                    "output priority %d has no buffer profile: its "
                    "frames are dropped unpooled at admission" % prio))
    return findings
