"""Sharding-safety lints: is this graph safe to replicate per core?

The PR 8 multicore runtime replicates the whole graph per core and RSS
hash-partitions flows across replicas; the PR 9 steering layer moves
hash buckets between cores, and its optional *dispatch spray* sends a
share of packets round-robin regardless of their flow hash.  Whether
any of that is semantically safe depends on the state each element
keeps -- knowledge the IR already carries and the purity checker
already walks.  These lints classify it statically:

- ``STATELESS``: no mutable state at all (a rewrite, a classifier);
- ``READ_ONLY``: only reads shared structures (a FIB trie, a static
  working set) -- replicating is free;
- ``FLOW_LOCAL``: mutable state keyed by flow bytes (a NAT's conntrack
  table: reads the 5-tuple, writes a keyed table entry) -- correct
  under RSS *because* RSS keeps a flow on one core, broken by anything
  that doesn't;
- ``CROSS_FLOW``: mutable state not keyed by flow (a counter, a queue)
  -- replicas silently partition the aggregate.

Rules (all keyed on the :class:`~repro.core.profile.RunProfile` the
analyzer now receives):

- ``shard-stateful-dispatch`` (ERROR): a FLOW_LOCAL element under a
  steering policy with dispatch spray enabled.  Round-robin breaks flow
  affinity: two packets of one flow land on different replicas and see
  different conntrack tables.  This is the hazard the ROADMAP's
  "stateful flow migration" item names.
- ``shard-stateful-migration`` (WARNING): a FLOW_LOCAL element under a
  steering policy without dispatch.  RETA moves re-home whole buckets;
  in-flight flows migrate between replicas with no state handoff model.
- ``shard-shared-state`` (WARNING): a CROSS_FLOW element with
  ``n_cores > 1``.  Each replica keeps its own copy; aggregate
  semantics (a global counter, one queue) silently become per-core.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analyze.findings import Finding
from repro.analyze.lints import _location
from repro.click.graph import ProcessingGraph
from repro.compiler.ir import DataAccess, Program, RandomAccess, StateAccess

STATELESS = "stateless"
READ_ONLY = "read-only"
FLOW_LOCAL = "flow-local"
CROSS_FLOW = "cross-flow"

# Frame-relative byte spans of the canonical IPv4 flow key: protocol,
# source/destination address, L4 ports.  An element that reads these and
# writes a keyed table is conntrack-shaped.
FLOW_KEY_SPANS = ((23, 24), (26, 34), (34, 38))


def _reads_flow_key(program: Program) -> bool:
    for op in program:
        if isinstance(op, DataAccess) and not op.write:
            for lo, hi in FLOW_KEY_SPANS:
                if op.offset < hi and op.offset + op.size > lo:
                    return True
    return False


def classify_element_state(program: Program) -> str:
    """One of the four state classes, from the element's IR alone."""
    has_table_write = any(
        isinstance(op, RandomAccess) and op.write for op in program)
    has_state_write = any(
        isinstance(op, StateAccess) and op.write for op in program)
    has_read_only = any(
        isinstance(op, (RandomAccess, StateAccess)) and not op.write
        for op in program)
    if has_table_write and _reads_flow_key(program):
        return FLOW_LOCAL
    if has_table_write or has_state_write:
        return CROSS_FLOW
    if has_read_only:
        return READ_ONLY
    return STATELESS


def lint_sharding(
    graph: ProcessingGraph,
    n_cores: int = 1,
    rss=None,
) -> List[Finding]:
    """Findings for running ``graph`` replicated over ``n_cores`` with
    the given :class:`~repro.net.rss.RssConfig` (may be ``None``)."""
    if n_cores <= 1:
        return []
    steering = getattr(rss, "steering", None)
    dispatch = bool(getattr(steering, "dispatch", False))
    out: List[Finding] = []
    for element in graph.all_elements():
        cls = classify_element_state(element.ir_program())
        if cls == FLOW_LOCAL:
            if steering is not None and dispatch:
                out.append(Finding(
                    rule="shard-stateful-dispatch",
                    severity="error",
                    subject=element.name,
                    message=(
                        "flow-keyed stateful element under dispatch "
                        "spray: round-robin dispatch breaks flow "
                        "affinity, so packets of one flow hit different "
                        "replicas' state tables"),
                    location=_location(element),
                ))
            elif steering is not None:
                out.append(Finding(
                    rule="shard-stateful-migration",
                    severity="warning",
                    subject=element.name,
                    message=(
                        "flow-keyed stateful element under steering: "
                        "RETA rebalancing migrates flows between "
                        "replicas with no state-handoff model"),
                    location=_location(element),
                ))
        elif cls == CROSS_FLOW:
            out.append(Finding(
                rule="shard-shared-state",
                severity="warning",
                subject=element.name,
                message=(
                    "cross-flow mutable state replicated over %d cores: "
                    "aggregate semantics silently become per-replica"
                    % n_cores),
                location=_location(element),
            ))
    return out


def sharding_stats(graph: ProcessingGraph) -> dict:
    """Pass counters for the telemetry registry."""
    counts = {STATELESS: 0, READ_ONLY: 0, FLOW_LOCAL: 0, CROSS_FLOW: 0}
    for element in graph.all_elements():
        counts[classify_element_state(element.ir_program())] += 1
    return {
        "sharding.flow_local": float(counts[FLOW_LOCAL]),
        "sharding.cross_flow": float(counts[CROSS_FLOW]),
        "sharding.read_only": float(counts[READ_ONLY]),
    }


__all__ = [
    "CROSS_FLOW",
    "FLOW_KEY_SPANS",
    "FLOW_LOCAL",
    "READ_ONLY",
    "STATELESS",
    "classify_element_state",
    "lint_sharding",
    "sharding_stats",
]
