"""Static analysis for PacketMill configurations and compiler output.

Three cooperating checkers over the same IR the cost model executes:

- the **IR verifier** (:mod:`repro.analyze.verifier`): structural
  invariants of every element/PMD program against the active struct
  layouts, re-run after each compiler pass in debug mode;
- the **X-Change metadata dataflow** (:mod:`repro.analyze.dataflow`):
  per-field def/use propagation along the processing graph
  (use-before-init, dead stores, dead fields), cross-checked against the
  reordering pass's layout decision;
- the **lints** (:mod:`repro.analyze.lints`, :mod:`repro.analyze.purity`):
  graph structure (unreachable elements, unconnected inputs, dangling
  outputs, shadowed classifier rules) and ``pure_process`` soundness for
  the driver's packet-class fast path.

:func:`analyze_config` runs everything over one configuration; the CLI
(``python -m repro.analyze``) wraps it; the build hook
(``PacketMill(..., analyze=...)``) gates builds on the result.
"""

from repro.analyze.api import analyze_config, analyze_graph
from repro.analyze.dataflow import MetadataDataflow, crosscheck_reorder
from repro.analyze.findings import (
    ERROR,
    NOTE,
    SEVERITIES,
    WARNING,
    AnalysisError,
    AnalysisReport,
    Finding,
    severity_rank,
)
from repro.analyze.lints import GRAPH_LINTS, lint_graph
from repro.analyze.purity import (
    PurityError,
    assert_pure,
    check_graph_purity,
    check_purity,
)
from repro.analyze.qos import lint_qos, lint_qos_config
from repro.analyze.verifier import (
    VerifierError,
    assert_verified,
    attach_verifier,
    verify_exec_program,
    verify_pool_pair,
    verify_program,
)

__all__ = [
    "ERROR",
    "NOTE",
    "WARNING",
    "SEVERITIES",
    "AnalysisError",
    "AnalysisReport",
    "Finding",
    "GRAPH_LINTS",
    "MetadataDataflow",
    "PurityError",
    "VerifierError",
    "analyze_config",
    "analyze_graph",
    "assert_pure",
    "assert_verified",
    "attach_verifier",
    "check_graph_purity",
    "check_purity",
    "crosscheck_reorder",
    "lint_graph",
    "lint_qos",
    "lint_qos_config",
    "severity_rank",
    "verify_exec_program",
    "verify_pool_pair",
    "verify_program",
]
