"""Static analysis for PacketMill configurations and compiler output.

Three cooperating checkers over the same IR the cost model executes:

- the **IR verifier** (:mod:`repro.analyze.verifier`): structural
  invariants of every element/PMD program against the active struct
  layouts, re-run after each compiler pass in debug mode;
- the **X-Change metadata dataflow** (:mod:`repro.analyze.dataflow`):
  per-field def/use propagation along the processing graph
  (use-before-init, dead stores, dead fields), cross-checked against the
  reordering pass's layout decision;
- the **constant propagation pass** (:mod:`repro.analyze.constprop`):
  path-sensitive abstract values per output port, propagated
  inter-element (``constant-branch``, ``redundant-check``); its dead
  edges sharpen the dataflow and its proven facts feed the codegen
  tier's dead-code elimination;
- the **lints** (:mod:`repro.analyze.lints`, :mod:`repro.analyze.purity`,
  :mod:`repro.analyze.sharding`):
  graph structure (unreachable elements, unconnected inputs, dangling
  outputs, shadowed classifier rules), ``pure_process`` soundness for
  the driver's packet-class fast path, and sharding safety of stateful
  elements under multicore replication and steering.

:func:`analyze_config` runs everything over one configuration; the CLI
(``python -m repro.analyze``) wraps it; the build hook
(``PacketMill(..., analyze=...)``) gates builds on the result.
"""

from repro.analyze.api import analyze_config, analyze_graph
from repro.analyze.constprop import (
    ConstProp,
    Facts,
    compute_program_facts,
    join_facts,
    match_predicate,
)
from repro.analyze.dataflow import MetadataDataflow, crosscheck_reorder
from repro.analyze.findings import (
    ERROR,
    NOTE,
    SEVERITIES,
    WARNING,
    AnalysisError,
    AnalysisReport,
    Finding,
    severity_rank,
)
from repro.analyze.lints import GRAPH_LINTS, lint_graph
from repro.analyze.purity import (
    PurityError,
    assert_pure,
    check_graph_purity,
    check_purity,
)
from repro.analyze.qos import lint_qos, lint_qos_config
from repro.analyze.sharding import (
    classify_element_state,
    lint_sharding,
    sharding_stats,
)
from repro.analyze.verifier import (
    VerifierError,
    assert_verified,
    attach_verifier,
    verify_exec_program,
    verify_pool_pair,
    verify_program,
)

__all__ = [
    "ERROR",
    "NOTE",
    "WARNING",
    "SEVERITIES",
    "AnalysisError",
    "AnalysisReport",
    "ConstProp",
    "Facts",
    "Finding",
    "GRAPH_LINTS",
    "MetadataDataflow",
    "PurityError",
    "VerifierError",
    "analyze_config",
    "analyze_graph",
    "assert_pure",
    "assert_verified",
    "attach_verifier",
    "check_graph_purity",
    "check_purity",
    "classify_element_state",
    "compute_program_facts",
    "crosscheck_reorder",
    "join_facts",
    "lint_graph",
    "lint_qos",
    "lint_qos_config",
    "lint_sharding",
    "match_predicate",
    "severity_rank",
    "sharding_stats",
    "verify_exec_program",
    "verify_pool_pair",
    "verify_program",
]
