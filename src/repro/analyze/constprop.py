"""Path-sensitive inter-element constant propagation.

The PR 5 dataflow engine treats every element as one node with one
successor set: facts proven downstream of a classifier's IP arm leak
onto its ARP arm and vice versa.  This pass tracks abstract values **per
output port**.  A ``Classifier(12/0800, 12/0806, -)`` proves
``data[12:14] == 08 00`` on port 0 and ``08 06`` on port 1; downstream
elements on each edge see only their own facts.  Constants written by
elements (``Paint(1)`` sets ``paint_anno = 1``, ``EtherRewrite`` pins
the MAC bytes) propagate forward across the
:class:`~repro.click.graph.ProcessingGraph` until a write kills them.

The abstract domain per edge is a :class:`Facts` triple:

- ``data``: known packet-data bytes (frame-relative offset -> byte),
- ``meta``: known metadata-field constants (``paint_anno = 1``),
- ``ranges``: metadata-field intervals (``length in [0, 512]``).

``None`` means *unreachable* (the lattice top): a dead edge constrains
nothing.  Joins intersect -- facts only shrink, reachability only
grows, so the worklist terminates.

Elements opt in through three optional hooks (all default to "opaque"):

- ``dispatch_predicates()``: per output port, the condition under which
  the port fires (``None`` = catch-all), evaluated first-match like the
  interpreter's dispatch;
- ``const_writes()``: constants the element stores into every packet;
- ``specialized_ir(live_ports)``: a reduced IR program valid when only
  ``live_ports`` can fire (used by the build to mint
  :class:`~repro.compiler.facts.ProgramFacts`).

Findings:

- ``constant-branch`` (WARNING): an output port can never fire under the
  facts flowing in -- dead configuration, and the codegen tier deletes
  the arm;
- ``redundant-check`` (NOTE): a dispatch decided entirely by upstream
  facts (an arm always matches, or every term of its test is implied).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analyze.findings import Finding
from repro.click.graph import ProcessingGraph
from repro.compiler.ir import DataAccess, FieldAccess, Program

# Match status of one dispatch arm under the facts flowing into it.
NEVER = "never"
ALWAYS = "always"
MAYBE = "maybe"
DEAD = "dead"  # shadowed: an earlier arm always matches

# Fields whose facts a data_ptr adjustment (strip/encap) invalidates:
# every data-byte fact is frame-relative, so moving the frame kills all.
_PTR_FIELDS = ("data_ptr", "buffer")

_RANGE_MAX = 1 << 30


@dataclass(frozen=True)
class Facts:
    """Known values on one edge.  Immutable and hashable; ``None`` (not a
    Facts instance) represents the unreachable edge."""

    data: Tuple[Tuple[int, int], ...] = ()
    meta: Tuple[Tuple[str, int], ...] = ()
    ranges: Tuple[Tuple[str, Tuple[int, int]], ...] = ()

    @staticmethod
    def make(data=None, meta=None, ranges=None) -> "Facts":
        meta = dict(meta or {})
        # Canonical form: an exact constant subsumes any interval.
        ranges = {f: r for f, r in (ranges or {}).items() if f not in meta}
        return Facts(
            data=tuple(sorted((data or {}).items())),
            meta=tuple(sorted(meta.items())),
            ranges=tuple(sorted(ranges.items())),
        )

    @property
    def data_map(self) -> Dict[int, int]:
        return dict(self.data)

    @property
    def meta_map(self) -> Dict[str, int]:
        return dict(self.meta)

    @property
    def range_map(self) -> Dict[str, Tuple[int, int]]:
        return dict(self.ranges)

    @property
    def count(self) -> int:
        return len(self.data) + len(self.meta) + len(self.ranges)

    def field_range(self, field: str) -> Optional[Tuple[int, int]]:
        """The effective interval of a metadata field, if any is known."""
        meta = self.meta_map
        if field in meta:
            return (meta[field], meta[field])
        return self.range_map.get(field)

    def join(self, other: "Facts") -> "Facts":
        """Meet over paths: keep only what both edges agree on."""
        sd, od = self.data_map, other.data_map
        data = {k: v for k, v in sd.items() if od.get(k) == v}
        sm, om = self.meta_map, other.meta_map
        meta = {k: v for k, v in sm.items() if om.get(k) == v}
        ranges: Dict[str, Tuple[int, int]] = {}
        fields = set(sm) | set(om) | set(self.range_map) | set(other.range_map)
        for field in fields:
            if field in meta:
                continue  # exact constant survived; no interval needed
            a, b = self.field_range(field), other.field_range(field)
            if a is None or b is None:
                continue
            ranges[field] = (min(a[0], b[0]), max(a[1], b[1]))
        return Facts.make(data, meta, ranges)


def join_facts(a: Optional[Facts], b: Optional[Facts]) -> Optional[Facts]:
    """Join where ``None`` = unreachable contributes nothing."""
    if a is None:
        return b
    if b is None:
        return a
    return a.join(b)


def _kill(facts: Facts, program: Program) -> Facts:
    """Drop every fact the element's IR may overwrite."""
    data = facts.data_map
    meta = facts.meta_map
    ranges = facts.range_map
    for op in program:
        if isinstance(op, DataAccess) and op.write:
            for off in list(data):
                if op.offset <= off < op.offset + op.size:
                    del data[off]
        elif isinstance(op, FieldAccess) and op.write and op.struct == "Packet":
            if op.fieldname in _PTR_FIELDS:
                data = {}
            meta.pop(op.fieldname, None)
            ranges.pop(op.fieldname, None)
    return Facts.make(data, meta, ranges)


def _gen(facts: Facts, element) -> Facts:
    """Apply the element's constant writes (after kills)."""
    writes = getattr(element, "const_writes", None)
    if writes is None:
        return facts
    gen = writes()
    if not gen:
        return facts
    data = facts.data_map
    meta = facts.meta_map
    ranges = facts.range_map
    for off, value in (gen.get("data") or {}).items():
        data[int(off)] = int(value) & 0xFF
    for field, value in (gen.get("meta") or {}).items():
        meta[field] = int(value)
        ranges.pop(field, None)
    return Facts.make(data, meta, ranges)


def _match_term_data(facts: Facts, offset: int, want: int) -> str:
    known = facts.data_map.get(offset)
    if known is None:
        return MAYBE
    return ALWAYS if known == want else NEVER


def _match_term_meta(facts: Facts, field: str, want: int) -> str:
    rng = facts.field_range(field)
    if rng is None:
        return MAYBE
    lo, hi = rng
    if lo == hi:
        return ALWAYS if lo == want else NEVER
    if want < lo or want > hi:
        return NEVER
    return MAYBE

def _match_term_range(facts: Facts, field: str, want: Tuple[int, int]) -> str:
    rng = facts.field_range(field)
    if rng is None:
        return MAYBE
    lo, hi = rng
    wlo, whi = want
    if lo >= wlo and hi <= whi:
        return ALWAYS
    if hi < wlo or lo > whi:
        return NEVER
    return MAYBE


def match_predicate(facts: Facts, predicate: Optional[dict]):
    """(status, implied_terms, total_terms) of one arm under ``facts``.

    ``predicate`` is ``None`` for a catch-all arm (always matches), else
    ``{"data": {off: byte}, "meta": {field: const}, "range":
    {field: (lo, hi)}}`` -- a conjunction.
    """
    if predicate is None:
        return ALWAYS, 0, 0
    statuses: List[str] = []
    for off, want in (predicate.get("data") or {}).items():
        statuses.append(_match_term_data(facts, int(off), int(want)))
    for field, want in (predicate.get("meta") or {}).items():
        statuses.append(_match_term_meta(facts, field, int(want)))
    for field, want in (predicate.get("range") or {}).items():
        statuses.append(_match_term_range(facts, field, tuple(want)))
    if NEVER in statuses:
        return NEVER, 0, len(statuses)
    implied = sum(1 for s in statuses if s == ALWAYS)
    if implied == len(statuses):
        return ALWAYS, implied, len(statuses)
    return MAYBE, implied, len(statuses)


def _refine(facts: Facts, predicate: Optional[dict]) -> Facts:
    """Facts on the taken edge: base facts plus the arm's equalities."""
    if predicate is None:
        return facts
    data = facts.data_map
    meta = facts.meta_map
    ranges = facts.range_map
    for off, want in (predicate.get("data") or {}).items():
        data[int(off)] = int(want) & 0xFF
    for field, want in (predicate.get("meta") or {}).items():
        meta[field] = int(want)
        ranges.pop(field, None)
    for field, want in (predicate.get("range") or {}).items():
        if field in meta:
            continue
        wlo, whi = tuple(want)
        have = facts.field_range(field)
        if have is not None:
            wlo, whi = max(wlo, have[0]), min(whi, have[1])
        ranges[field] = (wlo, min(whi, _RANGE_MAX))
    return Facts.make(data, meta, ranges)


class ConstProp:
    """Worklist fixpoint of per-port facts over a processing graph.

    After construction: ``in_facts[name]`` is the join over live in-edges
    (``None`` = fact-unreachable), ``port_status[(name, port)]`` the
    dispatch verdict per output port, ``dead_edges`` the set of
    ``(name, port)`` edges that can never fire.
    """

    def __init__(self, graph: ProcessingGraph):
        self.graph = graph
        self._programs = {e.name: e.ir_program() for e in graph.all_elements()}
        self.in_facts: Dict[str, Optional[Facts]] = {}
        self.port_status: Dict[Tuple[str, int], str] = {}
        self._implied: Dict[Tuple[str, int], Tuple[int, int]] = {}
        self.dead_edges: set = set()
        self._run()

    # -- fixpoint -----------------------------------------------------

    def _out_facts(self, element, entry: Facts):
        """Per-port facts an element emits given its entry facts.

        Returns ``{port: Facts-or-None}`` plus the per-port match status.
        """
        base = _gen(_kill(entry, self._programs[element.name]), element)
        n_out = element.n_outputs
        hook = getattr(element, "dispatch_predicates", None)
        preds = hook() if hook is not None else None
        statuses: Dict[int, str] = {}
        implied: Dict[int, Tuple[int, int]] = {}
        outs: Dict[int, Optional[Facts]] = {}
        if not preds:
            for port in range(n_out):
                statuses[port] = MAYBE
                outs[port] = base
            return outs, statuses, implied
        decided = False
        for port in range(n_out):
            pred = preds[port] if port < len(preds) else None
            if decided:
                statuses[port] = DEAD
                outs[port] = None
                continue
            status, n_implied, n_terms = match_predicate(base, pred)
            statuses[port] = status
            implied[port] = (n_implied, n_terms)
            if status == NEVER:
                outs[port] = None
            else:
                outs[port] = _refine(base, pred)
                if status == ALWAYS:
                    decided = True
        return outs, statuses, implied

    def _run(self) -> None:
        graph = self.graph
        elements = {e.name: e for e in graph.all_elements()}
        sources = [e.name for e in graph.sources()]
        in_facts: Dict[str, Optional[Facts]] = {name: None for name in elements}
        for name in sources:
            in_facts[name] = Facts()
        # Facts each edge (src, port) currently carries; absent = unreachable.
        edge_facts: Dict[Tuple[str, int], Facts] = {}
        work = list(sources)
        while work:
            name = work.pop()
            element = elements[name]
            entry = in_facts[name]
            if entry is None:
                continue
            outs, statuses, implied = self._out_facts(element, entry)
            self.port_status.update(
                {(name, port): s for port, s in statuses.items()})
            self._implied.update(
                {(name, port): v for port, v in implied.items()})
            for port, target in enumerate(element.targets):
                if target is None:
                    continue
                succ = target[0]
                facts = outs.get(port)
                if facts is None:
                    continue  # dead edge contributes nothing
                if edge_facts.get((name, port)) == facts:
                    continue
                edge_facts[(name, port)] = facts
                merged = None
                for pred_name, pred_el in elements.items():
                    for pport, ptarget in enumerate(pred_el.targets):
                        if ptarget is not None and ptarget[0] is succ:
                            merged = join_facts(
                                merged, edge_facts.get((pred_name, pport)))
                if merged != in_facts[succ.name]:
                    in_facts[succ.name] = merged
                    work.append(succ.name)
        self.in_facts = in_facts
        for (name, port), status in self.port_status.items():
            if status in (NEVER, DEAD):
                if elements[name].target(port) is not None:
                    self.dead_edges.add((name, port))

    # -- results ------------------------------------------------------

    def prunable(self) -> Dict[str, Tuple[int, ...]]:
        """Live output ports per element, only for elements with >=1 dead
        port -- the input to IR specialization."""
        out: Dict[str, Tuple[int, ...]] = {}
        for element in self.graph.all_elements():
            if self.in_facts.get(element.name) is None:
                continue
            statuses = [
                self.port_status.get((element.name, port), MAYBE)
                for port in range(element.n_outputs)
            ]
            live = tuple(
                port for port, s in enumerate(statuses)
                if s not in (NEVER, DEAD)
            )
            if len(live) < element.n_outputs and element.n_outputs > 0:
                out[element.name] = live
        return out

    @property
    def stats(self) -> Dict[str, float]:
        facts_proven = sum(
            facts.count for facts in self.in_facts.values()
            if facts is not None
        )
        dead_ports = sum(
            1 for s in self.port_status.values() if s in (NEVER, DEAD))
        decided = sum(
            1 for s in self.port_status.values() if s != MAYBE)
        return {
            "constprop.facts_proven": float(facts_proven),
            "constprop.dead_ports": float(dead_ports),
            "constprop.decided": float(decided),
        }

    def findings(self) -> List[Finding]:
        from repro.analyze.lints import _location

        out: List[Finding] = []
        elements = {e.name: e for e in self.graph.all_elements()}
        for element in self.graph.all_elements():
            if self.in_facts.get(element.name) is None:
                continue
            statuses = [
                (port, self.port_status.get((element.name, port)))
                for port in range(element.n_outputs)
            ]
            for port, status in statuses:
                if status == NEVER:
                    out.append(Finding(
                        rule="constant-branch",
                        severity="warning",
                        subject=element.name,
                        message=(
                            "output port [%d] can never fire: its test "
                            "contradicts facts proven upstream" % port),
                        location=_location(element),
                    ))
                elif status == DEAD:
                    out.append(Finding(
                        rule="constant-branch",
                        severity="warning",
                        subject=element.name,
                        message=(
                            "output port [%d] can never fire: an earlier "
                            "arm always matches" % port),
                        location=_location(element),
                    ))
                elif status == ALWAYS:
                    n_implied, n_terms = self._implied.get(
                        (element.name, port), (0, 0))
                    if n_terms > 0:
                        out.append(Finding(
                            rule="redundant-check",
                            severity="note",
                            subject=element.name,
                            message=(
                                "dispatch on port [%d] is decided at "
                                "build time: all %d test term(s) are "
                                "implied by upstream facts"
                                % (port, n_terms)),
                            location=_location(element),
                        ))
        return out


def compute_program_facts(graph: ProcessingGraph, run_pass, registry,
                          constprop: Optional[ConstProp] = None):
    """Mint :class:`~repro.compiler.facts.ProgramFacts` per specializable
    element.

    ``run_pass(program) -> program`` is the build's pass pipeline (so the
    specialized IR goes through the same transforms as the original) and
    ``registry`` the build's *final* layout registry (reordered or not).
    Returns ``{element_name: ProgramFacts}`` with empty deltas dropped.
    """
    from repro.compiler.facts import facts_between
    from repro.compiler.ir import BranchHint
    from repro.compiler.lower import lower

    cp = constprop if constprop is not None else ConstProp(graph)
    live_map = cp.prunable()
    out = {}
    for element in graph.all_elements():
        live = live_map.get(element.name)
        if live is None:
            continue
        hook = getattr(element, "specialized_ir", None)
        if hook is None:
            continue
        original_ir = element.ir_program()
        special_ir = hook(live)
        if special_ir is None:
            continue
        original = lower(run_pass(original_ir), registry)
        specialized = lower(run_pass(special_ir), registry)
        branches = (original_ir.count(BranchHint)
                    - special_ir.count(BranchHint))
        facts = facts_between(
            original, specialized,
            branches_eliminated=max(0, branches),
            note="live ports %s" % (list(live),),
        )
        if not facts.is_empty:
            out[element.name] = facts
    return out


__all__ = [
    "ALWAYS",
    "ConstProp",
    "DEAD",
    "Facts",
    "MAYBE",
    "NEVER",
    "compute_program_facts",
    "join_facts",
    "match_predicate",
]
