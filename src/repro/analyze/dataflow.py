"""X-Change metadata dataflow: def/use of ``Packet`` fields along the graph.

PacketMill's metadata customization rests on facts about which fields of
the application's metadata struct are *actually* defined and used: the
PMD conversion (the ``xchg_set_*`` implementation) writes some fields on
RX, elements read and write more along the pipeline, and the TX path
reads a few back.  This module derives those facts from the same IR the
cost model executes and checks them end to end:

- **use-before-init** (error): an element reads a field that neither the
  PMD conversion nor any upstream element on *every* path to it has
  written.  With a minimal conversion set (the paper's l2fwd-xchg), this
  is exactly the class of bug X-Change makes possible -- skipping a
  conversion an element silently depended on.
- **dead store** (note): a field write no later read can observe -- the
  candidates the paper's dead-field elimination and struct reordering
  exploit.  Reported, not punished: they are optimization opportunities.
- **dead field** (note): a struct field written somewhere yet read
  nowhere in the whole program (elements and TX path included).

The forward pass is a classic must-reach analysis (meet = intersection
over predecessors), the dead-store pass a backward may-liveness analysis
(meet = union over successors); both iterate to a fixpoint so Queue
cycles converge.

Both passes are **path-sensitive** when given a
:class:`~repro.analyze.constprop.ConstProp` instance: edges the
constant-propagation pass proves dead (a classifier arm that can never
match under upstream facts) are excluded from the successor relation, so
facts no longer leak across sibling ports through branches that cannot
fire.  Elements reachable only over dead edges are skipped entirely, the
same way graph-unreachable elements are.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analyze.findings import ERROR, NOTE, WARNING, Finding
from repro.compiler.ir import FieldAccess, Program, merge_access_counts
from repro.compiler.structlayout import StructLayout

#: Element classes whose packets arrive through the PMD RX conversion.
RX_CLASSES = ("FromDPDKDevice",)


def field_events(program: Program, struct: str) -> List[Tuple[str, bool]]:
    """Ordered (field, is_write) events of one program for ``struct``."""
    return [
        (op.fieldname, op.write)
        for op in program.ops
        if isinstance(op, FieldAccess) and op.struct == struct
    ]


def written_fields(program: Program, struct: str) -> Set[str]:
    return {name for name, write in field_events(program, struct) if write}


def exposed_reads(program: Program, struct: str) -> Set[str]:
    """Fields read before the program itself writes them (upward-exposed)."""
    written: Set[str] = set()
    exposed: Set[str] = set()
    for name, write in field_events(program, struct):
        if write:
            written.add(name)
        elif name not in written:
            exposed.add(name)
    return exposed


class MetadataDataflow:
    """Def/use facts for one graph under one metadata model's programs."""

    def __init__(
        self,
        graph,
        programs: Dict[str, Program],
        rx_program: Program,
        tx_program: Program,
        struct: str = "Packet",
        mbuf_alias: Optional[Dict[str, str]] = None,
        constprop=None,
    ):
        self.graph = graph
        self.programs = programs
        self.rx_program = rx_program
        self.tx_program = tx_program
        self.struct = struct
        #: (element, port) edges constant propagation proved dead; the
        #: successor relation excludes them, so sibling-port facts stop
        #: leaking through branches that cannot fire.
        self.dead_edges = set(constprop.dead_edges) if constprop else set()
        #: Fields the PMD conversion initializes on RX.  Under the
        #: Overlaying model the conversion's ``rte_mbuf`` stores are the
        #: app struct's fields (the overlay cast renames them), so the
        #: model's alias map folds them into the defs.
        self.rx_defs = written_fields(rx_program, struct)
        if mbuf_alias:
            self.rx_defs |= {
                mbuf_alias[name]
                for name, write in field_events(rx_program, "rte_mbuf")
                if write and name in mbuf_alias
            }
        #: Fields the TX path reads back out of the struct.
        self.tx_uses = exposed_reads(tx_program, struct)
        self._elements = list(graph.all_elements())
        self._in_states: Dict[str, Set[str]] = {}
        self._live_out: Dict[str, Set[str]] = {}
        self._compute_reaching()
        self._compute_liveness()

    def _program_of(self, element) -> Program:
        program = self.programs.get(element.name)
        if program is None:
            program = element.ir_program()
        return program

    def _successors(self, element) -> Iterable:
        for port, target in enumerate(element.targets):
            if target is None:
                continue
            if (element.name, port) in self.dead_edges:
                continue
            yield target[0]

    # -- forward: which fields are definitely initialized ---------------------

    def _compute_reaching(self) -> None:
        in_states = self._in_states
        worklist = []
        for source in self.graph.sources():
            initial = (
                set(self.rx_defs)
                if source.decl.class_name in RX_CLASSES
                else set()
            )
            in_states[source.name] = initial
            worklist.append(source)
        while worklist:
            element = worklist.pop()
            out_state = in_states[element.name] | written_fields(
                self._program_of(element), self.struct
            )
            for succ in self._successors(element):
                known = in_states.get(succ.name)
                # Meet = intersection: a field is initialized only if
                # every path into the element initialized it.
                new = out_state if known is None else known & out_state
                if known is None or new != known:
                    in_states[succ.name] = set(new)
                    worklist.append(succ)

    # -- backward: which stores can any later read observe ---------------------

    def _compute_liveness(self) -> None:
        live_in: Dict[str, Set[str]] = {}
        live_out = self._live_out
        elements = self._elements
        changed = True
        while changed:
            changed = False
            for element in reversed(elements):
                out: Set[str] = set()
                if element.decl.class_name == "ToDPDKDevice":
                    out |= self.tx_uses
                for succ in self._successors(element):
                    out |= live_in.get(succ.name, set())
                new_in = set(out)
                for name, write in reversed(
                    field_events(self._program_of(element), self.struct)
                ):
                    if write:
                        new_in.discard(name)
                    else:
                        new_in.add(name)
                if out != live_out.get(element.name) or new_in != live_in.get(
                    element.name
                ):
                    live_out[element.name] = out
                    live_in[element.name] = new_in
                    changed = True

    # -- derived facts ---------------------------------------------------------

    def initialized_before(self, element_name: str) -> Optional[Set[str]]:
        """Fields initialized on every path into the element (None if the
        element is unreachable from any source)."""
        state = self._in_states.get(element_name)
        return None if state is None else set(state)

    def dead_stores(self) -> List[Tuple[str, str]]:
        """(element, field) pairs whose write no later read observes."""
        out = []
        for element in self._elements:
            if element.name not in self._in_states:
                continue  # graph- or fact-unreachable: nothing executes it
            live = set(self._live_out.get(element.name, set()))
            events = field_events(self._program_of(element), self.struct)
            dead: List[str] = []
            for name, write in reversed(events):
                if write:
                    if name not in live:
                        dead.append(name)
                    live.discard(name)
                else:
                    live.add(name)
            for name in reversed(dead):
                out.append((element.name, name))
        return out

    def read_fields(self) -> Set[str]:
        """Every field some program (elements + TX path) reads."""
        reads = {
            name
            for element in self._elements
            for name, write in field_events(
                self._program_of(element), self.struct
            )
            if not write
        }
        return reads | self.tx_uses

    def written_anywhere(self) -> Set[str]:
        fields = set(self.rx_defs)
        for element in self._elements:
            fields |= written_fields(self._program_of(element), self.struct)
        return fields

    def dead_fields(self) -> Set[str]:
        """Fields written somewhere but read nowhere -- elimination bait."""
        return self.written_anywhere() - self.read_fields()

    # -- findings ---------------------------------------------------------------

    def findings(self) -> List[Finding]:
        findings: List[Finding] = []
        for element in self._elements:
            state = self._in_states.get(element.name)
            if state is None:
                continue  # unreachable: the graph lint owns that report
            program = self._program_of(element)
            missing = exposed_reads(program, self.struct) - state
            for name in sorted(missing):
                findings.append(Finding(
                    "meta-use-before-init", ERROR, element.name,
                    "reads %s.%s, but neither the PMD conversion nor every "
                    "upstream path writes it" % (self.struct, name),
                    "element class %s" % element.decl.class_name))
        for element_name, name in self.dead_stores():
            findings.append(Finding(
                "meta-dead-store", NOTE, element_name,
                "writes %s.%s, which no later read observes "
                "(dead-field elimination candidate)" % (self.struct, name)))
        for name in sorted(self.dead_fields()):
            findings.append(Finding(
                "meta-dead-field", NOTE, self.struct,
                "field %r is written but never read anywhere in the "
                "program (struct-reordering would demote it)" % name))
        for name in sorted(self.tx_uses - self.written_anywhere()):
            findings.append(Finding(
                "meta-tx-uninit", ERROR, self.tx_program.name,
                "TX path reads %s.%s, which nothing ever writes"
                % (self.struct, name)))
        return findings


def crosscheck_reorder(
    dataflow: MetadataDataflow,
    layout: StructLayout,
    line_size: int = 64,
) -> List[Finding]:
    """Cross-check def/use facts against the reordering pass's decision.

    Recomputes the layout exactly as :func:`repro.compiler.passes.reorder_metadata`
    would (same access counts, same sort) and checks it against the
    dataflow facts:

    - every referenced field must still resolve in the reordered layout
      (error -- a lost field would fault at lowering);
    - a field the dataflow proves *write-only* that the access counts
      nevertheless promote into the hottest cache line is flagged
      (warning): dead stores inflate its count, so the reordering pass is
      spending line-0 bytes on data nothing reads.
    """
    findings: List[Finding] = []
    programs = [dataflow._program_of(e) for e in dataflow._elements]
    programs += [dataflow.rx_program, dataflow.tx_program]
    counts = merge_access_counts(programs, dataflow.struct)
    reordered = layout.reordered(counts)
    for name in counts:
        if not reordered.has_field(name):
            findings.append(Finding(
                "reorder-lost-field", ERROR, dataflow.struct,
                "reordered layout lost referenced field %r" % name,
                "layout %s" % reordered.name))
    read = dataflow.read_fields()
    for name, count in sorted(counts.items()):
        if count == 0 or name in read or not reordered.has_field(name):
            continue
        if reordered.cache_line_of(name, line_size) == 0:
            findings.append(Finding(
                "reorder-writeonly-hot", WARNING, dataflow.struct,
                "write-only field %r (%d store(s)/packet, zero reads) is "
                "promoted to cache line 0 by the reordering pass; "
                "dead-field elimination would free the slot"
                % (name, count),
                "layout %s" % reordered.name))
    return findings
