"""Orchestrate a grid experiment NPF-style and export CSV (paper §B).

Sweeps {build variant} x {frame size} with three randomized-seed repeats
per point, reports medians, and writes ``npf_results.csv`` -- the same
workflow the paper drives its testbed with via the Network Performance
Framework.

Run:  python examples/npf_experiment.py
"""

from repro.core.nfs import forwarder
from repro.core.options import BuildOptions, MetadataModel
from repro.core.packetmill import PacketMill
from repro.hw.params import MachineParams
from repro.net.trace import FixedSizeTraceGenerator, TraceSpec
from repro.perf.npf import NpfRunner, Variable
from repro.perf.runner import measure_throughput

VARIANTS = {
    "copying": BuildOptions.metadata(MetadataModel.COPYING),
    "overlaying": BuildOptions.metadata(MetadataModel.OVERLAYING),
    "xchange": BuildOptions.metadata(MetadataModel.XCHANGE),
}


def run_point(seed, variant, frame):
    trace = lambda port, core: FixedSizeTraceGenerator(frame, TraceSpec(seed=seed))
    binary = PacketMill(
        forwarder(), VARIANTS[variant],
        params=MachineParams(freq_ghz=2.3), trace=trace, seed=seed,
    ).build()
    point = measure_throughput(binary, batches=120, warmup_batches=60)
    return {"gbps": point.gbps, "mpps": point.mpps}


results = NpfRunner(repeats=3).run(
    "metadata models x frame size @2.3 GHz",
    [
        Variable("variant", list(VARIANTS)),
        Variable("frame", [64, 512, 1024]),
    ],
    run_point,
)

print(results.format())
results.to_csv("npf_results.csv")
print("\nwrote npf_results.csv")
