"""Scaling a stateful NAT across cores with RSS (the paper's Fig. 10).

Builds the NAT+router configuration as per-core replicas sharing the
LLC, with receive-side scaling keeping flows core-local, and measures
aggregate throughput for 1-4 cores.

Run:  python examples/nat_multicore.py
"""

from repro.core.nfs import nat_router
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.hw.params import MachineParams
from repro.perf.runner import measure_multicore

params = MachineParams(freq_ghz=2.3)

print("NAT (cuckoo flow table) + router, RSS across cores @2.3 GHz\n")
for label, options in [
    ("Vanilla", BuildOptions.vanilla()),
    ("PacketMill", BuildOptions.packetmill()),
]:
    print(label)
    for cores in (1, 2, 3, 4):
        mill = PacketMill(nat_router(), options, params=params)
        binaries = mill.build_multicore(cores)
        point = measure_multicore(binaries, batches=80, warmup_batches=40)
        flows = sum(
            b.graph.by_class("IPRewriter")[0].new_flows for b in binaries
        )
        print(
            "  %d core(s): %6.2f Gbps  (%5.2f Mpps, %d active NAT flows, bound by %s)"
            % (cores, point.gbps, point.mpps, flows, point.bound_by)
        )
    print()
