"""A million-flow Zipf trace sharded across 4 replicas, watched live.

The real RSS pipeline end to end: one arrival stream of a million flows
(Zipf-skewed, so a handful of elephants dominate) is Toeplitz-hashed and
steered across 4 per-core replicas, while a control-plane client polls
the merged registry over TCP as the run progresses -- the same counters
Prometheus would scrape from the ``/metrics`` endpoint.

Run:  python examples/sharded_forwarding.py
"""

import threading
import time

from repro.control import ControlClient, ControlSocket
from repro.core.nfs import nat_router
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.hw.params import MachineParams
from repro.net.trace import FiniteTrace, SkewedTraceGenerator

N_CORES = 4
N_FLOWS = 1_000_000
N_PACKETS = 60_000


def trace_factory(port, core):
    return FiniteTrace(
        SkewedTraceGenerator(n_flows=N_FLOWS, zipf_s=1.3, seed=101 + port),
        N_PACKETS)


mill = PacketMill(
    nat_router(),
    BuildOptions.packetmill(),
    params=MachineParams(freq_ghz=2.3),
    trace=trace_factory,
    n_cores=N_CORES,
)
runtime = mill.build_sharded()

print("%d-core sharded NAT, %d flows (zipf 1.3), %d packets\n"
      % (N_CORES, N_FLOWS, N_PACKETS))

with ControlSocket(runtime.registry) as (host, port):
    print("control socket on %s:%d  (try: curl %s:%d/metrics)\n"
          % (host, port, host, port))
    worker = threading.Thread(target=runtime.run_until_eof)
    worker.start()

    with ControlClient(host, port) as client:
        while worker.is_alive():
            rx = client.read("driver.rx_packets")
            per_core = [client.read("core%d.driver.rx_packets" % i)
                        for i in range(N_CORES)]
            print("  live: rx=%-6d per-core=%s" % (rx, per_core))
            time.sleep(0.2)
        worker.join()

        print("\nfinal (through the control socket):")
        print("  ingested : %d" % client.read("rss.0.ingested"))
        for i in range(N_CORES):
            print("  core %d   : rx=%d" % (i, client.read(
                "core%d.driver.rx_packets" % i)))
        exposition = client.metrics()

audit = runtime.assert_conserved()
print("\nconservation: offered=%d forwarded=%d dropped=%d in_flight=%d"
      % (audit["offered"], audit["forwarded"], audit["dropped"],
         audit["in_flight"]))

print("\nfirst lines of the Prometheus exposition:")
for line in exposition.splitlines()[:8]:
    print("  " + line)
