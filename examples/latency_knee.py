"""Reproduce the paper's headline curve (Fig. 1): the latency knee.

Measures the router's service rate under vanilla and PacketMill builds,
then sweeps the offered load open-loop and prints the p99-latency-vs-
throughput curve, showing the knee shifting right.

Run:  python examples/latency_knee.py
"""

from repro.core.nfs import router
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.hw.params import MachineParams
from repro.perf.loadlatency import LoadLatencySimulator
from repro.perf.runner import measure_throughput

params = MachineParams(freq_ghz=2.3)

service_ns = {}
frame_bits = 981 * 8
for label, options in [
    ("Vanilla", BuildOptions.vanilla()),
    ("PacketMill", BuildOptions.packetmill()),
]:
    binary = PacketMill(router(), options, params=params).build()
    point = measure_throughput(binary, batches=200, warmup_batches=100)
    service_ns[label] = 1e9 / point.pps
    frame_bits = point.mean_frame_len * 8

top_pps = max(1e9 / ns for ns in service_ns.values())
print("Router @2.3 GHz, campus trace, open-loop offered load\n")
print("%-24s %14s %14s %10s" % ("", "offered Gbps", "achieved Gbps", "p99 us"))
for label, ns in service_ns.items():
    sim = LoadLatencySimulator(ns, ring_size=1024)
    for fraction in (0.3, 0.5, 0.7, 0.8, 0.9, 1.0, 1.05):
        res = sim.run(top_pps * fraction, n_packets=80_000)
        marker = "  <-- saturated" if res.saturated else ""
        print("%-24s %14.1f %14.1f %10.1f%s" % (
            label if fraction == 0.3 else "",
            res.offered_pps * frame_bits / 1e9,
            res.achieved_pps * frame_bits / 1e9,
            res.p99_us,
            marker,
        ))
    print()
