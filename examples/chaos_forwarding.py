"""Chaos forwarding: run the paper's forwarder through a fault storm.

A real 100-Gbps deployment does not fail cleanly -- mempools run dry
under bursts, links flap, frames arrive damaged.  This example drives
the A.1 forwarder through a deterministic chaos schedule (mempool
exhaustion window + link flap + 1% frame corruption) and shows:

1. the run completes without an exception -- faults degrade, not abort;
2. the drop ledger attributes every lost packet (rx_nombuf, imissed,
   rx_errors, tx_full) and the report says "fault-degraded";
3. once every fault window closes, throughput recovers to within 1% of
   the fault-free baseline;
4. the same seed reproduces the exact same counters.

Run:  python examples/chaos_forwarding.py
"""

from repro import BuildOptions, FaultSchedule, FaultSpec, PacketMill
from repro.core.nfs import forwarder
from repro.faults import CORRUPT, LINK_FLAP, MBUF_EXHAUSTION, assert_no_leak
from repro.hw.params import MachineParams
from repro.perf.report import format_report

params = MachineParams(freq_ghz=2.3)
config = forwarder()
CHAOS_BATCHES = 300

# The chaos schedule: windows are in main-loop iterations, faults are
# drawn from a per-core RNG seeded by the schedule seed (deterministic).
schedule = FaultSchedule(
    [
        FaultSpec(MBUF_EXHAUSTION, start=60, stop=120),   # pool runs dry
        FaultSpec(LINK_FLAP, start=150, stop=170),        # carrier loss
        FaultSpec(CORRUPT, start=0, stop=220, probability=0.01),  # 1% damage
    ],
    seed=2021,
)


def build(faults=None):
    # Vanilla build: the Copying metadata model drives a real mempool,
    # which is what the exhaustion fault starves (X-Change runs bufferless).
    return PacketMill(config, BuildOptions.vanilla(), params=params,
                      faults=faults).build()


# -- 1. fault-free baseline ---------------------------------------------------

baseline = build().measure(batches=CHAOS_BATCHES)
print("fault-free baseline: %.2f Mpps (%.1f ns/packet)"
      % (baseline.packets / baseline.elapsed_ns * 1e3, baseline.ns_per_packet))

# -- 2. the storm -------------------------------------------------------------

chaos = build(faults=schedule)
storm_stats = chaos.driver.run_batches(CHAOS_BATCHES)  # spans every window
print()
print(format_report(storm_stats, label="chaos storm"))
assert storm_stats.fault_degraded, "the storm should leave a mark"
assert storm_stats.rx_nombuf > 0, "mempool exhaustion window never bit"
assert storm_stats.hw_counters.get("link_down_polls", 0) > 0, "link never flapped"
assert storm_stats.rx_errors > 0, "no corrupted frame was dropped"

# -- 3. recovery --------------------------------------------------------------

quiet = schedule.quiet_after()
assert quiet is not None and quiet <= CHAOS_BATCHES
chaos.reset_measurements()
recovered = chaos.run(CHAOS_BATCHES)
assert not recovered.stats.fault_degraded, "ledger should be clean after the storm"
delta = abs(recovered.ns_per_packet - baseline.ns_per_packet) / baseline.ns_per_packet
print()
print("post-storm:  %.1f ns/packet vs baseline %.1f ns/packet (%.3f%% apart)"
      % (recovered.ns_per_packet, baseline.ns_per_packet, delta * 100))
assert delta <= 0.01, "throughput did not recover within 1%"

# -- 4. determinism + leak audit ----------------------------------------------

replay = build(faults=schedule)
replay_stats = replay.driver.run_batches(CHAOS_BATCHES)
for field in ("rx_packets", "tx_packets", "drops", "rx_nombuf", "imissed",
              "rx_errors", "tx_full"):
    assert getattr(replay_stats, field) == getattr(storm_stats, field), field
print("\nreplay with the same seed: identical counters (deterministic)")

replay.driver.quiesce()
replay.injector.release_all()
audit = assert_no_leak(replay.driver, replay.injector)
print("mempool audit after the storm: %d buffers pooled, leak=%d"
      % (audit["pooled"], audit["leak"]))
