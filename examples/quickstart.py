"""Quickstart: build a network function, mill it, measure the difference.

Builds the paper's simple forwarder twice -- once as vanilla FastClick
(Copying metadata, dynamic graph) and once through the full PacketMill
pipeline (X-Change + source-code optimizations + LTO) -- and compares
throughput on the simulated 100-Gbps testbed.

Run:  python examples/quickstart.py
"""

from repro import BuildOptions, PacketMill
from repro.core.nfs import forwarder
from repro.hw.params import MachineParams
from repro.perf.runner import measure_throughput

# The DUT: one core of a Xeon Gold 6140 class machine at 2.3 GHz.
params = MachineParams(freq_ghz=2.3)

# A Click configuration is just text; nfs.forwarder() returns the paper's
# A.1 configuration (FromDPDKDevice -> EtherMirror -> ToDPDKDevice).
config = forwarder()
print("Network function under test:")
print(config)

results = {}
for label, options in [
    ("Vanilla FastClick", BuildOptions.vanilla()),
    ("PacketMill", BuildOptions.packetmill()),
]:
    binary = PacketMill(config, options, params=params).build()
    point = measure_throughput(binary, batches=200, warmup_batches=100)
    results[label] = point
    print(
        "%-18s %6.2f Gbps  %5.2f Mpps  (%.1f ns/packet, bound by %s)"
        % (label, point.gbps, point.mpps, point.ns_per_packet, point.bound_by)
    )

vanilla = results["Vanilla FastClick"]
packetmill = results["PacketMill"]
gain = (packetmill.pps - vanilla.pps) / vanilla.pps * 100
print("\nPacketMill processes %.0f%% more packets per second on this core." % gain)
