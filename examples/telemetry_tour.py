"""Tour of repro.telemetry: attribution, flamegraph, windows, exports.

Builds the router with every recorder enabled, runs it under load, and
renders what the paper's methodology measures with perf: where the
cycles went (per element), what the packet lifecycle looks like (span
flamegraph), and the 100-ms-window counter series.  Finishes by writing
the flamegraph's folded-stacks export next to this script.

Run:  python examples/telemetry_tour.py [out.folded]
"""

import sys

from repro.core.nfs import router
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.hw.params import MachineParams
from repro.perf.report import format_telemetry_report
from repro.telemetry import TelemetryConfig

# A short window so even a quick simulated run closes several of them.
config = TelemetryConfig(window_ns=50_000.0)
binary = PacketMill(
    router(),
    BuildOptions.packetmill(),
    params=MachineParams(freq_ghz=2.3),
    telemetry=config,
).build()
run = binary.measure(batches=300, warmup_batches=100)
telemetry = run.telemetry

print("Measured: %.2f Gbps, %.2f cycles/packet, IPC %.2f\n"
      % (run.tx_bytes * 8 / run.elapsed_ns, run.cycles_per_packet, run.ipc))

# -- where did the cycles go? (perf report view) ---------------------------
print(telemetry.top("cycles"))
print()
print(telemetry.top("llc_loads"))
print()

# -- the packet lifecycle as a flamegraph ----------------------------------
print(telemetry.flamegraph())
print()

# -- perf stat -I style windows --------------------------------------------
print(telemetry.windows_table(
    ["driver.rx_packets", "cpu.llc_loads", "cpu.llc_misses"]))
print()

# -- the same data, through the perf.report entry point --------------------
assert "attribution by cycles" in format_telemetry_report(telemetry)

# -- exports ---------------------------------------------------------------
out_path = sys.argv[1] if len(sys.argv) > 1 else "telemetry_tour.folded"
with open(out_path, "w") as handle:
    handle.write(telemetry.spans.to_folded_text() + "\n")
print("wrote folded stacks to %s (flamegraph.pl/speedscope format)" % out_path)
print("JSON export: %d bytes; CSV export: %d rows"
      % (len(telemetry.to_json()), len(telemetry.to_csv().splitlines()) - 1))
