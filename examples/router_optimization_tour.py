"""A tour of PacketMill's optimizations on the IP router.

Applies each §3 technique to the standard router configuration one at a
time -- devirtualization, constant embedding, static graph, LTO with
metadata struct reordering, and X-Change -- showing how each changes the
compiled program and what it buys at run time.

Run:  python examples/router_optimization_tour.py
"""

from repro.core.nfs import router
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.hw.params import MachineParams
from repro.perf.runner import measure_throughput

params = MachineParams(freq_ghz=2.3)

STEPS = [
    ("Vanilla", BuildOptions.vanilla(),
     "dynamic graph, virtual calls, rte_mbuf -> Packet copying"),
    ("+ devirtualize", BuildOptions.devirtualized(),
     "indirect graph calls become direct calls (click-devirtualize)"),
    ("+ constants", BuildOptions.constant(),
     "BURST/PORT/patterns become immediates; dead code folds away"),
    ("+ static graph", BuildOptions.static(),
     "elements live in .data, fully inlined straight-line pipeline"),
    ("+ LTO reorder", BuildOptions.lto_reorder(),
     "whole-program IR: hot Packet fields packed into cache line 0"),
    ("PacketMill", BuildOptions.packetmill(),
     "everything above plus the X-Change metadata model"),
]

print("Router configuration, one core @ %.1f GHz, campus-like trace\n" % params.freq_ghz)
baseline_pps = None
for label, options, what in STEPS:
    binary = PacketMill(router(), options, params=params).build()
    point = measure_throughput(binary, batches=200, warmup_batches=100)
    if baseline_pps is None:
        baseline_pps = point.pps
    speedup = point.pps / baseline_pps
    instr = sum(p.instructions for p in binary.exec_programs.values())
    print("%-16s %6.2f Gbps  %5.2f Mpps  (%.2fx)  [%s]" % (
        label, point.gbps, point.mpps, speedup, what))
    print("                 element instructions/packet: %.0f" % instr)

# Show the reordering pass's concrete effect on the metadata layout.
print("\nThe reordering pass, concretely:")
plain = PacketMill(router(), BuildOptions(lto=True), params=params).build()
hot = PacketMill(router(), BuildOptions.lto_reorder(), params=params).build()
for name, binary in (("source order", plain), ("access-count order", hot)):
    layout = binary.packet_layout()
    line0 = [f.name for f in layout.fields if layout.offset_of(f.name) < 64]
    print("  %-20s line 0 holds: %s" % (name, ", ".join(line0)))
