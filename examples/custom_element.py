"""Extending the framework: write your own element, mill it like any other.

Defines a ``PortFilter`` element that drops TCP traffic to a blocked
port, registers it, composes it into a custom configuration, and builds
the whole thing with and without PacketMill's optimizations.  The point:
user elements declare an IR cost profile once and every optimization
(constant embedding, inlining, static graph) applies to them for free.

Run:  python examples/custom_element.py
"""

from repro.click.element import Element, register
from repro.compiler.ir import BranchHint, Compute, DataAccess, Program
from repro.compiler.passes.transforms import FOLDABLE_NOTE
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.hw.params import MachineParams
from repro.net.protocols import IP_PROTO_TCP
from repro.perf.runner import measure_throughput


@register
class PortFilter(Element):
    """Drop TCP segments destined to a configured port."""

    class_name = "PortFilter"
    n_outputs = 2  # 0 = pass, 1 = blocked (wire to Discard or leave open)

    def configure(self, args, kwargs):
        port = kwargs.get("PORT") or (args[0] if args else "22")
        self.declare_param("blocked_port", int(port), size=2)
        self.blocked = 0

    def process(self, pkt):
        ip = pkt.ip()
        if ip.proto == IP_PROTO_TCP and pkt.tcp().dst_port == self.param("blocked_port"):
            self.blocked += 1
            return 1
        return 0

    def ir_program(self) -> Program:
        return Program(
            self.name,
            [
                self.param_read_op("blocked_port"),  # folded by constant embedding
                DataAccess(23, 1),   # protocol byte
                DataAccess(36, 2),   # TCP destination port
                Compute(9, note=FOLDABLE_NOTE),
                BranchHint(0.03, note="blocked?"),
            ],
        )


CONFIG = """
input :: FromDPDKDevice(PORT 0, BURST 32);
output :: ToDPDKDevice(PORT 0, BURST 32);
input -> CheckIPHeader(14)
      -> filter :: PortFilter(PORT 22)
      -> EtherMirror
      -> output;
filter[1] -> blocked :: Counter -> Discard;
"""

params = MachineParams(freq_ghz=2.3)
print("Custom NF: forwarder with a TCP/22 filter\n")
for label, options in [
    ("Vanilla build", BuildOptions.vanilla()),
    ("PacketMill build", BuildOptions.packetmill()),
]:
    binary = PacketMill(CONFIG, options, params=params).build()
    point = measure_throughput(binary, batches=150, warmup_batches=80)
    filter_element = binary.graph.element("filter")
    counter = binary.graph.element("blocked")
    print("%-18s %6.2f Gbps  %5.2f Mpps  (blocked %d packets to port 22)" % (
        label, point.gbps, point.mpps, filter_element.blocked))
