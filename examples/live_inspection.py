"""Inspect a running network function through Click handlers + ASCII plots.

Runs the IDS+router under load, reads live element state through the
handler broker (what ControlSocket exposes on a real Click deployment),
and renders the Fig. 4-style frequency curve as an ASCII chart.

Run:  python examples/live_inspection.py
"""

from repro.click.handlers import HandlerBroker
from repro.core.nfs import ids_router
from repro.core.options import BuildOptions
from repro.core.packetmill import PacketMill
from repro.hw.params import MachineParams
from repro.perf.ascii import bar_chart, line_chart
from repro.perf.runner import measure_throughput

params = MachineParams(freq_ghz=2.3)
binary = PacketMill(ids_router(), BuildOptions.packetmill(), params=params,
                    telemetry=True).build()
binary.driver.run_batches(200)

broker = HandlerBroker(binary.graph)
print("Live element state (via handlers):\n")
checker = binary.graph.by_class("CheckIPHeader")[0].name
vlan = binary.graph.by_class("VLANEncap")[0].name
tcp_check = binary.graph.by_class("CheckTCPHeader")[0].name
for path in ("%s.count" % checker, "%s.bad" % checker,
             "%s.count" % tcp_check, "%s.count" % vlan, "rt.nroutes"):
    print("  %-28s = %s" % (path, broker.read(path)))

# Glob reads hit every matching handler in one call -- the quickest way
# to survey a live pipeline.
print("\nEvery counter in one glob read (broker.read('*.count')):\n")
print("\n".join("  " + line for line in broker.read("*.count").splitlines()))

# Every element now answers .xstats uniformly: its telemetry-registry
# slice (drops, errors, attributed cycles) -- and, on I/O elements, the
# bound port's rte_eth_stats.
rx = binary.graph.by_class("FromDPDKDevice")[0].name
print("\nUniform xstats handler (%s.xstats):\n" % rx)
print("\n".join("  " + line for line in broker.read("%s.xstats" % rx).splitlines()))

print("\nFull handler dump:\n")
print("\n".join("  " + line for line in broker.dump().splitlines()[:16]))
print("  ...")

# A miniature Fig. 4: throughput vs. frequency, rendered in ASCII.
print("\nThroughput vs. frequency (mini Fig. 4):\n")
freqs = [1.2, 1.8, 2.4, 3.0]
series = {}
for label, options in [("vanilla", BuildOptions.vanilla()),
                       ("packetmill", BuildOptions.packetmill())]:
    gbps = []
    for freq in freqs:
        b = PacketMill(ids_router(), options,
                       params=MachineParams(freq_ghz=freq)).build()
        gbps.append(measure_throughput(b, batches=120, warmup_batches=60).gbps)
    series[label] = (freqs, gbps)
print(line_chart(series, title="IDS+router", x_label="core GHz", y_label="Gbps"))

print("\nPer-variant packet rate at 2.3 GHz:\n")
labels, values = [], []
for label, options in [("vanilla", BuildOptions.vanilla()),
                       ("devirt", BuildOptions.devirtualized()),
                       ("static", BuildOptions.static()),
                       ("packetmill", BuildOptions.packetmill())]:
    b = PacketMill(ids_router(), options, params=params).build()
    labels.append(label)
    values.append(measure_throughput(b, batches=120, warmup_batches=60).mpps)
print(bar_chart(labels, values, unit=" Mpps"))
