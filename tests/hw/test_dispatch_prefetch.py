"""Tests for dispatch-access locality, software prefetch, and hugepages."""

import pytest

from repro.hw.cpu import CpuCore
from repro.hw.layout import DMA_BASE
from repro.hw.memory import HUGE_PAGE_SIZE, MemorySystem
from repro.hw.params import MachineParams


def rig(**kwargs):
    params = MachineParams(**kwargs)
    mem = MemorySystem(params, seed=3)
    return CpuCore(params, mem), mem, params


class TestDispatchAccess:
    def test_distribution_matches_params(self):
        cpu, mem, params = rig()
        n = 20000
        for _ in range(n):
            mem.dispatch_access(0)
        counters = mem.counters[0]
        dram_share = counters.llc_misses / n
        llc_share = counters.llc_hits / n
        assert dram_share == pytest.approx(params.heap_dispatch_p_dram, abs=0.02)
        assert llc_share == pytest.approx(params.heap_dispatch_p_llc, abs=0.02)

    def test_counts_llc_loads(self):
        cpu, mem, params = rig()
        for _ in range(100):
            cpu.dispatch_access()
        counters = mem.counters[0]
        assert counters.llc_loads == counters.llc_hits + counters.llc_misses

    def test_charges_uncore_time(self):
        cpu, mem, params = rig()
        for _ in range(100):
            cpu.dispatch_access()
        assert cpu.uncore_ns > 0
        assert cpu.instructions == 100


class TestPrefetch:
    def test_prefetch_is_not_a_demand_load(self):
        cpu, mem, _ = rig()
        cpu.prefetch(0x9000, 128)
        counters = mem.counters[0]
        assert counters.llc_loads == 0
        assert counters.llc_misses == 0

    def test_prefetch_warms_l1(self):
        cpu, mem, _ = rig()
        cpu.prefetch(0x9000, 64)
        mem.reset_counters()
        cpu.mem_access(0x9000, 8)
        assert mem.counters[0].l1_hits == 1

    def test_prefetch_latency_deeply_overlapped(self):
        cpu, mem, params = rig()
        cpu.prefetch(0x9000, 64)  # cold -> DRAM
        assert cpu.uncore_ns == pytest.approx(params.dram_ns / params.prefetch_mlp)

    def test_prefetch_of_resident_line_free(self):
        cpu, mem, _ = rig()
        cpu.mem_access(0xA000, 8)
        before = cpu.uncore_ns
        cpu.prefetch(0xA000, 8)
        assert cpu.uncore_ns == before  # already in L1


class TestHugepages:
    def test_dma_region_uses_huge_pages(self):
        cpu, mem, params = rig()
        # Touch 64 KB of DMA space: 16 x 4-KB pages but ONE 2-MB hugepage.
        for offset in range(0, 64 * 1024, 4096):
            mem.access(0, DMA_BASE + offset, 8)
        assert mem.tlbs[0].walks == 1

    def test_normal_region_uses_4k_pages(self):
        cpu, mem, params = rig()
        for offset in range(0, 64 * 1024, 4096):
            mem.access(0, 0x100000 + offset, 8)
        assert mem.tlbs[0].walks == 16

    def test_huge_page_boundary(self):
        cpu, mem, _ = rig()
        mem.access(0, DMA_BASE, 8)
        mem.access(0, DMA_BASE + HUGE_PAGE_SIZE, 8)
        assert mem.tlbs[0].walks == 2
