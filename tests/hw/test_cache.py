"""Tests for the set-associative cache and the DDIO-aware hierarchy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw.cache import Cache, CacheHierarchy
from repro.hw.params import MachineParams


def small_cache(size=1024, assoc=2, line=64):
    return Cache("test", size, assoc, line)


class TestCache:
    def test_geometry(self):
        cache = small_cache(size=1024, assoc=2, line=64)
        assert cache.n_sets == 8

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Cache("bad", 1000, 3, 64)

    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(5)
        cache.fill(5)
        assert cache.access(5)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = small_cache(size=256, assoc=2, line=64)  # 2 sets
        # Lines 0, 2, 4 all map to set 0 (even line numbers).
        cache.fill(0)
        cache.fill(2)
        evicted = cache.fill(4)
        assert evicted == 0
        assert not cache.contains(0)
        assert cache.contains(2)
        assert cache.contains(4)

    def test_access_refreshes_lru(self):
        cache = small_cache(size=256, assoc=2, line=64)
        cache.fill(0)
        cache.fill(2)
        cache.access(0)  # 0 becomes MRU; 2 is now LRU
        assert cache.fill(4) == 2

    def test_fill_is_idempotent_for_resident_line(self):
        cache = small_cache()
        cache.fill(7)
        assert cache.fill(7) is None
        assert cache.occupancy() == 1

    def test_invalidate(self):
        cache = small_cache()
        cache.fill(9)
        assert cache.invalidate(9)
        assert not cache.contains(9)
        assert not cache.invalidate(9)

    def test_flush_clears_contents_and_stats(self):
        cache = small_cache()
        cache.fill(1)
        cache.access(1)
        cache.flush()
        assert cache.occupancy() == 0
        assert cache.hits == 0

    def test_ddio_way_restriction(self):
        """DDIO fills may not evict application lines beyond their quota."""
        cache = small_cache(size=256, assoc=4, line=64)  # 1 set of 4 ways... no: 256/(4*64)=1
        app_lines = [0, 1]
        for line in app_lines:
            cache.fill(line)
        # Two DDIO fills take the remaining ways; quota is 2.
        cache.fill(10, ddio=True, ddio_ways=2)
        cache.fill(11, ddio=True, ddio_ways=2)
        # A third DDIO fill must displace a DDIO line, not an app line.
        evicted = cache.fill(12, ddio=True, ddio_ways=2)
        assert evicted == 10
        for line in app_lines:
            assert cache.contains(line)

    def test_ddio_fill_without_quota_behaves_like_normal_fill(self):
        cache = small_cache(size=256, assoc=2, line=64)
        cache.fill(0)
        cache.fill(2)
        assert cache.fill(4, ddio=True, ddio_ways=None) == 0

    def test_occupancy_bounded_by_capacity(self):
        cache = small_cache(size=512, assoc=2, line=64)
        for line in range(100):
            cache.fill(line)
        assert cache.occupancy() <= 8

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
    def test_occupancy_invariant_property(self, lines):
        cache = small_cache(size=512, assoc=2, line=64)
        for line in lines:
            if not cache.access(line):
                cache.fill(line)
        assert cache.occupancy() <= cache.assoc * cache.n_sets
        # Every line just accessed again must now hit.
        assert cache.access(lines[-1])

    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=100))
    def test_repeat_access_hits_within_assoc_property(self, lines):
        """A working set smaller than one way per set never self-evicts."""
        cache = Cache("t", 64 * 32, 32, 64)  # fully associative, 32 lines
        distinct = list(dict.fromkeys(lines))[:32]
        for line in distinct:
            cache.fill(line)
        for line in distinct:
            assert cache.access(line)


class TestCacheHierarchy:
    def _hier(self, n_cores=1):
        params = MachineParams()
        return CacheHierarchy(params, n_cores)

    def test_first_access_misses_to_dram(self):
        hier = self._hier()
        assert hier.lookup(0, 100) == CacheHierarchy.DRAM

    def test_second_access_hits_l1(self):
        hier = self._hier()
        hier.lookup(0, 100)
        assert hier.lookup(0, 100) == CacheHierarchy.L1

    def test_l1_eviction_falls_back_to_l2(self):
        hier = self._hier()
        params = hier.params
        lines_in_l1 = params.l1_size // params.cache_line
        hier.lookup(0, 0)
        # Thrash L1 with lines mapping across all sets, several times over.
        for line in range(1, lines_in_l1 * 3 + 1):
            hier.lookup(0, line)
        assert hier.lookup(0, 0) in (CacheHierarchy.L2, CacheHierarchy.LLC)

    def test_cross_core_sharing_via_llc(self):
        hier = self._hier(n_cores=2)
        hier.lookup(0, 42)
        assert hier.lookup(1, 42) == CacheHierarchy.LLC

    def test_dma_write_invalidates_core_caches(self):
        hier = self._hier()
        hier.lookup(0, 7)  # now in L1/L2/LLC
        hier.dma_write(7)
        # The line must be served from LLC (DDIO), not stale L1.
        assert hier.lookup(0, 7) == CacheHierarchy.LLC

    def test_dma_read_hits_after_fill(self):
        hier = self._hier()
        hier.dma_write(13)
        assert hier.dma_read(13)

    def test_dma_read_miss_when_absent(self):
        hier = self._hier()
        assert not hier.dma_read(999)

    def test_flush(self):
        hier = self._hier()
        hier.lookup(0, 5)
        hier.flush()
        assert hier.lookup(0, 5) == CacheHierarchy.DRAM
