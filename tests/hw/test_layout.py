"""Tests for the address-space allocators and perf counters."""

import pytest

from repro.hw.counters import PerfCounters
from repro.hw.layout import (
    DMA_BASE,
    HEAP_BASE,
    STATIC_BASE,
    AddressSpace,
    Region,
)


class TestRegion:
    def test_addr_within(self):
        region = Region("r", 1000, 64, "static")
        assert region.addr(0) == 1000
        assert region.addr(63) == 1063
        assert region.end == 1064

    def test_addr_out_of_range(self):
        region = Region("r", 1000, 64, "static")
        with pytest.raises(ValueError):
            region.addr(64)
        with pytest.raises(ValueError):
            region.addr(-1)


class TestAddressSpace:
    def test_static_allocations_are_contiguous(self):
        space = AddressSpace(seed=0)
        a = space.alloc_static("a", 64)
        b = space.alloc_static("b", 64)
        assert b.base == a.end  # dense packing, 64-B aligned

    def test_static_alignment(self):
        space = AddressSpace(seed=0)
        space.alloc_static("a", 10)
        b = space.alloc_static("b", 64)
        assert b.base % 64 == 0

    def test_heap_allocations_are_scattered(self):
        space = AddressSpace(seed=1)
        regions = [space.alloc_heap("e%d" % i, 128) for i in range(32)]
        gaps = [regions[i + 1].base - regions[i].end for i in range(31)]
        assert max(gaps) > 128  # fragmentation gaps present
        assert all(g >= 32 for g in gaps)  # at least allocator overhead

    def test_heap_fragmentation_zero_packs(self):
        space = AddressSpace(seed=1, heap_fragmentation=0.0)
        a = space.alloc_heap("a", 128)
        b = space.alloc_heap("b", 128)
        assert b.base - a.end <= 64  # only header + alignment

    def test_heap_is_deterministic_per_seed(self):
        bases_1 = [AddressSpace(seed=7).alloc_heap("x", 64).base for _ in range(1)]
        bases_2 = [AddressSpace(seed=7).alloc_heap("x", 64).base for _ in range(1)]
        assert bases_1 == bases_2

    def test_segment_bases(self):
        space = AddressSpace(seed=0)
        assert space.alloc_static("s", 8).base >= STATIC_BASE
        assert space.alloc_heap("h", 8).base >= HEAP_BASE
        assert space.alloc_dma("d", 8).base >= DMA_BASE

    def test_pages_spanned_static_vs_heap(self):
        """The static segment spans far fewer pages for the same objects."""
        space = AddressSpace(seed=3)
        static = [space.alloc_static("s%d" % i, 256) for i in range(16)]
        heap = [space.alloc_heap("h%d" % i, 256) for i in range(16)]
        assert space.pages_spanned(static) < space.pages_spanned(heap)

    def test_static_extent(self):
        space = AddressSpace(seed=0)
        space.alloc_static("a", 100)
        space.alloc_static("b", 100)
        assert space.static_extent() >= 200


class TestPerfCounters:
    def test_per_packet(self):
        counters = PerfCounters(llc_loads=500, packets=100)
        assert counters.per_packet("llc_loads") == 5.0

    def test_per_packet_requires_packets(self):
        with pytest.raises(ValueError):
            PerfCounters().per_packet("llc_loads")

    def test_per_window_scaling(self):
        counters = PerfCounters(llc_loads=100, packets=100)
        # 1 load/packet at 10 Mpps over 100 ms -> 1M loads per window.
        assert counters.per_window("llc_loads", pps=10e6) == pytest.approx(1e6)

    def test_miss_ratio(self):
        counters = PerfCounters(llc_loads=100, llc_misses=25)
        assert counters.llc_miss_ratio() == 0.25

    def test_miss_ratio_no_loads(self):
        assert PerfCounters().llc_miss_ratio() == 0.0

    def test_add_and_reset(self):
        a = PerfCounters(instructions=10, packets=1)
        b = PerfCounters(instructions=5, packets=2)
        a.add(b)
        assert a.instructions == 15
        assert a.packets == 3
        a.reset()
        assert a.instructions == 0

    def test_snapshot_round_trip(self):
        counters = PerfCounters(l1_hits=3)
        snap = counters.snapshot()
        assert snap["l1_hits"] == 3
        assert "llc_misses" in snap
