"""Tests for the memory system, TLB, and cost accounting."""

import pytest

from repro.hw.cpu import CpuCore
from repro.hw.memory import MemorySystem
from repro.hw.params import MB, MachineParams
from repro.hw.tlb import Tlb


class TestTlb:
    def test_first_access_walks(self):
        tlb = Tlb(MachineParams())
        assert tlb.access(1) > 0
        assert tlb.walks == 1

    def test_second_access_free(self):
        tlb = Tlb(MachineParams())
        tlb.access(1)
        assert tlb.access(1) == 0.0
        assert tlb.walks == 1

    def test_dtlb_capacity_spill_to_stlb(self):
        params = MachineParams()
        tlb = Tlb(params)
        for page in range(params.dtlb_entries + 10):
            tlb.access(page)
        # Page 0 fell out of the DTLB but is still in the STLB: no walk.
        walks_before = tlb.walks
        assert tlb.access(0) == 0.0
        assert tlb.walks == walks_before

    def test_stlb_capacity_walk(self):
        params = MachineParams()
        tlb = Tlb(params)
        for page in range(params.stlb_entries + 10):
            tlb.access(page)
        assert tlb.access(0) == params.tlb_walk_ns

    def test_flush(self):
        tlb = Tlb(MachineParams())
        tlb.access(1)
        tlb.flush()
        assert tlb.access(1) > 0


class TestMemorySystem:
    def _mem(self, **kwargs):
        return MemorySystem(MachineParams(), **kwargs)

    def test_cold_access_charges_dram(self):
        mem = self._mem()
        cycles, ns = mem.access(0, 0x1000, 8)
        params = mem.params
        assert ns >= params.dram_ns / params.mlp
        assert mem.counters[0].llc_misses == 1

    def test_warm_access_is_l1(self):
        mem = self._mem()
        mem.access(0, 0x1000, 8)
        cycles, ns = mem.access(0, 0x1000, 8)
        assert cycles == mem.params.l1_hit_cycles
        assert mem.counters[0].l1_hits == 1

    def test_straddling_access_touches_two_lines(self):
        mem = self._mem()
        mem.access(0, 0x1000 + 60, 8)  # crosses a 64-B boundary
        assert mem.counters[0].llc_misses == 2

    def test_access_within_line_touches_one(self):
        mem = self._mem()
        mem.access(0, 0x1000, 64)
        assert mem.counters[0].llc_misses == 1

    def test_dma_write_makes_llc_hit(self):
        mem = self._mem()
        mem.access(0, 0x2F00, 8)  # warm the TLB for this page
        mem.reset_counters()
        mem.dma_write(0x2000, 128)
        cycles, ns = mem.access(0, 0x2000, 8)
        assert mem.counters[0].llc_hits == 1
        assert mem.counters[0].llc_misses == 0
        assert ns == mem.params.llc_hit_ns / mem.params.mlp

    def test_ddio_fill_counter(self):
        mem = self._mem()
        mem.dma_write(0x2000, 256)
        assert mem.counters[0].ddio_fills == 4

    def test_flush_resets_everything(self):
        mem = self._mem()
        mem.access(0, 0x1000, 8)
        mem.flush()
        assert mem.counters[0].llc_misses == 0
        _, ns = mem.access(0, 0x1000, 8)
        assert mem.counters[0].llc_misses == 1

    def test_cores_have_private_l1(self):
        mem = self._mem(n_cores=2)
        mem.access(0, 0x3000, 8)
        mem.access(1, 0x3000, 8)
        # Core 1 found it in the LLC, not its own L1.
        assert mem.counters[1].llc_hits == 1


class TestAnalyticAccess:
    def test_tiny_footprint_always_l1(self):
        mem = MemorySystem(MachineParams(), seed=1)
        for _ in range(100):
            cycles, ns = mem.analytic_access(0, 1024)
            assert ns == 0.0
        assert mem.counters[0].l1_hits == 100

    def test_llc_band_footprint_loads_from_llc(self):
        mem = MemorySystem(MachineParams(), seed=1)
        for _ in range(2000):
            mem.analytic_access(0, 8 * MB)
        counters = mem.counters[0]
        assert counters.llc_loads > 1500
        assert counters.llc_misses == 0

    def test_oversized_footprint_misses_to_dram(self):
        mem = MemorySystem(MachineParams(), seed=1)
        for _ in range(2000):
            mem.analytic_access(0, 28 * MB)
        counters = mem.counters[0]
        assert counters.llc_misses > 0
        # ~half the region fits the 14-MB effective LLC share.
        ratio = counters.llc_misses / counters.llc_loads
        assert 0.3 < ratio < 0.7

    def test_miss_ratio_grows_with_footprint(self):
        ratios = []
        for footprint in (8 * MB, 16 * MB, 32 * MB):
            mem = MemorySystem(MachineParams(), seed=3)
            for _ in range(3000):
                mem.analytic_access(0, footprint)
            ratios.append(mem.counters[0].llc_miss_ratio())
        assert ratios[0] <= ratios[1] <= ratios[2]


class TestCpuCore:
    def _core(self, freq=2.0):
        params = MachineParams(freq_ghz=freq)
        mem = MemorySystem(params)
        return CpuCore(params, mem)

    def test_compute_cost_uses_issue_ipc(self):
        core = self._core()
        core.charge_compute(400)
        assert core.core_cycles == pytest.approx(400 / core.params.issue_ipc)
        assert core.instructions == 400

    def test_elapsed_scales_with_frequency(self):
        slow = self._core(freq=1.0)
        fast = self._core(freq=2.0)
        for core in (slow, fast):
            core.charge_compute(400)
        assert slow.elapsed_ns() == pytest.approx(2 * fast.elapsed_ns())

    def test_uncore_ns_does_not_scale_with_frequency(self):
        slow = self._core(freq=1.0)
        fast = self._core(freq=2.0)
        for core in (slow, fast):
            core.charge_ns(50.0)
        assert slow.elapsed_ns() == fast.elapsed_ns()

    def test_branch_miss_charges_cycles_and_counts(self):
        core = self._core()
        core.charge_branch_miss()
        assert core.core_cycles == core.params.branch_miss_cycles
        assert core.counters.branch_misses == 1

    def test_ipc_definition(self):
        core = self._core(freq=2.0)
        core.charge_compute(800)
        core.charge_ns(100)  # 200 cycle-equivalents at 2 GHz
        issue_cycles = 800 / core.params.issue_ipc
        assert core.ipc() == pytest.approx(800 / (issue_cycles + 200.0))

    def test_mem_access_accumulates(self):
        core = self._core()
        core.mem_access(0x5000, 8)
        assert core.instructions == 1
        assert core.uncore_ns > 0

    def test_reset(self):
        core = self._core()
        core.charge_compute(100)
        core.reset()
        assert core.elapsed_ns() == 0
        assert core.ipc() == 0.0

    def test_random_access_counts(self):
        core = self._core()
        core.random_access(64 * MB)
        assert core.counters.llc_loads + core.counters.l1_hits + core.counters.l2_hits == 1
